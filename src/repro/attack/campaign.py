"""Attack campaign generation (the attacker ecosystem of §5.2).

The model separates three actor layers, as the paper does:

* **booters** — a small number of DDoS-for-hire services, each holding a
  scanned *amplifier list* that goes stale as remediation proceeds and is
  refreshed periodically.  Reusing one list across attacks produces the
  coordinated multi-amplifier attacks §7.2 observes (the same local
  amplifiers repeatedly used together).
* **bots** — spoofed-source query senders with Windows TTLs (§7.2's TTL
  forensics: attack traffic mode TTL ≈109 vs scanning ≈54).
* **attacks** — one victim, one UDP port, a start/duration, a target
  bandwidth, and a set of amplifier legs; the per-amplifier query rate is
  derived from the target bandwidth and each amplifier's reply size.

Attack intensity follows the paper's timeline: negligible in November,
ignition in mid-December (a week after scanning ramps), a peak on
February 10-12 driven by the CloudFlare/OVH event, and a decline through
April (Figures 1, 2, 7).
"""

import math
from dataclasses import dataclass, field

import numpy as np

from repro.attack.scanner import windows_observed_ttl
from repro.sim.events import AttackPulse
from repro.util.simtime import DAY, HOUR, WEEK, date_to_sim, Timeline

__all__ = ["AttackSpec", "Booter", "CampaignParams", "AttackCampaign"]

#: Ground-truth attack starts per hour at full scale.
ATTACK_INTENSITY_FULL = Timeline(
    [
        (date_to_sim(2013, 11, 1), 1.0),
        (date_to_sim(2013, 12, 1), 4.0),
        (date_to_sim(2013, 12, 15), 15.0),
        (date_to_sim(2013, 12, 20), 120.0),
        (date_to_sim(2014, 1, 5), 250.0),
        (date_to_sim(2014, 1, 20), 400.0),
        (date_to_sim(2014, 2, 5), 700.0),
        (date_to_sim(2014, 2, 10), 2600.0),
        (date_to_sim(2014, 2, 12), 3200.0),
        (date_to_sim(2014, 2, 14), 1500.0),
        (date_to_sim(2014, 2, 24), 900.0),
        (date_to_sim(2014, 3, 15), 650.0),
        (date_to_sim(2014, 4, 10), 380.0),
        (date_to_sim(2014, 4, 30), 260.0),
    ]
)

#: Median attack duration (seconds): very short early, ~40 s from
#: mid-February (§4.3.4).
DURATION_MEDIAN = Timeline(
    [
        (date_to_sim(2013, 11, 1), 12.0),
        (date_to_sim(2014, 1, 10), 15.0),
        (date_to_sim(2014, 2, 14), 40.0),
        (date_to_sim(2014, 4, 30), 40.0),
    ]
)

#: Duration log-sigma: the early tail reaches ~6.5 hours at the 95th
#: percentile, declining to ~50 minutes by April.
DURATION_SIGMA = Timeline(
    [
        (date_to_sim(2013, 11, 1), 3.3),
        (date_to_sim(2014, 1, 10), 3.3),
        (date_to_sim(2014, 2, 14), 2.6),
        (date_to_sim(2014, 4, 30), 2.2),
    ]
)

#: Median amplifiers per attack: tens early, a handful late (§6.3: the
#: number of amplifiers per victim fell by an order of magnitude while each
#: remaining amplifier was worked harder).
AMPS_PER_ATTACK_MEDIAN = Timeline(
    [
        (date_to_sim(2013, 11, 1), 30.0),
        (date_to_sim(2014, 1, 24), 22.0),
        (date_to_sim(2014, 2, 21), 8.0),
        (date_to_sim(2014, 4, 30), 3.0),
    ]
)

#: The publicly-disclosed OVH/CloudFlare event window (§4.4).
OVH_EVENT_START = date_to_sim(2014, 2, 10)
OVH_EVENT_END = date_to_sim(2014, 2, 13)


@dataclass
class Booter:
    """A DDoS-for-hire service with a (staling) amplifier list.

    The list is an ``np.ndarray`` of indices into the pool's
    ``monlist_hosts`` (reply-size-sorted, best first) — index-based so a
    campaign shard can ship its picks back to the parent without
    pickling host objects.
    """

    booter_id: int
    popularity: float
    amplifier_list: object  # np.ndarray of monlist_hosts indices
    list_refreshed: float


@dataclass
class AttackSpec:
    """One attack: a victim, a window, and its amplifier legs."""

    attack_id: int
    victim: object  # population.victims.Victim
    port: int
    start: float
    duration: float
    mode: int
    target_bps: float
    amplifiers: list  # NtpHost legs participating
    query_rate_per_amp: float
    spoofer_ttl: int
    booter_id: int
    #: Amplifier IPs as an ``int64`` array aligned with ``amplifiers``.
    #: Filled by the campaign generator; ``None`` (e.g. hand-built specs,
    #: the scripted FRGP event) falls back to a per-host gather.
    amp_ips: object = field(default=None, repr=False, compare=False)

    @property
    def end(self):
        return self.start + self.duration

    @property
    def size_gbps(self):
        return self.target_bps / 1e9

    def amplifier_ips(self):
        """``amp_ips``, materializing (and caching) it on first use."""
        if self.amp_ips is None:
            self.amp_ips = np.array([h.ip for h in self.amplifiers], dtype=np.int64)
        return self.amp_ips

    def pulses(self):
        """One :class:`AttackPulse` per amplifier leg."""
        out = []
        for host in self.amplifiers:
            out.append(
                AttackPulse(
                    start=self.start,
                    duration=self.duration,
                    victim_ip=self.victim.ip,
                    victim_port=self.port,
                    amplifier_ip=host.ip,
                    query_rate=self.query_rate_per_amp,
                    mode=self.mode,
                    spoofer_ttl=self.spoofer_ttl,
                )
            )
        return out


@dataclass(frozen=True)
class CampaignParams:
    """Scale and calibration knobs for attack generation."""

    scale: float = 0.01
    start: float = date_to_sim(2013, 11, 1)
    end: float = date_to_sim(2014, 5, 1)
    n_booters: int = 24
    #: Booter amplifier lists hold this fraction of the alive pool.
    list_fraction: float = 0.15
    list_refresh_interval: float = WEEK
    #: Attack size mixture: mostly small booter hits, a few heavy ones.
    #: The small median is a couple of Mbps — enough to knock a home user
    #: offline, and the reason Figure 6's median victim receives only
    #: hundreds of packets while the mean is millions.
    small_median_bps: float = 3e6
    small_sigma: float = 2.0
    heavy_fraction: float = 0.02
    heavy_median_bps: float = 4e9
    heavy_sigma: float = 1.5
    #: Attackers provision roughly this much bandwidth per amplifier leg;
    #: big attacks therefore recruit hundreds-to-thousands of amplifiers
    #: (CloudFlare's 400 Gbps attack used ~4,500), which keeps per-record
    #: monlist counts in the realistic range.
    target_bps_per_amp: float = 8e6
    #: Per-amplifier spoofed-query rate ceiling (packets/second).
    max_query_rate: float = 20000.0
    #: Fraction of attacks using the mode-6 version vector late in the
    #: window (§3.3: 0.3% of victims by April).
    version_attack_fraction_late: float = 0.004
    ovh_event: bool = True

    def __post_init__(self):
        if self.end <= self.start:
            raise ValueError("end must follow start")
        if not 0 < self.scale <= 1:
            raise ValueError("scale must be in (0, 1]")


class AttackCampaign:
    """Generates the full, chronologically-sorted attack list.

    Generation is sharded by *week*: each week's attacks are a pure
    function of ``(master seed, week number)`` — the booter lists a week
    sees are regenerated from ``child(f"booters-w{w}")`` at the week's
    reference time, and its attack/TTL draws come from
    ``child(f"attacks-w{w}")``/``child(f"ttl-w{w}")``.  A
    :class:`~repro.util.ShardRunner` can therefore fan the weeks out
    over a fork pool and merge them in week order with byte-identical
    results at any job count; the serial path runs the same weeks in the
    same order.
    """

    def __init__(self, rng, host_pool, victim_pool, params=None):
        self._rng = rng
        self._hosts = host_pool
        self._victims = victim_pool
        self.params = params or CampaignParams()

    # -- internals -------------------------------------------------------------

    def _sample_list(self, rng, t):
        """A booter's amplifier list: a random slice of the alive pool,
        sorted best-amplifiers-first (attackers rank by observed reply
        size, which is why primed/full-table amplifiers get hammered).

        Returns indices into ``monlist_hosts``; ranking/rate-sizing uses
        the table-only reply estimate (attackers' list-building scans
        record reply sizes, not loop pathologies), vectorized over the
        pool's :class:`~repro.population.columns.MonlistColumns`.
        """
        cols = self._hosts.monlist_columns()
        alive = np.flatnonzero(cols.alive_mask(t))
        if len(alive) == 0:
            return alive
        size = max(3, min(len(alive), int(len(alive) * self.params.list_fraction)))
        picks = rng.choice(len(alive), size=size, replace=False)
        chosen = alive[np.asarray(picks, dtype=np.int64)]
        order = np.argsort(-cols.reply_once[chosen], kind="stable")
        return chosen[order]

    def _booters_for_week(self, week, popularity):
        """The booter roster as week ``week`` sees it: fixed identities
        and popularity, lists re-scanned at the week's start (the weekly
        refresh cadence of a staling amplifier list)."""
        t_ref = self.params.start + week * WEEK
        week_rng = self._rng.child(f"booters-w{week}")
        booters = []
        for i in range(self.params.n_booters):
            booters.append(
                Booter(
                    booter_id=i,
                    popularity=popularity[i],
                    amplifier_list=self._sample_list(week_rng, t_ref),
                    list_refreshed=t_ref,
                )
            )
        return booters

    def _pick_amplifiers(self, rng, booter, n_amps):
        """Sample ``n_amps`` from a booter list with a strong elite bias:
        most legs come from the top of the (reply-size-sorted) list."""
        amp_list = booter.amplifier_list
        n_amps = min(n_amps, len(amp_list))
        elite = max(5, len(amp_list) // 50)
        picked = {}
        for _ in range(n_amps):
            if rng.random() < 0.6:
                index = int(rng.integers(0, min(elite, len(amp_list))))
            else:
                index = int(rng.integers(0, len(amp_list)))
            picked[index] = int(amp_list[index])
        return np.fromiter(picked.values(), dtype=np.int64, count=len(picked))

    def _sample_size_bps(self, rng, t):
        p = self.params
        heavy_frac = p.heavy_fraction
        if p.ovh_event and OVH_EVENT_START <= t <= OVH_EVENT_END:
            heavy_frac = min(0.5, heavy_frac * 4)
        # Cap the rare monster draws at a few percent of the scaled traffic
        # denominator: at small scales a single absolutely-sized 100+ Gbps
        # attack would dominate the world's whole NTP traffic curve (at
        # full scale the cap is far above any draw).  The floor keeps the
        # >20 Gbps "Large" bin of Figure 2 populated at every scale.
        size_cap = max(25e9, min(400e9, 0.02 * 71.5e12 * p.scale))
        if rng.random() < heavy_frac:
            return min(size_cap, float(rng.lognormal_for_median(p.heavy_median_bps, p.heavy_sigma)))
        return min(size_cap, float(rng.lognormal_for_median(p.small_median_bps, p.small_sigma)))

    def _sample_duration(self, rng, t):
        median = DURATION_MEDIAN(t)
        sigma = DURATION_SIGMA(t)
        return float(min(24 * HOUR, max(5.0, rng.lognormal_for_median(median, sigma))))

    # -- generation -------------------------------------------------------------

    def generate(self, runner=None):
        """All attacks in the window, sorted by start time.

        ``runner`` (a :class:`repro.util.ShardRunner`) distributes the
        week shards; without one they run serially with identical draws.
        Attack ids are renumbered sequentially in (week, order) —
        generation — order in the parent, so they never depend on shard
        completion order.
        """
        p = self.params
        n_weeks = max(1, math.ceil((p.end - p.start) / WEEK))
        pop_rng = self._rng.child("booter-pop")
        popularity = tuple(
            float(pop_rng.bounded_pareto(1.0, 1.0, 50.0)) for _ in range(p.n_booters)
        )
        total_w = sum(popularity)
        booter_p = tuple(w / total_w for w in popularity)
        # Warm the shared column cache before any fork so workers inherit
        # it copy-on-write instead of each rebuilding it.
        cols = self._hosts.monlist_columns()
        if runner is None:
            from repro.util.pool import ShardRunner

            runner = ShardRunner(1)
        ctx = (self, popularity, booter_p)
        week_rows = runner.map("campaign", _campaign_week_worker, ctx, n_weeks)

        mon_hosts = self._hosts.monlist_hosts
        victims = self._victims.victims
        attacks = []
        attack_id = 0
        for rows in week_rows:
            for (vi, port, start, duration, mode, size_bps, live, rate, ttl, bid) in rows:
                attacks.append(
                    AttackSpec(
                        attack_id=attack_id,
                        victim=victims[vi],
                        port=port,
                        start=start,
                        duration=duration,
                        mode=mode,
                        target_bps=size_bps,
                        amplifiers=[mon_hosts[int(k)] for k in live],
                        query_rate_per_amp=rate,
                        spoofer_ttl=ttl,
                        booter_id=bid,
                        amp_ips=cols.ip[live],
                    )
                )
                attack_id += 1
        if p.ovh_event:
            # The scripted event layer runs in the parent: it needs the
            # end-of-campaign booter rosters (the last weekly refresh).
            ovh_rng = self._rng.child("ovh-attacks")
            ovh_ttl = self._rng.child("ovh-ttl")
            booters = self._booters_for_week(n_weeks - 1, popularity)
            attacks.extend(self._ovh_event_attacks(ovh_rng, ovh_ttl, booters, attack_id))
        attacks.sort(key=lambda a: a.start)
        return attacks

    def _ovh_event_attacks(self, rng, ttl_rng, booters, next_id):
        """The record-setting February 10-12 campaign against the OVH-like
        hoster: long, heavy, many-amplifier attacks on its victims."""
        ovh_victims = [
            v
            for v in self._victims.victims
            if v.active_at(OVH_EVENT_START + DAY) or v.active_at(OVH_EVENT_START)
        ]
        # Targets inside the top (OVH-like) AS.
        top_asn = None
        from collections import Counter

        counts = Counter(v.asn for v in self._victims.victims)
        if counts:
            top_asn = counts.most_common(1)[0][0]
        targets = [v for v in ovh_victims if v.asn == top_asn]
        if not targets:
            return []
        n_event = max(3, int(rng.poisson(150 * self.params.scale)))
        # Individual event attacks are huge (the headline attack peaked near
        # 400 Gbps), but a handful of absolutely-sized monsters would swamp
        # a small world's scaled traffic denominator, so sizes are capped at
        # a few percent of the scaled global total.  At full scale the cap
        # is inactive.
        size_cap = max(25e9, min(400e9, 0.02 * 71.5e12 * self.params.scale))
        out = []
        lists = [b for b in booters if len(b.amplifier_list)]
        if not lists:
            return []
        cols = self._hosts.monlist_columns()
        mon_hosts = self._hosts.monlist_hosts
        for i in range(n_event):
            victim = targets[int(rng.integers(0, len(targets)))]
            booter = lists[int(rng.integers(0, len(lists)))]
            start = OVH_EVENT_START + float(rng.uniform(0, OVH_EVENT_END - OVH_EVENT_START))
            duration = float(min(24 * HOUR, rng.lognormal_for_median(HOUR, 0.9)))
            amp_list = booter.amplifier_list
            live = amp_list[
                (cols.birth[amp_list] <= start) & (start < cols.monlist_end[amp_list])
            ]
            if len(live) == 0:
                continue
            n_amps = min(len(live), max(10, int(rng.lognormal_for_median(60, 0.6))))
            picks = rng.choice(len(live), size=n_amps, replace=False)
            amps = live[np.asarray(picks, dtype=np.int64)]
            size_bps = min(size_cap, float(rng.lognormal_for_median(15e9, 0.9)))
            reply = int(cols.reply_once[amps].sum()) / len(amps)
            rate = size_bps / 8.0 / len(amps) / max(300.0, reply)
            out.append(
                AttackSpec(
                    attack_id=next_id + i,
                    victim=victim,
                    port=victim.ports[0],
                    start=start,
                    duration=duration,
                    mode=7,
                    target_bps=size_bps,
                    amplifiers=[mon_hosts[int(k)] for k in amps],
                    query_rate_per_amp=float(min(self.params.max_query_rate, max(1.0, rate))),
                    spoofer_ttl=windows_observed_ttl(ttl_rng),
                    booter_id=booter.booter_id,
                    amp_ips=cols.ip[amps],
                )
            )
        return out


def _campaign_week_worker(ctx, week):
    """Generate one week of attacks as index-based transport rows.

    Each row is ``(victim_index, port, start, duration, mode,
    target_bps, live_amp_indices, rate, ttl, booter_id)`` — small enough
    to pickle back from a fork worker; the parent materializes
    :class:`AttackSpec` objects.  The per-attack draw sequence inside a
    week mirrors the original day-loop generator exactly.
    """
    campaign, popularity, booter_p = ctx
    p = campaign.params
    booters = campaign._booters_for_week(week, popularity)
    wrng = campaign._rng.child(f"attacks-w{week}")
    ttl_rng = campaign._rng.child(f"ttl-w{week}")
    cols = campaign._hosts.monlist_columns()
    victims = campaign._victims.victims

    rows = []
    day = p.start + week * WEEK
    week_end = min(day + WEEK, p.end)
    while day < week_end:
        day_end = min(day + DAY, week_end)
        expected = ATTACK_INTENSITY_FULL((day + day_end) / 2) * 24 * p.scale
        n_attacks = int(wrng.poisson(expected))
        starts = wrng.uniform(day, day_end, size=n_attacks) if n_attacks else []
        for start in sorted(starts):
            victim_choices = campaign._victims.sample_active_indices(wrng, start, 1)
            if not victim_choices:
                continue
            vi = victim_choices[0]
            victim = victims[vi]
            booter = booters[int(wrng.choice(len(booters), p=booter_p))]
            if len(booter.amplifier_list) == 0:
                continue
            duration = campaign._sample_duration(wrng, start)
            size_bps = campaign._sample_size_bps(wrng, start)
            n_amps = max(1, int(wrng.lognormal_for_median(AMPS_PER_ATTACK_MEDIAN(start), 0.9)))
            # Big attacks recruit enough amplifiers to reach the target
            # bandwidth at sane per-amplifier rates.
            n_amps = max(n_amps, int(size_bps / p.target_bps_per_amp))
            amps = campaign._pick_amplifiers(wrng, booter, n_amps)
            # Stale entries that remediated since the list was built
            # silently stop amplifying; attackers don't notice per-hit.
            live = amps[(cols.birth[amps] <= start) & (start < cols.monlist_end[amps])]
            if len(live) == 0:
                continue
            version_p = (
                p.version_attack_fraction_late
                if start >= date_to_sim(2014, 2, 15)
                else p.version_attack_fraction_late / 4
            )
            mode = 6 if wrng.random() < version_p else 7
            reply = int(cols.reply_once[live].sum()) / len(live)
            rate = size_bps / 8.0 / max(1, len(live)) / max(300.0, reply)
            rate = float(min(p.max_query_rate, max(0.5, rate)))
            port = victim.ports[int(wrng.integers(0, len(victim.ports)))]
            rows.append(
                (
                    vi,
                    port,
                    float(start),
                    duration,
                    mode,
                    size_bps,
                    live,
                    rate,
                    windows_observed_ttl(ttl_rng),
                    booter.booter_id,
                )
            )
        day = day_end
    return rows
