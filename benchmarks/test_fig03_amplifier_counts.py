"""Figure 3: monlist amplifier counts at four aggregation levels, plus the
Merit and FRGP/CSU subsets.

Paper: the global pool falls from 1.405M IPs (Jan 10) through 677K (Jan 24)
to a ~110K plateau from mid-March — a 92% IP-level reduction, but only 72%
at /24, 59% at routed-block, and 55% at AS level.  The local subsets shrink
too (Merit via trouble tickets; CSU secured entirely on Jan 24).
"""

from repro.analysis import amplifier_counts, subgroup_reductions, subset_counts
from repro.util import format_sim


def test_fig03_amplifier_counts(benchmark, world, parsed_monlist):
    rows = benchmark(amplifier_counts, parsed_monlist, world.table, world.pbl)

    ips = [r.ips for r in rows]
    # Scaled initial pool.
    expected_initial = 1_405_000 * world.params.scale
    assert 0.6 * expected_initial < ips[0] < 1.3 * expected_initial
    # Halved (and more) within two weeks; >80% down by the end; plateau.
    assert ips[2] < 0.65 * ips[0]
    assert ips[-1] < 0.2 * ips[0]
    assert max(ips[-4:]) < 1.6 * min(ips[-4:])

    # Reduction shallower at each aggregation level (92/72/59/55 pattern).
    reductions = {r.level: r.reduction for r in subgroup_reductions(rows[0], rows[-1])}
    assert reductions["ip"] > reductions["slash24"] > reductions["asn"]

    # Local subsets: Merit declines; CSU's amplifiers disappear after Jan 24.
    merit = world.registry.special["REGIONAL-MI"]
    csu = world.registry.special["CSU-EDU"]
    merit_counts = subset_counts(parsed_monlist, merit.prefixes)
    csu_counts = subset_counts(parsed_monlist, csu.prefixes)
    assert merit_counts[0][1] > merit_counts[-1][1]
    assert csu_counts[0][1] >= 5
    assert all(count == 0 for t, count in csu_counts[3:])  # secured Jan 24

    print("\nFig3 (date: IPs //24s /blocks /ASNs | merit csu):")
    for row, (t, m), (_, c) in zip(rows, merit_counts, csu_counts):
        print(
            f"  {format_sim(row.t)}: {row.ips:>6} {row.slash24s:>6} {row.blocks:>5} "
            f"{row.asns:>5} | {m:>3} {c:>2}"
        )
