"""Cross-dataset validation (§4.4).

The paper validates its ONP-derived view against the publicly-disclosed
CloudFlare/OVH attack of February 10th: OVH is the top victim AS in the
ONP data; CloudFlare's published list of 1,297 amplifier-hosting ASes
overlapped the ONP amplifier ASes in 1,291 cases; and those overlapping
ASes carried 60% of all victim packets.

Here the same cross-check runs between two *independently produced*
artifacts of the simulation: the attack campaign's own amplifier lists for
the event (standing in for CloudFlare's disclosure) and the ONP probe
corpus (what the measurement saw).
"""

from dataclasses import dataclass

from repro.attack.campaign import OVH_EVENT_END, OVH_EVENT_START

__all__ = ["EventValidation", "validate_ovh_event"]


@dataclass(frozen=True)
class EventValidation:
    """§4.4's cross-dataset agreement figures.

    Every field is well-defined on degraded inputs: an empty ONP corpus, a
    disclosure with no amplifiers, or a target AS that never appears in the
    victimology all yield zeros (and ``degraded`` is True) rather than a
    division error — reachable under ``--faults hostile`` when sample
    outages eat the event window.
    """

    event_attacks: int
    disclosed_asns: int
    overlapping_asns: int
    victim_packet_share: float
    #: 1-based rank of the target AS among victim ASes by packet count;
    #: 0 when the target AS received no observed victim packets.
    target_as_rank: int
    #: Distinct amplifier ASes seen anywhere in the ONP corpus (the
    #: measurement side's denominator; 0 when the corpus is empty).
    onp_asns: int = 0

    @property
    def asn_overlap_fraction(self):
        if self.disclosed_asns == 0:
            return 0.0
        return self.overlapping_asns / self.disclosed_asns

    @property
    def degraded(self):
        """True when either side of the cross-check is missing, so the
        agreement figures are vacuous rather than evidence."""
        return self.disclosed_asns == 0 or self.onp_asns == 0 or self.target_as_rank == 0


def validate_ovh_event(attacks, parsed_samples, concentration, table, target_asn):
    """Cross-validate the February event against the ONP corpus.

    Parameters
    ----------
    attacks:
        The campaign's attack list (the "disclosure" side).
    parsed_samples:
        Reconstructed ONP monlist samples (the measurement side).
    concentration:
        A :class:`~repro.analysis.concentration.ConcentrationReport` built
        from the victimology (for packet attribution and AS ranks).
    table:
        Routed-block table for AS attribution.
    target_asn:
        The attacked hoster's ASN (the OVH-like AS).
    """
    event = [
        a
        for a in attacks
        if OVH_EVENT_START <= a.start <= OVH_EVENT_END and a.victim.asn == target_asn
    ]
    disclosed_asns = set()
    for attack in event:
        for host in attack.amplifiers:
            disclosed_asns.add(host.asn)

    onp_asns = set()
    for parsed in parsed_samples:
        for ip in parsed.amplifier_ips():
            asn = table.asn_of(ip)
            if asn is not None:
                onp_asns.add(asn)

    overlap = disclosed_asns & onp_asns
    total_packets = sum(concentration.amplifier_as_packets.values())
    overlap_packets = sum(concentration.amplifier_as_packets.get(a, 0) for a in overlap)
    share = overlap_packets / total_packets if total_packets else 0.0
    rank = concentration.victim_as_rank(target_asn) or 0

    return EventValidation(
        event_attacks=len(event),
        disclosed_asns=len(disclosed_asns),
        overlapping_asns=len(overlap),
        victim_packet_share=share,
        target_as_rank=rank,
        onp_asns=len(onp_asns),
    )
