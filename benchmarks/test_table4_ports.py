"""Table 4: top-20 ports attacked at victims.

Paper: UDP/80 tops the list (36%), the NTP port itself is second (24%),
and at least ten of the top twenty are game-associated (Xbox Live,
Minecraft, Steam, ...), together >=15% — the "game wars" evidence.
"""

from repro.population import GAME_PORTS
from repro.reporting import render_table4


def test_table4_ports(benchmark, victim_report):
    ports = benchmark(victim_report.port_table, 20)
    assert ports

    ranked = [p for p, _ in ports]
    fractions = dict(ports)

    # Port 80 first, NTP's own port high.
    assert ranked[0] == 80
    assert fractions[80] > 0.2
    assert 123 in ranked[:3]
    assert fractions.get(123, 0) > 0.1

    # Game ports prominent: several in the top 20, meaningful mass.
    game_in_top = [p for p in ranked if p in GAME_PORTS]
    assert len(game_in_top) >= 4
    game_mass = sum(f for p, f in ports if p in GAME_PORTS)
    assert game_mass >= 0.10  # paper: >=15%

    print()
    print(render_table4(ports))
    print(f"game-port mass in top-20: {game_mass:.3f}")
