"""Figure 4: amplification power.

(a) Aggregate on-wire bytes returned per amplifier span many orders of
    magnitude; ~99% of amplifiers stay under a full table's worth while a
    handful of mega amplifiers return gigabytes (largest: 136 GB).
(b) monlist BAF: median ~4x, Q3 ~15x, maxima around 1e6-1e9.
(c) version BAF: tight quartiles ~3.5/4.6/6.9 with loop-driven outliers.
"""

from repro.analysis import (
    aggregate_bytes_per_amplifier,
    mega_amplifier_census,
    sample_baf_boxplot,
    version_sample_baf_boxplot,
)


def test_fig04a_aggregate_bytes(benchmark, parsed_monlist):
    totals, ranks = benchmark(aggregate_bytes_per_amplifier, parsed_monlist)
    values = [v for _, v in ranks]
    assert values[0] > 1e10  # the giga amplifiers (paper: up to 136 GB)
    assert values[0] > 1e4 * values[len(values) // 2]  # huge dynamic range
    census = mega_amplifier_census(parsed_monlist)
    assert census.fraction_under_50kb > 0.85  # paper: ~99% under ~50 KB
    assert census.n_over_1gb >= 5  # paper: six amplifiers above 1 GB
    assert census.largest_bytes > 5e10
    print(
        f"\nFig4a: top={values[0]:.2e}B  median={values[len(values)//2]:.2e}B  "
        f">1GB amps={census.n_over_1gb}  largest={census.largest_bytes/1e9:.0f}GB"
    )


def test_fig04b_monlist_baf(benchmark, parsed_monlist):
    boxes = benchmark(lambda samples: [sample_baf_boxplot(p) for p in samples], parsed_monlist)
    first = boxes[0]
    # Typical amplifier: a handful of x (paper median ~4.3).
    assert 3.0 <= first.median <= 12.0
    # A quarter of amplifiers provide substantially more (paper Q3 ~15).
    assert first.q3 >= 8.0
    # Mega outliers.
    assert max(b.maximum for b in boxes) > 1e5
    print("\nFig4b (sample: q1/med/q3/max):")
    for i, b in enumerate(boxes):
        print(f"  s{i:02d}: {b.q1:.1f} / {b.median:.1f} / {b.q3:.1f} / {b.maximum:.2e}")


def test_fig04c_version_baf(benchmark, world):
    boxes = benchmark(
        lambda samples: [version_sample_baf_boxplot(s) for s in samples],
        world.onp.version_samples,
    )
    medians = [b.median for b in boxes]
    # Quartiles nearly constant across samples (paper: ~3.5/4.6/6.9).
    assert max(medians) - min(medians) < 1.0
    assert 3.5 <= boxes[0].median <= 6.0
    assert boxes[0].q1 >= 3.0
    assert boxes[0].q3 <= 9.5
    # Outliers exist but the high percentiles are far below monlist's.
    assert max(b.maximum for b in boxes) > 1e4
    print("\nFig4c (sample: q1/med/q3/max):")
    for i, b in enumerate(boxes):
        print(f"  s{i}: {b.q1:.2f} / {b.median:.2f} / {b.q3:.2f} / {b.maximum:.2e}")
