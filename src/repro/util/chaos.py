"""Seeded process-chaos harness for the supervised shard pools.

The supervision layer in :mod:`repro.util.pool` claims to survive three
fault classes: a worker dying mid-task (OOM killer, segfault), a worker
hanging past its deadline, and a worker hitting a transient I/O failure
(a full disk, a flaky mount).  This module *manufactures* those faults
on demand so the claim is testable, the same way :mod:`repro.faults`
manufactures measurement-apparatus imperfections:

* ``REPRO_CHAOS=kill:0.2,hang:0.1,enospc:0.05`` enables injection with
  one probability per fault kind;
* ``REPRO_CHAOS_SEED`` (default 0) seeds the decisions — every decision
  is a pure hash of ``(seed, kind, phase, task index, attempt)``, so a
  chaos run is exactly reproducible and a *retried* task faces fresh,
  independent draws (a task killed on attempt 1 usually survives
  attempt 2, which is precisely what the retry path exists for);
* ``REPRO_CHAOS_HANG_S`` (default 30) is how long a "hang" sleeps.

Injection happens **only inside pool worker processes** — the serial
path and the supervisor's in-process fallback never consult this module,
which is what guarantees a chaos-ridden build still terminates with the
right answer: the worst case for any task is ``retries`` doomed pooled
attempts followed by one clean in-process execution.
"""

from __future__ import annotations

import errno
import hashlib
import os
import signal
import time

__all__ = [
    "CHAOS_ENV",
    "CHAOS_SEED_ENV",
    "CHAOS_HANG_ENV",
    "FAULT_KINDS",
    "ChaosSpecError",
    "ChaosMonkey",
    "parse_chaos_spec",
    "chaos_from_env",
]

#: Environment knobs (see module docstring).
CHAOS_ENV = "REPRO_CHAOS"
CHAOS_SEED_ENV = "REPRO_CHAOS_SEED"
CHAOS_HANG_ENV = "REPRO_CHAOS_HANG_S"

#: Recognized fault kinds, in decision-priority order.
FAULT_KINDS = ("kill", "hang", "enospc")

_DEFAULT_HANG_SECONDS = 30.0


class ChaosSpecError(ValueError):
    """A malformed ``REPRO_CHAOS`` spec: always an error, never ignored.

    A typo'd spec silently injecting nothing would make a "chaos suite
    passed" claim vacuous, so the parent validates the spec loudly
    before any worker forks.
    """


def parse_chaos_spec(text):
    """Parse ``"kind:prob,kind:prob"`` into ``{kind: probability}``."""
    spec = {}
    for clause in text.split(","):
        clause = clause.strip()
        if not clause:
            continue
        kind, sep, prob_text = clause.partition(":")
        kind = kind.strip()
        if not sep:
            raise ChaosSpecError(
                f"bad chaos clause {clause!r}: expected kind:probability"
            )
        if kind not in FAULT_KINDS:
            raise ChaosSpecError(
                f"unknown chaos fault {kind!r}; choose from {', '.join(FAULT_KINDS)}"
            )
        try:
            probability = float(prob_text)
        except ValueError:
            raise ChaosSpecError(
                f"bad chaos probability {prob_text!r} in clause {clause!r}"
            ) from None
        if not 0.0 <= probability <= 1.0:
            raise ChaosSpecError(
                f"chaos probability {probability!r} outside [0, 1] in clause {clause!r}"
            )
        spec[kind] = probability
    if not spec:
        raise ChaosSpecError(f"empty chaos spec {text!r}")
    return spec


class ChaosMonkey:
    """Deterministic fault injection for shard-pool workers."""

    def __init__(self, spec, seed=0, hang_seconds=None):
        self.spec = dict(spec)
        self.seed = int(seed)
        self.hang_seconds = (
            _DEFAULT_HANG_SECONDS if hang_seconds is None else float(hang_seconds)
        )

    def _uniform(self, kind, phase, index, attempt):
        material = repr((self.seed, kind, phase, int(index), int(attempt)))
        digest = hashlib.sha256(material.encode("utf-8")).digest()
        return int.from_bytes(digest[:8], "big") / 2**64

    def decide(self, phase, index, attempt):
        """The fault (or None) for this ``(phase, task, attempt)``.

        Pure and stateless: the same arguments always yield the same
        decision, in any process, which keeps chaos runs replayable.
        """
        for kind in FAULT_KINDS:
            probability = self.spec.get(kind, 0.0)
            if probability and self._uniform(kind, phase, index, attempt) < probability:
                return kind
        return None

    def unleash(self, phase, index, attempt):
        """Inject the decided fault into the *current* process.

        ``kill`` SIGKILLs this process (a crash the parent sees as a
        broken pipe + signal exit code); ``hang`` sleeps
        ``hang_seconds`` and then continues normally (so a generous
        timeout merely observes a slow task, a tight one kills it);
        ``enospc`` raises :class:`OSError` with ``ENOSPC`` (an in-task
        exception, distinct from a crash).  Returns the decision.
        """
        kind = self.decide(phase, index, attempt)
        if kind is None:
            return None
        if kind == "kill":
            os.kill(os.getpid(), signal.SIGKILL)
        elif kind == "hang":
            time.sleep(self.hang_seconds)
        elif kind == "enospc":
            raise OSError(
                errno.ENOSPC,
                f"chaos: injected ENOSPC in {phase}[{index}] attempt {attempt}",
            )
        return kind


def chaos_from_env(environ=None):
    """The :class:`ChaosMonkey` configured by ``REPRO_CHAOS``, or None.

    Raises :class:`ChaosSpecError` on a malformed spec or seed — callers
    in the pool's *parent* process invoke this before forking precisely
    so a typo fails the run instead of silently disabling the chaos.
    """
    env = os.environ if environ is None else environ
    text = env.get(CHAOS_ENV)
    if not text or not text.strip():
        return None
    spec = parse_chaos_spec(text)
    seed_text = env.get(CHAOS_SEED_ENV, "0")
    try:
        seed = int(seed_text)
    except ValueError:
        raise ChaosSpecError(f"bad {CHAOS_SEED_ENV} {seed_text!r}") from None
    hang_text = env.get(CHAOS_HANG_ENV)
    if hang_text is None:
        hang_seconds = None
    else:
        try:
            hang_seconds = float(hang_text)
        except ValueError:
            raise ChaosSpecError(f"bad {CHAOS_HANG_ENV} {hang_text!r}") from None
    return ChaosMonkey(spec, seed=seed, hang_seconds=hang_seconds)
