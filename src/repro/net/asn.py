"""Synthetic autonomous-system registry and address plan.

The paper aggregates IPs by origin AS, routed block, country, and continent
(Tables 1, 5, 6; §6.1's regional remediation rates).  Since real BGP and
GeoIP feeds are proprietary, we generate a synthetic Internet: a population
of ASes of several kinds (hosting, telecom, residential, education,
enterprise), each holding one or more routed prefixes carved from per-
continent address pools.

A handful of *special* ASes mirror entities the paper names, so the local
vantage-point analyses have concrete anchors:

* ``REGIONAL-MI`` — the Merit-like regional education ISP (AS 237 in life).
* ``FRGP-CO`` / ``CSU-EDU`` — the Front Range GigaPop and the university
  inside it.
* ``HOSTING-FR-1`` — the OVH-like French hosting firm that tops the victim
  table, and ``CDN-MITIGATION`` — the CloudFlare-like mitigation provider.
* ``JP-NET-1..7`` — seven Japanese networks that host the mega amplifiers
  (§3.4 found all nine mega amplifiers in Japan).
"""

import enum
from dataclasses import dataclass, field

from repro.net.ipv4 import Prefix

__all__ = ["NetworkKind", "AutonomousSystem", "ASRegistry", "CONTINENTS"]


class NetworkKind(enum.Enum):
    """Coarse operational category of a network; drives management quality."""

    HOSTING = "hosting"
    TELECOM = "telecom"
    RESIDENTIAL = "residential"
    EDUCATION = "education"
    ENTERPRISE = "enterprise"


CONTINENTS = ("NA", "SA", "EU", "AS", "AF", "OC")

#: Countries used by the synthetic geo plan, keyed by continent.
_COUNTRIES = {
    "NA": ["US", "CA", "MX"],
    "SA": ["BR", "AR", "CL", "CO"],
    "EU": ["DE", "FR", "GB", "NL", "RO", "RU", "IT", "ES"],
    "AS": ["CN", "JP", "KR", "IN", "TW", "VN"],
    "AF": ["ZA", "EG", "NG", "KE"],
    "OC": ["AU", "NZ"],
}

#: Share of the synthetic Internet's ASes per continent (roughly mirrors
#: real registry weight; the exact values only shape aggregate statistics).
_CONTINENT_WEIGHTS = {
    "NA": 0.30,
    "EU": 0.30,
    "AS": 0.22,
    "SA": 0.09,
    "AF": 0.05,
    "OC": 0.04,
}

#: Mix of network kinds (hosting-heavy enough that victim concentration in
#: hosting ASes, §4.3.1, can emerge).
_KIND_WEIGHTS = {
    NetworkKind.TELECOM: 0.28,
    NetworkKind.RESIDENTIAL: 0.27,
    NetworkKind.HOSTING: 0.15,
    NetworkKind.ENTERPRISE: 0.22,
    NetworkKind.EDUCATION: 0.08,
}

#: /8 address pools per continent that the allocator carves prefixes from.
#: The 60.0.0.0/8 block is *not* listed: it is reserved for the darknet
#: telescope, and 203.0.0.0/8 is reserved for measurement infrastructure.
_ADDRESS_POOLS = {
    "NA": [
        Prefix.parse("12.0.0.0/8"),
        Prefix.parse("24.0.0.0/8"),
        Prefix.parse("64.0.0.0/8"),
        Prefix.parse("66.0.0.0/8"),
        Prefix.parse("68.0.0.0/8"),
        Prefix.parse("72.0.0.0/8"),
    ],
    "EU": [
        Prefix.parse("80.0.0.0/8"),
        Prefix.parse("82.0.0.0/8"),
        Prefix.parse("88.0.0.0/8"),
        Prefix.parse("145.0.0.0/8"),
        Prefix.parse("151.0.0.0/8"),
        Prefix.parse("193.0.0.0/8"),
    ],
    "AS": [
        Prefix.parse("110.0.0.0/8"),
        Prefix.parse("120.0.0.0/8"),
        Prefix.parse("175.0.0.0/8"),
        Prefix.parse("180.0.0.0/8"),
        Prefix.parse("220.0.0.0/8"),
    ],
    "SA": [
        Prefix.parse("177.0.0.0/8"),
        Prefix.parse("186.0.0.0/8"),
        Prefix.parse("190.0.0.0/8"),
    ],
    "AF": [
        Prefix.parse("41.0.0.0/8"),
        Prefix.parse("105.0.0.0/8"),
        Prefix.parse("154.0.0.0/8"),
    ],
    "OC": [
        Prefix.parse("1.0.0.0/8"),
        Prefix.parse("101.0.0.0/8"),
    ],
}

#: Reserved for the IPv4 darknet telescope (≈/8, 75% effective coverage).
DARKNET_POOL = Prefix.parse("60.0.0.0/8")
#: Reserved for measurement infrastructure (ONP prober, research scanners).
MEASUREMENT_POOL = Prefix.parse("203.0.0.0/8")

#: First octets the synthetic plan never hands out: the two reserved /8s
#: above plus the real-Internet special ranges (this-network, loopback,
#: RFC1918/CGNAT/link-local/TEST-NET carriers, multicast and beyond).
_EXCLUDED_FIRST_OCTETS = frozenset(
    {0, 10, 60, 100, 127, 169, 172, 192, 198, 203} | set(range(224, 256))
)

#: Shared overflow /8 pools, used by any continent once its own pool runs
#: dry.  Only large-scale builds (``scale`` ≥ ~0.02, tens of thousands of
#: ASes) ever reach them, so small worlds keep the tighter per-continent
#: geographic clustering *and* their exact historical address plan — the
#: allocator's behavior is unchanged until the moment it would previously
#: have raised "address pool exhausted".
_OVERFLOW_POOL = [
    Prefix(octet << 24, 8)
    for octet in range(1, 224)
    if octet not in _EXCLUDED_FIRST_OCTETS
    and not any(
        prefix.network >> 24 == octet
        for prefixes in _ADDRESS_POOLS.values()
        for prefix in prefixes
    )
]


@dataclass
class AutonomousSystem:
    """One synthetic AS: identity, category, location, and address space."""

    asn: int
    name: str
    kind: NetworkKind
    country: str
    continent: str
    prefixes: list = field(default_factory=list)

    @property
    def n_addresses(self):
        return sum(p.n_addresses for p in self.prefixes)

    def random_ip(self, rng):
        """A uniformly random address within this AS's space."""
        if not self.prefixes:
            raise ValueError(f"AS{self.asn} has no prefixes")
        sizes = [p.n_addresses for p in self.prefixes]
        total = sum(sizes)
        offset = int(rng.integers(0, total))
        for prefix, size in zip(self.prefixes, sizes):
            if offset < size:
                return prefix.nth(offset)
            offset -= size
        raise AssertionError("unreachable")


class _PoolAllocator:
    """Sequentially carves aligned prefixes out of per-continent /8 pools,
    spilling into a shared overflow pool when a continent runs dry."""

    _OVERFLOW_KEY = "*"

    def __init__(self, pools, overflow=()):
        # cursor per continent: (pool index, next free address)
        self._pools = {cont: list(prefixes) for cont, prefixes in pools.items()}
        self._cursor = {cont: (0, prefixes[0].network) for cont, prefixes in pools.items()}
        if overflow:
            self._pools[self._OVERFLOW_KEY] = list(overflow)
            self._cursor[self._OVERFLOW_KEY] = (0, overflow[0].network)

    def _try_allocate(self, key, length):
        pools = self._pools[key]
        index, next_free = self._cursor[key]
        size = 1 << (32 - length)
        while index < len(pools):
            pool = pools[index]
            # Align up to the prefix size.
            aligned = (next_free + size - 1) & ~(size - 1)
            if aligned + size - 1 <= pool.last:
                self._cursor[key] = (index, aligned + size)
                return Prefix(aligned, length)
            index += 1
            if index < len(pools):
                next_free = pools[index].network
        return None

    def allocate(self, continent, length):
        """The next free, aligned prefix of the given length."""
        prefix = self._try_allocate(continent, length)
        if prefix is None and self._OVERFLOW_KEY in self._pools:
            prefix = self._try_allocate(self._OVERFLOW_KEY, length)
        if prefix is None:
            raise RuntimeError(f"address pool exhausted for {continent}")
        return prefix


#: Typical prefix lengths allocated per network kind (larger nets for
#: telecoms/residential, small ones for enterprises).
_PREFIX_LENGTHS = {
    NetworkKind.TELECOM: (15, 18),
    NetworkKind.RESIDENTIAL: (15, 18),
    NetworkKind.HOSTING: (17, 20),
    NetworkKind.EDUCATION: (17, 19),
    NetworkKind.ENTERPRISE: (20, 23),
}


class ASRegistry:
    """The synthetic Internet's AS-level address plan.

    Parameters
    ----------
    rng:
        Stream the plan is drawn from.
    n_ases:
        Number of ordinary ASes to generate (special ASes are extra).
    """

    def __init__(self, rng, n_ases=4000):
        if n_ases < len(CONTINENTS):
            raise ValueError("need at least one AS per continent")
        self._by_asn = {}
        self._allocator = _PoolAllocator(_ADDRESS_POOLS, overflow=_OVERFLOW_POOL)
        self._next_asn = 1
        self.special = {}
        self._generate(rng, n_ases)
        self._create_specials(rng)

    # -- construction ---------------------------------------------------------

    def _generate(self, rng, n_ases):
        continents = list(_CONTINENT_WEIGHTS)
        cont_p = [_CONTINENT_WEIGHTS[c] for c in continents]
        kinds = list(_KIND_WEIGHTS)
        kind_p = [_KIND_WEIGHTS[k] for k in kinds]
        chosen_conts = rng.choice(len(continents), size=n_ases, p=cont_p)
        chosen_kinds = rng.choice(len(kinds), size=n_ases, p=kind_p)
        for i in range(n_ases):
            continent = continents[int(chosen_conts[i])]
            kind = kinds[int(chosen_kinds[i])]
            country = _COUNTRIES[continent][int(rng.integers(0, len(_COUNTRIES[continent])))]
            low, high = _PREFIX_LENGTHS[kind]
            n_prefixes = min(int(rng.geometric(0.6)), 4)
            prefixes = [
                self._allocator.allocate(continent, int(rng.integers(low, high + 1)))
                for _ in range(n_prefixes)
            ]
            self._add(
                AutonomousSystem(
                    asn=self._next_asn,
                    name=f"{kind.value.upper()}-{country}-{self._next_asn}",
                    kind=kind,
                    country=country,
                    continent=continent,
                    prefixes=prefixes,
                )
            )

    def _create_specials(self, rng):
        spec = [
            ("REGIONAL-MI", NetworkKind.EDUCATION, "US", "NA", [14]),
            ("FRGP-CO", NetworkKind.EDUCATION, "US", "NA", [15]),
            ("CSU-EDU", NetworkKind.EDUCATION, "US", "NA", [16]),
            ("HOSTING-FR-1", NetworkKind.HOSTING, "FR", "EU", [15, 16]),
            ("CDN-MITIGATION", NetworkKind.HOSTING, "US", "NA", [16]),
        ]
        spec += [(f"JP-NET-{i}", NetworkKind.TELECOM, "JP", "AS", [16]) for i in range(1, 8)]
        for name, kind, country, continent, lengths in spec:
            prefixes = [self._allocator.allocate(continent, ln) for ln in lengths]
            system = AutonomousSystem(
                asn=self._next_asn,
                name=name,
                kind=kind,
                country=country,
                continent=continent,
                prefixes=prefixes,
            )
            self._add(system)
            self.special[name] = system

    def _add(self, system):
        self._by_asn[system.asn] = system
        self._next_asn = max(self._next_asn, system.asn) + 1

    # -- queries --------------------------------------------------------------

    def __len__(self):
        return len(self._by_asn)

    def __iter__(self):
        return iter(self._by_asn.values())

    def get(self, asn):
        return self._by_asn.get(asn)

    def systems_of_kind(self, kind):
        return [s for s in self if s.kind == kind]

    def systems_in_continent(self, continent):
        return [s for s in self if s.continent == continent]

    def all_prefixes(self):
        """Iterate ``(Prefix, AutonomousSystem)`` over the whole plan."""
        for system in self:
            for prefix in system.prefixes:
                yield prefix, system
