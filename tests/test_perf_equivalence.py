"""Equivalence guards for the world-construction fast paths.

The optimizations (bulk pulse registration with lazy per-amplifier
sorting, NumPy liveness indexes, memoized sweep schedules, the
persistent world cache) must be invisible: the world remains a pure
function of ``(seed, WorldParams)``.  These tests pin that down three
ways — a byte-for-byte golden summary, unit-level ordering/equivalence
checks on the pulse registration path, and validation of the cache
envelope's staleness rejection.
"""

import pytest

from repro.attack.scanner import RESEARCH_SCANNERS
from repro.measurement import AmplifierStateManager
from repro.scenario import PaperWorld, WorldParams
from repro.scenario.cache import CacheMiss, load_world, save_world
from repro.sim.events import AttackPulse
from repro.util import RngStream, date_to_sim

GOLDEN_SEED = 7
GOLDEN_SCALE = 0.0005

#: Recorded from the serial (``--jobs 1``) columnar implementation.  Any
#: drift here means an "optimization" changed the simulated world.  The
#: counts moved once, deliberately, when the build went columnar/blockified
#: (v2.0.0): hosts and attacks are now drawn per block / per week from
#: derived child streams, a different (still deterministic) draw order.
GOLDEN_SUMMARY = """\
PaperWorld(seed=7, scale=0.0005): 4386 host records, 500 victims, 1011 attacks, 17551 scan sweeps
NTP traffic fraction: 9.00e-06 (Nov) -> 5.90e-02 (peak 2014-02-10; paper: 1e-5 -> 1e-2 on 2014-02-11)
Amplifier pool: 709 -> 61 (91% remediated; paper: 92%)
Unique amplifier IPs: 931 (first sample 76%; paper: ~60%)
BAF: monlist median 7.8x / Q3 15.5x / max 1.6e+09x; version 4.0/4.5/5.0 (paper: 4.3/15/1e9; 3.5/4.6/6.9)
Victims observed: 157 (~314,000 full-scale-equivalent; paper: 437K), 1.76e+11 packets, undersampling 4.7x (paper: 3.8x)
Window: 2014-01-10 .. 2014-04-18 (15 weekly samples)"""


@pytest.fixture(scope="module")
def golden_world():
    return PaperWorld.build(seed=GOLDEN_SEED, scale=GOLDEN_SCALE, quiet=True)


def test_golden_summary_unchanged(golden_world):
    assert golden_world.summary() == GOLDEN_SUMMARY


def test_golden_manifest_matches_seed7(golden_world):
    """The checked-in golden manifest IS the byte-identity claim: every
    artifact rendered from the seed-7 golden world must hash to what
    MANIFEST_golden.json records."""
    from pathlib import Path

    from repro.verify import artifact_checksums, load_manifest

    recorded = load_manifest(Path(__file__).resolve().parent.parent / "MANIFEST_golden.json")
    [entry] = [w for w in recorded["worlds"] if w["seed"] == GOLDEN_SEED]
    assert entry["scale"] == GOLDEN_SCALE and entry["faults"] == "clean"
    assert artifact_checksums(golden_world) == entry["checksums"]


def test_summary_excludes_timings_by_default(golden_world):
    """Timings are wall-clock (non-deterministic) and must stay out of the
    default summary so it remains a pure function of (seed, params)."""
    assert golden_world.build_timings  # recorded by build()
    assert "Build:" not in golden_world.summary()
    assert any("Build:" in line for line in golden_world.timing_summary())
    assert "Build:" in golden_world.summary(include_timings=True)


# -- bulk pulse registration ---------------------------------------------------


def _pulse(amplifier_ip, start, duration=10.0, victim_ip=0xBEEF):
    return AttackPulse(
        start=start,
        duration=duration,
        victim_ip=victim_ip,
        victim_port=80,
        amplifier_ip=amplifier_ip,
        query_rate=10.0,
        mode=7,
        spoofer_ttl=109,
    )


def make_manager():
    return AmplifierStateManager(RngStream(12, "mgr"), RESEARCH_SCANNERS)


def test_bulk_registration_sorted_by_end():
    """Pulses registered out of order, across several calls, come back from
    the lazy sort ordered by end time with an aligned end-time index."""
    manager = make_manager()
    t0 = date_to_sim(2014, 1, 10)
    # Same start, different durations => ordering by end != ordering by start.
    manager.register_pulses([_pulse(1, t0 + 500, duration=5.0)])
    manager.register_pulses(
        [
            _pulse(1, t0 + 100, duration=900.0),
            _pulse(1, t0 + 300, duration=1.0),
            _pulse(2, t0 + 50, duration=2.0),
        ]
    )
    manager.register_pulses([_pulse(1, t0 + 200, duration=1.0)])
    plist, ends = manager._sorted_pulses(1)
    assert [p.end for p in plist] == sorted(p.end for p in plist)
    assert ends == [p.end for p in plist]
    assert len(plist) == 4
    other, other_ends = manager._sorted_pulses(2)
    assert len(other) == 1 and other_ends == [other[0].end]
    assert manager._sorted_pulses(3) == (None, None)


def test_registration_after_sort_resorts():
    """A registration round after a sync dirties the list again."""
    manager = make_manager()
    t0 = date_to_sim(2014, 1, 10)
    manager.register_pulses([_pulse(1, t0 + 100, duration=50.0)])
    manager._sorted_pulses(1)
    manager.register_pulses([_pulse(1, t0, duration=1.0)])
    plist, ends = manager._sorted_pulses(1)
    assert ends == sorted(ends)
    assert plist[0].end == t0 + 1.0


def test_bulk_sync_matches_naive_per_attack_registration(host):
    """One bulk ``register_pulses`` call is observably identical to the old
    eager per-attack loop: same monitor tables after sync."""
    t0 = date_to_sim(2014, 1, 10)
    pulses = [
        _pulse(host.ip, t0 + 300, duration=60.0, victim_ip=0xA1),
        _pulse(host.ip, t0 + 100, duration=5.0, victim_ip=0xA2),
        _pulse(host.ip, t0 + 200, duration=700.0, victim_ip=0xA3),
        _pulse(host.ip, t0 + 400, duration=1.0, victim_ip=0xA1),
    ]
    t1 = t0 + 3600

    bulk = make_manager()
    bulk.register_pulses(pulses)
    bulk_entries = bulk.sync(host, t1).table.entries_mru(t1)

    naive = make_manager()
    for pulse in pulses:  # the old call shape: once per attack
        naive.register_pulses([pulse])
    naive_entries = naive.sync(host, t1).table.entries_mru(t1)

    assert bulk_entries == naive_entries
    assert any(e.addr == 0xA1 for e in bulk_entries)


@pytest.fixture(scope="module")
def host():
    from repro.net import ASRegistry, PolicyBlockList
    from repro.ntp.constants import IMPL_XNTPD
    from repro.population import PoolParams, build_host_pool

    rng = RngStream(11, "perf-test")
    registry = ASRegistry(rng.child("asn"), n_ases=300)
    pbl = PolicyBlockList(registry)
    pool = build_host_pool(rng.child("hosts"), registry, pbl, PoolParams(scale=0.0002))
    for candidate in pool.monlist_hosts:
        if (
            candidate.answers_implementation(IMPL_XNTPD)
            and candidate.restart_interval is None
            and candidate.birth == 0.0
            and not candidate.is_mega
        ):
            return candidate
    raise AssertionError("no suitable host in pool")


# -- liveness indexes ----------------------------------------------------------


def test_liveness_index_matches_naive_scan(golden_world):
    """The vectorized alive-set equals a literal re-scan of host records,
    in the same (registration) order."""
    from repro.population.amplifiers import _monlist_end, _version_end

    pool = golden_world.hosts
    for t in (date_to_sim(2014, 1, 10), date_to_sim(2014, 2, 1), date_to_sim(2014, 4, 18)):
        naive_monlist = [h for h in pool.monlist_hosts if h.birth <= t < _monlist_end(h)]
        naive_version = [h for h in pool.version_hosts if h.birth <= t < _version_end(h)]
        assert pool.monlist_alive(t) == naive_monlist
        assert pool.version_alive(t) == naive_version
        assert naive_monlist  # the probe date is inside the observed window


def test_victim_index_matches_naive_scan(golden_world):
    t = date_to_sim(2014, 2, 1)
    naive = [v for v in golden_world.victims.victims if v.active_at(t)]
    assert golden_world.victims.active_at(t) == naive
    assert naive


# -- persistent cache validation -----------------------------------------------


def test_cache_round_trip(tmp_path, golden_world):
    path = tmp_path / "world.pkl"
    save_world(golden_world, str(path))
    loaded = load_world(str(path), golden_world.params)
    assert loaded.summary() == golden_world.summary()


def test_cache_rejects_stale_params(tmp_path, golden_world):
    path = tmp_path / "world.pkl"
    save_world(golden_world, str(path))
    with pytest.raises(CacheMiss):
        load_world(str(path), WorldParams(seed=GOLDEN_SEED + 1, scale=GOLDEN_SCALE))
    with pytest.raises(CacheMiss):
        load_world(str(path), WorldParams(seed=GOLDEN_SEED, scale=GOLDEN_SCALE * 2))


def test_cache_rejects_missing_and_corrupt(tmp_path, golden_world):
    params = golden_world.params
    with pytest.raises(CacheMiss):
        load_world(str(tmp_path / "absent.pkl"), params)
    # Two flavors of garbage: bytes that fail as an opcode stream outright,
    # and bytes that decode a few opcodes first then blow up deeper inside
    # pickle (``b"garbage\n"`` raises ValueError, not UnpicklingError).
    for junk in (b"not a pickle", b"garbage\n"):
        corrupt = tmp_path / "corrupt.pkl"
        corrupt.write_bytes(junk)
        with pytest.raises(CacheMiss):
            load_world(str(corrupt), params)


def test_cache_rejects_other_package_version(tmp_path, golden_world, monkeypatch):
    """A cache written by a different repro version must miss, not load."""
    import repro.scenario.cache as cache_mod

    path = tmp_path / "world.pkl"
    monkeypatch.setattr(cache_mod, "_package_version", lambda: "0.0-other")
    save_world(golden_world, str(path))
    monkeypatch.undo()
    with pytest.raises(CacheMiss):
        load_world(str(path), golden_world.params)


def test_cache_rejects_pre_columnar_entry(tmp_path, golden_world, monkeypatch):
    """An entry written by 1.2.0 — the last pre-columnar release, whose
    world bytes differ — must miss; the 2.0.0 bump exists precisely to
    invalidate those caches."""
    import repro.scenario.cache as cache_mod

    path = tmp_path / "world.pkl"
    monkeypatch.setattr(cache_mod, "_package_version", lambda: "1.2.0")
    save_world(golden_world, str(path))
    monkeypatch.undo()
    assert cache_mod._package_version() == "2.0.0"
    with pytest.raises(CacheMiss):
        load_world(str(path), golden_world.params)


def test_cache_key_changes_with_params_and_version(monkeypatch):
    import repro.scenario.cache as cache_mod

    a = cache_mod.cache_key(WorldParams(seed=1, scale=0.001))
    b = cache_mod.cache_key(WorldParams(seed=2, scale=0.001))
    c = cache_mod.cache_key(WorldParams(seed=1, scale=0.002))
    assert len({a, b, c}) == 3
    monkeypatch.setattr(cache_mod, "_package_version", lambda: "0.0-other")
    assert cache_mod.cache_key(WorldParams(seed=1, scale=0.001)) != a
