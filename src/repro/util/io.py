"""Atomic file writes: temp file + ``os.replace``.

The idiom the world cache has always used (:mod:`repro.scenario.cache`),
extracted so every artifact writer — BENCH records, golden manifests,
conformance reports, rendered artifacts — gets the same guarantee: a
reader never observes a truncated file.  Either the old bytes are still
there or the new bytes are complete; an interrupted writer leaves at
worst an orphaned ``*.tmp.<pid>`` alongside, never a half-written
target.
"""

from __future__ import annotations

import json
import os

__all__ = ["atomic_write_bytes", "atomic_write_text", "atomic_write_json"]


def atomic_write_bytes(path, data):
    """Write ``data`` to ``path`` atomically; returns ``path``."""
    path = os.fspath(path)
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    tmp = f"{path}.tmp.{os.getpid()}"
    try:
        with open(tmp, "wb") as handle:
            handle.write(data)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return path


def atomic_write_text(path, text, encoding="utf-8"):
    """Write ``text`` to ``path`` atomically; returns ``path``."""
    return atomic_write_bytes(path, text.encode(encoding))


def atomic_write_json(path, record, indent=2, sort_keys=True):
    """Serialize ``record`` and write it atomically with a trailing
    newline.  Serialization happens fully *before* the first byte is
    written, so an unserializable record never touches the target."""
    text = json.dumps(record, indent=indent, sort_keys=sort_keys) + "\n"
    return atomic_write_text(path, text)
