"""Replay adapters: a built world's datasets as one sim-time record stream.

The batch pipeline reads each dataset whole; the streaming engine wants
the same material as a single merged sequence of timestamped records, the
shape a live tap would deliver.  This module is the bridge: it walks the
world's packed capture stores and compacted flow arrays *without*
materializing object corpora, and yields :class:`StreamRecord` values in
nondecreasing sim-time order.

Record kinds
------------
``sweep``
    One per weekly ONP monlist sample (``t`` = sample time); the payload
    carries the apparatus flags (outage, coverage, capture count) so a
    sweep window exists even when an outage produced zero captures.
``capture``
    One per mode-7 probe capture (``t`` = its sample's time); the payload
    is the :class:`~repro.measurement.onp.ProbeCapture` view, decoded by
    the engine capture-by-capture with the *same* fast/lenient parser the
    batch corpus uses — ParseStats counters are additive, so the stream's
    per-window stats equal the batch per-sample stats counter for counter.
``darknet``
    One per (day, scanner IP) membership in the telescope's compacted
    pair array (``t`` = the day's start).
``isp``
    One per (victim IP, hour, bytes) cell of the Merit site's compacted
    victim columns (``t`` = the hour's start) — the Fig 13 signal.
``arbor``
    One per daily traffic row (``t`` = the day's start); collector-outage
    days yield a payload of ``None`` (the explicit gap marker Fig 1
    renders, never an interpolated value).

Replay is a deliberate re-read of the measurement layer, so it does not
touch the parse-once ledger; the engine keeps its own ingest counters.
Every record carries a stable ``uid`` so duplicate-delivery tests can
inject repeats the engine must detect.
"""

from __future__ import annotations

from typing import NamedTuple

import numpy as np

from repro.util.simtime import DAY, HOUR, WEEK

__all__ = ["StreamRecord", "replay_records", "replay_plan"]

#: Deterministic tie-break for records sharing a timestamp: sweeps open
#: their window before captures fill it; flow kinds follow.
_KIND_RANK = {"sweep": 0, "capture": 1, "darknet": 2, "isp": 3, "arbor": 4}


class StreamRecord(NamedTuple):
    """One timestamped event of the merged stream.

    A ``NamedTuple`` rather than a dataclass: the replay constructs one
    per record in the serving hot path, and tuple construction is several
    times cheaper than a frozen dataclass ``__init__``.
    """

    t: float
    kind: str
    uid: tuple
    payload: object

    def sort_key(self, seq):
        return (self.t, _KIND_RANK.get(self.kind, 9), seq)


def _onp_records(world):
    for s_idx, sample in enumerate(world.onp.monlist_samples):
        n = len(sample)
        yield StreamRecord(
            t=float(sample.t),
            kind="sweep",
            uid=("sweep", s_idx),
            payload={
                "outage": bool(getattr(sample, "outage", False)),
                "coverage": float(getattr(sample, "coverage", 1.0)),
                "n_captures": n,
            },
        )
        packed = getattr(sample, "packed", None)
        if packed is not None:
            views = (packed.view(i) for i in range(len(packed)))
        else:
            views = iter(sample.captures)
        for c_idx, capture in enumerate(views):
            yield StreamRecord(
                t=float(sample.t),
                kind="capture",
                uid=("cap", s_idx, c_idx),
                payload=capture,
            )


def _darknet_records(world):
    darknet = world.darknet
    parts = []
    pairs = getattr(darknet, "_scanner_pairs", None)
    if pairs is not None and len(pairs):
        parts.append(np.asarray(pairs, dtype=np.int64))
    extra = [
        (int(day), int(ip))
        for day, ips in getattr(darknet, "_daily_scanners", {}).items()
        for ip in ips
    ]
    if extra:
        parts.append(np.array(extra, dtype=np.int64))
    if not parts:
        return
    merged = np.concatenate(parts) if len(parts) > 1 else parts[0]
    # Dedupe + lex-sort (day, ip) in one vectorized pass over a packed
    # 64-bit key; IPs are u32 and days small, so the packing is lossless.
    packed = (merged[:, 0] << np.int64(32)) | merged[:, 1]
    uniq = np.unique(packed)
    days = (uniq >> np.int64(32)).tolist()
    ips = (uniq & np.int64(0xFFFFFFFF)).tolist()
    for day, ip in zip(days, ips):
        yield StreamRecord(
            t=float(day * DAY), kind="darknet", uid=("dk", day, ip), payload=ip
        )


def _isp_records(world, site_name="merit"):
    site = world.isp.sites.get(site_name)
    if site is None:
        return
    rows = []
    cols = getattr(site, "_victim_cols", None)
    if cols is not None:
        ips, hours, volumes = cols
        rows.extend(
            zip(
                (int(v) for v in ips.tolist()),
                (int(h) for h in hours.tolist()),
                (float(v) for v in volumes.tolist()),
            )
        )
    for (ip, hour), volume in getattr(site, "victim_hourly", {}).items():
        rows.append((int(ip), int(hour), float(volume)))
    rows.sort(key=lambda r: (r[1], r[0]))
    for seq, (ip, hour, volume) in enumerate(rows):
        yield StreamRecord(
            t=float(site.start + hour * HOUR),
            kind="isp",
            uid=("isp", site_name, seq),
            payload=(ip, volume),
        )


def _arbor_records(world):
    # Measured days and fault-injected gap days interleave on the
    # timeline; emit them merged by day so this source is genuinely
    # time-ordered (the merge assumes it, and the watermark would
    # correctly refuse a gap record arriving after later measured days).
    arbor = world.arbor
    rows = [
        (daily.day, 0, (daily.total_bps, daily.ntp_bps, daily.dns_bps))
        for daily in arbor.daily
    ]
    rows.extend((day, 1, None) for day in getattr(arbor, "missing_days", ()) or ())
    rows.sort(key=lambda r: (r[0], r[1]))
    for day, _rank, payload in rows:
        yield StreamRecord(
            t=float(day * DAY), kind="arbor", uid=("ab", day), payload=payload
        )


def replay_records(world, site_name="merit"):
    """The world's records merged in nondecreasing sim-time order.

    Each source is already time-ordered and each kind carries a fixed
    tie-break rank, so one stable lexsort over ``(t, rank)`` reproduces
    exactly the order a ``heapq.merge`` on ``(t, rank, sequence)`` keys
    would — records of equal key keep their source order — at a fraction
    of the per-record cost.  Two replays of the same world produce
    identical streams.

    Returns a list: the sort has to materialize every record anyway, and
    handing the finished buffer back lets the serving path pay replay
    construction once up front instead of smearing generator resumption
    over its ingest hot loop.
    """
    records = []
    for source in (
        _onp_records(world),
        _darknet_records(world),
        _isp_records(world, site_name),
        _arbor_records(world),
    ):
        records.extend(source)
    n = len(records)
    if not n:
        return []
    t = np.fromiter((r.t for r in records), dtype=np.float64, count=n)
    rank = np.fromiter(
        (_KIND_RANK.get(r.kind, 9) for r in records), dtype=np.int64, count=n
    )
    return [records[i] for i in np.lexsort((rank, t)).tolist()]


def replay_plan(world, site_name="merit"):
    """The engine-configuration facts a replay implies.

    ``capture_origin`` aligns the weekly capture windows so each monlist
    sample lands in its own window; ``expected`` carries per-kind record
    counts for ingest-rate provenance (BENCH_serve.json) and end-of-run
    accounting checks.
    """
    samples = world.onp.monlist_samples
    origin = float(samples[0].t) if samples else 0.0
    site = world.isp.sites.get(site_name)
    counts = {
        "sweep": len(samples),
        "capture": sum(len(s) for s in samples),
        "darknet": sum(1 for _ in _darknet_records(world)),
        "isp": sum(1 for _ in _isp_records(world, site_name)),
        "arbor": sum(1 for _ in _arbor_records(world)),
    }
    return {
        "capture_origin": origin,
        "capture_width": float(WEEK),
        "isp_origin": float(site.start) if site is not None else 0.0,
        "site": site_name,
        "expected": counts,
        "expected_total": sum(counts.values()),
    }
