"""Networking substrate: addresses, framing, routing, AS registry, PBL, geo."""

from repro.net.ipv4 import (
    Prefix,
    format_ip,
    ip_in_prefix,
    parse_ip,
    slash24_of,
)
from repro.net.framing import (
    ETHERNET_OVERHEAD,
    MIN_ONWIRE_FRAME,
    UDP_IP_HEADERS,
    on_wire_bytes,
    udp_datagram_bytes,
)
from repro.net.trie import PrefixTrie
from repro.net.routing import RoutedBlockTable, aggregate_counts
from repro.net.asn import ASRegistry, AutonomousSystem, NetworkKind
from repro.net.geo import CONTINENT_OF, GeoView
from repro.net.pbl import PolicyBlockList

__all__ = [
    "Prefix",
    "format_ip",
    "ip_in_prefix",
    "parse_ip",
    "slash24_of",
    "ETHERNET_OVERHEAD",
    "MIN_ONWIRE_FRAME",
    "UDP_IP_HEADERS",
    "on_wire_bytes",
    "udp_datagram_bytes",
    "PrefixTrie",
    "RoutedBlockTable",
    "aggregate_counts",
    "ASRegistry",
    "AutonomousSystem",
    "NetworkKind",
    "CONTINENT_OF",
    "GeoView",
    "PolicyBlockList",
]
