"""Columnar record-batch representation of the parsed monlist corpus.

The analysis layer's dominant per-query cost used to be materializing every
capture into Python objects (``MonitorEntry`` tuples, ``ReconstructedTable``
dataclasses) before any aggregation ran.  This module decodes the corpus
*directly* from :class:`~repro.measurement.capture_store.PackedCaptures`
blobs into three flat structured arrays — one row per sample, per table,
per monitor entry — in the big-endian ``MON_V1_DTYPE`` style the world core
adopted in PR 6.  Aggregation kernels (victimology, concentration, churn,
versions, timeseries) then run as NumPy group-bys over these columns, and
object views are materialized lazily only where a renderer still asks for
them.

Fast path and fallback mirror :func:`~repro.analysis.monlist_parse
.reconstruct_table_fast` exactly: a single vectorized validation pass over
all packet headers classifies each capture, well-formed captures are
block-decoded straight out of the payload blob (entry *objects* are never
built), and any capture failing a check is re-parsed from scratch by
:func:`~repro.analysis.monlist_parse.reconstruct_table_lenient` — so
hostile corpora produce tables and :class:`ParseStats` identical to the
object pipeline, entry for entry and counter for counter.

The entries array is the memory ceiling at scale; :meth:`EventColumns
.maybe_spill` moves it through the same integrity-checked ``np.memmap``
spill machinery the capture store uses, and pickling re-inlines a spilled
payload so cache envelopes stay self-contained.
"""

from __future__ import annotations

import os

import numpy as np

from repro.measurement.capture_store import (
    map_spill,
    spill_threshold_bytes,
    sweep_stale_spills,
    write_spill,
)
from repro.net.framing import on_wire_bytes_array
from repro.ntp.constants import MODE7_HEADER_SIZE, MON_ENTRY_V1_SIZE, MON_ENTRY_V2_SIZE
from repro.ntp.wire import MonitorEntry, monitor_dtype_for
from repro.analysis.monlist_parse import (
    ParseStats,
    add_parse_calls,
    reconstruct_table_fast,
    reconstruct_table_lenient,
)

__all__ = [
    "ENTRY_DTYPE",
    "TABLE_DTYPE",
    "SAMPLE_DTYPE",
    "EventColumns",
    "ColumnarSample",
    "CaptureBatch",
    "columns_for_sample",
    "build_event_columns",
    "decode_capture_batch",
]

#: One row per recovered monitor entry: the v2 on-wire field set packed
#: into 32 bytes (v1 entries leave ``restr`` zero, exactly as the object
#: decoder does).  Offsets match the leading 32 bytes of ``MON_V2_DTYPE``.
ENTRY_DTYPE = np.dtype(
    {
        "names": ["last", "first", "restr", "count", "addr", "daddr", "flags", "port", "mode", "version"],
        "formats": [">u4", ">u4", ">u4", ">u4", ">u4", ">u4", ">u4", ">u2", "u1", "u1"],
        "offsets": [0, 4, 8, 12, 16, 20, 24, 28, 30, 31],
        "itemsize": 32,
    }
)

#: One row per reconstructed table (= per parsed capture), mirroring the
#: scalar fields of :class:`~repro.analysis.monlist_parse.ReconstructedTable`;
#: ``entry_start``/``entry_count`` index into the entries array.
TABLE_DTYPE = np.dtype(
    {
        "names": [
            "sample",
            "amplifier",
            "entry_size",
            "n_packets_once",
            "n_repeats",
            "payload_once",
            "wire_once",
            "entry_start",
            "entry_count",
        ],
        "formats": [">u4", ">u4", ">u2", ">u4", ">u4", ">u8", ">u8", ">u8", ">u4"],
    }
)

_STAT_FIELDS = tuple(ParseStats.__dataclass_fields__)

#: One row per weekly sample: the apparatus flags plus the full
#: :class:`ParseStats` counter block; ``table_start``/``table_count``
#: index into the tables array.
SAMPLE_DTYPE = np.dtype(
    {
        "names": ["t", "outage", "coverage", "table_start", "table_count", *_STAT_FIELDS],
        "formats": [">f8", "u1", ">f8", ">u8", ">u4"] + [">u8"] * len(_STAT_FIELDS),
    }
)


def _gather_ranges(starts, counts):
    """Indices covering ``range(starts[i], starts[i]+counts[i])`` for all i.

    The standard repeat/arange gather: turns per-segment (start, count)
    pairs into one flat index array without a Python loop.  The index
    array itself is the dominant memory traffic of the byte-level body
    gather, so it is built in int32 whenever the addressed range fits —
    a ~2x throughput win on narrow cores — with a lossless int64
    fallback for larger stores.
    """
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    heads = np.zeros(len(counts), dtype=np.int64)
    np.cumsum(counts[:-1], out=heads[1:])
    base = starts - heads
    lo = int(base.min())
    if -(2**31) < lo and int(base.max()) + total < 2**31:
        return np.repeat(base.astype(np.int32), counts) + np.arange(
            total, dtype=np.int32
        )
    return np.repeat(base, counts) + np.arange(total, dtype=np.int64)


def _segment_sum(values, offsets):
    """Per-segment sums of ``values`` under prefix-sum ``offsets``.

    The cumsum-difference form handles empty segments uniformly (where
    ``np.add.reduceat`` would not).
    """
    cs = np.zeros(len(values) + 1, dtype=np.int64)
    np.cumsum(values, out=cs[1:])
    return cs[offsets[1:]] - cs[offsets[:-1]]


class EventColumns:
    """The parsed corpus as three flat structured arrays.

    ``samples``/``tables``/``entries`` hold big-endian rows (dtypes above);
    native-endian int64/float64 conversions of hot columns are memoized via
    :meth:`entry_native`/:meth:`table_native` so each kernel pays the
    byteswap once.
    """

    __slots__ = ("samples", "tables", "entries", "_native", "_views", "_toe")

    def __init__(self, samples, tables, entries):
        self.samples = samples
        self.tables = tables
        self.entries = entries
        self._native = {}
        self._views = None
        self._toe = None

    # -- shape -------------------------------------------------------------

    @property
    def n_samples(self):
        return len(self.samples)

    @property
    def n_tables(self):
        return len(self.tables)

    @property
    def n_entries(self):
        return len(self.entries)

    # -- native-endian column memos ---------------------------------------

    def entry_native(self, name):
        """The named entries column as a native int64 array (memoized)."""
        key = ("e", name)
        col = self._native.get(key)
        if col is None:
            col = self.entries[name].astype(np.int64)
            self._native[key] = col
        return col

    def table_native(self, name):
        """The named tables column as a native int64 array (memoized)."""
        key = ("t", name)
        col = self._native.get(key)
        if col is None:
            col = self.tables[name].astype(np.int64)
            self._native[key] = col
        return col

    def table_of_entry(self):
        """Table index of each entry row (memoized ``np.repeat``)."""
        if self._toe is None:
            self._toe = np.repeat(
                np.arange(self.n_tables, dtype=np.int64), self.table_native("entry_count")
            )
        return self._toe

    # -- per-sample access -------------------------------------------------

    def sample_table_span(self, index):
        """``(lo, hi)`` slice of the tables array for sample ``index``."""
        lo = int(self.samples["table_start"][index])
        return lo, lo + int(self.samples["table_count"][index])

    def sample_entry_span(self, index):
        """``(lo, hi)`` slice of the entries array for sample ``index``."""
        t_lo, t_hi = self.sample_table_span(index)
        if t_hi == t_lo:
            return 0, 0
        starts = self.table_native("entry_start")
        counts = self.table_native("entry_count")
        return int(starts[t_lo]), int(starts[t_hi - 1] + counts[t_hi - 1])

    def stats_of(self, index):
        """The :class:`ParseStats` recorded for sample ``index``."""
        row = self.samples[index]
        return ParseStats(**{name: int(row[name]) for name in _STAT_FIELDS})

    def sample_views(self):
        """One :class:`ColumnarSample` per sample row (memoized).

        These are the drop-in replacements for ``ParsedSample`` objects:
        same attributes, lazily materialized tables and entries.
        """
        if self._views is None:
            self._views = [ColumnarSample(self, i) for i in range(self.n_samples)]
        return self._views

    # -- assembly ----------------------------------------------------------

    @classmethod
    def empty(cls):
        return cls(
            np.zeros(0, dtype=SAMPLE_DTYPE),
            np.zeros(0, dtype=TABLE_DTYPE),
            np.zeros(0, dtype=ENTRY_DTYPE),
        )

    @classmethod
    def concat(cls, parts):
        """Merge per-sample parts in order, rebasing the index columns."""
        parts = [p for p in parts if p is not None]
        if not parts:
            return cls.empty()
        s_parts, t_parts, e_parts = [], [], []
        s_base = t_base = e_base = 0
        for part in parts:
            s = part.samples.copy()
            s["table_start"] = s["table_start"].astype(np.int64) + t_base
            t = part.tables.copy()
            t["sample"] = t["sample"].astype(np.int64) + s_base
            t["entry_start"] = t["entry_start"].astype(np.int64) + e_base
            s_parts.append(s)
            t_parts.append(t)
            e_parts.append(np.asarray(part.entries))
            s_base += len(part.samples)
            t_base += len(part.tables)
            e_base += len(part.entries)
        # np.concatenate (NumPy >= 2) normalizes structured results to
        # native byte order; cast back so the batch keeps the canonical
        # big-endian layout its spill/fingerprint consumers assume.
        return cls(
            np.concatenate(s_parts).astype(SAMPLE_DTYPE, copy=False),
            np.concatenate(t_parts).astype(TABLE_DTYPE, copy=False),
            np.concatenate(e_parts).astype(ENTRY_DTYPE, copy=False),
        )

    # -- spill -------------------------------------------------------------

    def maybe_spill(self, threshold=None):
        """Move the entries blob into an unlinked memmap spill file past the
        threshold (``REPRO_SPILL_MB``); a no-op below it or if already
        mapped.  Returns ``self`` so it chains after :meth:`concat`."""
        base = self.entries.base
        if isinstance(base, np.memmap) or isinstance(self.entries, np.memmap):
            return self
        if self.entries.nbytes == 0:
            return self
        if threshold is None:
            threshold = spill_threshold_bytes()
        if self.entries.nbytes <= threshold:
            return self
        sweep_stale_spills()
        dtype = self.entries.dtype  # never assume: concat may have recast
        path = write_spill(self.entries.tobytes())
        try:
            mapped = map_spill(path)
        finally:
            os.unlink(path)
        self.entries = mapped.view(dtype)
        return self

    # -- pickling ----------------------------------------------------------
    # Cache envelopes and worker→parent transport must be self-contained:
    # a spilled entries array is re-inlined, and derived memos are dropped.

    def __getstate__(self):
        entries = self.entries
        if isinstance(entries.base, np.memmap) or isinstance(entries, np.memmap):
            entries = np.asarray(entries).copy()
        return {"samples": self.samples, "tables": self.tables, "entries": entries}

    def __setstate__(self, state):
        self.samples = state["samples"]
        self.tables = state["tables"]
        self.entries = state["entries"]
        self._native = {}
        self._views = None
        self._toe = None


class _TableView:
    """A :class:`ReconstructedTable`-shaped view of one tables row.

    Scalar fields read straight out of the columns; ``entries`` lazily
    materializes :class:`MonitorEntry` objects only when a renderer still
    needs them.
    """

    __slots__ = ("_cols", "_index", "_entries")

    def __init__(self, cols, index):
        self._cols = cols
        self._index = index
        self._entries = None

    @property
    def amplifier_ip(self):
        return int(self._cols.tables["amplifier"][self._index])

    @property
    def t(self):
        sample = int(self._cols.tables["sample"][self._index])
        return float(self._cols.samples["t"][sample])

    @property
    def entry_size(self):
        return int(self._cols.tables["entry_size"][self._index])

    @property
    def n_packets_once(self):
        return int(self._cols.tables["n_packets_once"][self._index])

    @property
    def n_repeats(self):
        return int(self._cols.tables["n_repeats"][self._index])

    @property
    def payload_bytes_once(self):
        return int(self._cols.tables["payload_once"][self._index])

    @property
    def on_wire_bytes_once(self):
        return int(self._cols.tables["wire_once"][self._index])

    @property
    def total_packets(self):
        return self.n_packets_once * self.n_repeats

    @property
    def total_on_wire_bytes(self):
        return self.on_wire_bytes_once * self.n_repeats

    @property
    def total_payload_bytes(self):
        return self.payload_bytes_once * self.n_repeats

    @property
    def is_mega(self):
        return self.n_repeats > 1

    def __len__(self):
        return int(self._cols.tables["entry_count"][self._index])

    @property
    def entries(self):
        if self._entries is None:
            cols, index = self._cols, self._index
            lo = int(cols.tables["entry_start"][index])
            seg = cols.entries[lo : lo + len(self)]
            cells = {name: seg[name].tolist() for name in ENTRY_DTYPE.names}
            new = MonitorEntry.__new__
            out = []
            append = out.append
            for k in range(len(seg)):
                entry = new(MonitorEntry)
                entry.__dict__.update(
                    last_int=cells["last"][k],
                    first_int=cells["first"][k],
                    count=cells["count"][k],
                    addr=cells["addr"][k],
                    daddr=cells["daddr"][k],
                    flags=cells["flags"][k],
                    port=cells["port"][k],
                    mode=cells["mode"][k],
                    version=cells["version"][k],
                    restr=cells["restr"][k],
                )
                append(entry)
            self._entries = tuple(out)
        return self._entries


class _TableList:
    """Lazy list of :class:`_TableView` for one sample's tables slice."""

    __slots__ = ("_cols", "_lo", "_hi", "_views")

    def __init__(self, cols, lo, hi):
        self._cols = cols
        self._lo = lo
        self._hi = hi
        self._views = None

    def __len__(self):
        return self._hi - self._lo

    def __bool__(self):
        return self._hi > self._lo

    def _materialized(self):
        if self._views is None:
            self._views = [_TableView(self._cols, i) for i in range(self._lo, self._hi)]
        return self._views

    def __getitem__(self, key):
        return self._materialized()[key]

    def __iter__(self):
        return iter(self._materialized())


class ColumnarSample:
    """A ``ParsedSample``-shaped view of one samples row."""

    __slots__ = ("_cols", "_index", "_stats", "_tables", "_ip_cache")

    def __init__(self, cols, index):
        self._cols = cols
        self._index = index
        self._stats = None
        self._tables = None
        self._ip_cache = None

    @property
    def columns(self):
        """The backing :class:`EventColumns` (shared across samples)."""
        return self._cols

    @property
    def sample_index(self):
        return self._index

    @property
    def t(self):
        return float(self._cols.samples["t"][self._index])

    @property
    def outage(self):
        return bool(self._cols.samples["outage"][self._index])

    @property
    def coverage(self):
        return float(self._cols.samples["coverage"][self._index])

    @property
    def stats(self):
        if self._stats is None:
            self._stats = self._cols.stats_of(self._index)
        return self._stats

    @property
    def tables(self):
        if self._tables is None:
            lo, hi = self._cols.sample_table_span(self._index)
            self._tables = _TableList(self._cols, lo, hi)
        return self._tables

    def __len__(self):
        return len(self.tables)

    def amplifier_ips(self):
        """The set of amplifier IPs with a parsed table (cached)."""
        if self._ip_cache is None:
            lo, hi = self._cols.sample_table_span(self._index)
            self._ip_cache = set(self._cols.table_native("amplifier")[lo:hi].tolist())
        return self._ip_cache


# ---------------------------------------------------------------------------
# Decoding: PackedCaptures blob -> columns


class CaptureBatch:
    """Columnar decode of a subset of one :class:`PackedCaptures`.

    One row per capture that yielded a table, in ``cap_idx`` order;
    ``entries`` is the flat per-entry array indexed by ``entry_start``
    (prefix sums) and ``entry_counts``.  Produced by
    :func:`decode_capture_batch`, consumed both by the full-corpus column
    builder and by the streaming engine's micro-batch flush.
    """

    __slots__ = (
        "cap_positions",
        "amplifier",
        "entry_size",
        "entry_counts",
        "entry_start",
        "entries",
        "n_packets_once",
        "n_repeats",
        "payload_once",
        "wire_once",
    )

    def __init__(self, **fields):
        for name in self.__slots__:
            setattr(self, name, fields[name])


def decode_capture_batch(packed, cap_idx, stats):
    """Vectorized fast/lenient decode of captures ``cap_idx`` of ``packed``.

    The vectorized header pass applies exactly the checks of
    :func:`reconstruct_table_fast` to every selected packet at once;
    captures that pass are block-copied into the entries array, captures
    that fail are handed — whole — to :func:`reconstruct_table_lenient`,
    so ``stats`` advances identically to the object pipeline (the
    counters are additive, hence order-free).  ``cap_idx`` may be any
    subset in any order — all gathers run over explicit index arrays with
    batch-local segment offsets — which is what lets the streaming engine
    decode whatever landed in one window without re-slicing the store.
    """
    cap_idx = np.asarray(cap_idx, dtype=np.int64)
    n_cap = len(cap_idx)
    pkt_counts_all = np.asarray(packed.pkt_counts, dtype=np.int64)
    pkt_offsets_all = np.asarray(packed.pkt_offsets, dtype=np.int64)
    lens_all = np.asarray(packed.pkt_lens, dtype=np.int64)
    byte_offsets = np.asarray(packed.byte_offsets, dtype=np.int64)
    payload = packed.payload
    n_bytes = int(byte_offsets[-1]) if len(byte_offsets) else 0

    counts = pkt_counts_all[cap_idx]
    # Batch-local prefix sums: segment i of the gathered packet arrays is
    # loc_off[i]:loc_off[i+1].
    loc_off = np.zeros(n_cap + 1, dtype=np.int64)
    np.cumsum(counts, out=loc_off[1:])
    n_pkt = int(loc_off[-1])
    # The repeat/arange gather, spelled so its intermediates are shared:
    # rep_head and within are exactly the terms the per-packet checks
    # below need again (fixed numpy-op overhead dominates at this batch
    # size, so every op fused away is measurable).
    rep_head = np.repeat(loc_off[:-1], counts)
    within = np.arange(n_pkt, dtype=np.int64) - rep_head
    pkt_idx = np.repeat(pkt_offsets_all[cap_idx], counts) + within
    lens = lens_all[pkt_idx]

    # An empty capture fails wholesale in the lenient path (nothing to
    # salvage); account the whole batch without visiting each one.
    empty = counts == 0
    n_empty = int(empty.sum())
    stats.captures_total += n_empty
    stats.captures_failed += n_empty

    if n_cap and n_pkt and n_bytes:
        starts = byte_offsets[:-1][pkt_idx]
        # Header gather, clipped so short packets read in-bounds garbage
        # that ok_len then masks out.
        hdr_idx = np.minimum(
            starts[:, None] + np.arange(MODE7_HEADER_SIZE, dtype=np.int64), n_bytes - 1
        )
        hdr = payload[hdr_idx].astype(np.int64)
        byte0 = hdr[:, 0]
        impl = hdr[:, 2]
        n_items = ((hdr[:, 4] << 8) | hdr[:, 5]) & 0x0FFF
        size_f = ((hdr[:, 6] << 8) | hdr[:, 7]) & 0x0FFF
        seq = hdr[:, 1] & 0x7F

        ok_len = lens >= MODE7_HEADER_SIZE
        resp_ok = (byte0 & 0x87) == 0x87

        first_idx = np.minimum(loc_off[:-1], n_pkt - 1)
        cap_impl = impl[first_idx]
        cap_seq0 = seq[first_idx]
        cap_item = size_f[first_idx]
        cap_item_valid = (cap_item == MON_ENTRY_V1_SIZE) | (cap_item == MON_ENTRY_V2_SIZE)

        # One stacked repeat broadcasts all three per-capture header
        # fields to packet granularity (vs. one repeat per field).
        rep = np.repeat(np.stack((cap_impl, cap_item, cap_seq0)), counts, axis=1)
        r_item = rep[1]
        pkt_ok = (
            ok_len
            & resp_ok
            & (impl == rep[0])
            & (size_f == r_item)
            & (seq == rep[2] + within)
            & (lens - MODE7_HEADER_SIZE == n_items * r_item)
        )
        # All four per-capture reductions share one stacked cumsum.
        stacked = np.stack(
            (pkt_ok.astype(np.int64), n_items, lens, on_wire_bytes_array(lens))
        )
        cs = np.zeros((4, n_pkt + 1), dtype=np.int64)
        np.cumsum(stacked, axis=1, out=cs[:, 1:])
        segs = cs[:, loc_off[1:]] - cs[:, loc_off[:-1]]
        ok_counts, items_per_cap, payload_per_cap, wire_per_cap = segs
        regular = (~empty) & cap_item_valid & (ok_counts == counts)
    else:
        cap_item = np.zeros(n_cap, dtype=np.int64)
        items_per_cap = np.zeros(n_cap, dtype=np.int64)
        payload_per_cap = np.zeros(n_cap, dtype=np.int64)
        wire_per_cap = np.zeros(n_cap, dtype=np.int64)
        regular = np.zeros(n_cap, dtype=bool)

    n_reg = int(regular.sum())
    stats.captures_total += n_reg
    stats.captures_ok += n_reg
    stats.entries_recovered += int(items_per_cap[regular].sum())

    # Irregular captures: the whole capture re-parses through the lenient
    # salvage path, exactly as reconstruct_table_fast bails per capture.
    fallback = {}
    for pos in np.flatnonzero(~empty & ~regular).tolist():
        table = reconstruct_table_lenient(packed.view(int(cap_idx[pos])), stats)
        if table is not None:
            fallback[pos] = table

    has_table = regular.copy()
    for pos in fallback:
        has_table[pos] = True
    tbl_caps = np.flatnonzero(has_table)
    n_tbl = len(tbl_caps)

    tbl_pos = np.full(n_cap, -1, dtype=np.int64)
    tbl_pos[tbl_caps] = np.arange(n_tbl, dtype=np.int64)
    entry_counts = items_per_cap[tbl_caps].copy()
    entry_size_per = cap_item[tbl_caps].copy()
    for pos, table in fallback.items():
        row = int(tbl_pos[pos])
        entry_counts[row] = len(table.entries)
        entry_size_per[row] = table.entry_size
    entry_start = np.zeros(n_tbl + 1, dtype=np.int64)
    np.cumsum(entry_counts, out=entry_start[1:])
    n_entries = int(entry_start[-1])

    entries = np.zeros(n_entries, dtype=ENTRY_DTYPE)
    if n_entries:
        # Regular captures: one grouped body gather + structured view per
        # item size.  Body bytes of a regular capture are exactly
        # n_items * item_size, so the concatenated blob reinterprets
        # losslessly.
        for item_size in (MON_ENTRY_V1_SIZE, MON_ENTRY_V2_SIZE):
            sel_caps = np.flatnonzero(regular & (cap_item == item_size) & (items_per_cap > 0))
            if not len(sel_caps):
                continue
            wire_dtype = monitor_dtype_for(item_size)
            sub_pkt = _gather_ranges(loc_off[sel_caps], counts[sel_caps])
            body_starts = byte_offsets[:-1][pkt_idx[sub_pkt]] + MODE7_HEADER_SIZE
            body_lens = lens[sub_pkt] - MODE7_HEADER_SIZE
            blob = np.ascontiguousarray(payload[_gather_ranges(body_starts, body_lens)])
            src = blob.view(wire_dtype)
            if len(sel_caps) == n_tbl and len(src) == n_entries:
                # Every table is regular with this item size, so the
                # destination rows are exactly 0..n_entries in order —
                # field-copy by slice instead of a fancy scatter.
                for name in wire_dtype.names:
                    entries[name][:] = src[name]
            else:
                dest = _gather_ranges(entry_start[:-1][tbl_pos[sel_caps]], items_per_cap[sel_caps])
                for name in wire_dtype.names:
                    entries[name][dest] = src[name]
        # Fallback tables: convert the salvaged entry objects row by row
        # (rare by construction — only fault-irregular captures land here).
        for pos, table in fallback.items():
            lo = int(entry_start[int(tbl_pos[pos])])
            seg = entries[lo : lo + len(table.entries)]
            for j, e in enumerate(table.entries):
                seg[j] = (
                    e.last_int,
                    e.first_int,
                    e.restr,
                    e.count,
                    e.addr,
                    e.daddr,
                    e.flags,
                    e.port,
                    e.mode,
                    e.version,
                )

    sel = cap_idx[tbl_caps]
    return CaptureBatch(
        cap_positions=tbl_caps,
        amplifier=np.asarray(packed.target_ips, dtype=np.int64)[sel],
        entry_size=entry_size_per,
        entry_counts=entry_counts,
        entry_start=entry_start,
        entries=entries,
        n_packets_once=counts[tbl_caps],
        n_repeats=np.asarray(packed.n_repeats, dtype=np.int64)[sel],
        payload_once=payload_per_cap[tbl_caps],
        wire_once=wire_per_cap[tbl_caps],
    )


def _columns_for_packed_sample(sample, packed):
    """Decode one packed sample's captures straight into column rows."""
    stats = ParseStats()
    batch = decode_capture_batch(packed, np.arange(len(packed), dtype=np.int64), stats)
    n_tbl = len(batch.amplifier)

    tables = np.zeros(n_tbl, dtype=TABLE_DTYPE)
    if n_tbl:
        tables["amplifier"] = batch.amplifier
        tables["entry_size"] = batch.entry_size
        tables["n_packets_once"] = batch.n_packets_once
        tables["n_repeats"] = batch.n_repeats
        tables["payload_once"] = batch.payload_once
        tables["wire_once"] = batch.wire_once
        tables["entry_start"] = batch.entry_start[:-1]
        tables["entry_count"] = batch.entry_counts

    samples_arr = _sample_row(sample, stats, n_tbl)
    return EventColumns(samples_arr, tables, batch.entries)


def _sample_row(sample, stats, n_tables):
    row = np.zeros(1, dtype=SAMPLE_DTYPE)
    row["t"] = sample.t
    row["outage"] = 1 if getattr(sample, "outage", False) else 0
    row["coverage"] = getattr(sample, "coverage", 1.0)
    row["table_start"] = 0
    row["table_count"] = n_tables
    for name in _STAT_FIELDS:
        row[name] = getattr(stats, name)
    return row


def _columns_for_object_sample(sample):
    """Column conversion for samples without a packed store.

    Runs the per-capture object pipeline (fast path with lenient
    fallback, same as :func:`parse_sample`) and converts the resulting
    tables row by row.  Only synthetic test samples land here; real ONP
    samples always carry a :class:`PackedCaptures`.
    """
    stats = ParseStats()
    tables_obj = []
    for capture in sample.captures:
        table = reconstruct_table_fast(capture, stats)
        if table is not None:
            tables_obj.append(table)

    n_tbl = len(tables_obj)
    tables = np.zeros(n_tbl, dtype=TABLE_DTYPE)
    n_entries = sum(len(t.entries) for t in tables_obj)
    entries = np.zeros(n_entries, dtype=ENTRY_DTYPE)
    base = 0
    for pos, table in enumerate(tables_obj):
        tables[pos] = (
            0,
            table.amplifier_ip,
            table.entry_size,
            table.n_packets_once,
            table.n_repeats,
            table.payload_bytes_once,
            table.on_wire_bytes_once,
            base,
            len(table.entries),
        )
        seg = entries[base : base + len(table.entries)]
        for j, e in enumerate(table.entries):
            seg[j] = (
                e.last_int,
                e.first_int,
                e.restr,
                e.count,
                e.addr,
                e.daddr,
                e.flags,
                e.port,
                e.mode,
                e.version,
            )
        base += len(table.entries)

    samples_arr = _sample_row(sample, stats, n_tbl)
    return EventColumns(samples_arr, tables, entries)


def columns_for_sample(sample):
    """Decode one ONP sample into a single-sample :class:`EventColumns`.

    Advances the parse-once ledger by one, exactly as
    :func:`~repro.analysis.monlist_parse.parse_sample` does — the
    columnar path replaces it one-for-one.
    """
    add_parse_calls(1)
    packed = getattr(sample, "packed", None)
    if packed is not None:
        return _columns_for_packed_sample(sample, packed)
    return _columns_for_object_sample(sample)


def _columns_task(samples, index):
    """One shard-pool task: decode sample ``index`` of the shared list."""
    return columns_for_sample(samples[index])


def build_event_columns(samples, jobs=1, runner=None):
    """Decode a corpus of ONP samples into one :class:`EventColumns`.

    Mirrors :func:`~repro.analysis.monlist_parse.parse_corpus`: per-sample
    decodes run through the supervised shard pool in input order (results
    identical at any ``--jobs``), pooled workers' parse-call increments
    are mirrored into the parent ledger, and the merged entries blob
    spills past ``REPRO_SPILL_MB``.
    """
    from repro.util.pool import ShardRunner

    samples = list(samples)
    if runner is None:
        runner = ShardRunner(jobs)
    parts = runner.map(
        "parse", _columns_task, samples, len(samples), min_tasks=2 * max(1, runner.jobs)
    )
    stat = runner.stats["parse"]
    pooled = sum(1 for source in stat["task_source"] if source == "pooled")
    if pooled:
        add_parse_calls(pooled)
    return EventColumns.concat(parts).maybe_spill()
