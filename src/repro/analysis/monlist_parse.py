"""Reconstructing monlist tables from captured response packets (§4.2).

This is the ntpdc-equivalent protocol logic the paper applied to 5M
amplifier-week response sets: parse each mode-7 packet, validate it against
the request, and reassemble the multi-packet table in sequence order.  When
an amplifier sent repeated copies of the table (a mega amplifier), the
*final* table received is used, as in the paper — our captures store
exactly that rendition plus the repeat count.
"""

import struct
from dataclasses import dataclass, field

from repro.net.framing import (
    ETHERNET_FCS,
    ETHERNET_HEADER,
    ETHERNET_OVERHEAD,
    MIN_FRAME,
    MIN_ONWIRE_FRAME,
    UDP_IP_HEADERS,
    on_wire_bytes,
)
from repro.ntp.constants import MODE7_HEADER_SIZE, MON_ENTRY_V1_SIZE, MON_ENTRY_V2_SIZE
from repro.ntp.wire import (
    WireError,
    decode_mode7,
    decode_mode7_stream,
    decode_monitor_entries_block,
)

__all__ = [
    "ReconstructedTable",
    "reconstruct_table",
    "reconstruct_table_fast",
    "reconstruct_table_lenient",
    "ParseStats",
    "ParsedSample",
    "parse_sample",
    "parse_corpus",
    "parse_call_count",
    "add_parse_calls",
]

#: Process-wide count of :func:`parse_sample` calls.  Corpus decoding is
#: the analysis layer's dominant cost; the counter lets tests assert the
#: parse-once contract ("one CLI invocation decodes the corpus exactly
#: once") instead of trusting the plumbing.
_PARSE_CALLS = 0


def parse_call_count():
    """How many times :func:`parse_sample` ran in this process."""
    return _PARSE_CALLS


def add_parse_calls(n):
    """Fold ``n`` parses performed elsewhere into this process's ledger.

    Pool workers increment their own forked copy of the counter; whoever
    collects their results calls this so the parse-once contract stays
    testable from the parent at any ``--jobs`` value.
    """
    global _PARSE_CALLS
    if n < 0:
        raise ValueError("parse-call delta must be non-negative")
    _PARSE_CALLS += int(n)


@dataclass
class ReconstructedTable:
    """One amplifier's parsed monlist reply for one sample."""

    amplifier_ip: int
    t: float
    entries: tuple
    entry_size: int
    n_packets_once: int
    n_repeats: int
    payload_bytes_once: int
    on_wire_bytes_once: int

    @property
    def total_packets(self):
        return self.n_packets_once * self.n_repeats

    @property
    def total_on_wire_bytes(self):
        return self.on_wire_bytes_once * self.n_repeats

    @property
    def total_payload_bytes(self):
        return self.payload_bytes_once * self.n_repeats

    @property
    def is_mega(self):
        return self.n_repeats > 1

    def __len__(self):
        return len(self.entries)


def reconstruct_table(capture):
    """Parse one :class:`~repro.measurement.onp.ProbeCapture` into a table.

    Packets are validated (response bit, consistent implementation/request
    code, item size) and entries concatenated in sequence order.  Raises
    :class:`~repro.ntp.wire.WireError` on malformed input.
    """
    decoded = [decode_mode7(p) for p in capture.packets]
    if not decoded:
        raise WireError("empty capture")
    first = decoded[0]
    for pkt in decoded:
        if not pkt.response:
            raise WireError("capture contains a non-response packet")
        if pkt.implementation != first.implementation:
            raise WireError("mixed implementations in one capture")
        if pkt.item_size not in (0, MON_ENTRY_V1_SIZE, MON_ENTRY_V2_SIZE):
            raise WireError(f"unexpected item size {pkt.item_size}")
    ordered = sorted(decoded, key=lambda p: p.sequence)
    entries = []
    for pkt in ordered:
        entries.extend(pkt.items)
    payload = sum(len(p) for p in capture.packets)
    wire = sum(on_wire_bytes(len(p)) for p in capture.packets)
    return ReconstructedTable(
        amplifier_ip=capture.target_ip,
        t=capture.t,
        entries=tuple(entries),
        entry_size=first.item_size,
        n_packets_once=len(capture.packets),
        n_repeats=capture.n_repeats,
        payload_bytes_once=payload,
        on_wire_bytes_once=wire,
    )


@dataclass
class ParseStats:
    """Per-sample accounting of everything the parse layer discarded.

    A real pipeline loses data in ways a bare ``continue`` hides; every
    discard here is counted so a systematically unparseable amplifier is
    visible in the quality report instead of silently vanishing from the
    figures.
    """

    captures_total: int = 0
    #: Captures reconstructed with nothing discarded.
    captures_ok: int = 0
    #: Captures reconstructed only by dropping some packets/entries.
    captures_salvaged: int = 0
    #: Captures with no salvageable response packets at all.
    captures_failed: int = 0
    #: Packets that did not decode as mode 7 (corruption).
    packets_undecodable: int = 0
    #: Decoded packets rejected by validation (non-response, mixed
    #: implementation, unsupported item size).
    packets_invalid: int = 0
    #: Repeated fragments (same sequence number; first copy kept).
    packets_duplicate: int = 0
    #: Fragments after a sequence gap, unusable for in-order reassembly.
    packets_out_of_sequence: int = 0
    #: Monitor entries recovered into tables.
    entries_recovered: int = 0
    #: Monitor entries discarded along with their rejected fragments.
    entries_discarded: int = 0

    @property
    def captures_parsed(self):
        return self.captures_ok + self.captures_salvaged

    @property
    def degraded(self):
        """True when anything at all was discarded."""
        return (
            self.captures_salvaged
            or self.captures_failed
            or self.packets_undecodable
            or self.packets_invalid
            or self.packets_duplicate
            or self.packets_out_of_sequence
            or self.entries_discarded
        ) != 0

    def merge(self, other):
        """Accumulate another :class:`ParseStats` into this one."""
        for stat_field in self.__dataclass_fields__:
            setattr(self, stat_field, getattr(self, stat_field) + getattr(other, stat_field))
        return self

    def as_dict(self):
        return {f: getattr(self, f) for f in self.__dataclass_fields__}


def reconstruct_table_lenient(capture, stats=None):
    """Best-effort reconstruction of one capture.

    Salvages what the strict path would reject wholesale: undecodable and
    invalid packets are dropped, duplicate fragments are deduplicated
    (first copy wins), and the longest in-order sequence run from the
    lowest sequence number is reassembled — fragments after a sequence gap
    cannot be placed and are discarded.  Every discard is counted in
    ``stats``.  Returns None when nothing is salvageable.

    On a well-formed capture this is byte-identical to
    :func:`reconstruct_table` (same entries, same sizes) with zero
    discards — the clean world does not change.
    """
    if stats is None:
        stats = ParseStats()
    stats.captures_total += 1
    decoded, n_undecodable = decode_mode7_stream(capture.packets)
    stats.packets_undecodable += n_undecodable
    degraded = n_undecodable > 0

    valid = []
    expected_impl = None
    for pkt in decoded:
        if not pkt.response or pkt.item_size not in (0, MON_ENTRY_V1_SIZE, MON_ENTRY_V2_SIZE):
            stats.packets_invalid += 1
            stats.entries_discarded += len(pkt.items)
            degraded = True
            continue
        if expected_impl is None:
            expected_impl = pkt.implementation
        elif pkt.implementation != expected_impl:
            stats.packets_invalid += 1
            stats.entries_discarded += len(pkt.items)
            degraded = True
            continue
        valid.append(pkt)

    by_sequence = {}
    for pkt in valid:  # arrival order; first copy of a sequence wins
        if pkt.sequence in by_sequence:
            stats.packets_duplicate += 1
            degraded = True
            continue
        by_sequence[pkt.sequence] = pkt
    if not by_sequence:
        stats.captures_failed += 1
        return None

    # Reassemble the contiguous run from the lowest sequence; a fragment
    # beyond a gap has no defensible position in the table and is dropped
    # (never interpolated, never fabricated).
    sequences = sorted(by_sequence)
    run = [sequences[0]]
    for seq in sequences[1:]:
        if seq == run[-1] + 1:
            run.append(seq)
        else:
            break
    for seq in sequences[len(run):]:
        stats.packets_out_of_sequence += 1
        stats.entries_discarded += len(by_sequence[seq].items)
        degraded = True

    entries = []
    for seq in run:
        entries.extend(by_sequence[seq].items)
    stats.entries_recovered += len(entries)
    if degraded:
        stats.captures_salvaged += 1
    else:
        stats.captures_ok += 1
    payload = sum(len(p) for p in capture.packets)
    wire = sum(on_wire_bytes(len(p)) for p in capture.packets)
    return ReconstructedTable(
        amplifier_ip=capture.target_ip,
        t=capture.t,
        entries=tuple(entries),
        entry_size=by_sequence[run[0]].item_size,
        n_packets_once=len(capture.packets),
        n_repeats=capture.n_repeats,
        payload_bytes_once=payload,
        on_wire_bytes_once=wire,
    )


_MODE7_HEADER = struct.Struct(">BBBBHH")

# on_wire_bytes() in affine form, constants spelled out from the framing
# model: max(64, 14 + 28 + L + 4) + 20.  Payloads below the threshold pad
# to the 84-byte minimum; above it each payload byte costs one wire byte
# plus the fixed 66 bytes of headers, FCS, preamble, and IPG.
_OW_FIXED = ETHERNET_HEADER + UDP_IP_HEADERS + ETHERNET_FCS + ETHERNET_OVERHEAD
_OW_PAD_THRESHOLD = MIN_FRAME - (ETHERNET_HEADER + UDP_IP_HEADERS + ETHERNET_FCS)

assert on_wire_bytes(_OW_PAD_THRESHOLD - 1) == MIN_ONWIRE_FRAME
assert on_wire_bytes(_OW_PAD_THRESHOLD) == _OW_PAD_THRESHOLD + _OW_FIXED


def reconstruct_table_fast(capture, stats=None):
    """Reconstruct one capture via the vectorized fast path.

    A single validation pass over the packet headers checks everything the
    lenient path would have to account for: response+mode-7 bits, one
    implementation, one supported item size, contiguous ascending sequence
    numbers, and a data area exactly ``n_items * item_size`` long.  When
    all of it holds — every capture of a fault-free corpus — the bodies
    are concatenated and block-decoded in one :func:`np.frombuffer` pass,
    and ``stats`` advances exactly as the lenient path would on the same
    capture (one ok capture, all entries recovered, nothing discarded).

    The moment any packet fails a check, the *whole* capture is re-parsed
    by :func:`reconstruct_table_lenient`, whose salvage bookkeeping then
    runs from scratch — fault-injected corpora therefore produce tables
    and :class:`ParseStats` byte-identical to the lenient path alone.
    """
    packets = capture.packets
    if not packets:
        return reconstruct_table_lenient(capture, stats)
    unpack = _MODE7_HEADER.unpack_from
    item_size = 0
    impl = -1
    seq0 = 0
    total_items = 0
    payload = 0
    wire = 0
    for index, packet in enumerate(packets):
        length = len(packet)
        if length < MODE7_HEADER_SIZE:
            return reconstruct_table_lenient(capture, stats)
        byte0, byte1, pkt_impl, _req, err_items, size_field = unpack(packet)
        # 0x87 = response bit | mode 7: anything else is either a
        # non-response or not private-mode at all.
        if byte0 & 0x87 != 0x87:
            return reconstruct_table_lenient(capture, stats)
        n_items = err_items & 0x0FFF
        if index == 0:
            impl = pkt_impl
            seq0 = byte1 & 0x7F
            item_size = size_field & 0x0FFF
            if item_size not in (MON_ENTRY_V1_SIZE, MON_ENTRY_V2_SIZE):
                return reconstruct_table_lenient(capture, stats)
        elif (
            pkt_impl != impl
            or size_field & 0x0FFF != item_size
            or byte1 & 0x7F != seq0 + index
        ):
            return reconstruct_table_lenient(capture, stats)
        if length - MODE7_HEADER_SIZE != n_items * item_size:
            return reconstruct_table_lenient(capture, stats)
        total_items += n_items
        payload += length
        wire += MIN_ONWIRE_FRAME if length < _OW_PAD_THRESHOLD else length + _OW_FIXED
    if stats is None:
        stats = ParseStats()
    stats.captures_total += 1
    stats.captures_ok += 1
    stats.entries_recovered += total_items
    if len(packets) == 1:
        data = packets[0][MODE7_HEADER_SIZE:]
    else:
        data = b"".join(p[MODE7_HEADER_SIZE:] for p in packets)
    entries = decode_monitor_entries_block(data, item_size, total_items)
    return ReconstructedTable(
        amplifier_ip=capture.target_ip,
        t=capture.t,
        entries=tuple(entries),
        entry_size=item_size,
        n_packets_once=len(packets),
        n_repeats=capture.n_repeats,
        payload_bytes_once=payload,
        on_wire_bytes_once=wire,
    )


@dataclass
class ParsedSample:
    """All reconstructed tables of one weekly ONP monlist sample."""

    t: float
    tables: list = field(default_factory=list)
    #: What the parse layer discarded for this sample.
    stats: ParseStats = field(default_factory=ParseStats)
    #: Mirrors of the apparatus-level sample flags (see
    #: :class:`~repro.measurement.onp.OnpSample`).
    outage: bool = False
    coverage: float = 1.0
    #: Length-guarded memo for :meth:`amplifier_ips` (tables are
    #: append-only during the parse, fixed afterwards).
    _ip_cache: tuple = field(default=None, repr=False, compare=False)

    def __len__(self):
        return len(self.tables)

    def amplifier_ips(self):
        """The set of amplifier IPs with a parsed table (cached).

        The churn/remediation analyses each walk every sample's IP set;
        the cache makes those walks reuse one set per sample.  Callers
        must not mutate the returned set.
        """
        cache = self._ip_cache
        n = len(self.tables)
        if cache is None or cache[0] != n:
            cache = (n, {table.amplifier_ip for table in self.tables})
            self._ip_cache = cache
        return cache[1]


def parse_sample(sample):
    """Reconstruct every capture of an ONP sample, best-effort.

    Unparseable material is salvaged where possible and *accounted* in
    ``parsed.stats`` — never silently skipped, so a systematically
    unparseable amplifier shows up in the quality report rather than
    vanishing from every downstream figure without a trace.
    """
    global _PARSE_CALLS
    _PARSE_CALLS += 1
    parsed = ParsedSample(
        t=sample.t,
        outage=getattr(sample, "outage", False),
        coverage=getattr(sample, "coverage", 1.0),
    )
    for capture in sample.captures:
        table = reconstruct_table_fast(capture, parsed.stats)
        if table is not None:
            parsed.tables.append(table)
    return parsed


def _parse_task(samples, index):
    """One shard-pool task: parse sample ``index`` of the shared list."""
    return parse_sample(samples[index])


def parse_corpus(samples, jobs=1, runner=None):
    """Parse a list of ONP samples, optionally across processes.

    Results are returned in input order regardless of worker count, so the
    output is identical at any ``jobs`` value (each sample's parse is a
    pure function of its captures).  Pool engagement is decided by the
    shared :func:`repro.util.pool.fork_pool_gate` (fork start method,
    enough tasks to amortize result pickling, more than one usable CPU) —
    otherwise the serial path runs.  The pooled path runs under the
    supervised :class:`~repro.util.pool.ShardRunner` (pass ``runner`` to
    configure timeouts/retries and to collect the "parse" shard stats),
    so a crashed or hung parse worker retries and finally falls back to
    an in-process parse instead of losing the corpus.

    The parent's parse-call counter advances by one per sample either
    way, preserving the parse-once accounting: serial and fallback
    parses increment it directly, and pooled tasks — whose workers
    incremented their own forked counters — are mirrored into this
    process's ledger afterward.
    """
    from repro.util.pool import ShardRunner

    samples = list(samples)
    if runner is None:
        runner = ShardRunner(jobs)
    parsed = runner.map(
        "parse", _parse_task, samples, len(samples), min_tasks=2 * max(1, runner.jobs)
    )
    stat = runner.stats["parse"]
    pooled = sum(1 for source in stat["task_source"] if source == "pooled")
    if pooled:
        add_parse_calls(pooled)
    return parsed
