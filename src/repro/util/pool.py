"""Shared fork-pool plumbing for the build, parse, and verify pools.

Three subsystems shard work across processes — the world build
(:mod:`repro.scenario.world`), the corpus parser
(:mod:`repro.analysis.monlist_parse`), and the conformance matrix
(:mod:`repro.verify.runner`).  They all need the same three decisions
made the same way:

* how many CPUs are actually usable (cgroup/affinity aware, not just
  ``os.cpu_count()``),
* whether a pool is worth forking at all (a ``--jobs 8`` request on a
  one-CPU container must take the serial path rather than silently pay
  fork overhead for nothing), and
* how to ship a heavy context to workers without pickling it (set a
  module global before the pool forks; the child inherits it
  copy-on-write and only the small task index crosses the pipe).

This module is the single home for those decisions, plus the
**supervision layer** that makes pooled execution survive hostile
conditions.  The pool owns its worker processes directly (fork
``Process`` + duplex pipe per slot, not ``ProcessPoolExecutor``) so the
parent can distinguish three failure classes and answer each one:

* a **worker crash** (signal / nonzero exit, e.g. the OOM killer) is
  seen as EOF on the worker's pipe — the worker is reaped, a fresh one
  forked, and the task requeued;
* a **hung task** trips the per-task wall-clock ``task_timeout`` — the
  worker is SIGKILLed and replaced, and the task requeued;
* an **in-task exception** is reported over the pipe as data — the task
  is requeued like the others, but counted separately.

Requeued tasks retry with exponential backoff up to ``retries`` extra
pooled attempts; tasks still unfinished when the pool drains are
re-executed serially *in the parent*, where neither chaos injection nor
worker death can reach them.  That fallback is safe by construction:
every shard task is a pure function of ``(ctx, index)`` with its own
derived RNG stream, so a retried task is byte-identical to a first-try
task, and a deterministic in-task exception surfaces in the parent with
its genuine traceback.  The supervisor's counters land in
:attr:`ShardRunner.stats` per phase for BENCH provenance.

This module deliberately imports nothing else from ``repro`` except its
sibling :mod:`repro.util.chaos` so every layer can use it.
"""

from __future__ import annotations

import heapq
import os
import signal
import threading
import time

__all__ = [
    "available_cpus",
    "fork_pool_gate",
    "pool_provenance",
    "ResidentPool",
    "ShardRunner",
    "summarize_shard_stats",
]


def available_cpus():
    """Usable CPU count: scheduler affinity when exposed (respects
    cgroup/taskset limits), falling back to the raw core count."""
    try:
        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):
        return os.cpu_count() or 1


def fork_pool_gate(jobs, n_tasks, min_tasks=2, cpus=None, phase=None):
    """Decide whether a fork pool should engage.

    Returns ``(engaged, reason)``; ``reason`` is ``None`` when engaged,
    otherwise a stable human-readable string recorded in provenance
    (BENCH files, shard stats) so a silently-serial run is explainable
    after the fact.  ``phase`` (when given) prefixes the reason, so a
    BENCH record with several phases reads unambiguously — every
    :meth:`ShardRunner.map` call passes its phase name.

    ``cpus`` lets the caller pass the :func:`available_cpus` value it
    will record in provenance, so the recorded ``cpu_count`` and the
    engagement decision can never disagree (a BENCH record saying
    ``cpu_count: 1`` next to ``pool_engaged: true`` is a provenance
    bug, not a configuration).
    """

    def veto(reason):
        return False, f"{phase}: {reason}" if phase else reason

    if jobs <= 1:
        return veto("jobs <= 1: serial path requested")
    if n_tasks < min_tasks:
        if n_tasks <= 1:
            return veto("single task: nothing to parallelize")
        return veto(f"{n_tasks} tasks < {min_tasks}: not worth forking")
    if cpus is None:
        cpus = available_cpus()
    if cpus <= 1:
        return veto("single CPU available: fork pool would add overhead")
    import multiprocessing

    try:
        multiprocessing.get_context("fork")
    except ValueError:
        return veto("fork start method unavailable on this platform")
    return True, None


def pool_provenance():
    """The execution-environment facts every BENCH record should carry.

    One shared helper so ``cpu_count`` and fork availability are reported
    identically across BENCH_build / BENCH_verify / BENCH_serve — the
    same never-disagree rule :func:`fork_pool_gate` applies to its own
    engagement decision.
    """
    import multiprocessing

    try:
        multiprocessing.get_context("fork")
        fork_available = True
    except ValueError:
        fork_available = False
    return {"cpu_count": available_cpus(), "fork_available": fork_available}


def _percentile(ordered, q):
    """Linear-interpolation percentile of an ascending list (numpy's
    default method, dependency-free)."""
    if not ordered:
        return 0.0
    position = (len(ordered) - 1) * q
    lower = int(position)
    upper = min(lower + 1, len(ordered) - 1)
    fraction = position - lower
    return ordered[lower] * (1.0 - fraction) + ordered[upper] * fraction


def summarize_shard_stats(stats):
    """Condense live :attr:`ShardRunner.stats` for provenance records.

    The live dicts carry one float and one source string **per task** —
    thousands of entries at scale, which used to dominate the checked-in
    BENCH files.  The record form replaces ``task_seconds`` with its
    summary (count/p50/p95/max/sum) and ``task_source`` with per-source
    counts; everything else is copied through unchanged.
    """
    out = {}
    for phase, stat in stats.items():
        summary = dict(stat)
        seconds = sorted(stat.get("task_seconds", ()))
        summary["task_seconds"] = {
            "count": len(seconds),
            "p50": round(_percentile(seconds, 0.50), 6),
            "p95": round(_percentile(seconds, 0.95), 6),
            "max": round(seconds[-1], 6) if seconds else 0.0,
            "sum": round(sum(seconds), 6),
        }
        sources = {}
        for source in stat.get("task_source", ()):
            sources[source] = sources.get(source, 0) + 1
        summary["task_source"] = sources
        out[phase] = summary
    return out


#: Pre-fork worker state: ``(fn, ctx)``.  Set by :meth:`ShardRunner.map`
#: immediately before the pool forks so children inherit it
#: copy-on-write; only the integer task index is pickled per task.
_SHARD_STATE = None

#: Sentinel for "no previous SIGTERM handler to restore".
_TERM_UNTRAPPED = object()


def _trap_sigterm():
    """Route SIGTERM through KeyboardInterrupt while a pool is live.

    A SIGTERMed build must unwind through the supervising frame's
    ``finally`` so workers are terminated and joined rather than
    orphaned.  Only installable from the main thread; returns the
    previous handler (or a sentinel when nothing was installed).
    """
    if threading.current_thread() is not threading.main_thread():
        return _TERM_UNTRAPPED

    def _on_term(signum, frame):
        raise KeyboardInterrupt("SIGTERM")

    try:
        return signal.signal(signal.SIGTERM, _on_term)
    except (ValueError, OSError):
        return _TERM_UNTRAPPED


def _untrap_sigterm(previous):
    if previous is _TERM_UNTRAPPED:
        return
    try:
        signal.signal(signal.SIGTERM, previous)
    except (ValueError, OSError, TypeError):
        pass


def _supervised_worker(conn, phase):
    """Worker loop: serve ``(index, attempt)`` requests until EOF/None.

    Replies ``("ok", index, attempt, seconds, result)`` or
    ``("error", index, attempt, seconds, message)``.  A crash (signal,
    ``os._exit``) simply never replies — the parent sees EOF.  Chaos
    injection, when enabled via ``REPRO_CHAOS``, happens here and *only*
    here: the parent's serial and fallback paths never fault.
    """
    from repro.util.chaos import chaos_from_env

    try:
        monkey = chaos_from_env()
    except Exception:
        # The parent validated the spec before forking; an unparsable
        # spec here means the environment changed under us — run clean
        # rather than dying in a loop.
        monkey = None
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError, KeyboardInterrupt):
            return
        if message is None:
            return
        index, attempt = message
        fn, ctx = _SHARD_STATE
        started = time.perf_counter()
        try:
            if monkey is not None:
                monkey.unleash(phase, index, attempt)
            result = fn(ctx, index)
            reply = ("ok", index, attempt, time.perf_counter() - started, result)
        except KeyboardInterrupt:
            return
        except BaseException as exc:
            reply = (
                "error",
                index,
                attempt,
                time.perf_counter() - started,
                f"{type(exc).__name__}: {exc}",
            )
        try:
            conn.send(reply)
        except (OSError, ValueError):
            return


class _WorkerSlot:
    """One supervised worker process and the pipe the parent holds."""

    __slots__ = ("process", "conn", "task", "attempt", "deadline")

    def __init__(self, process, conn):
        self.process = process
        self.conn = conn
        self.task = None  # index of the task in flight, or None when idle
        self.attempt = 0
        self.deadline = None  # monotonic instant the in-flight task times out


class ShardRunner:
    """Deterministic fan-out of ``fn(ctx, i) for i in range(n_tasks)``.

    The contract build phases rely on: results come back **in task
    order** regardless of completion order, worker exceptions propagate
    to the caller (a build error must fail loudly, never produce a
    silently truncated world), and the serial fallback calls the exact
    same ``fn`` with the exact same indices — so the merged output is
    identical at any ``jobs`` by construction.

    Supervision knobs: ``task_timeout`` is the per-task wall-clock
    budget in seconds (None disables timeouts); ``retries`` is how many
    *extra* pooled attempts a failed task gets before the in-process
    serial fallback; ``backoff`` is the base of the exponential retry
    delay (``backoff * 2**(attempt-1)`` seconds).

    Per-phase engagement decisions, per-task wall-clock timings, and
    the supervisor's fault counters are recorded in :attr:`stats` for
    BENCH provenance.
    """

    def __init__(self, jobs=1, task_timeout=None, retries=2, backoff=0.1):
        self.jobs = max(1, int(jobs))
        self.task_timeout = None if task_timeout is None else float(task_timeout)
        self.retries = max(0, int(retries))
        self.backoff = max(0.0, float(backoff))
        #: phase name -> {engaged, reason, jobs, workers, tasks,
        #: cpu_count, task_seconds, task_source, retries, timeouts,
        #: worker_crashes, task_errors, serial_fallbacks, errors, ...}
        self.stats = {}

    def map(self, phase, fn, ctx, n_tasks, min_tasks=2, on_result=None):
        """Run ``fn(ctx, i)`` for each task, returning results in order.

        ``on_result(i)`` (optional) fires once per task as it completes
        — in completion order, not task order — for progress reporting.
        """
        cpus = available_cpus()
        engaged, reason = fork_pool_gate(
            self.jobs, n_tasks, min_tasks=min_tasks, cpus=cpus, phase=phase
        )
        stat = {
            "engaged": engaged,
            "reason": reason,
            "jobs": self.jobs,
            "workers": min(self.jobs, n_tasks) if engaged else 1,
            "tasks": n_tasks,
            "cpu_count": cpus,
            "task_seconds": [0.0] * n_tasks,
            # Which path finished each task: "serial" (pool never
            # engaged), "pooled", or "fallback" (in-parent re-run).
            "task_source": ["serial"] * n_tasks,
            "task_timeout": self.task_timeout,
            "retries_allowed": self.retries,
            "retries": 0,
            "timeouts": 0,
            "worker_crashes": 0,
            "task_errors": 0,
            "serial_fallbacks": 0,
            "errors": [],
        }
        self.stats[phase] = stat
        if not engaged:
            results = [None] * n_tasks
            for i in range(n_tasks):
                t0 = time.perf_counter()
                results[i] = fn(ctx, i)
                stat["task_seconds"][i] = round(time.perf_counter() - t0, 6)
                if on_result is not None:
                    on_result(i)
            return results
        # Validate a configured chaos spec loudly in the parent before
        # any worker forks — a typo'd REPRO_CHAOS must fail the run, not
        # silently disable the chaos.
        from repro.util.chaos import chaos_from_env

        chaos_from_env()
        return self._map_supervised(stat, phase, fn, ctx, n_tasks, on_result)

    # -- supervised pool ---------------------------------------------------------------

    def _map_supervised(self, stat, phase, fn, ctx, n_tasks, on_result):
        import multiprocessing
        from multiprocessing import connection as mpconnection

        mp = multiprocessing.get_context("fork")
        global _SHARD_STATE
        _SHARD_STATE = (fn, ctx)

        results = [None] * n_tasks
        done = [False] * n_tasks
        attempts = [0] * n_tasks  # pooled attempts started per task
        # pop() from the end -> initial dispatch in ascending task order.
        pending = list(range(n_tasks - 1, -1, -1))
        delayed = []  # heap of (eligible_at, index) awaiting backoff
        workers = []

        def spawn():
            parent_end, child_end = mp.Pipe(duplex=True)
            process = mp.Process(
                target=_supervised_worker, args=(child_end, phase), daemon=True
            )
            process.start()
            child_end.close()
            return _WorkerSlot(process, parent_end)

        def retire(slot):
            """Hard-stop one worker (hung or crashed): close, kill, reap."""
            try:
                slot.conn.close()
            except OSError:
                pass
            if slot.process.is_alive():
                slot.process.kill()
            slot.process.join()

        def replace(slot):
            retire(slot)
            workers.remove(slot)
            workers.append(spawn())

        def note_error(index, attempt, message):
            if len(stat["errors"]) < 8:
                stat["errors"].append(f"{phase}[{index}] attempt {attempt}: {message}")

        def requeue(index):
            """Schedule another pooled attempt, or park for serial fallback."""
            if attempts[index] > self.retries:
                return  # pooled attempts exhausted; the fallback sweep gets it
            stat["retries"] += 1
            delay = self.backoff * (2 ** (attempts[index] - 1))
            heapq.heappush(delayed, (time.monotonic() + delay, index))

        def record_ok(index, seconds, payload, source):
            if done[index]:
                return  # a timed-out attempt's late duplicate; fn is pure
            done[index] = True
            results[index] = payload
            stat["task_seconds"][index] = round(seconds, 6)
            stat["task_source"][index] = source
            if on_result is not None:
                on_result(index)

        previous_term = _trap_sigterm()
        try:
            for _ in range(stat["workers"]):
                workers.append(spawn())
            while True:
                now = time.monotonic()
                while delayed and delayed[0][0] <= now:
                    pending.append(heapq.heappop(delayed)[1])
                for slot in list(workers):
                    if slot.task is not None or not pending:
                        continue
                    index = pending.pop()
                    attempts[index] += 1
                    slot.task = index
                    slot.attempt = attempts[index]
                    slot.deadline = (
                        None if self.task_timeout is None else now + self.task_timeout
                    )
                    try:
                        slot.conn.send((index, slot.attempt))
                    except (OSError, ValueError):
                        # The worker died while idle; replace it and retry
                        # the dispatch on the fresh one next iteration.
                        stat["worker_crashes"] += 1
                        slot.task = None
                        attempts[index] -= 1
                        pending.append(index)
                        replace(slot)
                busy = [slot for slot in workers if slot.task is not None]
                if not busy:
                    if delayed:
                        time.sleep(max(0.0, delayed[0][0] - time.monotonic()))
                        continue
                    break  # nothing running, nothing queued: pool phase over
                timeout = None
                deadlines = [s.deadline for s in busy if s.deadline is not None]
                if deadlines:
                    timeout = max(0.0, min(deadlines) - time.monotonic())
                if delayed:
                    until_eligible = max(0.0, delayed[0][0] - time.monotonic())
                    timeout = (
                        until_eligible if timeout is None else min(timeout, until_eligible)
                    )
                ready = mpconnection.wait([s.conn for s in busy], timeout=timeout)
                slot_of = {s.conn: s for s in busy}
                for conn in ready:
                    slot = slot_of[conn]
                    try:
                        message = conn.recv()
                    except (EOFError, OSError):
                        # EOF mid-task: the worker died (signal / hard
                        # exit) — distinct from an in-task exception,
                        # which would have arrived as an "error" reply.
                        index, attempt = slot.task, slot.attempt
                        stat["worker_crashes"] += 1
                        exitcode = slot.process.exitcode
                        note_error(index, attempt, f"worker died (exitcode {exitcode})")
                        replace(slot)
                        requeue(index)
                        continue
                    kind, index, attempt, seconds, payload = message
                    slot.task = None
                    slot.deadline = None
                    if kind == "ok":
                        record_ok(index, seconds, payload, "pooled")
                    else:
                        stat["task_errors"] += 1
                        note_error(index, attempt, payload)
                        requeue(index)
                now = time.monotonic()
                for slot in list(workers):
                    if slot.task is None or slot.deadline is None or now < slot.deadline:
                        continue
                    index, attempt = slot.task, slot.attempt
                    stat["timeouts"] += 1
                    note_error(
                        index,
                        attempt,
                        f"timed out after {self.task_timeout:.3g}s; worker killed",
                    )
                    replace(slot)
                    requeue(index)
        finally:
            _SHARD_STATE = None
            _untrap_sigterm(previous_term)
            # Politely ask idle workers to exit, then escalate.  Bounded:
            # ~2s worst case even with a hung worker mid-task.
            for slot in workers:
                try:
                    slot.conn.send(None)
                except (OSError, ValueError):
                    pass
            for slot in workers:
                try:
                    slot.conn.close()
                except OSError:
                    pass
            grace = time.monotonic() + 1.0
            for slot in workers:
                slot.process.join(timeout=max(0.0, grace - time.monotonic()))
            for slot in workers:
                if slot.process.is_alive():
                    slot.process.terminate()
            for slot in workers:
                slot.process.join(timeout=1.0)
                if slot.process.is_alive():
                    slot.process.kill()
                    slot.process.join()

        # In-process serial re-execution of whatever the pool could not
        # finish.  Chaos never applies here and the parent cannot lose
        # itself, so this terminates with the right answer — or raises
        # the genuine exception of a deterministically-failing task.
        for index in range(n_tasks):
            if done[index]:
                continue
            stat["serial_fallbacks"] += 1
            stat["task_source"][index] = "fallback"
            t0 = time.perf_counter()
            results[index] = fn(ctx, index)
            stat["task_seconds"][index] = round(time.perf_counter() - t0, 6)
            done[index] = True
            if on_result is not None:
                on_result(index)
        return results


# ---------------------------------------------------------------------------
# Resident workers: long-lived, stateful


def _resident_worker(conn, factory, slot_index):
    """Resident worker loop: build the handler post-fork, serve method
    calls until EOF/None.

    ``factory(slot_index)`` runs *inside the child*, so any heavy
    context it closes over arrived by fork (copy-on-write), never by
    pickling.  Replies are ``("ok", result)`` or ``("error", message)``;
    a crash never replies and the parent sees EOF.
    """
    try:
        handler = factory(slot_index)
    except BaseException as exc:
        try:
            conn.send(("error", f"factory failed: {type(exc).__name__}: {exc}"))
        except (OSError, ValueError):
            pass
        return
    try:
        conn.send(("ok", None))  # ready handshake
    except (OSError, ValueError):
        return
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError, KeyboardInterrupt):
            return
        if message is None:
            return
        method, args = message
        try:
            reply = ("ok", getattr(handler, method)(*args))
        except KeyboardInterrupt:
            return
        except BaseException as exc:
            reply = ("error", f"{type(exc).__name__}: {exc}")
        try:
            conn.send(reply)
        except (OSError, ValueError):
            return


class ResidentPool:
    """Long-lived supervised fork workers that *hold state* between calls.

    :class:`ShardRunner` restarts a crashed worker and requeues its task
    because shard tasks are pure functions of ``(ctx, index)``.  A
    resident worker is the opposite: it accumulates state across calls
    (the sharded stream's per-block engines), so a lost process loses
    its substream and no requeue can recover it.  This pool keeps the
    same supervision posture — fork ``Process`` + duplex pipe per slot,
    bounded loud teardown — but treats worker death or an in-call
    exception as **fatal**: :meth:`call_all` raises ``RuntimeError``
    naming the slot and exit code, and the caller rebuilds from the
    authoritative source rather than guessing at lost state.

    ``factory(slot_index)`` builds each worker's handler after the fork;
    whatever it closes over (a built world) crosses by copy-on-write.
    """

    def __init__(self, factory, workers, name="resident"):
        import multiprocessing

        if workers < 1:
            raise ValueError("workers must be >= 1")
        mp = multiprocessing.get_context("fork")
        self.name = name
        self.broken = False
        self._slots = []
        for slot_index in range(int(workers)):
            parent_end, child_end = mp.Pipe(duplex=True)
            process = mp.Process(
                target=_resident_worker,
                args=(child_end, factory, slot_index),
                daemon=True,
            )
            process.start()
            child_end.close()
            self._slots.append(_WorkerSlot(process, parent_end))
        # Collect the ready handshakes so a factory failure surfaces at
        # construction, not on the first call.
        for slot_index, slot in enumerate(self._slots):
            self._recv(slot_index, slot, "start")

    def __len__(self):
        return len(self._slots)

    def _fail(self, slot_index, message):
        self.broken = True
        self.close()
        raise RuntimeError(f"{self.name} worker {slot_index}: {message}")

    def _recv(self, slot_index, slot, method):
        try:
            kind, payload = slot.conn.recv()
        except (EOFError, OSError):
            exitcode = slot.process.exitcode
            self._fail(
                slot_index,
                f"died during {method!r} (exitcode {exitcode}); "
                "resident state is unrecoverable",
            )
        if kind != "ok":
            self._fail(slot_index, f"{method!r} raised: {payload}")
        return payload

    def call_all(self, method, *args):
        """Invoke ``handler.method(*args)`` on every worker; results in
        slot order.  Requests go out to all slots before any reply is
        read, so workers execute concurrently."""
        if self.broken:
            raise RuntimeError(f"{self.name}: pool is broken")
        for slot_index, slot in enumerate(self._slots):
            try:
                slot.conn.send((method, args))
            except (OSError, ValueError):
                self._fail(slot_index, f"unreachable dispatching {method!r}")
        return [
            self._recv(slot_index, slot, method)
            for slot_index, slot in enumerate(self._slots)
        ]

    def close(self):
        """Politely stop every worker, then escalate — same bounded
        teardown discipline as the shard pool."""
        for slot in self._slots:
            try:
                slot.conn.send(None)
            except (OSError, ValueError):
                pass
        for slot in self._slots:
            try:
                slot.conn.close()
            except OSError:
                pass
        grace = time.monotonic() + 1.0
        for slot in self._slots:
            slot.process.join(timeout=max(0.0, grace - time.monotonic()))
        for slot in self._slots:
            if slot.process.is_alive():
                slot.process.terminate()
        for slot in self._slots:
            slot.process.join(timeout=1.0)
            if slot.process.is_alive():
                slot.process.kill()
                slot.process.join()
