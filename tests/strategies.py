"""Shared Hypothesis strategies: one generator layer for every property test.

Before this module each fuzz/property test module grew its own ad-hoc
generators for the same domain objects (IPv4 addresses, mode-7 packet sets,
monlist MRU event streams, survival anchors, ...).  They now live here so a
widened range or a new edge case benefits every consumer at once, and so
new tests (the conformance harness's own fuzzing included) don't re-invent
them.

Everything exported is either a Hypothesis ``SearchStrategy`` or a small
deterministic helper for building canonical wire fixtures.
"""

from hypothesis import strategies as st

from repro.measurement.onp import ProbeCapture
from repro.net import Prefix
from repro.ntp import MonlistTable
from repro.ntp.constants import IMPL_XNTPD
from repro.ntp.wire import MonitorEntry
from repro.util.simtime import DAY

__all__ = [
    "ips",
    "ports",
    "prefixes",
    "udp_payload_sizes",
    "binary_blobs",
    "entry_versions",
    "monitor_entries",
    "monlist_events",
    "survival_anchor_lists",
    "timeline_points",
    "attack_specs",
    "poll_bounds",
    "world_seeds",
    "world_scales",
    "fault_preset_names",
    "shard_partitions",
    "build_packets",
    "capture_of",
    "BASE_PACKET_SETS",
    "sketch_streams",
    "stream_events",
    "record_streams",
    "window_widths",
    "bounded_skews",
]

# -- network primitives --------------------------------------------------------

#: Any IPv4 address as a host-order integer.
ips = st.integers(min_value=0, max_value=2**32 - 1)

#: Any UDP port.
ports = st.integers(min_value=0, max_value=65535)

#: Any IPv4 prefix (the /0 default route is excluded, as the routing plan
#: never carries one).
prefixes = st.builds(
    Prefix,
    ips,
    st.integers(min_value=1, max_value=32),
)

#: UDP payload sizes up to an un-fragmented 1500-MTU datagram.
udp_payload_sizes = st.integers(min_value=0, max_value=1472)

#: Raw bytes in the size range of real mode-7 datagrams (for feeding
#: decoders garbage).
binary_blobs = st.binary(min_size=0, max_size=400)

# -- NTP wire objects ----------------------------------------------------------

#: Monlist entry wire versions (v1 = 32-byte, v2 = 72-byte entries).
entry_versions = st.sampled_from([1, 2])

#: Any in-range mode-7 monitor entry (the encode/decode round-trip domain).
monitor_entries = st.builds(
    MonitorEntry,
    last_int=ips,  # 32-bit seconds field, same range as an address
    first_int=ips,
    count=ips,
    addr=ips,
    daddr=st.just(0),
    flags=st.just(0),
    port=ports,
    mode=st.integers(min_value=0, max_value=7),
    version=st.integers(min_value=1, max_value=4),
    restr=st.just(0),
)

#: (addr, time) event streams for exercising the monlist MRU table.
monlist_events = st.lists(
    st.tuples(
        st.integers(min_value=1, max_value=50),
        st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
    ),
    min_size=1,
    max_size=200,
)


def build_packets(n_clients, now=1000.0):
    """A canonical clean mode-7 response: ``n_clients`` distinct entries
    rendered into the real multi-packet wire format."""
    table = MonlistTable(capacity=600)
    for i in range(n_clients):
        table.record(1000 + i, 123, 3, 4, now=float(i))
    return tuple(table.render_response_packets(now, 2, IMPL_XNTPD))


def capture_of(packets, target_ip=42, t=1000.0):
    """Wrap raw packets as a :class:`ProbeCapture` (the parser's input)."""
    return ProbeCapture(target_ip=target_ip, t=t, packets=tuple(packets), n_repeats=1)


#: Clean baseline packet sets by client count — the corpus the mutation
#: fuzzers (bit flips, drops, reorders, duplicates) start from.
BASE_PACKET_SETS = {n: build_packets(n) for n in (1, 4, 20, 40)}

# -- analysis-domain values ----------------------------------------------------

#: Monotone-decreasing survival fractions (remediation curve anchors).
survival_anchor_lists = st.lists(
    st.floats(min_value=0.01, max_value=1.0, allow_nan=False), min_size=2, max_size=8
).map(lambda vs: sorted(vs, reverse=True))

#: Sorted, deduplicated (t, value) anchor lists for Timeline interpolation.
timeline_points = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
        st.floats(min_value=0.01, max_value=1e6, allow_nan=False),
    ),
    min_size=2,
    max_size=8,
    unique_by=lambda p: round(p[0], 3),
).map(lambda ps: sorted(ps))

#: (start, duration, target_bps) triples for synthetic attacks.
attack_specs = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=20 * DAY, allow_nan=False),
        st.floats(min_value=1.0, max_value=3 * DAY, allow_nan=False),
        st.floats(min_value=1e3, max_value=1e9, allow_nan=False),
    ),
    min_size=0,
    max_size=12,
)

#: (start, width, poll_interval) windows for client-poll-count properties.
poll_bounds = st.tuples(
    st.floats(min_value=0.0, max_value=1e4, allow_nan=False),
    st.floats(min_value=1.0, max_value=1e4, allow_nan=False),
    st.floats(min_value=10.0, max_value=5000.0, allow_nan=False),
)

# -- world parameters ----------------------------------------------------------

#: Seeds in the range the conformance matrix and golden tests use.
world_seeds = st.integers(min_value=0, max_value=2**31 - 1)

#: Scales small enough that a property test could afford to build a world.
world_scales = st.sampled_from([0.0002, 0.0004, 0.0005, 0.0008, 0.001])

#: The registered fault presets.
fault_preset_names = st.sampled_from(["clean", "paper", "hostile"])

#: ``(n_items, n_blocks)`` pairs for the columnar build's block partitioner
#: (:func:`repro.population.columns.balanced_split`): covers empty pools,
#: fewer items than blocks, and block counts well past ``HOST_BLOCKS``.
shard_partitions = st.tuples(
    st.integers(min_value=0, max_value=100_000),
    st.integers(min_value=1, max_value=64),
)

# -- streaming-analysis domains ------------------------------------------------

#: (key, weight) streams for sketch properties; small key space so
#: collisions, evictions, and heavy hitters all occur.
sketch_streams = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=40),
        st.integers(min_value=0, max_value=1000),
    ),
    min_size=0,
    max_size=300,
)

#: Tumbling-window widths in the range the engine uses (an hour to a week).
window_widths = st.floats(min_value=3600.0, max_value=7 * DAY, allow_nan=False)

#: Watermark skews from strictly-in-order up to a full day of tolerated lag.
bounded_skews = st.floats(min_value=0.0, max_value=DAY, allow_nan=False)

#: One synthetic stream event: (event time, kind, payload key).  Kinds
#: mirror the replay adapter's interleaving of capture and flow records.
stream_events = st.tuples(
    st.floats(min_value=0.0, max_value=30 * DAY, allow_nan=False),
    st.sampled_from(["capture", "darknet", "isp"]),
    st.integers(min_value=0, max_value=50),
)


@st.composite
def record_streams(draw, max_events=120):
    """Sim-time-ordered event streams with bounded out-of-order arrival
    and duplicate deliveries.

    Returns ``(events, skew)`` where ``events`` is a list of
    ``(t, kind, key, uid)`` tuples in *arrival* order: the underlying
    stream is time-sorted, each arrival is then displaced backward by at
    most ``skew`` seconds (so a watermark lagging the stream head by
    ``skew`` never mistakes an in-flight record for a late one... unless
    it is genuinely late, which the generator also produces), and some
    records are delivered twice with the same uid.
    """
    events = sorted(
        draw(st.lists(stream_events, min_size=0, max_size=max_events)),
        key=lambda e: e[0],
    )
    skew = draw(bounded_skews)
    arrivals = []
    for uid, (t, kind, key) in enumerate(events):
        jitter = draw(
            st.floats(min_value=0.0, max_value=2.0 * skew + 1.0, allow_nan=False)
        )
        # Arrival position is perturbed; event time is not.
        arrivals.append((t + jitter, (t, kind, key, uid)))
    arrivals.sort(key=lambda pair: (pair[0], pair[1][3]))
    ordered = [record for _pos, record in arrivals]
    # Duplicate deliveries: re-send a few already-delivered records.
    dup_indexes = draw(
        st.lists(
            st.integers(min_value=0, max_value=max(0, len(ordered) - 1)),
            min_size=0,
            max_size=5,
        )
    )
    if ordered:
        for index in dup_indexes:
            insert_at = draw(
                st.integers(min_value=index + 1, max_value=len(ordered))
            )
            ordered.insert(insert_at, ordered[index])
    return ordered, skew
