"""A minimal, deterministic discrete-event engine.

The scenario layer schedules work (scan sweeps, attack pulses, weekly ONP
probes, flow-export ticks) as callbacks at simulation times.  Events at equal
times fire in insertion order, which — together with the seeded RNG streams —
makes whole-world runs bit-reproducible.
"""

import heapq
from dataclasses import dataclass, field

from repro.util.simtime import SimClock

__all__ = ["Event", "EventEngine"]


@dataclass(order=True)
class Event:
    """One scheduled callback.  Ordering is (time, sequence number)."""

    time: float
    seq: int
    action: object = field(compare=False)
    label: str = field(compare=False, default="")
    cancelled: bool = field(compare=False, default=False)

    def cancel(self):
        self.cancelled = True


class EventEngine:
    """Heap-based scheduler driving a :class:`SimClock`."""

    def __init__(self, start=0.0):
        self.clock = SimClock(start)
        self._heap = []
        self._seq = 0
        self._n_fired = 0

    @property
    def now(self):
        return self.clock.now

    @property
    def n_pending(self):
        return sum(1 for e in self._heap if not e.cancelled)

    @property
    def n_fired(self):
        return self._n_fired

    def schedule(self, time, action, label=""):
        """Schedule ``action(engine)`` at simulation time ``time``."""
        if time < self.clock.now:
            raise ValueError(f"cannot schedule into the past: {time} < {self.clock.now}")
        if not callable(action):
            raise TypeError("action must be callable")
        event = Event(time=float(time), seq=self._seq, action=action, label=label)
        self._seq += 1
        heapq.heappush(self._heap, event)
        return event

    def schedule_after(self, delay, action, label=""):
        if delay < 0:
            raise ValueError("delay must be non-negative")
        return self.schedule(self.clock.now + delay, action, label=label)

    def run_until(self, end_time):
        """Fire all events with ``time <= end_time``; advance clock to it."""
        while self._heap and self._heap[0].time <= end_time:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self.clock.advance_to(event.time)
            event.action(self)
            self._n_fired += 1
        self.clock.advance_to(max(self.clock.now, end_time))

    def run_all(self):
        """Fire every pending event (new events may be scheduled en route)."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self.clock.advance_to(event.time)
            event.action(self)
            self._n_fired += 1
