#!/usr/bin/env python
"""Amplification lab: what makes an NTP server a good DDoS weapon?

Measures bandwidth amplification factors across server configurations —
table sizes, the two monlist implementations, primed/full tables, the
version command, and the mega-amplifier loop pathology — and contrasts the
paper's on-wire BAF with Rossow's UDP-payload BAF.

Usage::

    python examples/amplification_lab.py
"""

from repro.net import on_wire_bytes
from repro.ntp import IMPL_XNTPD, IMPL_XNTPD_OLD, NtpServer, ServerConfig
from repro.reporting import render_table

QUERY_ONWIRE = on_wire_bytes(8)
QUERY_PAYLOAD = 8


def build_server(n_clients, implementations, loop_factor=1):
    config = ServerConfig(
        implementations=frozenset(implementations), loop_factor=loop_factor
    )
    server = NtpServer(ip=0xC6336407, config=config)
    for i in range(n_clients):
        server.record_client(0x0A000000 + i, 123, 3, 4, now=float(i))
    return server


def measure(server, implementation):
    reply = server.respond_monlist(0xCB00000A, 50557, now=10_000.0, implementation=implementation)
    if reply is None:
        return None
    return (
        reply.total_packets,
        reply.total_payload_bytes,
        reply.total_on_wire_bytes / QUERY_ONWIRE,
        reply.total_payload_bytes / QUERY_PAYLOAD,
    )


def main():
    rows = []
    cases = [
        ("1 client, v2 impl", 1, IMPL_XNTPD, 1),
        ("6 clients (median table)", 6, IMPL_XNTPD, 1),
        ("6 clients, legacy v1 impl", 6, IMPL_XNTPD_OLD, 1),
        ("35 clients (mean table)", 35, IMPL_XNTPD, 1),
        ("primed full table (600)", 600, IMPL_XNTPD, 1),
        ("full table, v1 impl", 600, IMPL_XNTPD_OLD, 1),
        ("mega amplifier (loop x1000)", 600, IMPL_XNTPD, 1000),
        ("giga amplifier (loop x2.7M)", 600, IMPL_XNTPD, 2_700_000),
    ]
    for label, clients, impl, loop in cases:
        server = build_server(clients, {IMPL_XNTPD, IMPL_XNTPD_OLD}, loop_factor=loop)
        packets, payload, onwire_baf, payload_baf = measure(server, impl)
        rows.append(
            [
                label,
                packets,
                f"{payload / 1e3:.1f} KB"
                if payload < 1e6
                else (f"{payload / 1e6:.1f} MB" if payload < 1e9 else f"{payload / 1e9:.1f} GB"),
                f"{onwire_baf:,.1f}x",
                f"{payload_baf:,.1f}x",
            ]
        )
    print(
        render_table(
            ["configuration", "reply pkts", "reply size", "on-wire BAF", "payload BAF"],
            rows,
            title="NTP monlist amplification (84-byte on-wire query)",
        )
    )
    print(
        "\nNotes: the paper's typical amplifier gives ~4x on-wire; a primed\n"
        "600-entry table ~600x; loop-pathology mega amplifiers reach 1e6-1e9x\n"
        "(one replied with 136 GB to a single query).  The payload-ratio BAF\n"
        "definition (Rossow) overstates on-wire exhaustion by >10x on small\n"
        "replies because the 8-byte query still costs 84 bytes of wire time."
    )

    # The version (mode 6) command for comparison.
    server = build_server(0, {IMPL_XNTPD})
    reply = server.respond_version(0xCB00000A, 50557, now=10_000.0)
    baf = reply.total_on_wire_bytes / QUERY_ONWIRE
    print(f"\nversion (mode 6 READVAR) reply: {reply.total_payload_bytes} bytes -> {baf:.1f}x on-wire")
    print("(paper: quartiles 3.5/4.6/6.9 across 4M responders — a larger, slower-")
    print(" remediating pool that remains after monlist is gone)")


if __name__ == "__main__":
    main()
