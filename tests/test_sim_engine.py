"""Tests for the discrete-event engine and event records."""

import pytest

from repro.sim import AttackPulse, EventEngine, ScanSweep


def test_events_fire_in_time_order():
    engine = EventEngine()
    fired = []
    engine.schedule(5.0, lambda e: fired.append("b"))
    engine.schedule(1.0, lambda e: fired.append("a"))
    engine.schedule(9.0, lambda e: fired.append("c"))
    engine.run_all()
    assert fired == ["a", "b", "c"]
    assert engine.n_fired == 3


def test_equal_times_fire_in_insertion_order():
    engine = EventEngine()
    fired = []
    for name in "abc":
        engine.schedule(1.0, lambda e, n=name: fired.append(n))
    engine.run_all()
    assert fired == ["a", "b", "c"]


def test_run_until_partial():
    engine = EventEngine()
    fired = []
    engine.schedule(1.0, lambda e: fired.append(1))
    engine.schedule(10.0, lambda e: fired.append(10))
    engine.run_until(5.0)
    assert fired == [1]
    assert engine.now == 5.0
    assert engine.n_pending == 1


def test_events_can_schedule_events():
    engine = EventEngine()
    fired = []

    def chain(e):
        fired.append(e.now)
        if e.now < 3.0:
            e.schedule_after(1.0, chain)

    engine.schedule(1.0, chain)
    engine.run_all()
    assert fired == [1.0, 2.0, 3.0]


def test_cancelled_events_skip():
    engine = EventEngine()
    fired = []
    event = engine.schedule(1.0, lambda e: fired.append(1))
    event.cancel()
    engine.run_all()
    assert fired == []
    assert engine.n_pending == 0


def test_cannot_schedule_into_past():
    engine = EventEngine()
    engine.run_until(10.0)
    with pytest.raises(ValueError):
        engine.schedule(5.0, lambda e: None)
    with pytest.raises(ValueError):
        engine.schedule_after(-1.0, lambda e: None)


def test_action_must_be_callable():
    with pytest.raises(TypeError):
        EventEngine().schedule(1.0, "not callable")


def test_attack_pulse_properties():
    pulse = AttackPulse(
        start=100.0,
        duration=40.0,
        victim_ip=1,
        victim_port=80,
        amplifier_ip=2,
        query_rate=2.5,
        mode=7,
        spoofer_ttl=109,
    )
    assert pulse.end == 140.0
    assert pulse.query_count == 100


def test_attack_pulse_minimum_one_query():
    pulse = AttackPulse(
        start=0.0,
        duration=0.1,
        victim_ip=1,
        victim_port=80,
        amplifier_ip=2,
        query_rate=0.5,
        mode=7,
        spoofer_ttl=109,
    )
    assert pulse.query_count == 1


def test_scan_sweep_validation():
    with pytest.raises(ValueError):
        ScanSweep(
            t=0.0,
            scanner_ip=1,
            kind="research",
            mode=7,
            coverage=0.0,
            targets_per_second=1000.0,
            ttl=54,
            duration=3600.0,
        )
    with pytest.raises(ValueError):
        ScanSweep(
            t=0.0,
            scanner_ip=1,
            kind="research",
            mode=7,
            coverage=1.0,
            targets_per_second=1000.0,
            ttl=54,
            duration=0.0,
        )
