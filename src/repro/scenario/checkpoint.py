"""Phase-level build checkpoints: resumable ``PaperWorld`` builds.

A multi-minute full-scale build that dies to SIGKILL, OOM, or a machine
reboot should not start over.  ``PaperWorld.build(checkpoint_dir=...)``
persists the accumulated build state after **every completed phase**;
an interrupted build re-run with the same checkpoint directory resumes
from the last finished phase and produces a byte-identical world —
every phase draws from an RNG stream derived statelessly from
``(seed, phase name)`` (see :mod:`repro.util.rng`), and the stateful
objects a later phase reads (the fault injector, the amplifier state
manager, ...) travel inside the pickled state, so replaying the
remaining phases is exactly the suffix of the uninterrupted build.

Validation follows the world-cache envelope idiom
(:mod:`repro.scenario.cache`): every checkpoint embeds
``(format, package version, params, completed-phase list)`` and any
mismatch — different params, a different ``repro`` version, a phase
sequence that no longer matches the current build order, or a truncated
file — is a *miss* that restarts the build from scratch, never a wrong
world.  Writes are atomic (temp file + ``os.replace``), so a build
killed mid-save leaves the previous checkpoint intact.
"""

from __future__ import annotations

import os
import pickle

__all__ = ["BuildCheckpoint"]

#: Bumped when the checkpoint payload layout itself changes.
_CHECKPOINT_FORMAT = 1


def _package_version():
    from repro import __version__

    return __version__


class BuildCheckpoint:
    """One build's checkpoint file, keyed like the world cache.

    :attr:`stats` accumulates provenance for BENCH records: whether a
    resume happened, which phases were loaded, how many saves landed,
    and why a present-but-unusable checkpoint was ignored.
    """

    def __init__(self, directory, params):
        from repro.scenario.cache import cache_key

        self.directory = os.fspath(directory)
        self.params = params
        self.path = os.path.join(
            self.directory, f"checkpoint-{cache_key(params)[:24]}.pkl"
        )
        self.stats = {
            "enabled": True,
            "path": self.path,
            "resumed": False,
            "phases_loaded": [],
            "saves": 0,
            "save_errors": 0,
            "reason": None,
        }

    # -- loading -----------------------------------------------------------------------

    def load(self):
        """Return ``(completed_phases, state)`` or None on any miss.

        Never raises on a bad file: an absent, truncated, stale, or
        foreign checkpoint is recorded in ``stats["reason"]`` and the
        build starts from scratch.
        """
        try:
            with open(self.path, "rb") as handle:
                payload = pickle.load(handle)
        except FileNotFoundError:
            self.stats["reason"] = "no checkpoint file"
            return None
        except Exception as exc:  # noqa: BLE001 -- unpickling garbage raises
            # whatever opcode decodes first; any load failure is a miss.
            self.stats["reason"] = f"unreadable checkpoint: {exc}"
            return None
        reason = self._reject_reason(payload)
        if reason is not None:
            self.stats["reason"] = reason
            return None
        phases = list(payload["phases"])
        self.stats["resumed"] = True
        self.stats["phases_loaded"] = list(phases)
        self.stats["reason"] = None
        return phases, payload["state"]

    def _reject_reason(self, payload):
        if not isinstance(payload, dict) or "state" not in payload:
            return "no checkpoint envelope"
        if payload.get("format") != _CHECKPOINT_FORMAT:
            return f"checkpoint envelope format {payload.get('format')!r}"
        if payload.get("version") != _package_version():
            return (
                f"written by repro {payload.get('version')!r}, "
                f"this is {_package_version()!r}"
            )
        try:
            params_match = payload.get("params") == self.params
        except Exception:  # noqa: BLE001 -- cross-schema dataclass comparison
            params_match = False
        if not params_match:
            return f"built for {payload.get('params')!r}"
        # The saved phases must be a prefix of the current build order —
        # a reordered or renamed phase sequence invalidates the resume.
        from repro.scenario.world import _BUILD_PHASES

        order = [name for name, _ in _BUILD_PHASES]
        phases = list(payload.get("phases") or [])
        if not phases or phases != order[: len(phases)]:
            return f"phase sequence {phases!r} does not prefix the build order"
        return None

    # -- saving ------------------------------------------------------------------------

    def save(self, completed_phases, state):
        """Atomically persist the state after a completed phase.

        Best-effort on I/O failure (a full disk must not kill a build
        that can still finish in memory); serialization bugs still
        raise.  Returns True when the checkpoint landed.
        """
        payload = {
            "format": _CHECKPOINT_FORMAT,
            "version": _package_version(),
            "params": self.params,
            "phases": list(completed_phases),
            "state": state,
        }
        tmp = f"{self.path}.tmp.{os.getpid()}"
        try:
            os.makedirs(self.directory, exist_ok=True)
            with open(tmp, "wb") as handle:
                pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, self.path)
        except OSError as exc:
            self.stats["save_errors"] += 1
            self.stats["reason"] = f"checkpoint save failed: {exc}"
            try:
                os.unlink(tmp)
            except OSError:
                pass
            return False
        self.stats["saves"] += 1
        return True

    def clear(self):
        """Remove the checkpoint once the build completed (the world
        cache, not a stale checkpoint, is the reuse mechanism)."""
        try:
            os.unlink(self.path)
        except OSError:
            pass
        self.stats["cleared"] = True
