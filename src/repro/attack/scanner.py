"""Scanner populations: research surveys and the malicious reconnaissance
that preceded the attack wave (§5).

Two families:

* **Research scanners** — a handful of fixed infrastructure IPs (the ONP
  prober among them) conducting open, aggressive, *complete* IPv4 sweeps on
  a regular cadence.  These are the "benign" packets of Figure 8, labeled
  by hostname in the paper and by construction here.
* **Malicious scanners** — a population that explodes in mid-December 2013
  (a week before attack traffic ramps, Figure 9).  Each is a bot scanning a
  small slice of the space per day; in aggregate they account for roughly
  half of the darknet's NTP scan volume at peak.

TTL forensics (§7.2): research/malicious scanning is predominantly
Linux-sourced (initial TTL 64, observed mode ≈54), whereas the *spoofed
attack* traffic shows Windows TTLs (128, observed mode ≈109).
"""

from dataclasses import dataclass

from repro.net.asn import MEASUREMENT_POOL
from repro.sim.events import ScanSweep
from repro.util.simtime import DAY, WEEK, date_to_sim
from repro.util.simtime import Timeline

__all__ = [
    "ONP_PROBER_IP",
    "RESEARCH_SCANNERS",
    "ResearchScanner",
    "ScannerEcosystem",
    "linux_observed_ttl",
    "windows_observed_ttl",
]

#: The single source address the OpenNTPProject-style weekly scans use.
ONP_PROBER_IP = MEASUREMENT_POOL.nth(10)


def linux_observed_ttl(rng):
    """Observed TTL of a Linux-sourced packet: 64 minus path length."""
    hops = int(min(30, max(3, rng.normal(10, 2))))
    return 64 - hops


def windows_observed_ttl(rng):
    """Observed TTL of a Windows-sourced packet: 128 minus path length."""
    hops = int(min(30, max(3, rng.normal(19, 3))))
    return 128 - hops


@dataclass(frozen=True)
class ResearchScanner:
    """A benign, identified survey project doing periodic full sweeps."""

    name: str
    ip: int
    mode: int
    first_sweep: float
    interval: float
    last_sweep: float

    def sweep_times(self):
        times = []
        t = self.first_sweep
        while t <= self.last_sweep:
            times.append(t)
            t += self.interval
        return times


#: The research survey ecosystem.  The ONP monlist scans run weekly from
#: 2014-01-10; ONP version scans from 2014-02-21; three other projects
#: (survey-*) had been scanning NTP before the attacks began, which is why
#: the darknet saw mostly-benign NTP packets in fall 2013 (Fig. 8).
RESEARCH_SCANNERS = [
    ResearchScanner(
        name="onp-monlist",
        ip=ONP_PROBER_IP,
        mode=7,
        first_sweep=date_to_sim(2014, 1, 10),
        interval=WEEK,
        last_sweep=date_to_sim(2014, 4, 18),
    ),
    ResearchScanner(
        name="onp-version",
        ip=MEASUREMENT_POOL.nth(11),
        mode=6,
        first_sweep=date_to_sim(2014, 2, 21),
        interval=WEEK,
        last_sweep=date_to_sim(2014, 4, 18),
    ),
    ResearchScanner(
        name="survey-alpha",
        ip=MEASUREMENT_POOL.nth(20),
        mode=6,
        first_sweep=date_to_sim(2013, 9, 5),
        interval=2 * WEEK,
        last_sweep=date_to_sim(2014, 4, 28),
    ),
    ResearchScanner(
        name="survey-beta",
        ip=MEASUREMENT_POOL.nth(21),
        mode=7,
        first_sweep=date_to_sim(2013, 9, 12),
        interval=2 * WEEK,
        last_sweep=date_to_sim(2014, 4, 28),
    ),
    ResearchScanner(
        name="survey-gamma",
        ip=MEASUREMENT_POOL.nth(22),
        mode=7,
        first_sweep=date_to_sim(2014, 1, 4),
        interval=WEEK / 2,
        last_sweep=date_to_sim(2014, 4, 28),
    ),
    ResearchScanner(
        name="survey-delta",
        ip=MEASUREMENT_POOL.nth(23),
        mode=7,
        first_sweep=date_to_sim(2013, 12, 20),
        interval=WEEK,
        last_sweep=date_to_sim(2014, 4, 28),
    ),
]

#: Daily count of *active malicious scanner IPs* at full scale (Fig. 9's
#: unique-scanners curve rises from near zero in early December to several
#: thousand per day by February and stays high through April).
MALICIOUS_DAILY_ACTIVE_FULL = Timeline(
    [
        (date_to_sim(2013, 9, 1), 25.0),
        (date_to_sim(2013, 12, 1), 60.0),
        (date_to_sim(2013, 12, 14), 120.0),
        (date_to_sim(2013, 12, 18), 1500.0),
        (date_to_sim(2014, 1, 1), 3500.0),
        (date_to_sim(2014, 1, 15), 5500.0),
        (date_to_sim(2014, 2, 1), 8000.0),
        (date_to_sim(2014, 3, 1), 7500.0),
        (date_to_sim(2014, 4, 30), 7000.0),
    ]
)

#: Aggregate malicious scan volume per day, in full-IPv4-sweep equivalents.
#: This is what sets darknet packets-per-/24 (a scale-free quantity): at
#: peak ~0.75 sweep-equivalents/day the malicious volume roughly matches
#: the research volume, per Figure 8's "roughly half of the increase in
#: scanning can be attributed to research efforts".
MALICIOUS_DAILY_COVERAGE_TOTAL = Timeline(
    [
        (date_to_sim(2013, 9, 1), 0.015),
        (date_to_sim(2013, 11, 1), 0.045),
        (date_to_sim(2013, 12, 1), 0.075),
        (date_to_sim(2013, 12, 14), 0.09),
        (date_to_sim(2013, 12, 18), 0.25),
        (date_to_sim(2014, 1, 10), 0.45),
        (date_to_sim(2014, 2, 1), 0.75),
        (date_to_sim(2014, 3, 1), 0.70),
        (date_to_sim(2014, 4, 30), 0.65),
    ]
)

_RESEARCH_SWEEP_DURATION = 10 * 3600.0  # zmap-style, hours per full pass


class ScannerEcosystem:
    """Generates every :class:`ScanSweep` in the study window.

    ``scanner_scale`` thins the *count* of distinct malicious scanner IPs
    (Fig. 9's y-axis scales with it) while the aggregate coverage — and
    therefore the darknet's packets-per-/24 and every per-amplifier hit
    probability — follows the scale-free total-coverage timeline.  It is
    floored at 0.02 so even tiny worlds keep a populated scanner ecosystem.
    """

    def __init__(
        self,
        rng,
        scale=0.01,
        start=date_to_sim(2013, 9, 1),
        end=date_to_sim(2014, 5, 1),
        scanner_scale=None,
    ):
        if end <= start:
            raise ValueError("end must follow start")
        self._rng = rng
        self._scale = scale
        self.scanner_scale = max(0.02, scale) if scanner_scale is None else scanner_scale
        self._start = start
        self._end = end

    def research_sweeps(self):
        """All research sweeps: full-coverage, one source IP, Linux TTLs."""
        ttl_rng = self._rng.child("research-ttl")
        sweeps = []
        for scanner in RESEARCH_SCANNERS:
            for t in scanner.sweep_times():
                if not self._start <= t <= self._end:
                    continue
                sweeps.append(
                    ScanSweep(
                        t=t,
                        scanner_ip=scanner.ip,
                        kind="research",
                        mode=scanner.mode,
                        coverage=1.0,
                        targets_per_second=2**32 / _RESEARCH_SWEEP_DURATION,
                        ttl=linux_observed_ttl(ttl_rng),
                        duration=_RESEARCH_SWEEP_DURATION,
                    )
                )
        return sweeps

    def malicious_sweeps(self):
        """Daily sweeps of the malicious scanner population (scaled).

        Scanner IPs are drawn from a large bot-address space; each active
        scanner-day becomes one partial-coverage sweep.  A fraction of
        scanner IPs recur day-to-day (persistent scan boxes), the rest churn.
        """
        rng = self._rng.child("malicious")
        ttl_rng = self._rng.child("malicious-ttl")
        sweeps = []
        persistent = {}
        day = self._start
        while day < self._end:
            active_full = MALICIOUS_DAILY_ACTIVE_FULL(day)
            n_active = max(1, int(rng.poisson(active_full * self.scanner_scale)))
            # Split the day's aggregate coverage across the active scanners,
            # heavy-tailed (a few fast scanners, many slow ones).
            total_coverage = MALICIOUS_DAILY_COVERAGE_TOTAL(day)
            shares = rng.bounded_pareto(0.8, 1.0, 100.0, size=n_active)
            shares = shares / shares.sum()
            for slot in range(n_active):
                if slot in persistent and rng.random() < 0.6:
                    ip = persistent[slot]
                else:
                    ip = int(rng.integers(0x0B000000, 0xDF000000))
                    persistent[slot] = ip
                # Mostly monlist reconnaissance; interest in version grows
                # over time (§3.3: 19% of scanners by the final sample).
                version_p = 0.04 if day < date_to_sim(2014, 2, 15) else 0.16
                mode = 6 if rng.random() < version_p else 7
                sweeps.append(
                    ScanSweep(
                        t=day + float(rng.uniform(0, DAY)),
                        scanner_ip=ip,
                        kind="malicious",
                        mode=mode,
                        coverage=min(1.0, max(1e-7, total_coverage * float(shares[slot]))),
                        targets_per_second=float(rng.uniform(50, 5000)),
                        ttl=linux_observed_ttl(ttl_rng),
                        duration=DAY * 0.5,
                    )
                )
            day += DAY
        return sweeps

    def all_sweeps(self):
        """Research + malicious sweeps, sorted by time."""
        sweeps = self.research_sweeps() + self.malicious_sweeps()
        sweeps.sort(key=lambda s: s.t)
        return sweeps
