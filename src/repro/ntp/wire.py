"""Binary encode/decode for NTP packets (modes 3/4, 6, and 7).

All multi-byte fields are big-endian, as on the wire.  The decoder functions
are the ones the analysis pipeline uses to re-parse captured ONP response
packets, so they are strict: malformed input raises :class:`WireError` rather
than yielding half-parsed garbage.
"""

import struct
from dataclasses import dataclass, field

import numpy as np

from repro.ntp.constants import (
    MODE3_PACKET_SIZE,
    MODE6_HEADER_SIZE,
    MODE7_HEADER_SIZE,
    MODE_CLIENT,
    MODE_CONTROL,
    MODE_PRIVATE,
    MODE_SERVER,
    MON_ENTRY_V1_SIZE,
    MON_ENTRY_V2_SIZE,
    VN_NTPV2,
    VN_NTPV4,
)

__all__ = [
    "WireError",
    "MonitorEntry",
    "Mode7Packet",
    "Mode6Packet",
    "Mode3Packet",
    "MON_V1_DTYPE",
    "MON_V2_DTYPE",
    "monitor_dtype_for",
    "encode_mode7_request",
    "encode_mode7_response",
    "encode_mode7_response_raw",
    "decode_mode7",
    "decode_mode7_stream",
    "encode_monitor_entry",
    "decode_monitor_entries",
    "decode_monitor_entries_block",
    "encode_mode6_request",
    "encode_mode6_response",
    "decode_mode6",
    "encode_mode3",
    "encode_mode4",
    "decode_mode3_or_4",
    "mode_of",
]

_U32_MAX = 2**32 - 1


class WireError(ValueError):
    """Raised when a buffer cannot be parsed as the expected packet type."""


def mode_of(data):
    """The NTP association mode of a raw packet (low 3 bits of byte 0)."""
    if not data:
        raise WireError("empty packet")
    return data[0] & 0x07


# ---------------------------------------------------------------------------
# Monitor (monlist) entries
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class MonitorEntry:
    """One decoded monlist entry, version-independent.

    ``last_int``/``first_int`` are seconds since the client was last/first
    seen, as of the moment the response was generated (this is what ntpdc
    prints as "last seen" and what drives "inter-arrival").
    """

    last_int: int
    first_int: int
    count: int
    addr: int
    daddr: int
    flags: int
    port: int
    mode: int
    version: int
    restr: int = 0

    @property
    def avg_interval(self):
        """Average inter-arrival seconds, as ntpdc derives it."""
        if self.count <= 1:
            return 0.0
        return (self.first_int - self.last_int) / (self.count - 1)


_V2_STRUCT = struct.Struct(">IIIIIIIHBB4x4x16x16x")
_V1_STRUCT = struct.Struct(">IIIIIIHBB4x")

assert _V2_STRUCT.size == MON_ENTRY_V2_SIZE
assert _V1_STRUCT.size == MON_ENTRY_V1_SIZE

#: Big-endian on-wire monitor-entry layouts, mirroring ``_V2_STRUCT`` /
#: ``_V1_STRUCT`` field-for-field (the pad bytes land in the dtype gaps).
#: Shared by the bulk encoder (:mod:`repro.ntp.monlist`) and the block
#: decoder below, so the wire layout is defined in exactly one place.
MON_V2_DTYPE = np.dtype(
    {
        "names": ["last", "first", "restr", "count", "addr", "daddr", "flags", "port", "mode", "version"],
        "formats": [">u4", ">u4", ">u4", ">u4", ">u4", ">u4", ">u4", ">u2", "u1", "u1"],
        "offsets": [0, 4, 8, 12, 16, 20, 24, 28, 30, 31],
        "itemsize": MON_ENTRY_V2_SIZE,
    }
)
MON_V1_DTYPE = np.dtype(
    {
        "names": ["last", "first", "count", "addr", "daddr", "flags", "port", "mode", "version"],
        "formats": [">u4", ">u4", ">u4", ">u4", ">u4", ">u4", ">u2", "u1", "u1"],
        "offsets": [0, 4, 8, 12, 16, 20, 24, 26, 27],
        "itemsize": MON_ENTRY_V1_SIZE,
    }
)

#: Below this many entries the per-array NumPy overhead exceeds the struct
#: loop (same crossover as the encoder's ``_BULK_RENDER_MIN``).
_BLOCK_DECODE_MIN = 12


def monitor_dtype_for(item_size):
    """The on-wire structured dtype for a monitor item size (32 or 72 B)."""
    if item_size == MON_ENTRY_V2_SIZE:
        return MON_V2_DTYPE
    if item_size == MON_ENTRY_V1_SIZE:
        return MON_V1_DTYPE
    raise WireError(f"unsupported monitor item size {item_size}")


def _clamp_u32(value):
    return min(max(int(value), 0), _U32_MAX)


def encode_monitor_fields(
    entry_version, last_int, first_int, count, addr, port, mode, version, daddr=0, flags=0, restr=0
):
    """Encode raw monitor-entry fields as v1 (32 B) or v2 (72 B) bytes.

    The allocation-free core of :func:`encode_monitor_entry`; bulk table
    rendering calls it directly so the hot path never materializes a
    :class:`MonitorEntry` per record.
    """
    if entry_version == 2:
        return _V2_STRUCT.pack(
            _clamp_u32(last_int),
            _clamp_u32(first_int),
            _clamp_u32(restr),
            _clamp_u32(count),
            addr & _U32_MAX,
            daddr & _U32_MAX,
            flags & _U32_MAX,
            port & 0xFFFF,
            mode & 0xFF,
            version & 0xFF,
        )
    if entry_version == 1:
        return _V1_STRUCT.pack(
            _clamp_u32(last_int),
            _clamp_u32(first_int),
            _clamp_u32(count),
            addr & _U32_MAX,
            daddr & _U32_MAX,
            flags & _U32_MAX,
            port & 0xFFFF,
            mode & 0xFF,
            version & 0xFF,
        )
    raise WireError(f"unknown monitor entry version {entry_version}")


def encode_monitor_entry(entry, entry_version):
    """Encode a :class:`MonitorEntry` as v1 (32 B) or v2 (72 B) bytes."""
    return encode_monitor_fields(
        entry_version,
        entry.last_int,
        entry.first_int,
        entry.count,
        entry.addr,
        entry.port,
        entry.mode,
        entry.version,
        daddr=entry.daddr,
        flags=entry.flags,
        restr=entry.restr,
    )


def decode_monitor_entries(data, item_size, n_items):
    """Decode ``n_items`` fixed-size entries from a response data area."""
    if item_size == MON_ENTRY_V2_SIZE:
        unpack = _V2_STRUCT.unpack_from
        v2 = True
    elif item_size == MON_ENTRY_V1_SIZE:
        unpack = _V1_STRUCT.unpack_from
        v2 = False
    else:
        raise WireError(f"unsupported monitor item size {item_size}")
    if len(data) < item_size * n_items:
        raise WireError("truncated monitor data area")
    entries = []
    for i in range(n_items):
        fields = unpack(data, i * item_size)
        if v2:
            last_int, first_int, restr, count, addr, daddr, flags, port, mode, ver = fields
        else:
            last_int, first_int, count, addr, daddr, flags, port, mode, ver = fields
            restr = 0
        entries.append(
            MonitorEntry(
                last_int=last_int,
                first_int=first_int,
                count=count,
                addr=addr,
                daddr=daddr,
                flags=flags,
                port=port,
                mode=mode,
                version=ver,
                restr=restr,
            )
        )
    return entries


def decode_monitor_entries_block(data, item_size, n_items):
    """Vectorized :func:`decode_monitor_entries` for well-formed data areas.

    One ``np.frombuffer`` with the shared structured dtype replaces the
    per-entry ``struct.unpack_from`` loop; entry objects are then built
    without re-running ``__init__`` per field tuple.  Small areas fall back
    to the scalar loop, where the fixed NumPy overhead would dominate.
    Output is equal to :func:`decode_monitor_entries` entry-for-entry.
    """
    if n_items < _BLOCK_DECODE_MIN:
        return decode_monitor_entries(data, item_size, n_items)
    if item_size == MON_ENTRY_V2_SIZE:
        dtype = MON_V2_DTYPE
        v2 = True
    elif item_size == MON_ENTRY_V1_SIZE:
        dtype = MON_V1_DTYPE
        v2 = False
    else:
        raise WireError(f"unsupported monitor item size {item_size}")
    if len(data) < item_size * n_items:
        raise WireError("truncated monitor data area")
    arr = np.frombuffer(data, dtype=dtype, count=n_items)
    entries = []
    append = entries.append
    new = MonitorEntry.__new__
    cls = MonitorEntry
    if v2:
        for last_int, first_int, restr, count, addr, daddr, flags, port, mode, ver in arr.tolist():
            e = new(cls)
            e.__dict__.update(
                last_int=last_int,
                first_int=first_int,
                count=count,
                addr=addr,
                daddr=daddr,
                flags=flags,
                port=port,
                mode=mode,
                version=ver,
                restr=restr,
            )
            append(e)
    else:
        for last_int, first_int, count, addr, daddr, flags, port, mode, ver in arr.tolist():
            e = new(cls)
            e.__dict__.update(
                last_int=last_int,
                first_int=first_int,
                count=count,
                addr=addr,
                daddr=daddr,
                flags=flags,
                port=port,
                mode=mode,
                version=ver,
                restr=0,
            )
            append(e)
    return entries


# ---------------------------------------------------------------------------
# Mode 7 (private / ntpdc)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Mode7Packet:
    """A decoded mode-7 packet (request or response)."""

    response: bool
    more: bool
    version: int
    sequence: int
    implementation: int
    request_code: int
    err: int
    n_items: int
    item_size: int
    data: bytes = b""
    items: tuple = field(default_factory=tuple)


def encode_mode7_request(implementation, request_code, version=VN_NTPV2):
    """A minimal 8-byte mode-7 request (the single ONP probe packet)."""
    byte0 = ((version & 0x07) << 3) | MODE_PRIVATE
    return struct.pack(">BBBBHH", byte0, 0, implementation & 0xFF, request_code & 0xFF, 0, 0)


def encode_mode7_response(
    implementation,
    request_code,
    sequence,
    more,
    items,
    item_size,
    err=0,
    version=VN_NTPV2,
):
    """One mode-7 response packet carrying pre-encoded fixed-size items."""
    data = b"".join(items)
    if item_size and len(data) != item_size * len(items):
        raise WireError("item byte length disagrees with item_size")
    return encode_mode7_response_raw(
        implementation,
        request_code,
        sequence,
        more,
        data,
        len(items),
        item_size,
        err=err,
        version=version,
    )


def encode_mode7_response_raw(
    implementation,
    request_code,
    sequence,
    more,
    data,
    n_items,
    item_size,
    err=0,
    version=VN_NTPV2,
):
    """One mode-7 response packet from an already-encoded data area.

    The bulk render path encodes a whole table into one contiguous blob and
    slices per-packet data areas out of it; this frames such a slice with
    the same header bytes :func:`encode_mode7_response` would produce for
    the individual items.
    """
    if sequence > 127 or sequence < 0:
        raise WireError("mode-7 sequence is a 7-bit field")
    byte0 = 0x80 | (0x40 if more else 0) | ((version & 0x07) << 3) | MODE_PRIVATE
    header = struct.pack(
        ">BBBBHH",
        byte0,
        sequence & 0x7F,
        implementation & 0xFF,
        request_code & 0xFF,
        ((err & 0x0F) << 12) | (n_items & 0x0FFF),
        item_size & 0x0FFF,
    )
    return header + data


def decode_mode7(data):
    """Decode a mode-7 packet, including its monitor entries when present."""
    if len(data) < MODE7_HEADER_SIZE:
        raise WireError("short mode-7 packet")
    byte0, byte1, impl, req, err_items, size_field = struct.unpack_from(">BBBBHH", data)
    if byte0 & 0x07 != MODE_PRIVATE:
        raise WireError("not a mode-7 packet")
    response = bool(byte0 & 0x80)
    more = bool(byte0 & 0x40)
    version = (byte0 >> 3) & 0x07
    sequence = byte1 & 0x7F
    err = (err_items >> 12) & 0x0F
    n_items = err_items & 0x0FFF
    item_size = size_field & 0x0FFF
    body = data[MODE7_HEADER_SIZE:]
    items = ()
    if response and n_items and item_size in (MON_ENTRY_V1_SIZE, MON_ENTRY_V2_SIZE):
        items = tuple(decode_monitor_entries(body, item_size, n_items))
    return Mode7Packet(
        response=response,
        more=more,
        version=version,
        sequence=sequence,
        implementation=impl,
        request_code=req,
        err=err,
        n_items=n_items,
        item_size=item_size,
        data=body,
        items=items,
    )


def decode_mode7_stream(packets):
    """Best-effort decode of a captured packet stream.

    Returns ``(decoded, n_undecodable)``: every packet that parses as
    mode 7, in arrival order, plus the count of packets that did not.
    The strict :func:`decode_mode7` contract (only :class:`WireError` on
    malformed input) is what makes this salvage loop safe.
    """
    decoded = []
    n_undecodable = 0
    for packet in packets:
        try:
            decoded.append(decode_mode7(packet))
        except WireError:
            n_undecodable += 1
    return decoded, n_undecodable


# ---------------------------------------------------------------------------
# Mode 6 (control)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Mode6Packet:
    """A decoded mode-6 control packet."""

    response: bool
    error: bool
    more: bool
    opcode: int
    sequence: int
    status: int
    association_id: int
    offset: int
    count: int
    data: bytes = b""


def _mode6_header(opcode, sequence, response, more, status, assoc, offset, count, version):
    byte0 = ((version & 0x07) << 3) | MODE_CONTROL
    byte1 = (0x80 if response else 0) | (0x20 if more else 0) | (opcode & 0x1F)
    return struct.pack(">BBHHHHH", byte0, byte1, sequence, status, assoc, offset, count)


def encode_mode6_request(opcode, sequence=1, association_id=0, version=VN_NTPV2):
    """A 12-byte mode-6 request (e.g. READVAR, the ``version`` probe)."""
    return _mode6_header(opcode, sequence, False, False, 0, association_id, 0, 0, version)


def encode_mode6_response(
    opcode,
    data,
    sequence=1,
    offset=0,
    more=False,
    status=0,
    association_id=0,
    version=VN_NTPV2,
):
    """One mode-6 response fragment carrying ``data``."""
    if len(data) > 0xFFFF:
        raise WireError("mode-6 fragment too large")
    header = _mode6_header(
        opcode, sequence, True, more, status, association_id, offset, len(data), version
    )
    padding = b"\x00" * ((4 - len(data) % 4) % 4)
    return header + bytes(data) + padding


def decode_mode6(data):
    """Decode a mode-6 control packet."""
    if len(data) < MODE6_HEADER_SIZE:
        raise WireError("short mode-6 packet")
    byte0, byte1, sequence, status, assoc, offset, count = struct.unpack_from(">BBHHHHH", data)
    if byte0 & 0x07 != MODE_CONTROL:
        raise WireError("not a mode-6 packet")
    body = data[MODE6_HEADER_SIZE : MODE6_HEADER_SIZE + count]
    if len(body) < count:
        raise WireError("truncated mode-6 data")
    return Mode6Packet(
        response=bool(byte1 & 0x80),
        error=bool(byte1 & 0x40),
        more=bool(byte1 & 0x20),
        opcode=byte1 & 0x1F,
        sequence=sequence,
        status=status,
        association_id=assoc,
        offset=offset,
        count=count,
        data=bytes(body),
    )


# ---------------------------------------------------------------------------
# Modes 3/4 (client/server)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Mode3Packet:
    """A decoded standard NTP header (client or server)."""

    leap: int
    version: int
    mode: int
    stratum: int
    poll: int
    precision: int
    root_delay: int
    root_dispersion: int
    reference_id: int
    transmit_timestamp: int


_MODE3_STRUCT = struct.Struct(">BBbbIII8x8x8xQ")

assert _MODE3_STRUCT.size == MODE3_PACKET_SIZE


def _encode_mode3_or_4(mode, stratum, version, poll, precision, refid, transmit, leap):
    byte0 = ((leap & 0x03) << 6) | ((version & 0x07) << 3) | mode
    return _MODE3_STRUCT.pack(byte0, stratum & 0xFF, poll, precision, 0, 0, refid, transmit)


def encode_mode3(version=VN_NTPV4, poll=6, transmit=0):
    """A standard 48-byte client request."""
    return _encode_mode3_or_4(MODE_CLIENT, 0, version, poll, -20, 0, transmit, 0)


def encode_mode4(stratum, reference_id=0, version=VN_NTPV4, poll=6, transmit=0, leap=0):
    """A standard 48-byte server reply."""
    return _encode_mode3_or_4(MODE_SERVER, stratum, version, poll, -20, reference_id, transmit, leap)


def decode_mode3_or_4(data):
    """Decode a standard 48-byte NTP header (modes 1-5)."""
    if len(data) < MODE3_PACKET_SIZE:
        raise WireError("short NTP packet")
    byte0, stratum, poll, precision, delay, disp, refid, transmit = _MODE3_STRUCT.unpack_from(data)
    mode = byte0 & 0x07
    if mode in (MODE_CONTROL, MODE_PRIVATE):
        raise WireError(f"mode {mode} is not a standard NTP header")
    return Mode3Packet(
        leap=(byte0 >> 6) & 0x03,
        version=(byte0 >> 3) & 0x07,
        mode=mode,
        stratum=stratum,
        poll=poll,
        precision=precision,
        root_delay=delay,
        root_dispersion=disp,
        reference_id=refid,
        transmit_timestamp=transmit,
    )
