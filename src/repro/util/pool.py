"""Shared fork-pool plumbing for the build, parse, and verify pools.

Three subsystems shard work across processes — the world build
(:mod:`repro.scenario.world`), the corpus parser
(:mod:`repro.analysis.monlist_parse`), and the conformance matrix
(:mod:`repro.verify.runner`).  They all need the same three decisions
made the same way:

* how many CPUs are actually usable (cgroup/affinity aware, not just
  ``os.cpu_count()``),
* whether a pool is worth forking at all (a ``--jobs 8`` request on a
  one-CPU container must take the serial path rather than silently pay
  fork overhead for nothing), and
* how to ship a heavy context to workers without pickling it (set a
  module global before the pool forks; the child inherits it
  copy-on-write and only the small task index crosses the pipe).

This module is the single home for those decisions.  It deliberately
imports nothing else from ``repro`` so every layer can use it.
"""

from __future__ import annotations

import os
import time

__all__ = ["available_cpus", "fork_pool_gate", "ShardRunner"]


def available_cpus():
    """Usable CPU count: scheduler affinity when exposed (respects
    cgroup/taskset limits), falling back to the raw core count."""
    try:
        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):
        return os.cpu_count() or 1


def fork_pool_gate(jobs, n_tasks, min_tasks=2):
    """Decide whether a fork pool should engage.

    Returns ``(engaged, reason)``; ``reason`` is ``None`` when engaged,
    otherwise a stable human-readable string recorded in provenance
    (BENCH files, shard stats) so a silently-serial run is explainable
    after the fact.
    """
    if jobs <= 1:
        return False, "jobs <= 1: serial path requested"
    if n_tasks < min_tasks:
        if n_tasks <= 1:
            return False, "single task: nothing to parallelize"
        return False, f"{n_tasks} tasks < {min_tasks}: not worth forking"
    if available_cpus() <= 1:
        return False, "single CPU available: fork pool would add overhead"
    import multiprocessing

    try:
        multiprocessing.get_context("fork")
    except ValueError:
        return False, "fork start method unavailable on this platform"
    return True, None


#: Pre-fork worker state: ``(fn, ctx)``.  Set by :meth:`ShardRunner.map`
#: immediately before the pool forks so children inherit it
#: copy-on-write; only the integer task index is pickled per task.
_SHARD_STATE = None


def _shard_worker(index):
    """Run one task in a worker: returns ``(index, seconds, result)``."""
    fn, ctx = _SHARD_STATE
    t0 = time.perf_counter()
    result = fn(ctx, index)
    return index, time.perf_counter() - t0, result


class ShardRunner:
    """Deterministic fan-out of ``fn(ctx, i) for i in range(n_tasks)``.

    The contract build phases rely on: results come back **in task
    order** regardless of completion order, worker exceptions propagate
    to the caller (a build error must fail loudly, never produce a
    silently truncated world), and the serial fallback calls the exact
    same ``fn`` with the exact same indices — so the merged output is
    identical at any ``jobs`` by construction.

    Per-phase engagement decisions and per-task wall-clock timings are
    recorded in :attr:`stats` for BENCH provenance.
    """

    def __init__(self, jobs=1):
        self.jobs = max(1, int(jobs))
        #: phase name -> {engaged, reason, jobs, workers, tasks,
        #: cpu_count, task_seconds}
        self.stats = {}

    def map(self, phase, fn, ctx, n_tasks):
        """Run ``fn(ctx, i)`` for each task, returning results in order."""
        engaged, reason = fork_pool_gate(self.jobs, n_tasks)
        stat = {
            "engaged": engaged,
            "reason": reason,
            "jobs": self.jobs,
            "workers": min(self.jobs, n_tasks) if engaged else 1,
            "tasks": n_tasks,
            "cpu_count": available_cpus(),
            "task_seconds": [0.0] * n_tasks,
        }
        self.stats[phase] = stat
        if not engaged:
            results = [None] * n_tasks
            for i in range(n_tasks):
                t0 = time.perf_counter()
                results[i] = fn(ctx, i)
                stat["task_seconds"][i] = round(time.perf_counter() - t0, 6)
            return results
        return self._map_pooled(stat, fn, ctx, n_tasks)

    def _map_pooled(self, stat, fn, ctx, n_tasks):
        import multiprocessing
        from concurrent.futures import ProcessPoolExecutor, as_completed

        context = multiprocessing.get_context("fork")
        global _SHARD_STATE
        _SHARD_STATE = (fn, ctx)
        try:
            results = [None] * n_tasks
            with ProcessPoolExecutor(
                max_workers=stat["workers"], mp_context=context
            ) as pool:
                futures = [pool.submit(_shard_worker, i) for i in range(n_tasks)]
                for future in as_completed(futures):
                    index, seconds, result = future.result()
                    results[index] = result
                    stat["task_seconds"][index] = round(seconds, 6)
        finally:
            _SHARD_STATE = None
        return results
