"""Tests for the regional-ISP vantage points (using the shared world)."""

import numpy as np
import pytest

from repro.util import date_to_sim


def test_three_sites_exist(world):
    assert set(world.isp.sites) == {"merit", "frgp", "csu"}


def test_local_amplifiers_planted(world):
    merit = world.local_amplifiers["REGIONAL-MI"]
    frgp = world.local_amplifiers["FRGP-CO"]
    csu = world.local_amplifiers["CSU-EDU"]
    assert len(merit) == 50
    assert len(frgp) == 48
    assert len(csu) == 9


def test_csu_amplifiers_secured_jan24(world):
    jan24 = date_to_sim(2014, 1, 24)
    for host in world.local_amplifiers["CSU-EDU"]:
        assert host.remediation_time == jan24
        assert not host.monlist_active(jan24 + 1)


def test_merit_ntp_egress_rises(world):
    merit = world.isp.sites["merit"]
    out = merit.hourly_mbps(merit.ntp_out)
    early = out[: 24 * 10].mean()  # early December
    feb_start = int((date_to_sim(2014, 2, 1) - merit.start) // 3600)
    feb = out[feb_start : feb_start + 24 * 10].mean()
    assert feb > 3 * max(early, 1e-9)


def test_csu_traffic_drops_after_remediation(world):
    csu = world.isp.sites["csu"]
    out = csu.hourly_mbps(csu.ntp_out)
    jan24 = int((date_to_sim(2014, 1, 24) - csu.start) // 3600)
    before = out[max(0, jan24 - 24 * 10) : jan24].mean()
    after = out[jan24 + 24 * 3 : jan24 + 24 * 13].mean()
    assert after < before


def test_frgp_scripted_spike_visible(world):
    frgp = world.isp.sites["frgp"]
    reflected = frgp.hourly_mbps(frgp.ntp_in_reflected)
    feb10 = int((date_to_sim(2014, 2, 10) - frgp.start) // 3600)
    spike_window = reflected[feb10 : feb10 + 24].max()
    # Baseline from hours outside the scripted Feb 10-12 event: with few
    # ambient reflected hours at this scale, a median over the whole
    # series would be dominated by the spike it is supposed to dwarf.
    ambient = np.concatenate([reflected[:feb10], reflected[feb10 + 72 :]])
    positive = ambient[ambient > 0]
    baseline = np.median(positive) if positive.size else 0.0
    assert spike_window > 5 * max(baseline, 1e-9)


def test_amplifier_forensics_thresholds(world):
    merit = world.isp.sites["merit"]
    for forensics in merit.qualified_amplifiers().values():
        assert forensics.bytes_sent >= 10e6
        assert forensics.baf > 5


def test_top_amplifiers_have_high_baf(world):
    merit = world.isp.sites["merit"]
    top = merit.top_amplifiers(5)
    assert top
    assert top[0].baf > 100
    assert all(a.baf >= b.baf for a, b in zip(top, top[1:]))


def test_victim_forensics_thresholds(world):
    merit = world.isp.sites["merit"]
    for victim in merit.qualified_victims().values():
        assert victim.bytes_received >= 100e3


def test_victims_seen_at_both_sites(world):
    common = world.isp.common_victims("merit", "frgp")
    assert len(common) >= 1


def test_victim_series_matches_hourly_totals(world):
    merit = world.isp.sites["merit"]
    if not merit.victim_forensics:
        pytest.skip("no merit victims in this world")
    top = merit.top_victims(1)
    if not top:
        pytest.skip("no qualified merit victims")
    series = merit.victim_series_mbps(top[0].ip)
    assert series.sum() > 0


def test_common_scanners_are_a_trickle_with_research(world):
    """Fig. 16: a trickle of common scanners per day, research among them."""
    import numpy as np

    common = world.isp.common_scanners("merit", "csu")
    research_ips = {s.scanner_ip for s in world.sweeps if s.kind == "research"}
    assert common
    research_days = sum(1 for ips in common.values() if ips & research_ips)
    assert research_days >= len(common) / 3
    assert np.median([len(ips) for ips in common.values()]) <= 25


def test_background_series_protocol_mix(world):
    from repro.util import RngStream

    merit = world.isp.sites["merit"]
    series = merit.background_series(RngStream(1, "bg").generator)
    assert set(series) == {"http", "https", "dns", "other"}
    assert series["http"].mean() > series["dns"].mean()
    total = sum(s.mean() for s in series.values())
    # 20 Gbps site at ~1.0x diurnal average, in bytes/hour.
    assert total == pytest.approx(20e9 / 8 * 3600, rel=0.2)
