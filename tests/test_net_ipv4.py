"""Tests for IPv4 helpers, including property-based round-trips."""

import pytest
from hypothesis import given, strategies as st

from repro.net import Prefix, format_ip, ip_in_prefix, parse_ip, slash24_of
from tests.strategies import ips


def test_parse_format_known_values():
    assert parse_ip("0.0.0.0") == 0
    assert parse_ip("255.255.255.255") == 2**32 - 1
    assert parse_ip("192.168.1.2") == 0xC0A80102
    assert format_ip(0xC0A80102) == "192.168.1.2"


@given(ips)
def test_ip_round_trip(ip):
    assert parse_ip(format_ip(ip)) == ip


def test_parse_rejects_garbage():
    for bad in ("1.2.3", "1.2.3.4.5", "256.0.0.1", "a.b.c.d"):
        with pytest.raises(ValueError):
            parse_ip(bad)


def test_format_rejects_out_of_range():
    with pytest.raises(ValueError):
        format_ip(2**32)
    with pytest.raises(ValueError):
        format_ip(-1)


@given(ips)
def test_slash24_clears_low_octet(ip):
    net = slash24_of(ip)
    assert net & 0xFF == 0
    assert net <= ip < net + 256


def test_prefix_parse_and_str():
    p = Prefix.parse("10.1.0.0/16")
    assert str(p) == "10.1.0.0/16"
    assert p.n_addresses == 65536
    assert p.first == parse_ip("10.1.0.0")
    assert p.last == parse_ip("10.1.255.255")


def test_prefix_normalizes_host_bits():
    p = Prefix(parse_ip("10.1.2.3"), 16)
    assert p.network == parse_ip("10.1.0.0")


def test_prefix_contains():
    p = Prefix.parse("10.1.0.0/16")
    assert p.contains(parse_ip("10.1.200.5"))
    assert not p.contains(parse_ip("10.2.0.0"))


def test_prefix_contains_prefix():
    outer = Prefix.parse("10.0.0.0/8")
    inner = Prefix.parse("10.5.0.0/16")
    assert outer.contains_prefix(inner)
    assert not inner.contains_prefix(outer)


def test_prefix_nth_and_bounds():
    p = Prefix.parse("10.1.0.0/30")
    assert p.nth(0) == p.first
    assert p.nth(3) == p.last
    with pytest.raises(IndexError):
        p.nth(4)


def test_prefix_subprefixes():
    p = Prefix.parse("10.0.0.0/23")
    subs = list(p.subprefixes(24))
    assert len(subs) == 2
    assert str(subs[0]) == "10.0.0.0/24"
    assert str(subs[1]) == "10.0.1.0/24"
    with pytest.raises(ValueError):
        list(p.subprefixes(22))


def test_prefix_rejects_bad_length():
    with pytest.raises(ValueError):
        Prefix(0, 33)
    with pytest.raises(ValueError):
        ip_in_prefix(0, 0, 40)


@given(ips, st.integers(min_value=0, max_value=32))
def test_prefix_membership_matches_helper(ip, length):
    p = Prefix(ip, length)
    assert p.contains(ip)
    assert ip_in_prefix(ip, p.network, length)
