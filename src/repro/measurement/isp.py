"""Regional-ISP vantage points (§7: Merit and FRGP/CSU).

Each site owns a slice of address space and exports flow-level views:

* hourly NTP volume series, split by direction and port role (Figures
  11/12): ``ntp_out`` (sport=123 leaving the site — local amplifier
  replies), ``ntp_in_reflected`` (sport=123 entering — attacks on local
  victims), and ``ntp_in_queries`` (dport=123 entering — spoofed/monitor
  queries toward local amplifiers);
* per-amplifier forensics over the site's analysis window (Table 5: BAF,
  unique victims, GB sent);
* per-victim forensics (Table 6 and Figures 13/15): volume, amplifier
  count, duration, and hourly series;
* detected scanners per day (Figure 16);
* background traffic by protocol for the all-protocols view (Figure 14).
"""

from collections import defaultdict
from dataclasses import dataclass, field

import numpy as np

from repro.measurement.capture_store import inline_array, maybe_spill_array
from repro.net.framing import MIN_ONWIRE_FRAME
from repro.population.amplifiers import estimate_monlist_reply_bytes
from repro.util.simtime import DAY, HOUR, date_to_sim

__all__ = ["SiteSpec", "SiteDataset", "IspMeasurement", "MERIT_WINDOW", "CSU_FRGP_WINDOW"]

#: Forensic analysis windows (§7.2): 12 days at Merit from Jan 25; 19 days
#: at CSU/FRGP from Jan 18.
MERIT_WINDOW = (date_to_sim(2014, 1, 25), date_to_sim(2014, 2, 6))
CSU_FRGP_WINDOW = (date_to_sim(2014, 1, 18), date_to_sim(2014, 2, 6))

#: Background traffic mix at a regional education ISP (Figure 14's bands).
_PROTOCOL_MIX = {"http": 0.46, "https": 0.13, "dns": 0.012}

#: A site flags a source as a scanner when it touches at least this many
#: local addresses in a day.
SCANNER_DETECTION_TARGETS = 250


@dataclass(frozen=True)
class SiteSpec:
    """One vantage point: a name, its ASNs, and its prefixes."""

    name: str
    asns: frozenset
    prefixes: tuple
    base_traffic_bps: float = 20e9

    def contains_ip(self, ip):
        return any(p.contains(ip) for p in self.prefixes)

    @property
    def n_addresses(self):
        return sum(p.n_addresses for p in self.prefixes)


@dataclass
class AmplifierForensics:
    """Per-amplifier accounting over the site's forensic window."""

    ip: int
    bytes_sent: float = 0.0
    bytes_received: float = 0.0
    victims: set = field(default_factory=set)

    @property
    def baf(self):
        """§7's BAF definition: ratio of bytes sent to bytes received."""
        if self.bytes_received == 0:
            return 0.0
        return self.bytes_sent / self.bytes_received

    @property
    def gb_sent(self):
        return self.bytes_sent / 1e9

    def qualifies(self):
        """§7's amplifier threshold: >= 10 MB sent and send/recv ratio > 5."""
        return self.bytes_sent >= 10e6 and self.baf > 5


@dataclass
class VictimForensics:
    """Per-victim accounting over the site's forensic window."""

    ip: int
    asn: int
    country: str
    bytes_received: float = 0.0
    bytes_sent_back: float = 0.0
    amplifiers: set = field(default_factory=set)
    first_seen: float = float("inf")
    last_seen: float = 0.0

    @property
    def gb(self):
        return self.bytes_received / 1e9

    @property
    def duration_hours(self):
        if self.last_seen <= self.first_seen:
            return 0.0
        return (self.last_seen - self.first_seen) / HOUR

    @property
    def baf(self):
        """Victim-side BAF: received over (query-direction) sent."""
        if self.bytes_sent_back == 0:
            return 0.0
        return self.bytes_received / self.bytes_sent_back

    def qualifies(self):
        """§7's victim threshold: >= 100 KB from an amplifier at ratio >= 100."""
        return self.bytes_received >= 100e3 and (
            self.bytes_sent_back == 0 or self.baf >= 100
        )


class SiteDataset:
    """Everything one vantage point measured."""

    def __init__(self, spec, start, end, window):
        self.spec = spec
        self.start = start
        self.end = end
        self.window = window
        n_hours = int((end - start) // HOUR) + 1
        self.ntp_out = np.zeros(n_hours)  # bytes per hour, sport=123 egress
        self.ntp_in_reflected = np.zeros(n_hours)  # sport=123 ingress (to victims)
        self.ntp_in_queries = np.zeros(n_hours)  # dport=123 ingress
        self.amplifier_forensics = {}
        self.victim_forensics = {}
        self.victim_hourly = defaultdict(float)  # (victim_ip, hour) -> bytes
        self.scanners_by_day = defaultdict(set)
        #: Compacted forms of the two dict accumulators above (see
        #: compact()): (ips, hours, bytes) arrays and (day, ip) pairs.
        self._victim_cols = None
        self._scanner_pairs = None
        self._background = None

    # -- helpers -------------------------------------------------------------------

    def _hour(self, t):
        return int((t - self.start) // HOUR)

    def _in_series(self, t):
        return self.start <= t < self.end

    def _spread(self, array, start, duration, total_bytes, victim_key=None):
        """Spread ``total_bytes`` across hourly bins over [start, start+dur)."""
        if duration <= 0:
            duration = 1.0
        rate = total_bytes / duration
        t = max(start, self.start)
        end = min(start + duration, self.end)
        while t < end:
            h = self._hour(t)
            bin_end = self.start + (h + 1) * HOUR
            span = min(end, bin_end) - t
            array[h] += rate * span
            if victim_key is not None:
                self.victim_hourly[(victim_key, h)] += rate * span
            t += span

    # -- compaction ----------------------------------------------------------------

    def compact(self):
        """Freeze the dict accumulators into flat arrays, spilled to
        unlinked memmaps past ``REPRO_SPILL_MB``.

        ``victim_hourly`` becomes three parallel (ip, hour, bytes) columns
        and ``scanners_by_day`` a (day, ip)-sorted pair array.  Later
        observations still work (they land in the emptied dict overlays
        and merge additively on the next compact), and every figure read
        below folds both layers, so outputs are unchanged.  Returns
        ``self`` so it chains.
        """
        items = self.victim_hourly
        ips = np.fromiter((k[0] for k in items), dtype=np.int64, count=len(items))
        hours = np.fromiter((k[1] for k in items), dtype=np.int64, count=len(items))
        volumes = np.fromiter(items.values(), dtype=np.float64, count=len(items))
        if self._victim_cols is not None:
            ips = np.concatenate([np.asarray(self._victim_cols[0]), ips])
            hours = np.concatenate([np.asarray(self._victim_cols[1]), hours])
            volumes = np.concatenate([np.asarray(self._victim_cols[2]), volumes])
        order = np.lexsort((hours, ips))
        ips, hours, volumes = ips[order], hours[order], volumes[order]
        if len(ips):
            first = np.ones(len(ips), dtype=bool)
            first[1:] = (ips[1:] != ips[:-1]) | (hours[1:] != hours[:-1])
            starts = np.flatnonzero(first)
            volumes = np.add.reduceat(volumes, starts)
            ips, hours = ips[starts], hours[starts]
        self._victim_cols = (
            maybe_spill_array(np.ascontiguousarray(ips)),
            maybe_spill_array(np.ascontiguousarray(hours)),
            maybe_spill_array(np.ascontiguousarray(volumes)),
        )
        self.victim_hourly = defaultdict(float)

        parts = []
        if self._scanner_pairs is not None and len(self._scanner_pairs):
            parts.append(np.asarray(self._scanner_pairs))
        for day, day_ips in self.scanners_by_day.items():
            pair = np.empty((len(day_ips), 2), dtype=np.int64)
            pair[:, 0] = day
            pair[:, 1] = np.fromiter(day_ips, dtype=np.int64, count=len(day_ips))
            parts.append(pair)
        if parts:
            pairs = np.concatenate(parts)
            order = np.lexsort((pairs[:, 1], pairs[:, 0]))
            pairs = pairs[order]
            keep = np.ones(len(pairs), dtype=bool)
            keep[1:] = (pairs[1:] != pairs[:-1]).any(axis=1)
            pairs = np.ascontiguousarray(pairs[keep])
        else:
            pairs = np.empty((0, 2), dtype=np.int64)
        self._scanner_pairs = maybe_spill_array(pairs)
        self.scanners_by_day = defaultdict(set)
        return self

    def scanner_days(self):
        """Every day index with at least one detected scanner."""
        days = {int(d) for d in self.scanners_by_day}
        if self._scanner_pairs is not None and len(self._scanner_pairs):
            days.update(np.unique(self._scanner_pairs[:, 0]).tolist())
        return days

    def scanners_on(self, day):
        """The set of scanner IPs detected on one day (both layers)."""
        ips = set(self.scanners_by_day.get(day, ()))
        pairs = self._scanner_pairs
        if pairs is not None and len(pairs):
            days = pairs[:, 0]
            lo = np.searchsorted(days, day, side="left")
            hi = np.searchsorted(days, day, side="right")
            ips.update(pairs[lo:hi, 1].tolist())
        return ips

    # -- views ---------------------------------------------------------------------

    def hourly_mbps(self, array):
        """Convert a bytes-per-hour series to MB/s (the paper's axes)."""
        return array / HOUR / 1e6

    def qualified_amplifiers(self):
        return {ip: a for ip, a in self.amplifier_forensics.items() if a.qualifies()}

    def qualified_victims(self):
        return {ip: v for ip, v in self.victim_forensics.items() if v.qualifies()}

    def top_amplifiers(self, n=5):
        pool = sorted(
            self.qualified_amplifiers().values(), key=lambda a: a.baf, reverse=True
        )
        return pool[:n]

    def top_victims(self, n=5):
        pool = sorted(self.qualified_victims().values(), key=lambda v: v.gb, reverse=True)
        return pool[:n]

    def victim_series_mbps(self, victim_ip):
        """Hourly MB/s destined to one victim (Figure 13/15)."""
        n_hours = len(self.ntp_out)
        series = np.zeros(n_hours)
        if self._victim_cols is not None:
            ips, hours, volumes = self._victim_cols
            mask = ips == victim_ip
            hour_hits = hours[mask]
            in_range = (hour_hits >= 0) & (hour_hits < n_hours)
            series[hour_hits[in_range]] += volumes[mask][in_range]
        for (ip, hour), volume in self.victim_hourly.items():
            if ip == victim_ip and 0 <= hour < n_hours:
                series[hour] += volume
        return series / HOUR / 1e6

    def background_series(self, rng):
        """{protocol: hourly bytes} for the all-protocols view (Fig. 14)."""
        if self._background is not None:
            return self._background
        n_hours = len(self.ntp_out)
        hours = np.arange(n_hours)
        # Diurnal swing around the site's base rate.
        diurnal = 1.0 + 0.25 * np.sin(2 * np.pi * ((hours % 24) - 15) / 24.0)
        noise = 1.0 + 0.05 * rng.normal(size=n_hours)
        total = self.spec.base_traffic_bps / 8.0 * HOUR * diurnal * noise
        series = {}
        accounted = np.zeros(n_hours)
        for protocol, share in _PROTOCOL_MIX.items():
            series[protocol] = total * share
            accounted += series[protocol]
        series["other"] = np.clip(total - accounted, 0.0, None)
        self._background = series
        return series

    # -- pickling ------------------------------------------------------------------
    # Cached worlds must be self-contained: memmap-backed compact arrays
    # are re-inlined so the pickle never references an unlinked temp file.

    def __getstate__(self):
        state = self.__dict__.copy()
        if state.get("_victim_cols") is not None:
            state["_victim_cols"] = tuple(inline_array(a) for a in state["_victim_cols"])
        if state.get("_scanner_pairs") is not None:
            state["_scanner_pairs"] = inline_array(state["_scanner_pairs"])
        return state

    def __setstate__(self, state):
        # Worlds cached before the compacted layout predate these slots.
        state.setdefault("_victim_cols", None)
        state.setdefault("_scanner_pairs", None)
        self.__dict__.update(state)


class IspMeasurement:
    """Builds the per-site datasets from the simulated world."""

    def __init__(self, registry, start=None, end=None):
        self._registry = registry
        start = date_to_sim(2013, 12, 1) if start is None else start
        end = date_to_sim(2014, 3, 1) if end is None else end
        merit = registry.special["REGIONAL-MI"]
        frgp = registry.special["FRGP-CO"]
        csu = registry.special["CSU-EDU"]
        self.sites = {
            "merit": SiteDataset(
                SiteSpec(
                    name="merit",
                    asns=frozenset({merit.asn}),
                    prefixes=tuple(merit.prefixes),
                    base_traffic_bps=20e9,
                ),
                start,
                end,
                MERIT_WINDOW,
            ),
            "frgp": SiteDataset(
                SiteSpec(
                    name="frgp",
                    asns=frozenset({frgp.asn, csu.asn}),
                    prefixes=tuple(frgp.prefixes) + tuple(csu.prefixes),
                    base_traffic_bps=8e9,
                ),
                start,
                end,
                CSU_FRGP_WINDOW,
            ),
            "csu": SiteDataset(
                SiteSpec(
                    name="csu",
                    asns=frozenset({csu.asn}),
                    prefixes=tuple(csu.prefixes),
                    base_traffic_bps=4e9,
                ),
                start,
                end,
                CSU_FRGP_WINDOW,
            ),
        }

    # -- attack observation ----------------------------------------------------------

    #: A single amplifier's sustained uplink: ~200 Mbps.  Loop-pathology
    #: boxes cannot reflect faster than they can transmit (§3.4 observed
    #: steady ~50 Mbps streams with spikes to ~500 Mbps).
    AMPLIFIER_UPLINK_BPS = 200e6

    def observe_attacks(self, attacks):
        """Fold every attack's local legs into the site datasets."""
        for attack in attacks:
            queries = attack.query_rate_per_amp * attack.duration
            for host in attack.amplifiers:
                uplink_cap = self.AMPLIFIER_UPLINK_BPS / 8.0 * attack.duration
                reply_bytes = min(
                    estimate_monlist_reply_bytes(host) * queries, uplink_cap
                )
                query_bytes = queries * MIN_ONWIRE_FRAME
                self._observe_leg(attack, host, reply_bytes, query_bytes)

    def _observe_leg(self, attack, host, reply_bytes, query_bytes):
        for site in self.sites.values():
            amp_local = host.asn in site.spec.asns
            victim_local = attack.victim.asn in site.spec.asns
            if not amp_local and not victim_local:
                continue
            in_window = site.window[0] <= attack.start < site.window[1]
            if amp_local and site._in_series(attack.start):
                # Egress toward the victim: this is also the per-victim
                # series Figure 13 plots (top victims *of the site's
                # amplifiers*).
                site._spread(
                    site.ntp_out,
                    attack.start,
                    attack.duration,
                    reply_bytes,
                    victim_key=attack.victim.ip,
                )
                site._spread(site.ntp_in_queries, attack.start, attack.duration, query_bytes)
            if victim_local and site._in_series(attack.start):
                site._spread(
                    site.ntp_in_reflected,
                    attack.start,
                    attack.duration,
                    reply_bytes,
                    victim_key=attack.victim.ip,
                )
            if amp_local and in_window:
                forensics = site.amplifier_forensics.setdefault(
                    host.ip, AmplifierForensics(ip=host.ip)
                )
                forensics.bytes_sent += reply_bytes
                forensics.bytes_received += query_bytes
                forensics.victims.add(attack.victim.ip)
            if amp_local and in_window:
                victim = attack.victim
                record = site.victim_forensics.setdefault(
                    victim.ip,
                    VictimForensics(ip=victim.ip, asn=victim.asn, country=victim.country),
                )
                record.bytes_received += reply_bytes
                record.bytes_sent_back += query_bytes
                record.amplifiers.add(host.ip)
                record.first_seen = min(record.first_seen, attack.start)
                record.last_seen = max(record.last_seen, attack.end)

    # -- probe / scan observation ------------------------------------------------------

    def observe_probe_reply(self, host, t, total_on_wire_bytes, duration=60.0):
        """A measurement probe's reply leaving a local amplifier (mega
        amplifiers triggered by the ONP probe produce visible spikes)."""
        for site in self.sites.values():
            if host.asn in site.spec.asns and site._in_series(t):
                site._spread(site.ntp_out, t, duration, total_on_wire_bytes)

    def observe_sweeps(self, sweeps, scanner_scale=1.0):
        """Scanner detection per site (Figure 16's common-scanner view).

        ``scanner_scale``: when the malicious scanner *count* is thinned,
        each remaining scanner carries proportionally more coverage; the
        detection threshold is de-scaled so per-scanner detectability
        matches the full-scale ecosystem.
        """
        threshold = SCANNER_DETECTION_TARGETS / max(scanner_scale, 1e-9)
        for sweep in sweeps:
            for site in self.sites.values():
                expected_targets = sweep.coverage * site.spec.n_addresses
                if sweep.kind != "research" and expected_targets < threshold:
                    continue
                if sweep.kind == "research" and expected_targets < SCANNER_DETECTION_TARGETS:
                    continue
                day = int(sweep.t // DAY)
                site.scanners_by_day[day].add(sweep.scanner_ip)
                if site._in_series(sweep.t):
                    site._spread(
                        site.ntp_in_queries,
                        sweep.t,
                        sweep.duration,
                        expected_targets * MIN_ONWIRE_FRAME,
                    )

    # -- cross-site views -----------------------------------------------------------------

    def common_victims(self, a="merit", b="frgp"):
        """Victim IPs observed at both sites (the paper found 291)."""
        return set(self.sites[a].victim_forensics) & set(self.sites[b].victim_forensics)

    def common_scanners(self, a="merit", b="csu"):
        """{day: scanner IPs detected at both sites that day}."""
        out = {}
        site_a, site_b = self.sites[a], self.sites[b]
        days = site_a.scanner_days() | site_b.scanner_days()
        for day in sorted(days):
            both = site_a.scanners_on(day) & site_b.scanners_on(day)
            if both:
                out[day] = both
        return out

    def compact(self):
        """Compact every site's dict accumulators (see
        :meth:`SiteDataset.compact`); returns ``self`` so it chains."""
        for site in self.sites.values():
            site.compact()
        return self
