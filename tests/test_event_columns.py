"""Columnar corpus equivalence: ``EventColumns`` vs the object pipeline.

The columnar fast path must be invisible.  For any corpus — clean or
mangled by the full mutation menagerie (truncation, bit flips, drops,
reorders, duplicates) — decoding straight out of the packed blob
produces tables, entries, and :class:`ParseStats` identical to
``parse_sample``'s object path, advances the parse-once ledger by the
same amount, and every aggregation kernel (victimology, concentration,
churn, versions) computes the same report from either representation.
These properties are what let the renderers switch corpus
representation without a byte of artifact drift.
"""

import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.churn import churn_report
from repro.analysis.concentration import as_concentration
from repro.analysis.event_columns import (
    ColumnarSample,
    EventColumns,
    build_event_columns,
    columns_for_sample,
)
from repro.analysis.monlist_parse import parse_call_count, parse_sample
from repro.analysis.versions import parse_version_samples
from repro.analysis.victimology import (
    ColumnarVictimologyReport,
    VictimologyReport,
    analyze_dataset,
)
from repro.measurement.capture_store import PackedCapturesBuilder
from repro.measurement.onp import OnpSample
from repro.ntp import MonlistTable, encode_mode6_response
from repro.ntp.constants import CTL_OP_READVAR, IMPL_XNTPD, MODE6_DATA_AREA
from repro.ntp.variables import render_system_variables
from tests.strategies import BASE_PACKET_SETS, build_packets

# ---------------------------------------------------------------------------
# Fixture builders
# ---------------------------------------------------------------------------


def attack_packets(n_victims, hits=5, now=1000.0):
    """A monlist response whose entries pass the §4.2 victim filter
    (mode 7, count >= 3, inter-arrival <= 3600 s)."""
    table = MonlistTable(capacity=600)
    for i in range(n_victims):
        for k in range(hits):
            table.record(5000 + i, 80, 7, 4, now=float(i * 40 + k * 10))
    return tuple(table.render_response_packets(now, 2, IMPL_XNTPD))


def packed_sample(capture_specs, t=1000.0, mode=7, outage=False, coverage=1.0):
    """An :class:`OnpSample` over a real packed blob — the fast path's
    input shape.  ``capture_specs`` is ``[(target_ip, packets, n_repeats)]``."""
    builder = PackedCapturesBuilder(t)
    for target_ip, packets, n_repeats in capture_specs:
        builder.add(target_ip, packets, n_repeats=n_repeats)
    sample = OnpSample(t=t, mode=mode, outage=outage, coverage=coverage)
    sample.attach_packed(builder.finish())
    return sample


def mutate(packets, mutation, data):
    """Apply one corpus fault; mirrors the test_decode_fast fuzzers."""
    packets = list(packets)
    if mutation == "bitflip":
        index = data.draw(st.integers(min_value=0, max_value=len(packets) - 1))
        victim = bytearray(packets[index])
        position = data.draw(st.integers(min_value=0, max_value=len(victim) - 1))
        victim[position] ^= data.draw(st.integers(min_value=1, max_value=255))
        packets[index] = bytes(victim)
    elif mutation == "truncate":
        index = data.draw(st.integers(min_value=0, max_value=len(packets) - 1))
        keep = data.draw(st.integers(min_value=0, max_value=len(packets[index]) - 1))
        packets[index] = packets[index][:keep]
    elif mutation == "drop" and len(packets) > 1:
        del packets[data.draw(st.integers(min_value=0, max_value=len(packets) - 1))]
    elif mutation == "reorder":
        indices = data.draw(st.permutations(range(len(packets))))
        packets = [packets[i] for i in indices]
    elif mutation == "duplicate":
        index = data.draw(st.integers(min_value=0, max_value=len(packets) - 1))
        packets.insert(index, packets[index])
    return tuple(packets)


_MUTATIONS = ["bitflip", "truncate", "drop", "reorder", "duplicate"]


def corpus_from(data, n_samples, mutated):
    """A small multi-sample monlist corpus, optionally fault-injected."""
    samples = []
    for s in range(n_samples):
        specs = []
        n_captures = data.draw(st.integers(min_value=0, max_value=4))
        for c in range(n_captures):
            kind = data.draw(st.sampled_from(["base", "attack"]))
            if kind == "base":
                packets = BASE_PACKET_SETS[data.draw(st.sampled_from([1, 4, 20]))]
            else:
                packets = attack_packets(data.draw(st.integers(min_value=1, max_value=6)))
            if mutated and data.draw(st.booleans()):
                packets = mutate(packets, data.draw(st.sampled_from(_MUTATIONS)), data)
            n_repeats = data.draw(st.sampled_from([1, 1, 1, 3]))
            specs.append((100 + 10 * s + c, packets, n_repeats))
        samples.append(packed_sample(specs, t=1000.0 + 604800.0 * s))
    return samples


# ---------------------------------------------------------------------------
# Structural equivalence: views == objects, counter for counter
# ---------------------------------------------------------------------------


def assert_sample_equivalent(view, parsed):
    """A ColumnarSample view is indistinguishable from the ParsedSample."""
    assert view.t == parsed.t
    assert view.outage == parsed.outage
    assert view.coverage == parsed.coverage
    assert view.stats == parsed.stats
    assert len(view.tables) == len(parsed.tables)
    assert view.amplifier_ips() == parsed.amplifier_ips()
    for table_view, table in zip(view.tables, parsed.tables):
        assert table_view.amplifier_ip == table.amplifier_ip
        assert table_view.t == table.t
        assert table_view.entry_size == table.entry_size
        assert table_view.n_packets_once == table.n_packets_once
        assert table_view.n_repeats == table.n_repeats
        assert table_view.payload_bytes_once == table.payload_bytes_once
        assert table_view.on_wire_bytes_once == table.on_wire_bytes_once
        assert table_view.total_packets == table.total_packets
        assert table_view.total_on_wire_bytes == table.total_on_wire_bytes
        assert table_view.total_payload_bytes == table.total_payload_bytes
        assert table_view.is_mega == table.is_mega
        assert len(table_view) == len(table.entries)
        assert table_view.entries == tuple(table.entries)


@pytest.mark.parametrize("n_clients", sorted(BASE_PACKET_SETS))
def test_columnar_matches_object_on_clean_sample(n_clients):
    sample = packed_sample(
        [(7, BASE_PACKET_SETS[n_clients], 1), (9, attack_packets(3), 2)]
    )
    columns = columns_for_sample(sample)
    (view,) = columns.sample_views()
    assert_sample_equivalent(view, parse_sample(sample))


@given(st.data())
@settings(max_examples=60, deadline=None)
def test_columnar_matches_object_under_mutations(data):
    """Fault-irregular captures defer to the lenient path: tables, entries,
    and every ParseStats counter identical to the object pipeline."""
    for sample in corpus_from(data, n_samples=2, mutated=True):
        columns = columns_for_sample(sample)
        (view,) = columns.sample_views()
        assert_sample_equivalent(view, parse_sample(sample))


def test_columnar_outage_and_empty_captures():
    outage = OnpSample(t=500.0, mode=7, outage=True, coverage=0.0)
    empties = packed_sample([(3, (), 1), (4, (), 1)], t=900.0)
    for sample in (outage, empties):
        columns = columns_for_sample(sample)
        (view,) = columns.sample_views()
        assert_sample_equivalent(view, parse_sample(sample))
    # Empty captures are *accounted*, not skipped.
    stats = columns_for_sample(empties).sample_views()[0].stats
    assert stats.captures_total == 2 and stats.captures_failed == 2


# ---------------------------------------------------------------------------
# Parse-once ledger
# ---------------------------------------------------------------------------


def test_columnar_decode_advances_ledger_like_parse_sample():
    samples = [
        packed_sample([(7, BASE_PACKET_SETS[4], 1)], t=1000.0),
        packed_sample([(8, attack_packets(2), 1)], t=2000.0),
        packed_sample([], t=3000.0),
    ]
    before = parse_call_count()
    build_event_columns(samples, jobs=1)
    assert parse_call_count() - before == len(samples)

    before = parse_call_count()
    for sample in samples:
        parse_sample(sample)
    assert parse_call_count() - before == len(samples)


# ---------------------------------------------------------------------------
# Aggregation kernels: columnar == object, report for report
# ---------------------------------------------------------------------------


class _FakeAsnTable:
    """asn_of with unrouted holes, ASN 0 included (the -1 sentinel must
    not shadow a real AS number)."""

    def asn_of(self, ip):
        if ip % 4 == 0:
            return None
        return ip % 7


def _both_views(samples):
    columnar = build_event_columns(samples, jobs=1).sample_views()
    objects = [parse_sample(s) for s in samples]
    return columnar, objects


@given(st.data())
@settings(max_examples=25, deadline=None)
def test_victimology_kernels_match(data):
    samples = corpus_from(data, n_samples=3, mutated=True)
    columnar, objects = _both_views(samples)
    fast = analyze_dataset(columnar, onp_ip=1)
    slow = analyze_dataset(objects, onp_ip=1)
    assert isinstance(fast, ColumnarVictimologyReport)
    assert type(slow) is VictimologyReport
    assert fast.total_attack_packets() == slow.total_attack_packets()
    assert fast.victim_packet_stats() == slow.victim_packet_stats()
    assert fast.port_table() == slow.port_table()
    assert fast.attacks_per_hour() == slow.attacks_per_hour()
    assert fast.amplifiers_per_victim() == slow.amplifiers_per_victim()
    assert fast.all_victim_ips() == slow.all_victim_ips()
    assert sorted(fast.durations()) == sorted(slow.durations())


@given(st.data())
@settings(max_examples=25, deadline=None)
def test_concentration_kernel_matches_in_value_and_order(data):
    """Figure 5's group-by: same {asn: packets} *in the same insertion
    order* (most_common ties resolve by it), unrouted IPs dropped."""
    samples = corpus_from(data, n_samples=3, mutated=False)
    columnar, objects = _both_views(samples)
    table = _FakeAsnTable()
    fast = as_concentration(analyze_dataset(columnar), table)
    slow = as_concentration(analyze_dataset(objects), table)
    assert list(fast.victim_as_packets.items()) == list(slow.victim_as_packets.items())
    assert list(fast.amplifier_as_packets.items()) == list(slow.amplifier_as_packets.items())


@given(st.data())
@settings(max_examples=25, deadline=None)
def test_churn_kernel_matches(data):
    samples = corpus_from(data, n_samples=4, mutated=True)
    columnar, objects = _both_views(samples)
    assert churn_report(columnar) == churn_report(objects)


def version_sample(specs, t=1000.0, packed=True):
    """A mode-6 version sweep sample; ``specs`` is ``[(ip, payload)]``
    where payload is a READVAR string or pre-built raw packets."""
    built = []
    for ip, payload in specs:
        if isinstance(payload, tuple):
            built.append((ip, payload, 1))
            continue
        raw = payload.encode("ascii")
        fragments = [
            raw[i : i + MODE6_DATA_AREA] for i in range(0, len(raw), MODE6_DATA_AREA)
        ] or [b""]
        packets = tuple(
            encode_mode6_response(
                CTL_OP_READVAR,
                fragment,
                sequence=index,
                offset=index * MODE6_DATA_AREA,
                more=index < len(fragments) - 1,
            )
            for index, fragment in enumerate(fragments)
        )
        built.append((ip, packets, 1))
    if packed:
        return packed_sample(built, t=t, mode=6)
    from tests.strategies import capture_of

    sample = OnpSample(
        t=t,
        mode=6,
        captures=[capture_of(packets, target_ip=ip, t=t) for ip, packets, _ in built],
    )
    return sample


def test_version_parse_packed_matches_object_path():
    """The packed version-sweep reader slices payloads straight from the
    blob; records (and their last-write-wins order) match the view loop."""
    payloads = [
        render_system_variables("4.2.6p5", 2010, "Linux/2.6.32", "x86_64", 3, "GPS"),
        render_system_variables("4.1.1", 2004, "cisco", "unknown", 16, ".INIT."),
        (b"\x00\x01",),  # short mode-6 packet: unparseable, memoized skip
    ]
    specs = [(50, payloads[0]), (51, payloads[1]), (52, payloads[2]), (50, payloads[1])]
    fast = parse_version_samples(
        [version_sample(specs), version_sample(specs, t=2000.0)]
    )
    slow = parse_version_samples(
        [version_sample(specs, packed=False), version_sample(specs, t=2000.0, packed=False)]
    )
    assert len(fast) == len(slow) > 0
    assert [(r.ip, r.os_family, r.system, r.stratum, r.compile_year) for r in fast.records] == [
        (r.ip, r.os_family, r.system, r.stratum, r.compile_year) for r in slow.records
    ]
    assert fast.os_distribution() == slow.os_distribution()
    assert fast.stratum16_fraction() == slow.stratum16_fraction()


# ---------------------------------------------------------------------------
# Cache-envelope plumbing: concat and pickle round-trips
# ---------------------------------------------------------------------------


def test_event_columns_pickle_roundtrip():
    samples = [
        packed_sample([(7, BASE_PACKET_SETS[20], 1), (8, attack_packets(4), 3)]),
        packed_sample([(9, BASE_PACKET_SETS[1], 1)], t=2000.0),
    ]
    columns = build_event_columns(samples, jobs=1)
    clone = pickle.loads(pickle.dumps(columns))
    assert isinstance(clone, EventColumns)
    assert clone.samples.tobytes() == columns.samples.tobytes()
    assert clone.tables.tobytes() == columns.tables.tobytes()
    assert clone.entries.tobytes() == columns.entries.tobytes()
    for a, b in zip(clone.sample_views(), columns.sample_views()):
        assert isinstance(a, ColumnarSample)
        assert a.stats == b.stats
        assert [t.entries for t in a.tables] == [t.entries for t in b.tables]


def test_concat_then_spill_preserves_byte_order(monkeypatch, tmp_path):
    """np.concatenate (NumPy >= 2) recasts structured results to native
    byte order; a spilled *merged* batch must still read back value-exact.
    Regression: the spill view once assumed the canonical big-endian
    dtype and byteswapped every entry of a concatenated corpus."""
    monkeypatch.setenv("REPRO_SPILL_MB", "0")
    monkeypatch.setenv("REPRO_SPILL_DIR", str(tmp_path))
    samples = [
        packed_sample([(7, BASE_PACKET_SETS[20], 1), (8, attack_packets(4), 3)]),
        packed_sample([(9, attack_packets(2), 1)], t=2000.0),
    ]
    merged = build_event_columns(samples, jobs=1)  # concat + spill engaged
    import numpy as np

    assert isinstance(merged.entries.base, np.memmap) or isinstance(
        merged.entries, np.memmap
    )
    for view, sample in zip(merged.sample_views(), samples):
        assert_sample_equivalent(view, parse_sample(sample))


def test_event_columns_spill_roundtrip(monkeypatch, tmp_path):
    """Past the threshold the entries blob lives in a memmap; views and
    pickling (which re-inlines) are unaffected."""
    monkeypatch.setenv("REPRO_SPILL_MB", "0")
    monkeypatch.setenv("REPRO_SPILL_DIR", str(tmp_path))
    sample = packed_sample([(7, BASE_PACKET_SETS[40], 1)])
    columns = columns_for_sample(sample)
    spilled = columns.maybe_spill()
    (view,) = spilled.sample_views()
    assert_sample_equivalent(view, parse_sample(sample))
    clone = pickle.loads(pickle.dumps(spilled))
    assert clone.entries.tobytes() == spilled.entries.tobytes()
