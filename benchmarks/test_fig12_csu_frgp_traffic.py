"""Figure 12: CSU/FRGP NTP traffic over three months.

Paper: the first signs of NTP attacks at CSU/FRGP appear about a month
after Merit; CSU's nine servers were secured on January 24th, after which
CSU's NTP egress returns to pre-attack levels; FRGP remediation lags and
its series keeps growing, punctuated by reflection attacks at FRGP-hosted
victims — the largest on February 10th (~23 minutes, ~3 GB/s, ~514 GB at
full scale).
"""

import numpy as np

from repro.util import date_to_sim


def test_fig12_csu_frgp_traffic(benchmark, world):
    csu = world.isp.sites["csu"]
    frgp = world.isp.sites["frgp"]
    csu_out = benchmark(lambda: csu.hourly_mbps(csu.ntp_out))
    frgp_in = frgp.hourly_mbps(frgp.ntp_in_reflected)

    jan24 = int((date_to_sim(2014, 1, 24) - csu.start) // 3600)
    before = csu_out[max(0, jan24 - 24 * 12) : jan24]
    after = csu_out[jan24 + 24 * 3 : jan24 + 24 * 20]
    # CSU secured on Jan 24: egress collapses to (near) zero afterwards.
    assert before.mean() > 0
    assert after.mean() < 0.2 * before.mean()

    # The Feb 10 FRGP reflection spike is the dominant ingress feature.
    feb10 = int((date_to_sim(2014, 2, 10) - frgp.start) // 3600)
    spike = frgp_in[feb10 : feb10 + 24].max()
    rest = np.delete(frgp_in, np.s_[feb10 : feb10 + 24])
    assert spike > 5 * max(rest.max(), 1e-9) or spike > 50

    # FRGP (beyond CSU) remains active after CSU's cleanup: its amplifier
    # egress in February is nonzero.
    frgp_out = frgp.hourly_mbps(frgp.ntp_out)
    assert frgp_out[feb10 : feb10 + 24 * 14].mean() > 0

    print(
        f"\nFig12: CSU out before/after Jan24 = {before.mean():.3f}/{after.mean():.4f} MB/s; "
        f"FRGP Feb-10 spike = {spike:.1f} MB/s"
    )
