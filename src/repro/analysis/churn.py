"""Amplifier-population churn (§3.1).

The paper: fifteen weekly scans saw 2,166,097 unique amplifier IPs; the
first sample held only ~60% of them; about half of all unique IPs appeared
in exactly one weekly scan (rapid remediation plus DHCP churn).
"""

from collections import Counter
from dataclasses import dataclass

__all__ = ["ChurnReport", "churn_report"]


@dataclass(frozen=True)
class ChurnReport:
    total_unique: int
    first_sample_share: float
    seen_once_fraction: float
    new_per_sample: tuple

    @property
    def discovers_new_every_sample(self):
        return all(n > 0 for n in self.new_per_sample[1:])


def churn_report(parsed_samples):
    """Churn statistics over the weekly amplifier-IP sets."""
    seen_counts = Counter()
    cumulative = set()
    new_per_sample = []
    first_sample_ips = None
    for parsed in parsed_samples:
        ips = parsed.amplifier_ips()
        if first_sample_ips is None:
            first_sample_ips = set(ips)
        new = len(ips - cumulative)
        new_per_sample.append(new)
        cumulative |= ips
        for ip in ips:
            seen_counts[ip] += 1
    total = len(cumulative)
    if total == 0:
        return ChurnReport(0, 0.0, 0.0, tuple(new_per_sample))
    once = sum(1 for n in seen_counts.values() if n == 1)
    return ChurnReport(
        total_unique=total,
        first_sample_share=len(first_sample_ips) / total,
        seen_once_fraction=once / total,
        new_per_sample=tuple(new_per_sample),
    )
