"""Event payload records passed between the world and its observers.

Observers (darknet, ISP flow exporters, the Arbor-style collector) subscribe
to these records rather than to raw callbacks, which keeps vantage points
decoupled from the traffic generators.
"""

from dataclasses import dataclass, field

__all__ = ["ScanSweep", "AttackPulse", "ClientPoll", "ProbeSent"]


@dataclass(frozen=True)
class ScanSweep:
    """A scanner probing some slice of the address space around time ``t``.

    ``targets_per_second`` is the sweep rate; ``coverage`` the fraction of
    the IPv4 space the sweep will touch (research scanners cover ~1.0,
    targeted malicious rescans much less).
    """

    t: float
    scanner_ip: int
    kind: str  # "research" | "malicious"
    mode: int  # NTP mode probed (7 for monlist, 6 for version)
    coverage: float
    targets_per_second: float
    ttl: int
    duration: float

    def __post_init__(self):
        if not 0 < self.coverage <= 1.0:
            raise ValueError("coverage must be in (0, 1]")
        if self.duration <= 0:
            raise ValueError("duration must be positive")


@dataclass(frozen=True)
class AttackPulse:
    """One (attack, amplifier) leg: spoofed queries eliciting amplification.

    ``query_rate`` is spoofed monlist queries per second arriving at the
    amplifier; responses to the victim are query_rate x amplifier BAF.
    """

    start: float
    duration: float
    victim_ip: int
    victim_port: int
    amplifier_ip: int
    query_rate: float
    mode: int  # 7 for monlist-based attacks, 6 for version-based
    spoofer_ttl: int
    # Derived values, precomputed once: pulse sorting/windowing in the
    # amplifier-state manager touches `end` hundreds of millions of times
    # per world build, so these must be plain attribute loads, not
    # recomputed properties.
    end: float = field(init=False, repr=False, compare=False)
    query_count: int = field(init=False, repr=False, compare=False)

    def __post_init__(self):
        object.__setattr__(self, "end", self.start + self.duration)
        object.__setattr__(self, "query_count", max(1, int(self.query_rate * self.duration)))


@dataclass(frozen=True)
class ClientPoll:
    """A legitimate NTP client polling a server (mode 3)."""

    t: float
    client_ip: int
    server_ip: int
    interval: float  # typical polling interval in seconds


@dataclass(frozen=True)
class ProbeSent:
    """A single measurement probe (ONP-style) to one target."""

    t: float
    prober_ip: int
    target_ip: int
    mode: int
    implementation: int
