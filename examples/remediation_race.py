#!/usr/bin/env python
"""The remediation race (§6, Figure 10).

Builds a small world and charts how three vulnerable pools respond to
publicity: monlist amplifiers (dramatic community response), version
responders (mild), and open DNS resolvers (barely moving after a year) —
plus the subgroup axes: aggregation level, continent, and host class.

Usage::

    python examples/remediation_race.py [scale]
"""

import sys

from repro import PaperWorld
from repro.analysis import (
    amplifier_counts,
    continent_remediation,
    parse_sample,
    pool_relative_to_peak,
    subgroup_reductions,
    weeks_since,
)
from repro.reporting import render_series, render_table
from repro.util import date_to_sim, format_sim


def sparkline(fractions, width=40):
    blocks = " .:-=+*#%@"
    return "".join(blocks[min(9, int(f * 9.999))] for f in fractions[:width])


def main():
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.001
    world = PaperWorld.build(seed=99, scale=scale, quiet=False)
    parsed = [parse_sample(s) for s in world.onp.monlist_samples]

    monlist = pool_relative_to_peak([(p.t, len(p.amplifier_ips())) for p in parsed])
    version = pool_relative_to_peak([(s.t, len(s)) for s in world.onp.version_samples])
    dns = pool_relative_to_peak(
        [(s.t, s.count) for s in world.dns_pool.weekly_series(n_weeks=60)]
    )

    print("\n=== Pool size relative to peak (each char ≈ one sample) ===")
    print(f"  monlist  [{sparkline([f for _, f in monlist])}]  -> {monlist[-1][1]:.2f}")
    print(f"  version  [{sparkline([f for _, f in version])}]  -> {version[-1][1]:.2f}")
    print(f"  open DNS [{sparkline([f for _, f in dns])}]  -> {dns[-1][1]:.2f}")
    print("  (paper: monlist -> 0.08, version -> 0.81, DNS nearly flat)")

    rows = amplifier_counts(parsed, world.table, world.pbl)
    print("\n=== §6.1 network-level reductions ===")
    table_rows = [
        [r.level, r.initial, r.final, f"{100 * r.reduction:.0f}%"]
        for r in subgroup_reductions(rows[0], rows[-1])
    ]
    print(render_table(["level", "initial", "final", "reduction"], table_rows))
    print("(paper: IP 92%, /24 72%, routed block 59%, AS 55%)")

    print("\n=== §6.1 regional remediation ===")
    rates = continent_remediation(parsed[0], parsed[-1], world.table)
    for continent in ("NA", "OC", "EU", "AS", "AF", "SA"):
        if continent in rates:
            print(f"  {continent}: {100 * rates[continent]:.0f}% remediated")
    print("(paper: NA 97, OC 93, EU 89, AS 84, AF 77, SA 63)")

    print("\n=== §6.1 host-class axis ===")
    print(
        f"  end-host share of remaining pool: "
        f"{100 * rows[0].end_host_fraction:.0f}% -> {100 * rows[-1].end_host_fraction:.0f}% "
        f"(paper: 18.5% -> 33.5%)"
    )

    print("\n=== Figure 3-style series ===")
    print(
        render_series(
            [(format_sim(r.t), r.ips) for r in rows],
            value_label="amplifier IPs",
            time_label="sample",
            fmt="{:.0f}",
        )
    )


if __name__ == "__main__":
    main()
