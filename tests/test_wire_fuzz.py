"""Property/fuzz tests for malformed-wire decoding.

The contract under test: feeding truncated, bit-flipped, reordered, or
duplicated mode-7 packet sets into :func:`decode_mode7` /
:func:`reconstruct_table` / :func:`reconstruct_table_lenient` always ends
in salvage or a clean :class:`WireError` — never an unhandled exception,
and (for loss-only mutations) never a fabricated entry.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import reconstruct_table, reconstruct_table_lenient
from repro.analysis.monlist_parse import ParseStats
from repro.ntp import WireError
from repro.ntp.wire import decode_mode7, decode_mode7_stream
from tests.strategies import BASE_PACKET_SETS, binary_blobs, capture_of


def entry_keys(table):
    return {(e.addr, e.count, e.last_int, e.first_int) for e in table.entries}


_BASE = BASE_PACKET_SETS
_BASE_ENTRIES = {
    n: entry_keys(reconstruct_table(capture_of(p))) for n, p in _BASE.items()
}


# -- raw decoder never raises anything but WireError ---------------------------


@given(binary_blobs)
@settings(max_examples=200, deadline=None)
def test_decode_mode7_raises_only_wireerror(blob):
    try:
        packet = decode_mode7(blob)
    except WireError:
        return
    assert packet.item_size >= 0  # decoded: structurally a mode-7 packet


@given(
    st.sampled_from(sorted(_BASE)),
    st.data(),
)
@settings(max_examples=150, deadline=None)
def test_bitflipped_packets_salvage_or_clean_error(n_clients, data):
    """Bit corruption anywhere in any fragment: strict parsing either works
    or raises WireError; lenient parsing never raises at all."""
    packets = list(_BASE[n_clients])
    n_flips = data.draw(st.integers(min_value=1, max_value=6))
    for _ in range(n_flips):
        index = data.draw(st.integers(min_value=0, max_value=len(packets) - 1))
        victim = bytearray(packets[index])
        position = data.draw(st.integers(min_value=0, max_value=len(victim) - 1))
        mask = data.draw(st.integers(min_value=1, max_value=255))
        victim[position] ^= mask
        packets[index] = bytes(victim)
    capture = capture_of(packets)
    try:
        reconstruct_table(capture)
    except WireError:
        pass
    stats = ParseStats()
    table = reconstruct_table_lenient(capture, stats)
    assert stats.captures_total == 1
    if table is None:
        assert stats.captures_failed == 1
    else:
        assert len(table.entries) == stats.entries_recovered


@given(
    st.sampled_from([4, 20, 40]),
    st.data(),
)
@settings(max_examples=150, deadline=None)
def test_loss_only_mutations_never_fabricate_entries(n_clients, data):
    """Truncation, drops, reordering, duplication — every salvaged entry
    existed in the original table, and a clean prefix salvages fully."""
    original = list(_BASE[n_clients])
    kept = data.draw(
        st.lists(
            st.integers(min_value=0, max_value=len(original) - 1),
            min_size=1,
            max_size=len(original) + 3,
        )
    )
    packets = [original[i] for i in kept]
    packets = data.draw(st.permutations(packets))
    capture = capture_of(packets)
    stats = ParseStats()
    table = reconstruct_table_lenient(capture, stats)
    assert table is not None  # valid fragments: always salvageable
    assert entry_keys(table) <= _BASE_ENTRIES[n_clients]
    assert stats.captures_failed == 0
    assert stats.packets_undecodable == 0
    # Dropped fragments can orphan later ones, but nothing is invented:
    # recovered + discarded accounts for every entry in the kept fragments.
    decoded, _ = decode_mode7_stream(packets)
    deduped = {p.sequence: p for p in decoded}
    assert stats.entries_recovered + stats.entries_discarded == sum(
        len(p.items) for p in deduped.values()
    )


@given(st.sampled_from(sorted(_BASE)))
@settings(max_examples=20, deadline=None)
def test_lenient_matches_strict_on_clean_captures(n_clients):
    capture = capture_of(_BASE[n_clients])
    strict = reconstruct_table(capture)
    stats = ParseStats()
    lenient = reconstruct_table_lenient(capture, stats)
    assert lenient == strict
    assert stats.captures_ok == 1
    assert not stats.degraded


def test_truncated_prefix_salvages_in_order():
    """A tail-truncated multi-packet response yields the exact prefix."""
    packets = _BASE[40]
    assert len(packets) > 2
    full = reconstruct_table(capture_of(packets))
    stats = ParseStats()
    cut = reconstruct_table_lenient(capture_of(packets[:2]), stats)
    assert cut.entries == full.entries[: len(cut.entries)]
    assert len(cut.entries) > 0
    assert not stats.degraded  # truncation alone is invisible to the parser


def test_gap_drops_fragments_after_it():
    """Fragment 0 and 2 without 1: only the prefix (fragment 0) survives."""
    packets = _BASE[40]
    gapped = capture_of((packets[0], packets[2]))
    stats = ParseStats()
    table = reconstruct_table_lenient(gapped, stats)
    first = reconstruct_table_lenient(capture_of(packets[:1]), ParseStats())
    assert table.entries == first.entries
    assert stats.packets_out_of_sequence == 1
    assert stats.entries_discarded > 0
    assert stats.captures_salvaged == 1


def test_duplicates_deduplicated_first_copy_wins():
    packets = _BASE[20]
    duplicated = capture_of(tuple(packets) + (packets[0], packets[-1]))
    stats = ParseStats()
    table = reconstruct_table_lenient(duplicated, stats)
    assert entry_keys(table) == _BASE_ENTRIES[20]
    assert stats.packets_duplicate == 2
    assert stats.captures_salvaged == 1
