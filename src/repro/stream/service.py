"""A long-running asyncio HTTP/JSON service over one streaming engine.

``python -m repro serve`` builds (or loads) a world, starts ingesting its
replay stream in the background, and answers queries over plain HTTP the
whole time — the serving posture AMON runs in production, scaled down to
the repro.  Everything is standard library: ``asyncio.start_server`` plus
a hand-rolled HTTP/1.0 exchange (one request per connection), because the
container ships no aiohttp and the protocol surface here is tiny.

Consistency model
-----------------
The server and the ingest task share one event loop.  Ingestion applies
records in synchronous batches — :meth:`StreamEngine.ingest` never awaits
— and only yields to the loop *between* batches, so every request handler
runs against an engine that is between-records: snapshots are internally
consistent by construction (no torn reads), which the service tests
verify by cross-checking the redundant global counters inside each
response.

Lifecycle
---------
On start the service prints one JSON line (``{"serving": ...}``) to
stdout so callers can discover the bound (possibly ephemeral) port.
SIGTERM and SIGINT drain cleanly: stop accepting, cancel ingestion at a
batch boundary, close open connections, print ``{"drained": ...}``, exit
0 — the no-orphan discipline the supervision tests enforce elsewhere.
"""

from __future__ import annotations

import asyncio
import json
import signal
import time
from urllib.parse import parse_qsl, urlsplit

from repro.stream.ingest import QUERY_NAMES

__all__ = ["StreamService", "serve_world"]

_MAX_REQUEST_BYTES = 16384


class StreamService:
    """One engine, one record iterator, one asyncio server."""

    def __init__(self, engine, records, host="127.0.0.1", port=0, batch=256, pace=0.0):
        if batch < 1:
            raise ValueError("batch must be >= 1")
        self.engine = engine
        self.records = iter(records)
        self.host = host
        self.port = int(port)
        self.batch = int(batch)
        self.pace = float(pace)
        self.server = None
        self.ingest_task = None
        self.ingest_done = False
        self.ingest_seconds = 0.0
        self.requests_served = 0
        self.requests_rejected = 0
        self._shutdown = asyncio.Event()

    # -- lifecycle -----------------------------------------------------------

    async def start(self):
        """Bind the server and kick off background ingestion."""
        self.server = await asyncio.start_server(self._handle, self.host, self.port)
        self.port = self.server.sockets[0].getsockname()[1]
        self.ingest_task = asyncio.create_task(self._ingest())
        return self

    async def _ingest(self):
        started = time.monotonic()
        try:
            while True:
                applied = 0
                for record in self.records:
                    self.engine.ingest(record)
                    applied += 1
                    if applied >= self.batch:
                        break
                if applied < self.batch:
                    self.engine.close()
                    self.ingest_done = True
                    return
                # Yield between synchronous batches: this await is the
                # only point queries can interleave with ingestion.
                await asyncio.sleep(self.pace)
        finally:
            self.ingest_seconds = time.monotonic() - started

    def request_shutdown(self):
        self._shutdown.set()

    async def serve_until_shutdown(self, install_signals=True):
        """Run until SIGTERM/SIGINT or :meth:`request_shutdown`; drain."""
        loop = asyncio.get_running_loop()
        if install_signals:
            for signum in (signal.SIGTERM, signal.SIGINT):
                loop.add_signal_handler(signum, self._shutdown.set)
        try:
            await self._shutdown.wait()
        finally:
            await self.stop()
            if install_signals:
                for signum in (signal.SIGTERM, signal.SIGINT):
                    loop.remove_signal_handler(signum)

    async def stop(self):
        """Stop accepting, cancel ingestion at a batch boundary, close."""
        if self.ingest_task is not None and not self.ingest_task.done():
            self.ingest_task.cancel()
            try:
                await self.ingest_task
            except asyncio.CancelledError:
                pass
        if self.server is not None:
            self.server.close()
            await self.server.wait_closed()

    def describe(self):
        return {
            "host": self.host,
            "port": self.port,
            "queries": list(QUERY_NAMES),
            "batch": self.batch,
            "pace": self.pace,
        }

    def drain_summary(self):
        return {
            "requests_served": self.requests_served,
            "requests_rejected": self.requests_rejected,
            "records_seen": self.engine.records_seen,
            "ingest_done": self.ingest_done,
            "ingest_seconds": round(self.ingest_seconds, 4),
            "balanced": self.engine.balanced,
        }

    # -- one HTTP exchange ---------------------------------------------------

    async def _handle(self, reader, writer):
        try:
            status, body = await self._respond(reader)
            payload = json.dumps(body).encode()
            head = (
                f"HTTP/1.0 {status} {_REASONS.get(status, 'OK')}\r\n"
                "Content-Type: application/json\r\n"
                f"Content-Length: {len(payload)}\r\n"
                "Connection: close\r\n\r\n"
            ).encode()
            writer.write(head + payload)
            await writer.drain()
        except (ConnectionResetError, BrokenPipeError, asyncio.LimitOverrunError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _respond(self, reader):
        try:
            request_line = await reader.readline()
        except (ValueError, ConnectionResetError):
            self.requests_rejected += 1
            return 400, {"error": "unreadable request"}
        parts = request_line.decode("latin-1", "replace").split()
        if len(parts) < 2:
            self.requests_rejected += 1
            return 400, {"error": "malformed request line"}
        method, target = parts[0], parts[1]
        # Drain headers (bounded) so well-behaved clients see the reply.
        drained = 0
        while drained < _MAX_REQUEST_BYTES:
            line = await reader.readline()
            drained += len(line)
            if line in (b"\r\n", b"\n", b""):
                break
        if method != "GET":
            self.requests_rejected += 1
            return 405, {"error": f"method {method} not allowed (GET only)"}
        return self._route(target)

    def _route(self, target):
        url = urlsplit(target)
        path = url.path.rstrip("/") or "/"
        params = dict(parse_qsl(url.query))
        if path == "/health":
            self.requests_served += 1
            return 200, {
                "ok": True,
                "records_seen": self.engine.records_seen,
                "ingest_done": self.ingest_done,
                "watermark": self.engine.watermark,
            }
        if path == "/stats":
            self.requests_served += 1
            return 200, self.engine.snapshot()
        if path.startswith("/query/"):
            name = path[len("/query/"):]
            try:
                result = self.engine.query(name, **params)
            except KeyError as exc:
                self.requests_rejected += 1
                return 400, {"error": str(exc.args[0])}
            except (TypeError, ValueError) as exc:
                self.requests_rejected += 1
                return 400, {"error": f"bad query parameters: {exc}"}
            self.requests_served += 1
            return 200, {"query": name, "result": result}
        self.requests_rejected += 1
        return 404, {"error": f"no route {path!r} (try /health, /stats, /query/<name>)"}


_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
}


async def serve_world(world, host="127.0.0.1", port=0, skew=0.0, batch=256, pace=0.0):
    """Build engine + replay for ``world``, serve until SIGTERM/SIGINT.

    Prints the ``{"serving": ...}`` discovery line on start and the
    ``{"drained": ...}`` summary on exit; returns 0 (the CLI exit code).
    """
    from repro.stream.ingest import StreamEngine
    from repro.stream.replay import replay_plan, replay_records

    plan = replay_plan(world)
    engine = StreamEngine.for_world(world, plan=plan, skew=skew)
    service = StreamService(
        engine, replay_records(world), host=host, port=port, batch=batch, pace=pace
    )
    await service.start()
    print(json.dumps({"serving": {**service.describe(), "plan": plan["expected"]}}), flush=True)
    await service.serve_until_shutdown()
    print(json.dumps({"drained": service.drain_summary()}), flush=True)
    return 0
