"""Chaos test: the full artifact sweep under the hostile fault profile.

Builds one world through a heavily-degraded measurement apparatus and
asserts the analysis pipeline *degrades* — every F1-F16/T1-T6 artifact,
the summary, and the quality report render without an exception — and
that the headline numbers stay within bounded drift of the clean world's
golden values (the apparatus loses data; it must not invent it).
"""

import pytest

from repro.analysis import quality_report
from repro.cli import ARTIFACTS, render_artifact
from repro.faults import HOSTILE_PROFILE
from repro.scenario import PaperWorld, WorldParams

#: Same world as tests/test_perf_equivalence.py's golden world, but probed
#: through the hostile apparatus.
CHAOS_SEED = 7
CHAOS_SCALE = 0.0005

#: Clean-world golden values (pinned in test_perf_equivalence.GOLDEN_SUMMARY).
CLEAN_UNIQUE_AMPLIFIER_IPS = 957
CLEAN_FIRST_SAMPLE_POOL = 717


@pytest.fixture(scope="module")
def hostile_world():
    params = WorldParams(seed=CHAOS_SEED, scale=CHAOS_SCALE, faults=HOSTILE_PROFILE)
    return PaperWorld.build(params=params, quiet=True)


def test_hostile_world_recorded_faults(hostile_world):
    log = hostile_world.fault_log
    assert log is not None and log.total > 0
    # Every fault site actually fired under the hostile rates.
    for kind in (
        "onp.monlist.truncated_response",
        "onp.monlist.duplicated_packet",
        "onp.monlist.reordered_response",
        "onp.monlist.corrupted_packet",
        "onp.monlist.sample_outage",
        "darknet.down_day",
        "arbor.missing_day",
    ):
        assert log.get(kind) > 0, f"hostile profile never fired {kind}"


@pytest.mark.parametrize("artifact_id", sorted(ARTIFACTS))
def test_all_artifacts_render_under_hostile_faults(hostile_world, artifact_id):
    out = render_artifact(hostile_world, artifact_id)
    assert isinstance(out, str) and out.strip()


def test_summary_renders_under_hostile_faults(hostile_world):
    summary = hostile_world.summary()
    assert "PaperWorld(seed=7" in summary
    assert "Window:" in summary


def test_quality_report_reconciles(hostile_world):
    report = quality_report(hostile_world)
    assert report.injected_total > 0
    assert report.ok, "\n".join(c.describe() for c in report.checks if not c.ok)
    text = report.render()
    assert "RECONCILED" in text and "FAILED" not in text
    assert report.monlist_stats.captures_total > 0
    # The parse layer salvaged degraded captures rather than dropping them.
    assert report.monlist_stats.captures_salvaged > 0
    assert report.monlist_stats.entries_recovered > 0


def test_bounded_drift_from_clean_world(hostile_world):
    """Faults only *remove* observations: the degraded study sees fewer
    amplifiers than the clean apparatus did, but not absurdly fewer."""
    from repro.analysis import churn_report, parse_sample

    parsed = [parse_sample(s) for s in hostile_world.onp.monlist_samples]
    churn = churn_report(parsed)
    assert churn.total_unique <= CLEAN_UNIQUE_AMPLIFIER_IPS
    assert churn.total_unique >= 0.5 * CLEAN_UNIQUE_AMPLIFIER_IPS
    measured = [len(p.amplifier_ips()) for p in parsed if not p.outage and p.tables]
    assert measured, "every weekly sweep was lost"
    assert max(measured) <= CLEAN_FIRST_SAMPLE_POOL
    assert max(measured) >= 0.4 * CLEAN_FIRST_SAMPLE_POOL


def test_clean_quality_report_is_all_zero(world):
    """The session (clean) world: empty injection log, no parse losses."""
    report = quality_report(world)
    assert report.injected_total == 0
    assert report.ok
    assert report.monlist_outages == 0
    assert report.monlist_stats.captures_failed == 0
    assert not report.monlist_stats.degraded
    assert report.darknet_down_days == 0
    assert report.arbor_missing_days == 0
    assert "clean apparatus" in report.render()
