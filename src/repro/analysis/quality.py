"""Data-quality accounting: the synthetic analogue of the paper's §3 caveats.

``python -m repro quality`` renders a :class:`QualityReport`: per-dataset
loss/outage/parse-failure accounting for a built world, reconciled against
the world's :class:`~repro.faults.InjectionLog`.  On a clean world every
count is zero; under a fault profile the report shows exactly what the
imperfect apparatus lost and that the parse layer accounted for all of it.

Reconciliation checks come in two flavors:

* **exact** — faults whose observable footprint is one-to-one with the
  injection (sample outages, partial sweeps, darknet down days, arbor
  missing days must match the log exactly);
* **bounded** — packet-level faults whose footprint can be masked by a
  later fault in the same capture (a duplicated fragment that is then
  bit-corrupted no longer counts as a duplicate), so the observed count
  must not *exceed* what could have produced it.
"""

from dataclasses import dataclass, field

from repro.analysis.monlist_parse import ParseStats, parse_sample

__all__ = ["ReconciliationCheck", "QualityReport", "quality_report"]


@dataclass(frozen=True)
class ReconciliationCheck:
    """One injected-vs-observed comparison."""

    name: str
    injected: int
    observed: int
    #: "exact" (observed == injected), "bounded" (observed <= injected), or
    #: "implied" (a nonzero observation requires a nonzero injection — used
    #: where one injected fault can have a many-packet footprint).
    kind: str = "exact"

    @property
    def ok(self):
        if self.kind == "exact":
            return self.observed == self.injected
        if self.kind == "bounded":
            return self.observed <= self.injected
        return self.injected > 0 or self.observed == 0

    def describe(self):
        relation = {"exact": "==", "bounded": "<="}.get(self.kind, "needs")
        status = "ok" if self.ok else "MISMATCH"
        return (
            f"{self.name:<34} observed {self.observed:>7} {relation} "
            f"injected {self.injected:>7}  [{status}]"
        )


@dataclass
class QualityReport:
    """Everything the apparatus lost, and whether the books balance."""

    profile_name: str
    profile_description: str
    injected: dict = field(default_factory=dict)
    #: Aggregated parse accounting over all monlist samples.
    monlist_stats: ParseStats = field(default_factory=ParseStats)
    monlist_samples: int = 0
    monlist_outages: int = 0
    monlist_partial: int = 0
    version_samples: int = 0
    version_outages: int = 0
    version_partial: int = 0
    darknet_down_days: int = 0
    arbor_days: int = 0
    arbor_missing_days: int = 0
    checks: list = field(default_factory=list)

    @property
    def injected_total(self):
        return sum(self.injected.values())

    @property
    def ok(self):
        """True when every reconciliation check balances."""
        return all(check.ok for check in self.checks)

    def as_dict(self):
        """Machine-readable form (embedded in conformance JSON reports)."""
        stats = self.monlist_stats
        return {
            "profile": self.profile_name,
            "ok": self.ok,
            "injected": dict(self.injected),
            "injected_total": self.injected_total,
            "monlist": {
                "samples": self.monlist_samples,
                "outages": self.monlist_outages,
                "partial": self.monlist_partial,
                "captures_total": stats.captures_total,
                "captures_ok": stats.captures_ok,
                "captures_salvaged": stats.captures_salvaged,
                "captures_failed": stats.captures_failed,
                "packets_discarded": (
                    stats.packets_undecodable
                    + stats.packets_invalid
                    + stats.packets_duplicate
                    + stats.packets_out_of_sequence
                ),
                "entries_recovered": stats.entries_recovered,
                "entries_discarded": stats.entries_discarded,
            },
            "version": {
                "samples": self.version_samples,
                "outages": self.version_outages,
                "partial": self.version_partial,
            },
            "darknet_down_days": self.darknet_down_days,
            "arbor_missing_days": self.arbor_missing_days,
            "checks": [
                {
                    "name": check.name,
                    "kind": check.kind,
                    "injected": check.injected,
                    "observed": check.observed,
                    "ok": check.ok,
                }
                for check in self.checks
            ],
        }

    def render(self):
        lines = [f"Data quality report — fault profile: {self.profile_description}"]
        lines.append("")
        lines.append("ONP monlist dataset:")
        lines.append(
            f"  samples: {self.monlist_samples} "
            f"({self.monlist_outages} outage, {self.monlist_partial} partial sweeps)"
        )
        stats = self.monlist_stats
        lines.append(
            f"  captures: {stats.captures_total} total = {stats.captures_ok} clean "
            f"+ {stats.captures_salvaged} salvaged + {stats.captures_failed} unparseable"
        )
        lines.append(
            f"  packets discarded: {stats.packets_undecodable} undecodable, "
            f"{stats.packets_invalid} invalid, {stats.packets_duplicate} duplicate, "
            f"{stats.packets_out_of_sequence} out-of-sequence"
        )
        lines.append(
            f"  entries: {stats.entries_recovered} recovered, {stats.entries_discarded} discarded"
        )
        lines.append("ONP version dataset:")
        lines.append(
            f"  samples: {self.version_samples} "
            f"({self.version_outages} outage, {self.version_partial} partial sweeps)"
        )
        lines.append("Darknet telescope:")
        lines.append(f"  sensor down days: {self.darknet_down_days}")
        lines.append("Global traffic collector:")
        lines.append(f"  daily records: {self.arbor_days} ({self.arbor_missing_days} days missing)")
        lines.append("")
        if self.injected:
            lines.append(f"Injection log ({self.injected_total} faults):")
            for kind, count in sorted(self.injected.items()):
                lines.append(f"  {kind:<34} {count:>7}")
        else:
            lines.append("Injection log: empty (clean apparatus)")
        lines.append("")
        lines.append("Reconciliation (injected vs observed):")
        if not self.checks:
            lines.append("  (nothing to reconcile)")
        for check in self.checks:
            lines.append("  " + check.describe())
        lines.append("")
        lines.append("RECONCILED" if self.ok else "RECONCILIATION FAILED")
        return "\n".join(lines)


def quality_report(world, parsed_samples=None):
    """Build the :class:`QualityReport` for a built world.

    ``parsed_samples`` lets a caller that already parsed the monlist
    samples (the CLI renders several artifacts from one parse) reuse them.
    """
    profile = getattr(world.params, "faults", None)
    log = getattr(world, "fault_log", None)
    injected = log.as_dict() if log is not None else {}
    report = QualityReport(
        profile_name=getattr(profile, "name", "unknown"),
        profile_description=profile.describe() if profile is not None else "(unknown)",
        injected=injected,
    )

    if parsed_samples is None:
        parsed_samples = [parse_sample(s) for s in world.onp.monlist_samples]
    report.monlist_samples = len(parsed_samples)
    for parsed in parsed_samples:
        report.monlist_stats.merge(parsed.stats)
        if parsed.outage:
            report.monlist_outages += 1
        elif parsed.coverage < 1.0:
            report.monlist_partial += 1

    report.version_samples = len(world.onp.version_samples)
    for sample in world.onp.version_samples:
        if getattr(sample, "outage", False):
            report.version_outages += 1
        elif getattr(sample, "coverage", 1.0) < 1.0:
            report.version_partial += 1

    report.darknet_down_days = len(getattr(world.darknet, "down_days", ()) or ())
    report.arbor_days = len(world.arbor.daily)
    report.arbor_missing_days = len(getattr(world.arbor, "missing_days", ()) or ())

    def get(kind):
        return injected.get(kind, 0)

    stats = report.monlist_stats
    report.checks = [
        ReconciliationCheck(
            "onp.monlist.sample_outage", get("onp.monlist.sample_outage"), report.monlist_outages
        ),
        ReconciliationCheck(
            "onp.monlist.partial_sweep", get("onp.monlist.partial_sweep"), report.monlist_partial
        ),
        ReconciliationCheck(
            "onp.version.sample_outage", get("onp.version.sample_outage"), report.version_outages
        ),
        ReconciliationCheck(
            "onp.version.partial_sweep", get("onp.version.partial_sweep"), report.version_partial
        ),
        ReconciliationCheck("darknet.down_day", get("darknet.down_day"), report.darknet_down_days),
        ReconciliationCheck("arbor.missing_day", get("arbor.missing_day"), report.arbor_missing_days),
        # Packet-level faults.  Corruption's footprint is one packet per
        # injection (undecodable, invalid, or a colliding duplicate), so
        # those observations are bounded by the injected counts; a corrupted
        # *sequence byte* can orphan arbitrarily many fragments behind the
        # gap it opens, so out-of-sequence discards are only implied, not
        # bounded.  Pure tail truncation is intentionally absent: a prefix
        # with its tail missing still parses clean — that is the paper's
        # undetectable undercount, and only the injection log can count it.
        ReconciliationCheck(
            "corruption -> bad packets",
            get("onp.monlist.corrupted_packet"),
            stats.packets_undecodable + stats.packets_invalid,
            kind="bounded",
        ),
        ReconciliationCheck(
            "duplication -> duplicate packets",
            get("onp.monlist.duplicated_packet") + get("onp.monlist.corrupted_packet"),
            stats.packets_duplicate,
            kind="bounded",
        ),
        ReconciliationCheck(
            "corruption -> sequence gaps",
            get("onp.monlist.corrupted_packet"),
            stats.packets_out_of_sequence,
            kind="implied",
        ),
        ReconciliationCheck(
            "faults -> failed captures",
            get("onp.monlist.corrupted_packet"),
            stats.captures_failed,
            kind="implied",
        ),
    ]
    return report
