"""Table 3: example monlist tables showing the ONP probe, normal clients,
scanners, and victims — the raw material of the victimology filter.

Paper: table A shows the probe on top (mode 7, weekly inter-arrival), benign
mode-3/4 clients, and research scanners; table B shows victims with huge
counts (billions at mega amplifiers), zero inter-arrival, and service ports
like UDP/80.
"""

from repro.analysis import CLASS_VICTIM, classify_entry, reconstruct_table
from repro.attack import ONP_PROBER_IP
from repro.reporting import render_monlist_table


def find_example_tables(world):
    sample = world.onp.monlist_samples[6]  # late February: victim-rich
    probe_topped = None
    victim_rich = None
    for capture in sample.captures:
        table = reconstruct_table(capture)
        if not table.entries:
            continue
        if probe_topped is None and table.entries[0].addr == ONP_PROBER_IP:
            probe_topped = table
        victims = [e for e in table.entries if classify_entry(e) == CLASS_VICTIM]
        if victims and (
            victim_rich is None
            or len(victims) > sum(1 for e in victim_rich.entries if classify_entry(e) == CLASS_VICTIM)
        ):
            victim_rich = table
    return probe_topped, victim_rich


def test_table3_monlist_examples(benchmark, world):
    probe_topped, victim_rich = benchmark(find_example_tables, world)

    # Table A: the ONP probe tops the MRU list with a ~weekly inter-arrival.
    assert probe_topped is not None
    top = probe_topped.entries[0]
    assert top.addr == ONP_PROBER_IP
    assert top.mode == 7
    assert top.last_int <= 1
    if top.count > 1:
        assert 3 * 86400 < top.avg_interval < 10 * 86400

    # Table B: victims with large counts and sub-hour inter-arrivals.
    assert victim_rich is not None
    victims = [e for e in victim_rich.entries if classify_entry(e) == CLASS_VICTIM]
    assert victims
    biggest = max(victims, key=lambda e: e.count)
    assert biggest.count >= 100
    assert biggest.avg_interval <= 3600

    print()
    print(render_monlist_table(probe_topped.entries[:6], title="Table 3a (probe + clients)"))
    print()
    print(render_monlist_table(victims[:6], title="Table 3b (victims)"))
