"""The incremental engine: windowed aggregates + sketches over a stream.

:class:`StreamEngine` consumes :class:`~repro.stream.replay.StreamRecord`
values one at a time and maintains, simultaneously:

* **per-window exact state** — one :class:`~repro.stream.windows.WindowSet`
  per record kind (weekly capture windows aligned to the first sweep,
  daily windows for the darknet / ISP / Arbor flows), finalized into small
  summary dicts once the watermark passes;
* **global sketches** — count-min plus space-saving top-K over victim
  packets (by IP and by origin AS), amplifier entry counts, and Merit
  victim bytes, so "top victims since the campaign started" is answerable
  from a few kilobytes at any point of the stream;
* **global exact counters** — totals kept redundantly with the window
  ledgers so a reader can check ``sum(windows) == global`` inside a single
  snapshot (the no-torn-reads contract the service tests assert).

Mode-7 captures are decoded with the *same* parser the batch corpus uses
(:func:`~repro.analysis.monlist_parse.reconstruct_table_fast`, with its
internal lenient fallback) and classified entry-by-entry with the *same*
:func:`~repro.analysis.victimology.classify_entry` filter, so end-of-window
streaming counts equal the batch answers integer for integer; only the
float-summed byte volumes and the sketches carry declared error bounds.
The streaming path deliberately does not advance the batch parse-once
ledger — replay is a re-read of the measurement layer, and the engine's
own ingest accounting (``total == applied + late + duplicate`` per kind)
is the discipline that replaces it.
"""

from __future__ import annotations

import dataclasses

from repro.analysis.monlist_parse import ParseStats, reconstruct_table_fast
from repro.analysis.victimology import (
    CLASS_NON_VICTIM,
    CLASS_SCANNER,
    classify_entry,
)
from repro.stream.sketches import CountMinSketch, SpaceSavingTopK
from repro.stream.windows import WindowSet
from repro.util.simtime import DAY, HOUR, WEEK
from repro.util.stats import percentile

__all__ = ["StreamEngine", "QUERY_NAMES"]

_STATS_FIELDS = tuple(f.name for f in dataclasses.fields(ParseStats))

#: Query names the engine (and therefore the service) answers.
QUERY_NAMES = (
    "amplifiers",
    "victims",
    "top_victims",
    "top_amplifiers",
    "top_ases",
    "top_isp_victims",
    "scanners",
    "traffic",
    "parse_stats",
    "ingest",
)


def _stats_dict(stats):
    return {name: getattr(stats, name) for name in _STATS_FIELDS}


def _add_stats(into, stats):
    for name in _STATS_FIELDS:
        into[name] += getattr(stats, name)


class StreamEngine:
    """Windowed, sketch-backed aggregation over one merged record stream."""

    def __init__(
        self,
        capture_origin=0.0,
        capture_width=float(WEEK),
        skew=0.0,
        asn_of=None,
        onp_ip=None,
        topk_capacity=64,
        cm_epsilon=0.005,
        cm_delta=0.01,
    ):
        if skew < 0:
            raise ValueError("skew must be non-negative")
        self.skew = float(skew)
        self.asn_of = asn_of
        self.onp_ip = onp_ip
        self.max_event_t = None
        self.records_seen = 0
        self.unknown_kinds = 0

        self.windows = {
            "sweep": WindowSet(
                capture_width,
                origin=capture_origin,
                state_factory=self._new_sweep_state,
            ),
            "capture": WindowSet(
                capture_width,
                origin=capture_origin,
                state_factory=self._new_capture_state,
                finalize=self._finalize_capture,
                on_close=self._fold_capture_stats,
            ),
            "darknet": WindowSet(
                float(DAY), state_factory=set, finalize=self._finalize_darknet
            ),
            "isp": WindowSet(
                float(DAY),
                state_factory=self._new_isp_state,
                finalize=self._finalize_isp,
            ),
            "arbor": WindowSet(
                float(DAY),
                state_factory=self._new_arbor_state,
                finalize=self._finalize_arbor,
            ),
        }
        self._apply = {
            "sweep": self._apply_sweep,
            "capture": self._apply_capture,
            "darknet": self._apply_darknet,
            "isp": self._apply_isp,
            "arbor": self._apply_arbor,
        }

        self.sketches = {
            "victim_packets": {
                "cm": CountMinSketch(cm_epsilon, cm_delta),
                "topk": SpaceSavingTopK(topk_capacity),
            },
            "as_packets": {
                "cm": CountMinSketch(cm_epsilon, cm_delta),
                "topk": SpaceSavingTopK(topk_capacity),
            },
            "amplifier_entries": {
                "cm": CountMinSketch(cm_epsilon, cm_delta),
                "topk": SpaceSavingTopK(topk_capacity),
            },
            "isp_victim_bytes": {
                "cm": CountMinSketch(cm_epsilon, cm_delta),
                "topk": SpaceSavingTopK(topk_capacity),
            },
        }

        # Stream-global exact counters, redundant with the window ledgers
        # on purpose: every snapshot can be cross-checked internally.
        self.global_stats = {name: 0 for name in _STATS_FIELDS}
        self.totals = {
            "captures": 0,
            "tables": 0,
            "entries": 0,
            "victim_pairs": 0,
            "victim_packets": 0,
            "scanner_entries": 0,
            "non_victim_entries": 0,
            "darknet_memberships": 0,
            "isp_cells": 0,
            "isp_bytes": 0.0,
            "arbor_days": 0,
            "arbor_gap_days": 0,
        }

    @classmethod
    def for_world(cls, world, plan=None, **kwargs):
        """An engine configured for a world's replay stream."""
        from repro.attack.scanner import ONP_PROBER_IP
        from repro.stream.replay import replay_plan

        plan = plan or replay_plan(world)
        kwargs.setdefault("asn_of", world.table.asn_of)
        kwargs.setdefault("onp_ip", ONP_PROBER_IP)
        return cls(
            capture_origin=plan["capture_origin"],
            capture_width=plan["capture_width"],
            **kwargs,
        )

    # -- per-kind window state ------------------------------------------------

    @staticmethod
    def _new_sweep_state():
        return {"sweeps": 0, "outages": 0, "coverage": [], "n_captures": 0}

    @staticmethod
    def _new_capture_state():
        return {
            "stats": ParseStats(),
            "amplifiers": set(),
            "victims": set(),
            "victim_pairs": 0,
            "victim_packets": 0,
            "scanner_entries": 0,
            "non_victim_entries": 0,
            "max_last_seen": [],
        }

    @staticmethod
    def _new_isp_state():
        return {"victims": {}, "cells": 0}

    @staticmethod
    def _new_arbor_state():
        return {"total_bps": None, "ntp_bps": None, "dns_bps": None, "gap": False}

    # -- appliers -------------------------------------------------------------

    def _apply_sweep(self, state, payload):
        state["sweeps"] += 1
        state["outages"] += 1 if payload["outage"] else 0
        state["coverage"].append(payload["coverage"])
        state["n_captures"] += payload["n_captures"]

    def _apply_capture(self, state, capture):
        self.totals["captures"] += 1
        table = reconstruct_table_fast(capture, state["stats"])
        if table is None:
            return
        self.totals["tables"] += 1
        amp = table.amplifier_ip
        state["amplifiers"].add(amp)
        entries = table.entries
        if entries:
            self.sketches["amplifier_entries"]["cm"].add(amp, len(entries))
            self.sketches["amplifier_entries"]["topk"].add(amp, len(entries))
        largest = 0
        for entry in entries:
            self.totals["entries"] += 1
            if entry.last_int > largest:
                largest = entry.last_int
            if self.onp_ip is not None and entry.addr == self.onp_ip:
                continue
            kind = classify_entry(entry)
            if kind == CLASS_NON_VICTIM:
                state["non_victim_entries"] += 1
                self.totals["non_victim_entries"] += 1
            elif kind == CLASS_SCANNER:
                state["scanner_entries"] += 1
                self.totals["scanner_entries"] += 1
            else:
                state["victim_pairs"] += 1
                state["victims"].add(entry.addr)
                state["victim_packets"] += entry.count
                self.totals["victim_pairs"] += 1
                self.totals["victim_packets"] += entry.count
                self.sketches["victim_packets"]["cm"].add(entry.addr, entry.count)
                self.sketches["victim_packets"]["topk"].add(entry.addr, entry.count)
                if self.asn_of is not None:
                    asn = self.asn_of(entry.addr)
                    if asn is not None:
                        self.sketches["as_packets"]["cm"].add(asn, entry.count)
                        self.sketches["as_packets"]["topk"].add(asn, entry.count)
        if entries:
            state["max_last_seen"].append(largest)

    def _apply_darknet(self, state, scanner_ip):
        state.add(scanner_ip)
        self.totals["darknet_memberships"] += 1

    def _apply_isp(self, state, payload):
        ip, volume = payload
        state["victims"][ip] = state["victims"].get(ip, 0.0) + volume
        state["cells"] += 1
        self.totals["isp_cells"] += 1
        self.totals["isp_bytes"] += volume
        self.sketches["isp_victim_bytes"]["cm"].add(ip, volume)
        self.sketches["isp_victim_bytes"]["topk"].add(ip, volume)

    def _apply_arbor(self, state, payload):
        if payload is None:
            state["gap"] = True
            self.totals["arbor_gap_days"] += 1
            return
        state["total_bps"], state["ntp_bps"], state["dns_bps"] = payload
        self.totals["arbor_days"] += 1

    # -- finalizers -----------------------------------------------------------

    def _fold_capture_stats(self, state):
        # Runs exactly once per window, at close; open windows are folded
        # non-destructively at read time by query_parse_stats.
        _add_stats(self.global_stats, state["stats"])

    def _finalize_capture(self, index, lo, hi, state, records):
        mls = state["max_last_seen"]
        return {
            "captures": records,
            "amplifiers": len(state["amplifiers"]),
            "victim_pairs": state["victim_pairs"],
            "unique_victims": len(state["victims"]),
            "victim_packets": state["victim_packets"],
            "scanner_entries": state["scanner_entries"],
            "non_victim_entries": state["non_victim_entries"],
            "median_view_hours": percentile(mls, 50) / HOUR if mls else 0.0,
            "stats": _stats_dict(state["stats"]),
        }

    @staticmethod
    def _finalize_darknet(index, lo, hi, state, records):
        return {"scanners": len(state)}

    @staticmethod
    def _finalize_isp(index, lo, hi, state, records):
        return {
            "cells": state["cells"],
            "victims": len(state["victims"]),
            "bytes": sum(state["victims"].values()),
        }

    @staticmethod
    def _finalize_arbor(index, lo, hi, state, records):
        total, ntp, dns = state["total_bps"], state["ntp_bps"], state["dns_bps"]
        if state["gap"] and total is None:
            return {"gap": True, "ntp_frac": None, "dns_frac": None}
        if not total:
            return {"gap": False, "ntp_frac": 0.0, "dns_frac": 0.0}
        return {"gap": False, "ntp_frac": ntp / total, "dns_frac": dns / total}

    # -- ingest ---------------------------------------------------------------

    @property
    def watermark(self):
        """Latest event time minus the tolerated skew (None before any
        record)."""
        if self.max_event_t is None:
            return None
        return self.max_event_t - self.skew

    def ingest(self, record):
        """Apply one record; returns True iff it landed in an open window."""
        self.records_seen += 1
        window_set = self.windows.get(record.kind)
        if window_set is None:
            self.unknown_kinds += 1
            return False
        if self.max_event_t is None or record.t > self.max_event_t:
            self.max_event_t = record.t
        watermark = self.watermark
        state = window_set.offer(record.t, record.uid, watermark)
        applied = state is not None
        if applied:
            self._apply[record.kind](state, record.payload)
        for ws in self.windows.values():
            ws.advance(watermark)
        return applied

    def ingest_many(self, records):
        """Drive a whole iterable through :meth:`ingest`; returns the
        number applied."""
        applied = 0
        for record in records:
            if self.ingest(record):
                applied += 1
        return applied

    def close(self):
        """End of stream: finalize every still-open window."""
        for ws in self.windows.values():
            ws.close_all()

    # -- queries --------------------------------------------------------------

    def query(self, name, **params):
        """Dispatch one named query (the service's surface)."""
        if name == "amplifiers":
            return self._windows_query("capture")
        if name == "victims":
            return self._windows_query("capture")
        if name == "top_victims":
            return self._top_query("victim_packets", params)
        if name == "top_amplifiers":
            return self._top_query("amplifier_entries", params)
        if name == "top_ases":
            return self._top_query("as_packets", params)
        if name == "top_isp_victims":
            return self._top_query("isp_victim_bytes", params)
        if name == "scanners":
            return self._windows_query("darknet")
        if name == "traffic":
            return self._windows_query("arbor")
        if name == "parse_stats":
            return self.query_parse_stats()
        if name == "ingest":
            return self.query_ingest()
        raise KeyError(f"unknown query {name!r} (have: {', '.join(QUERY_NAMES)})")

    def _windows_query(self, kind):
        rows = [
            {"window": index, "lo": lo, "hi": hi, "open": is_open, **summary}
            for index, lo, hi, summary, is_open in self.windows[kind].summaries()
        ]
        return {"kind": kind, "windows": rows, "watermark": self.watermark}

    def _top_query(self, sketch_name, params):
        n = params.get("n")
        n = int(n) if n is not None else 10
        if n < 1:
            raise ValueError("n must be >= 1")
        pair = self.sketches[sketch_name]
        top = pair["topk"].top(n)
        return {
            "sketch": sketch_name,
            "guarantee_threshold": pair["topk"].guarantee_threshold(),
            "cm_error_bound": pair["cm"].error_bound(),
            "entries": [
                {
                    "key": key,
                    "count": count,
                    "error": error,
                    "cm_estimate": pair["cm"].estimate(key),
                }
                for key, count, error in top
            ],
        }

    def query_parse_stats(self):
        """Stream-global ParseStats: closed windows' folded counters plus
        the still-open windows, read without closing them."""
        out = dict(self.global_stats)
        for window in self.windows["capture"].open.values():
            _add_stats(out, window.state["stats"])
        return out

    def query_ingest(self):
        accounting = {kind: ws.accounting() for kind, ws in self.windows.items()}
        return {
            "records_seen": self.records_seen,
            "unknown_kinds": self.unknown_kinds,
            "watermark": self.watermark,
            "skew": self.skew,
            "balanced": self.balanced,
            "kinds": accounting,
            "totals": dict(self.totals),
        }

    @property
    def balanced(self):
        """Every record accounted: per-kind ledgers balance and their
        totals plus unknown-kind records cover everything seen."""
        per_kind = all(ws.balanced for ws in self.windows.values())
        covered = (
            sum(ws.total for ws in self.windows.values()) + self.unknown_kinds
        ) == self.records_seen
        return per_kind and covered

    def snapshot(self):
        """One internally consistent view of everything the engine knows.

        The redundant global counters ride along so a reader can assert
        ``sum over windows == global`` without a second request — the
        torn-read check the service tests run against concurrent
        ingestion.
        """
        capture_windows = self._windows_query("capture")["windows"]
        return {
            "records_seen": self.records_seen,
            "watermark": self.watermark,
            "capture_windows": capture_windows,
            "windowed_victim_pairs": sum(
                w["victim_pairs"] for w in capture_windows
            ),
            "totals": dict(self.totals),
            "parse_stats": self.query_parse_stats(),
            "ingest": self.query_ingest(),
            "sketches": {
                name: {"cm": pair["cm"].as_dict(), "topk": pair["topk"].as_dict(10)}
                for name, pair in self.sketches.items()
            },
        }
