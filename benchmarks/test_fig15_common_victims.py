"""Figure 15: attack volume toward victims common to Merit and FRGP.

Paper: 291 victims were attacked through amplifiers at *both* sites
(coordinated multi-site amplifier lists), though the common-victim volumes
were fairly low compared with each site's top victims.
"""


def common_victim_volumes(world):
    common = world.isp.common_victims("merit", "frgp")
    merit = world.isp.sites["merit"]
    frgp = world.isp.sites["frgp"]
    rows = []
    for ip in common:
        rows.append(
            (
                ip,
                merit.victim_forensics[ip].gb,
                frgp.victim_forensics[ip].gb,
            )
        )
    rows.sort(key=lambda r: r[1] + r[2], reverse=True)
    return rows


def test_fig15_common_victims(benchmark, world):
    rows = benchmark(common_victim_volumes, world)

    # Cross-site coordination exists (paper: 291 at full scale).
    assert len(rows) >= 1
    # Both vantage points record volume for the shared victims.
    assert any(m > 0 and f > 0 for _, m, f in rows)
    # Common-victim volumes are modest relative to each site's top victim.
    merit_top = world.isp.sites["merit"].top_victims(1)
    if merit_top and rows:
        top_common = max(m for _, m, _ in rows)
        assert top_common <= merit_top[0].gb * 1.01

    print(f"\nFig15: {len(rows)} common Merit/FRGP victims; top volumes (GB merit/frgp):")
    for ip, m, f in rows[:5]:
        print(f"  {ip}: {m:.2f} / {f:.2f}")
