"""Golden artifact manifests: byte-identity as a first-class artifact.

Every PR so far has claimed "clean worlds byte-identical at seeds 7 and
2014" in its commit message; this module turns that claim into a checked
file.  A manifest records the sha256 of all 22 rendered artifacts (plus the
world summary) for each golden (seed, scale, faults) cell, together with
the ``repro.__version__`` that produced them.

The diff rule is the regression gate:

* checksums match — pass, regardless of version;
* checksums differ and the recorded version equals the current one — FAIL:
  the world model changed without a version bump (an accidental
  behavioural change, exactly what the manifest exists to catch);
* checksums differ and the version was bumped — the change was declared
  intentional; the caller must regenerate with ``verify-manifest --write``.
"""

import hashlib
import json
from pathlib import Path

__all__ = [
    "DEFAULT_MANIFEST_CELLS",
    "DEFAULT_MANIFEST_PATH",
    "artifact_checksums",
    "build_manifest",
    "diff_manifest",
    "load_manifest",
    "write_manifest",
]

#: The golden cells: the two seeds every PR's byte-identity claim covers,
#: at the tiny preset scale so CI stays fast.
DEFAULT_MANIFEST_CELLS = (
    {"seed": 7, "scale": 0.0005, "faults": "clean"},
    {"seed": 2014, "scale": 0.0005, "faults": "clean"},
)

DEFAULT_MANIFEST_PATH = Path("MANIFEST_golden.json")


def _sha256(text):
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def artifact_checksums(world, jobs=1):
    """sha256 of every rendered artifact (F1..F16, T1..T6) plus SUMMARY.

    ``jobs`` parallelizes the corpus decode and the renders through
    :func:`repro.cli.render_many`; the checksums are identical at any
    value (the render layer's request-order merge guarantees it).
    """
    from repro.analysis.context import AnalysisContext
    from repro.cli import ARTIFACTS, render_many

    context = AnalysisContext(world, jobs=jobs)
    ids = list(ARTIFACTS)
    outputs = render_many(world, ids, jobs=jobs, context=context)
    checksums = {artifact_id: _sha256(text) for artifact_id, text in zip(ids, outputs)}
    checksums["SUMMARY"] = _sha256(world.summary())
    return checksums


def _build_cell_world(cell):
    from repro.faults import resolve_fault_profile
    from repro.scenario.world import PaperWorld, WorldParams

    params = WorldParams(
        seed=cell["seed"],
        scale=cell["scale"],
        faults=resolve_fault_profile(cell["faults"]),
    )
    return PaperWorld.build(params=params)


def build_manifest(cells=DEFAULT_MANIFEST_CELLS, builder=None, progress=None, jobs=1):
    """Compute a manifest dict for the given cells."""
    import repro

    builder = builder or _build_cell_world
    say = progress or (lambda message: None)
    worlds = []
    for cell in cells:
        say(f"rendering seed={cell['seed']} scale={cell['scale']:g} faults={cell['faults']}")
        worlds.append(
            {
                "seed": cell["seed"],
                "scale": cell["scale"],
                "faults": cell["faults"],
                "checksums": artifact_checksums(builder(cell), jobs=jobs),
            }
        )
    return {"package_version": repro.__version__, "worlds": worlds}


def load_manifest(path=DEFAULT_MANIFEST_PATH):
    with open(path, encoding="utf-8") as handle:
        return json.load(handle)


def write_manifest(manifest, path=DEFAULT_MANIFEST_PATH):
    from repro.util.io import atomic_write_text

    path = Path(path)
    atomic_write_text(path, json.dumps(manifest, indent=2, sort_keys=False) + "\n")
    return path


def diff_manifest(recorded, current):
    """Compare a recorded manifest against freshly computed checksums.

    Returns ``(ok, lines)``: ``ok`` is True when every checksum matches;
    ``lines`` is a human-readable account either way, including the
    version-gate verdict on mismatch.
    """
    import repro

    lines = []
    mismatches = 0
    recorded_worlds = {
        (w["seed"], w["scale"], w["faults"]): w["checksums"] for w in recorded["worlds"]
    }
    current_worlds = {
        (w["seed"], w["scale"], w["faults"]): w["checksums"] for w in current["worlds"]
    }
    for key, current_sums in current_worlds.items():
        seed, scale, faults = key
        label = f"seed={seed} scale={scale:g} faults={faults}"
        recorded_sums = recorded_worlds.get(key)
        if recorded_sums is None:
            lines.append(f"{label}: not in recorded manifest")
            mismatches += 1
            continue
        changed = sorted(
            artifact_id
            for artifact_id in current_sums
            if recorded_sums.get(artifact_id) != current_sums[artifact_id]
        )
        missing = sorted(set(recorded_sums) - set(current_sums))
        if not changed and not missing:
            lines.append(f"{label}: {len(current_sums)} artifacts byte-identical")
        else:
            mismatches += 1
            if changed:
                lines.append(f"{label}: CHANGED {', '.join(changed)}")
            if missing:
                lines.append(f"{label}: artifacts no longer rendered: {', '.join(missing)}")
    for key in sorted(set(recorded_worlds) - set(current_worlds)):
        seed, scale, faults = key
        lines.append(f"seed={seed} scale={scale:g} faults={faults}: recorded but not checked")

    if mismatches == 0:
        return True, lines

    recorded_version = recorded.get("package_version", "?")
    if recorded_version == repro.__version__:
        lines.append(
            f"FAIL: artifact bytes changed but repro.__version__ is still "
            f"{repro.__version__} — an undeclared world-model change. "
            f"If intentional, bump __version__ and regenerate with "
            f"'python -m repro verify-manifest --write'."
        )
    else:
        lines.append(
            f"FAIL: artifact bytes changed across a version bump "
            f"({recorded_version} -> {repro.__version__}); regenerate the manifest "
            f"with 'python -m repro verify-manifest --write' to accept."
        )
    return False, lines
