"""Cross-cutting property-based tests on core invariants."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.measurement.arbor import ArborCollector
from repro.population.remediation import SurvivalCurve
from repro.util import RngStream, Timeline
from repro.util.simtime import DAY
from tests.strategies import attack_specs, survival_anchor_lists, timeline_points


# -- survival curves --------------------------------------------------------------


@given(survival_anchor_lists, st.floats(min_value=0.011, max_value=0.999))
def test_survival_inverse_consistency(values, s):
    """Property: inverse(s) is the first time survival has fallen to <= s.

    When ``s`` falls inside the curve's opening jump (an anchor below 1.0
    at the start), the crossing happens *at* the first anchor, where
    survival is already below ``s``; elsewhere the crossing is exact.
    """
    anchors = [(float(i) * 1000.0, v) for i, v in enumerate(values)]
    curve = SurvivalCurve(anchors)
    t = curve.inverse(s)
    if t is None:
        # Only values at or below the floor are never reached.
        assert s <= curve.floor + 1e-12
        return
    value = curve.value_at(t)
    assert value <= s + 1e-9
    if t > curve.start:
        assert value == pytest.approx(s, rel=1e-6, abs=1e-9)


@given(survival_anchor_lists, st.floats(min_value=0.0, max_value=8000.0))
def test_survival_monotone(values, t):
    anchors = [(float(i) * 1000.0, v) for i, v in enumerate(values)]
    curve = SurvivalCurve(anchors)
    assert curve.value_at(t) >= curve.value_at(t + 500.0) - 1e-12


# -- timelines --------------------------------------------------------------


@given(timeline_points, st.floats(min_value=-1e5, max_value=1.1e6, allow_nan=False))
def test_timeline_within_envelope(points, t):
    """Property: interpolation stays within the min/max of anchor values."""
    times = [p[0] for p in points]
    if any(b - a < 1e-6 for a, b in zip(times, times[1:])):
        return  # degenerate spacing
    line = Timeline(points)
    values = [v for _, v in points]
    assert min(values) - 1e-9 <= line(t) <= max(values) + 1e-9


@given(st.floats(min_value=0.1, max_value=1e3), st.floats(min_value=0.1, max_value=1e3))
def test_log_timeline_endpoint_exactness(v0, v1):
    line = Timeline([(0.0, v0), (10.0, v1)], log=True)
    assert line(0.0) == pytest.approx(v0, rel=1e-9)
    assert line(10.0) == pytest.approx(v1, rel=1e-9)


# -- arbor integration --------------------------------------------------------------


class _FakeAttack:
    def __init__(self, start, duration, bps):
        self.start = start
        self.duration = duration
        self.target_bps = bps


@settings(max_examples=40)
@given(attack_specs)
def test_attack_byte_integration_conserves_volume(specs):
    """Property: per-day integration conserves each attack's total bytes
    (modulo the fixed 4% query-direction overhead)."""
    collector = ArborCollector(RngStream(1, "prop"), scale=0.001)
    attacks = [_FakeAttack(s, d, b) for s, d, b in specs]
    per_day = collector._attack_bytes_per_day(attacks)
    total = sum(per_day.values())
    expected = sum(a.target_bps / 8.0 * a.duration for a in attacks) * 1.04
    assert total == pytest.approx(expected, rel=1e-9, abs=1e-6)


@given(
    st.floats(min_value=0.0, max_value=5 * DAY),
    st.floats(min_value=1.0, max_value=2 * DAY),
)
def test_attack_byte_integration_day_bounds(start, duration):
    """Property: bytes land only on days the attack actually spans."""
    collector = ArborCollector(RngStream(2, "prop"), scale=0.001)
    per_day = collector._attack_bytes_per_day([_FakeAttack(start, duration, 8e6)])
    first_day = int(start // DAY)
    last_day = int((start + duration) // DAY)
    assert set(per_day) <= set(range(first_day, last_day + 1))
    assert all(v > 0 for v in per_day.values())
