"""Bandwidth-amplification-factor accounting (§3.2, §3.3, Figure 4).

On-wire BAF = (aggregate on-wire bytes of all response packets) / (on-wire
bytes of the single query packet).  The query is a minimum Ethernet frame:
84 bytes including preamble and inter-packet gap.  This is deliberately
lower than Rossow's UDP-payload-ratio BAF — it models real bandwidth
exhaustion on Ethernet links; an ablation benchmark compares the two.
"""

from collections import defaultdict
from dataclasses import dataclass

import numpy as np

from repro.net.framing import (
    MIN_ONWIRE_FRAME,
    UDP_IP_HEADERS,
    on_wire_bytes,
    on_wire_bytes_array,
)
from repro.ntp.wire import decode_mode6
from repro.util.stats import boxplot_summary, rank_series

__all__ = [
    "on_wire_baf",
    "payload_baf",
    "sample_baf_boxplot",
    "version_sample_baf_boxplot",
    "aggregate_bytes_per_amplifier",
    "mega_amplifier_census",
    "MegaCensus",
]

#: The mode-7 monlist request is an 8-byte UDP payload -> minimum frame.
QUERY_ON_WIRE = MIN_ONWIRE_FRAME
QUERY_PAYLOAD = 8


def on_wire_baf(table_or_capture):
    """On-wire BAF of one reply (works for reconstructed tables and raw
    probe captures: both expose total packets/bytes once + repeats)."""
    if hasattr(table_or_capture, "total_on_wire_bytes"):
        total = table_or_capture.total_on_wire_bytes
    else:
        total = (
            sum(on_wire_bytes(len(p)) for p in table_or_capture.packets)
            * table_or_capture.n_repeats
        )
    return total / QUERY_ON_WIRE


def payload_baf(table_or_capture):
    """Rossow-style UDP-payload BAF (for the ablation comparison)."""
    if hasattr(table_or_capture, "total_payload_bytes"):
        total = table_or_capture.total_payload_bytes
    else:
        total = sum(len(p) for p in table_or_capture.packets) * table_or_capture.n_repeats
    return total / QUERY_PAYLOAD


def sample_baf_boxplot(parsed_sample):
    """Figure 4b: the five-number BAF summary of one monlist sample."""
    columns = getattr(parsed_sample, "columns", None)
    if columns is not None:
        lo, hi = columns.sample_table_span(parsed_sample.sample_index)
        totals = (
            columns.table_native("wire_once")[lo:hi]
            * columns.table_native("n_repeats")[lo:hi]
        )
        bafs = totals.astype(np.float64) / float(QUERY_ON_WIRE)
        return boxplot_summary(bafs.tolist())
    return boxplot_summary([on_wire_baf(t) for t in parsed_sample.tables])


def version_sample_baf_boxplot(version_sample):
    """Figure 4c: BAF summary of one mode-6 version sample."""
    packed = getattr(version_sample, "packed", None)
    if packed is not None:
        wire = on_wire_bytes_array(packed.pkt_lens)
        cum = np.concatenate(([0], np.cumsum(wire)))
        offsets = np.asarray(packed.pkt_offsets, dtype=np.int64)
        totals = (cum[offsets[1:]] - cum[offsets[:-1]]) * np.asarray(
            packed.n_repeats, dtype=np.int64
        )
        bafs = totals.astype(np.float64) / float(QUERY_ON_WIRE)
        return boxplot_summary(bafs.tolist())
    bafs = []
    for capture in version_sample.captures:
        total = sum(on_wire_bytes(len(p)) for p in capture.packets) * capture.n_repeats
        bafs.append(total / QUERY_ON_WIRE)
    return boxplot_summary(bafs)


def aggregate_bytes_per_amplifier(parsed_samples):
    """Figure 4a: aggregate on-wire response bytes per amplifier over all
    samples, plus the rank series (sorted descending)."""
    totals = defaultdict(int)
    for parsed in parsed_samples:
        for table in parsed.tables:
            totals[table.amplifier_ip] += table.total_on_wire_bytes
    return dict(totals), rank_series(totals.values())


@dataclass(frozen=True)
class MegaCensus:
    """§3.4's mega-amplifier counts."""

    n_over_100kb: int
    n_over_1gb: int
    largest_bytes: int
    fraction_under_50kb: float


def mega_amplifier_census(parsed_samples):
    """Count amplifiers whose *single-sample* reply exceeded the mega
    thresholds, and the fraction whose aggregate stayed under a full
    table's worth (~50 KB)."""
    max_reply = defaultdict(int)
    totals = defaultdict(int)
    for parsed in parsed_samples:
        for table in parsed.tables:
            max_reply[table.amplifier_ip] = max(
                max_reply[table.amplifier_ip], table.total_on_wire_bytes
            )
            totals[table.amplifier_ip] += table.total_on_wire_bytes
    if not max_reply:
        return MegaCensus(0, 0, 0, 0.0)
    over_100kb = sum(1 for v in max_reply.values() if v > 100e3)
    over_1gb = sum(1 for v in max_reply.values() if v > 1e9)
    largest = max(max_reply.values())
    under_50kb = sum(1 for v in totals.values() if v < 50e3) / len(totals)
    return MegaCensus(
        n_over_100kb=over_100kb,
        n_over_1gb=over_1gb,
        largest_bytes=largest,
        fraction_under_50kb=under_50kb,
    )
