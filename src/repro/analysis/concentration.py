"""AS-level concentration of attack traffic (Figure 5).

For each victim observation, attribute its packets both to the victim's
origin AS and to the amplifier's origin AS, then build the two rank-CDFs
the paper plots: the top 100 amplifier ASes source ~60% of victim packets,
and the top 100 victim ASes absorb ~75%.
"""

from collections import defaultdict
from dataclasses import dataclass

import numpy as np

from repro.util.stats import Ecdf

__all__ = ["ConcentrationReport", "as_concentration"]


@dataclass
class ConcentrationReport:
    victim_as_packets: dict
    amplifier_as_packets: dict

    @property
    def victim_ecdf(self):
        return Ecdf(self.victim_as_packets.values())

    @property
    def amplifier_ecdf(self):
        return Ecdf(self.amplifier_as_packets.values())

    def top_victim_ases(self, n=10):
        """[(asn, packets)] sorted by packets received, descending."""
        return sorted(self.victim_as_packets.items(), key=lambda kv: kv[1], reverse=True)[:n]

    def victim_as_rank(self, asn):
        """1-based rank of an AS in the victim table, or None."""
        ordered = sorted(self.victim_as_packets.items(), key=lambda kv: kv[1], reverse=True)
        for rank, (a, _) in enumerate(ordered, start=1):
            if a == asn:
                return rank
        return None


def _as_packets_columnar(ips, packets, table):
    """{asn: packets} by group-by, keys in first-observation order.

    The AS lookup runs once per *unique* IP (a Python call per IP would
    dominate); per-AS packet sums are exact in float64 accumulation and
    returned as ints, and the dict is built in the same first-occurrence
    order the scalar defaultdict loop would produce — ``sorted`` ties in
    the rank methods above resolve identically.
    """
    unique_ips = np.unique(ips)
    asn_lookup = np.array(
        [
            asn if (asn := table.asn_of(ip)) is not None else -1
            for ip in unique_ips.tolist()
        ],
        dtype=np.int64,
    )
    asn_per_obs = asn_lookup[np.searchsorted(unique_ips, ips)]
    routed = asn_per_obs >= 0
    asns = asn_per_obs[routed]
    if not len(asns):
        return {}
    uniq, first_idx, inverse = np.unique(asns, return_index=True, return_inverse=True)
    sums = np.bincount(inverse, weights=packets[routed].astype(np.float64))
    order = np.argsort(first_idx, kind="stable")
    return {int(uniq[k]): int(sums[k]) for k in order}


def as_concentration(report, table):
    """Build the Figure-5 view from a victimology report and a routing
    table (IPs outside the plan are dropped, as unrouted junk would be)."""
    from repro.analysis.victimology import ColumnarVictimologyReport

    if isinstance(report, ColumnarVictimologyReport):
        parts = [(s._victim, s._amplifier, s._packets) for s in report.samples]
        parts = [p for p in parts if len(p[0])]
        if not parts:
            return ConcentrationReport(victim_as_packets={}, amplifier_as_packets={})
        victims = np.concatenate([p[0] for p in parts])
        amplifiers = np.concatenate([p[1] for p in parts])
        packets = np.concatenate([p[2] for p in parts])
        return ConcentrationReport(
            victim_as_packets=_as_packets_columnar(victims, packets, table),
            amplifier_as_packets=_as_packets_columnar(amplifiers, packets, table),
        )

    victim_packets = defaultdict(int)
    amplifier_packets = defaultdict(int)
    for sample in report.samples:
        for obs in sample.observations:
            victim_asn = table.asn_of(obs.victim_ip)
            amp_asn = table.asn_of(obs.amplifier_ip)
            if victim_asn is not None:
                victim_packets[victim_asn] += obs.packets
            if amp_asn is not None:
                amplifier_packets[amp_asn] += obs.packets
    return ConcentrationReport(
        victim_as_packets=dict(victim_packets),
        amplifier_as_packets=dict(amplifier_packets),
    )
