"""Reconstructing monlist tables from captured response packets (§4.2).

This is the ntpdc-equivalent protocol logic the paper applied to 5M
amplifier-week response sets: parse each mode-7 packet, validate it against
the request, and reassemble the multi-packet table in sequence order.  When
an amplifier sent repeated copies of the table (a mega amplifier), the
*final* table received is used, as in the paper — our captures store
exactly that rendition plus the repeat count.
"""

from dataclasses import dataclass, field

from repro.net.framing import on_wire_bytes
from repro.ntp.constants import MON_ENTRY_V1_SIZE, MON_ENTRY_V2_SIZE
from repro.ntp.wire import WireError, decode_mode7, decode_mode7_stream

__all__ = [
    "ReconstructedTable",
    "reconstruct_table",
    "reconstruct_table_lenient",
    "ParseStats",
    "ParsedSample",
    "parse_sample",
    "parse_corpus",
    "parse_call_count",
]

#: Process-wide count of :func:`parse_sample` calls.  Corpus decoding is
#: the analysis layer's dominant cost; the counter lets tests assert the
#: parse-once contract ("one CLI invocation decodes the corpus exactly
#: once") instead of trusting the plumbing.
_PARSE_CALLS = 0


def parse_call_count():
    """How many times :func:`parse_sample` ran in this process."""
    return _PARSE_CALLS


@dataclass
class ReconstructedTable:
    """One amplifier's parsed monlist reply for one sample."""

    amplifier_ip: int
    t: float
    entries: tuple
    entry_size: int
    n_packets_once: int
    n_repeats: int
    payload_bytes_once: int
    on_wire_bytes_once: int

    @property
    def total_packets(self):
        return self.n_packets_once * self.n_repeats

    @property
    def total_on_wire_bytes(self):
        return self.on_wire_bytes_once * self.n_repeats

    @property
    def total_payload_bytes(self):
        return self.payload_bytes_once * self.n_repeats

    @property
    def is_mega(self):
        return self.n_repeats > 1

    def __len__(self):
        return len(self.entries)


def reconstruct_table(capture):
    """Parse one :class:`~repro.measurement.onp.ProbeCapture` into a table.

    Packets are validated (response bit, consistent implementation/request
    code, item size) and entries concatenated in sequence order.  Raises
    :class:`~repro.ntp.wire.WireError` on malformed input.
    """
    decoded = [decode_mode7(p) for p in capture.packets]
    if not decoded:
        raise WireError("empty capture")
    first = decoded[0]
    for pkt in decoded:
        if not pkt.response:
            raise WireError("capture contains a non-response packet")
        if pkt.implementation != first.implementation:
            raise WireError("mixed implementations in one capture")
        if pkt.item_size not in (0, MON_ENTRY_V1_SIZE, MON_ENTRY_V2_SIZE):
            raise WireError(f"unexpected item size {pkt.item_size}")
    ordered = sorted(decoded, key=lambda p: p.sequence)
    entries = []
    for pkt in ordered:
        entries.extend(pkt.items)
    payload = sum(len(p) for p in capture.packets)
    wire = sum(on_wire_bytes(len(p)) for p in capture.packets)
    return ReconstructedTable(
        amplifier_ip=capture.target_ip,
        t=capture.t,
        entries=tuple(entries),
        entry_size=first.item_size,
        n_packets_once=len(capture.packets),
        n_repeats=capture.n_repeats,
        payload_bytes_once=payload,
        on_wire_bytes_once=wire,
    )


@dataclass
class ParseStats:
    """Per-sample accounting of everything the parse layer discarded.

    A real pipeline loses data in ways a bare ``continue`` hides; every
    discard here is counted so a systematically unparseable amplifier is
    visible in the quality report instead of silently vanishing from the
    figures.
    """

    captures_total: int = 0
    #: Captures reconstructed with nothing discarded.
    captures_ok: int = 0
    #: Captures reconstructed only by dropping some packets/entries.
    captures_salvaged: int = 0
    #: Captures with no salvageable response packets at all.
    captures_failed: int = 0
    #: Packets that did not decode as mode 7 (corruption).
    packets_undecodable: int = 0
    #: Decoded packets rejected by validation (non-response, mixed
    #: implementation, unsupported item size).
    packets_invalid: int = 0
    #: Repeated fragments (same sequence number; first copy kept).
    packets_duplicate: int = 0
    #: Fragments after a sequence gap, unusable for in-order reassembly.
    packets_out_of_sequence: int = 0
    #: Monitor entries recovered into tables.
    entries_recovered: int = 0
    #: Monitor entries discarded along with their rejected fragments.
    entries_discarded: int = 0

    @property
    def captures_parsed(self):
        return self.captures_ok + self.captures_salvaged

    @property
    def degraded(self):
        """True when anything at all was discarded."""
        return (
            self.captures_salvaged
            or self.captures_failed
            or self.packets_undecodable
            or self.packets_invalid
            or self.packets_duplicate
            or self.packets_out_of_sequence
            or self.entries_discarded
        ) != 0

    def merge(self, other):
        """Accumulate another :class:`ParseStats` into this one."""
        for stat_field in self.__dataclass_fields__:
            setattr(self, stat_field, getattr(self, stat_field) + getattr(other, stat_field))
        return self

    def as_dict(self):
        return {f: getattr(self, f) for f in self.__dataclass_fields__}


def reconstruct_table_lenient(capture, stats=None):
    """Best-effort reconstruction of one capture.

    Salvages what the strict path would reject wholesale: undecodable and
    invalid packets are dropped, duplicate fragments are deduplicated
    (first copy wins), and the longest in-order sequence run from the
    lowest sequence number is reassembled — fragments after a sequence gap
    cannot be placed and are discarded.  Every discard is counted in
    ``stats``.  Returns None when nothing is salvageable.

    On a well-formed capture this is byte-identical to
    :func:`reconstruct_table` (same entries, same sizes) with zero
    discards — the clean world does not change.
    """
    if stats is None:
        stats = ParseStats()
    stats.captures_total += 1
    decoded, n_undecodable = decode_mode7_stream(capture.packets)
    stats.packets_undecodable += n_undecodable
    degraded = n_undecodable > 0

    valid = []
    expected_impl = None
    for pkt in decoded:
        if not pkt.response or pkt.item_size not in (0, MON_ENTRY_V1_SIZE, MON_ENTRY_V2_SIZE):
            stats.packets_invalid += 1
            stats.entries_discarded += len(pkt.items)
            degraded = True
            continue
        if expected_impl is None:
            expected_impl = pkt.implementation
        elif pkt.implementation != expected_impl:
            stats.packets_invalid += 1
            stats.entries_discarded += len(pkt.items)
            degraded = True
            continue
        valid.append(pkt)

    by_sequence = {}
    for pkt in valid:  # arrival order; first copy of a sequence wins
        if pkt.sequence in by_sequence:
            stats.packets_duplicate += 1
            degraded = True
            continue
        by_sequence[pkt.sequence] = pkt
    if not by_sequence:
        stats.captures_failed += 1
        return None

    # Reassemble the contiguous run from the lowest sequence; a fragment
    # beyond a gap has no defensible position in the table and is dropped
    # (never interpolated, never fabricated).
    sequences = sorted(by_sequence)
    run = [sequences[0]]
    for seq in sequences[1:]:
        if seq == run[-1] + 1:
            run.append(seq)
        else:
            break
    for seq in sequences[len(run):]:
        stats.packets_out_of_sequence += 1
        stats.entries_discarded += len(by_sequence[seq].items)
        degraded = True

    entries = []
    for seq in run:
        entries.extend(by_sequence[seq].items)
    stats.entries_recovered += len(entries)
    if degraded:
        stats.captures_salvaged += 1
    else:
        stats.captures_ok += 1
    payload = sum(len(p) for p in capture.packets)
    wire = sum(on_wire_bytes(len(p)) for p in capture.packets)
    return ReconstructedTable(
        amplifier_ip=capture.target_ip,
        t=capture.t,
        entries=tuple(entries),
        entry_size=by_sequence[run[0]].item_size,
        n_packets_once=len(capture.packets),
        n_repeats=capture.n_repeats,
        payload_bytes_once=payload,
        on_wire_bytes_once=wire,
    )


@dataclass
class ParsedSample:
    """All reconstructed tables of one weekly ONP monlist sample."""

    t: float
    tables: list = field(default_factory=list)
    #: What the parse layer discarded for this sample.
    stats: ParseStats = field(default_factory=ParseStats)
    #: Mirrors of the apparatus-level sample flags (see
    #: :class:`~repro.measurement.onp.OnpSample`).
    outage: bool = False
    coverage: float = 1.0
    #: Length-guarded memo for :meth:`amplifier_ips` (tables are
    #: append-only during the parse, fixed afterwards).
    _ip_cache: tuple = field(default=None, repr=False, compare=False)

    def __len__(self):
        return len(self.tables)

    def amplifier_ips(self):
        """The set of amplifier IPs with a parsed table (cached).

        The churn/remediation analyses each walk every sample's IP set;
        the cache makes those walks reuse one set per sample.  Callers
        must not mutate the returned set.
        """
        cache = self._ip_cache
        n = len(self.tables)
        if cache is None or cache[0] != n:
            cache = (n, {table.amplifier_ip for table in self.tables})
            self._ip_cache = cache
        return cache[1]


def parse_sample(sample):
    """Reconstruct every capture of an ONP sample, best-effort.

    Unparseable material is salvaged where possible and *accounted* in
    ``parsed.stats`` — never silently skipped, so a systematically
    unparseable amplifier shows up in the quality report rather than
    vanishing from every downstream figure without a trace.
    """
    global _PARSE_CALLS
    _PARSE_CALLS += 1
    parsed = ParsedSample(
        t=sample.t,
        outage=getattr(sample, "outage", False),
        coverage=getattr(sample, "coverage", 1.0),
    )
    for capture in sample.captures:
        table = reconstruct_table_lenient(capture, parsed.stats)
        if table is not None:
            parsed.tables.append(table)
    return parsed


def parse_corpus(samples, jobs=1):
    """Parse a list of ONP samples, optionally across processes.

    Results are returned in input order regardless of worker count, so the
    output is identical at any ``jobs`` value (each sample's parse is a
    pure function of its captures).  Parallelism needs the ``fork`` start
    method (workers inherit the samples copy-on-write; spawn would pickle
    the whole corpus per worker and cost more than it saves) and at least
    two samples per worker to amortize the result pickling — otherwise the
    serial path runs.  The parent's parse-call counter advances by
    ``len(samples)`` either way, preserving the parse-once accounting.
    """
    samples = list(samples)
    if jobs > 1 and len(samples) >= 2 * jobs:
        import multiprocessing
        from concurrent.futures import ProcessPoolExecutor

        try:
            context = multiprocessing.get_context("fork")
        except ValueError:
            context = None
        if context is not None:
            global _PARSE_CALLS
            with ProcessPoolExecutor(max_workers=jobs, mp_context=context) as pool:
                parsed = list(pool.map(parse_sample, samples))
            # Workers incremented their own (forked) counters; mirror the
            # work into this process's ledger.
            _PARSE_CALLS += len(samples)
            return parsed
    return [parse_sample(sample) for sample in samples]
