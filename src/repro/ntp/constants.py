"""Protocol constants for the NTP substrate.

The subset of NTPv4 (RFC 5905) plus the legacy mode-6 control and mode-7
private ("ntpdc") protocols that matter for the paper: normal client/server
exchange (modes 3/4), the ``version``/READVAR control query (mode 6), and the
``monlist`` private request (mode 7).
"""

__all__ = [
    "NTP_PORT",
    "MODE_CLIENT",
    "MODE_SERVER",
    "MODE_CONTROL",
    "MODE_PRIVATE",
    "VN_NTPV2",
    "VN_NTPV3",
    "VN_NTPV4",
    "IMPL_UNIV",
    "IMPL_XNTPD_OLD",
    "IMPL_XNTPD",
    "REQ_MON_GETLIST",
    "REQ_MON_GETLIST_1",
    "CTL_OP_READVAR",
    "MON_ENTRY_V1_SIZE",
    "MON_ENTRY_V2_SIZE",
    "MODE7_HEADER_SIZE",
    "MODE6_HEADER_SIZE",
    "MODE7_DATA_AREA",
    "MODE6_DATA_AREA",
    "MONLIST_CAPACITY",
    "MODE3_PACKET_SIZE",
    "STRATUM_UNSYNCHRONIZED",
    "items_per_packet",
]

NTP_PORT = 123

# NTP association modes (low 3 bits of the first header byte).
MODE_CLIENT = 3
MODE_SERVER = 4
MODE_CONTROL = 6
MODE_PRIVATE = 7

VN_NTPV2 = 2
VN_NTPV3 = 3
VN_NTPV4 = 4

# Mode-7 "implementation" codes.  The two monlist-capable implementations the
# paper discusses ("there are several implementations of the NTP service, and
# they do not all respond to the same packet format"):
IMPL_UNIV = 0
IMPL_XNTPD_OLD = 2  # legacy xntpd: 32-byte v1 monitor entries
IMPL_XNTPD = 3  # modern ntpd: 72-byte v2 monitor entries

# Mode-7 request codes for the two monlist variants.
REQ_MON_GETLIST = 20  # v1 entries
REQ_MON_GETLIST_1 = 42  # v2 entries

# Mode-6 opcodes.
CTL_OP_READVAR = 2

# Entry and header sizes (bytes).
MON_ENTRY_V1_SIZE = 32
MON_ENTRY_V2_SIZE = 72
MODE7_HEADER_SIZE = 8
MODE6_HEADER_SIZE = 12
#: ntpd limits mode-7 response data areas to 500 bytes; entries per packet
#: follow from the entry size (6 for v2, 15 for v1).
MODE7_DATA_AREA = 500
#: Mode-6 responses are fragmented at ~468 data bytes per packet.
MODE6_DATA_AREA = 468

#: The monlist MRU list returns at most 600 entries (confirmed empirically
#: by the paper).
MONLIST_CAPACITY = 600

#: Standard NTPv4 header (modes 1-5) is 48 bytes.
MODE3_PACKET_SIZE = 48

#: Stratum 16 means the server is unsynchronized (§3.3 finds 19% of servers
#: report it).
STRATUM_UNSYNCHRONIZED = 16


def items_per_packet(entry_size):
    """How many monitor entries fit in one mode-7 response packet."""
    if entry_size <= 0:
        raise ValueError("entry size must be positive")
    return MODE7_DATA_AREA // entry_size
