"""The invariant registry: every semantic contract the world model must obey.

Each invariant is a named, registered check with a scope, a severity, a
declared tolerance, and the paper section it anchors to.  The registry is
the single source of truth consumed by three clients: the
:mod:`~repro.verify.runner` (which evaluates checks over a seed x scale x
fault matrix), the ``verify-world`` CLI (which turns violations into a
nonzero exit), and DESIGN.md's conformance table (which documents the
tolerances).

Scopes
------
* ``world`` — evaluated once per matrix cell, on a single built world;
* ``scale`` — evaluated per (seed, fault) group across its scales, in
  ascending scale order (metamorphic relation: grow the world, outputs
  must grow ~proportionally);
* ``seed`` — evaluated per (scale, fault) group across its seeds
  (metamorphic relation: reroll randomness, aggregate statistics must stay
  inside their bands while raw bytes differ);
* ``fault`` — evaluated per (seed, scale) pair of a clean world and one
  faulted world (metamorphic relation: degrade the apparatus, ground truth
  must not move and observations may only shrink within bounds).

A check returns ``None`` to *skip* (the group lacks the data to judge —
e.g. a single-scale matrix cannot assess scale growth), or a dict with
``measured`` (numbers worth reporting) and ``violations`` (empty = pass).
Checks never raise on degraded inputs; an unexpected exception inside a
check is itself reported as a violation by the runner.
"""

from dataclasses import dataclass, field

from repro.util.simtime import DAY, WEEK

__all__ = ["Invariant", "REGISTRY", "invariant", "all_invariants"]


@dataclass(frozen=True)
class Invariant:
    """One registered conformance check."""

    name: str
    scope: str  # "world" | "scale" | "seed" | "fault"
    severity: str  # "error" (fails the run) | "warning" (reported only)
    description: str
    #: The paper section/figure this invariant reproduces or guards.
    paper_anchor: str
    #: Declared tolerance knobs, by name (rendered into reports and docs).
    tolerance: dict = field(default_factory=dict)
    check: callable = None


#: {name: Invariant} in registration order (dicts preserve it).
REGISTRY = {}

_SCOPES = ("world", "scale", "seed", "fault")


def invariant(name, scope, description, paper_anchor, severity="error", **tolerance):
    """Decorator: register a check function as a named invariant."""
    if scope not in _SCOPES:
        raise ValueError(f"scope must be one of {_SCOPES}, got {scope!r}")
    if severity not in ("error", "warning"):
        raise ValueError(f"severity must be 'error' or 'warning', got {severity!r}")

    def register(fn):
        if name in REGISTRY:
            raise ValueError(f"duplicate invariant name {name!r}")
        REGISTRY[name] = Invariant(
            name=name,
            scope=scope,
            severity=severity,
            description=description,
            paper_anchor=paper_anchor,
            tolerance=dict(tolerance),
            check=fn,
        )
        return fn

    return register


def all_invariants():
    """Registered invariants, in registration order."""
    return list(REGISTRY.values())


def _result(measured=None, violations=None):
    return {"measured": dict(measured or {}), "violations": list(violations or [])}


def _growth_violations(pairs, rel_tolerance, label):
    """Check consecutive (scale, value) pairs for ~linear growth."""
    violations = []
    for (s1, v1), (s2, v2) in zip(pairs, pairs[1:]):
        if v1 <= 0:
            violations.append(f"{label} is {v1} at scale {s1}; cannot have vanished")
            continue
        expected = s2 / s1
        actual = v2 / v1
        if abs(actual / expected - 1.0) > rel_tolerance:
            violations.append(
                f"{label} grew {actual:.2f}x from scale {s1:g} to {s2:g}; "
                f"expected ~{expected:.2f}x (rel tolerance {rel_tolerance})"
            )
    return violations


# ---------------------------------------------------------------------------
# Scale monotonicity (metamorphic: grow the world, outputs grow ~linearly)
# ---------------------------------------------------------------------------


@invariant(
    "scale.amplifier_pool",
    scope="scale",
    description="Peak observed monlist amplifier count grows ~linearly in scale",
    paper_anchor="§3.1 Fig. 3 (1.4M initial amplifiers at full scale)",
    rel_tolerance=0.5,
)
def check_scale_amplifier_pool(records, tolerance):
    pairs = []
    for record in records:
        measured = record.measured_rows()
        if not measured:
            return None  # an apparatus outage ate the evidence; fault checks cover it
        pairs.append((record.scale, max(row.ips for row in measured)))
    return _result(
        measured={f"peak@{s:g}": v for s, v in pairs},
        violations=_growth_violations(pairs, tolerance["rel_tolerance"], "peak amplifier IPs"),
    )


@invariant(
    "scale.victim_population",
    scope="scale",
    description="Ground-truth victim population grows ~linearly in scale",
    paper_anchor="§4.3 (437K victim IPs at full scale)",
    rel_tolerance=0.35,
)
def check_scale_victim_population(records, tolerance):
    pairs = [(record.scale, len(record.world.victims)) for record in records]
    return _result(
        measured={f"victims@{s:g}": v for s, v in pairs},
        violations=_growth_violations(pairs, tolerance["rel_tolerance"], "victim population"),
    )


@invariant(
    "scale.attack_count",
    scope="scale",
    description="Campaign attack count grows ~linearly in scale",
    paper_anchor="§4.3.3 (attack volume tracks the booter ecosystem's size)",
    rel_tolerance=0.35,
)
def check_scale_attack_count(records, tolerance):
    pairs = [(record.scale, len(record.world.attacks)) for record in records]
    return _result(
        measured={f"attacks@{s:g}": v for s, v in pairs},
        violations=_growth_violations(pairs, tolerance["rel_tolerance"], "attack count"),
    )


@invariant(
    "scale.observed_packets",
    scope="scale",
    description="Total observed victim packets grow roughly linearly in scale",
    paper_anchor="§4.3.3 (2.92 trillion packets at full scale)",
    rel_tolerance=0.75,
)
def check_scale_observed_packets(records, tolerance):
    pairs = []
    for record in records:
        packets = record.victim_report().total_attack_packets()
        if packets <= 0:
            return None
        pairs.append((record.scale, packets))
    return _result(
        measured={f"packets@{s:g}": v for s, v in pairs},
        violations=_growth_violations(pairs, tolerance["rel_tolerance"], "observed packets"),
    )


# ---------------------------------------------------------------------------
# Seed robustness (metamorphic: reroll randomness, aggregates stay in band)
# ---------------------------------------------------------------------------


@invariant(
    "seed.remediation_decline",
    scope="seed",
    description="Amplifier-pool decline (first->last measured week) stays in band at every seed",
    paper_anchor="§6.1 (92% IP-level reduction)",
    band=(0.40, 1.0),
)
def check_seed_remediation_decline(records, tolerance):
    lo, hi = tolerance["band"]
    measured, violations = {}, []
    judged = 0
    for record in records:
        rows = record.measured_rows()
        if len(rows) < 2:
            continue
        judged += 1
        decline = 1.0 - rows[-1].ips / rows[0].ips
        measured[f"decline@seed={record.seed}"] = round(decline, 4)
        if not lo <= decline <= hi:
            violations.append(
                f"seed {record.seed}: decline {decline:.2f} outside [{lo}, {hi}]"
            )
    if not judged:
        return None
    return _result(measured=measured, violations=violations)


@invariant(
    "seed.victim_concentration",
    scope="seed",
    description="Top-10 victim ASes hold at least the band's share of victim packets at every seed",
    paper_anchor="§4.3.2 Fig. 5 (top 100 ASes absorb ~75%)",
    min_top10_share=0.2,
)
def check_seed_victim_concentration(records, tolerance):
    floor = tolerance["min_top10_share"]
    measured, violations = {}, []
    judged = 0
    for record in records:
        concentration = record.concentration()
        if not concentration.victim_as_packets:
            continue
        judged += 1
        share = concentration.victim_ecdf.fraction_within_top(10)
        measured[f"top10@seed={record.seed}"] = round(share, 4)
        if share < floor:
            violations.append(
                f"seed {record.seed}: top-10 victim-AS share {share:.2f} < {floor}"
            )
    if not judged:
        return None
    return _result(measured=measured, violations=violations)


@invariant(
    "seed.version_demographics",
    scope="seed",
    description="Version-probe demographics (stratum-16 share, pre-2004 compile share) stay in band",
    paper_anchor="§3.3 Table 2 (stratum 16: 0.19; compiled pre-2004: 0.13)",
    stratum16_band=(0.03, 0.50),
    pre2004_band=(0.01, 0.50),
)
def check_seed_version_demographics(records, tolerance):
    s_lo, s_hi = tolerance["stratum16_band"]
    c_lo, c_hi = tolerance["pre2004_band"]
    measured, violations = {}, []
    judged = 0
    for record in records:
        report = record.version_report()
        if report is None or len(report) == 0:
            continue
        judged += 1
        stratum16 = report.stratum16_fraction()
        pre2004 = report.compile_year_cdf()[2004]
        measured[f"stratum16@seed={record.seed}"] = round(stratum16, 4)
        measured[f"pre2004@seed={record.seed}"] = round(pre2004, 4)
        if not s_lo <= stratum16 <= s_hi:
            violations.append(
                f"seed {record.seed}: stratum-16 share {stratum16:.2f} outside [{s_lo}, {s_hi}]"
            )
        if not c_lo <= pre2004 <= c_hi:
            violations.append(
                f"seed {record.seed}: pre-2004 compile share {pre2004:.2f} outside [{c_lo}, {c_hi}]"
            )
    if not judged:
        return None
    return _result(measured=measured, violations=violations)


@invariant(
    "seed.worlds_differ",
    scope="seed",
    description="Different seeds produce different raw observations (no seed is ignored)",
    paper_anchor="reproduction contract: the world is a function of (seed, params)",
)
def check_seed_worlds_differ(records, tolerance):
    if len(records) < 2:
        return None
    violations = []
    for a, b in zip(records, records[1:]):
        if a.summary_text() == b.summary_text():
            violations.append(
                f"seeds {a.seed} and {b.seed} produced byte-identical summaries"
            )
        elif a.amplifier_ip_union() == b.amplifier_ip_union():
            violations.append(
                f"seeds {a.seed} and {b.seed} observed identical amplifier-IP sets"
            )
    return _result(
        measured={"n_seeds": len(records)},
        violations=violations,
    )


@invariant(
    "seed.undersampling_band",
    scope="seed",
    description="The weekly-sampling undersampling factor stays within a loose band",
    paper_anchor="§4.2 (168h / ~44h median view window = 3.8x)",
    severity="warning",
    band=(1.0, 60.0),
)
def check_seed_undersampling(records, tolerance):
    lo, hi = tolerance["band"]
    measured, violations = {}, []
    judged = 0
    for record in records:
        factor = record.victim_report().undersampling_factor()
        if factor != factor:  # NaN: no observations at all
            continue
        judged += 1
        measured[f"undersampling@seed={record.seed}"] = round(factor, 2)
        if not lo <= factor <= hi:
            violations.append(
                f"seed {record.seed}: undersampling {factor:.1f}x outside [{lo}, {hi}]"
            )
    if not judged:
        return None
    return _result(measured=measured, violations=violations)


# ---------------------------------------------------------------------------
# Per-world contracts
# ---------------------------------------------------------------------------


@invariant(
    "world.onp_window",
    scope="world",
    description="The ONP campaign is 15 weekly monlist samples at exact one-week spacing",
    paper_anchor="§3.2 (2014-01-10 .. 2014-04-18, 15 samples)",
    n_samples=15,
)
def check_world_onp_window(record, tolerance):
    samples = record.world.onp.monlist_samples
    violations = []
    if len(samples) != tolerance["n_samples"]:
        violations.append(f"{len(samples)} monlist samples, expected {tolerance['n_samples']}")
    times = [s.t for s in samples]
    for earlier, later in zip(times, times[1:]):
        if abs((later - earlier) - WEEK) > 1.0:
            violations.append(
                f"sample spacing {later - earlier:.0f}s at t={earlier:.0f} is not one week"
            )
            break
    return _result(measured={"n_samples": len(samples)}, violations=violations)


@invariant(
    "world.isp_victims_subset",
    scope="world",
    description="Victims seen at ISP vantage points are a subset of campaign ground truth",
    paper_anchor="§7.2 (local victim forensics agree with the global campaign)",
)
def check_world_isp_victims_subset(record, tolerance):
    world = record.world
    campaign_victims = {attack.victim.ip for attack in world.attacks}
    measured, violations = {}, []
    for name, site in world.isp.sites.items():
        observed = set(site.victim_forensics)
        phantom = observed - campaign_victims
        measured[f"victims@{name}"] = len(observed)
        if phantom:
            violations.append(
                f"site {name}: {len(phantom)} observed victim IPs absent from the campaign"
            )
    return _result(measured=measured, violations=violations)


@invariant(
    "world.scan_onset_precedes_decline",
    scope="world",
    description="Darknet scanning is underway before the amplifier pool peaks and declines",
    paper_anchor="§5.1 Fig. 9 (scanning leads attacks by about a week)",
    max_onset_lag_days=0,
)
def check_world_scan_onset(record, tolerance):
    from repro.analysis.scanning import darknet_report

    scanners = darknet_report(record.world.darknet).daily_unique_scanners
    active_days = sorted(day for day, count in scanners.items() if count > 0)
    if not active_days:
        return None  # total sensor loss; fault accounting covers it
    measured_rows = record.measured_rows()
    if not measured_rows:
        return None
    peak_row = max(measured_rows, key=lambda row: row.ips)
    peak_day = int(peak_row.t // DAY)
    onset_day = active_days[0]
    violations = []
    if onset_day > peak_day + tolerance["max_onset_lag_days"]:
        violations.append(
            f"first darknet scan day {onset_day} is after the amplifier peak day {peak_day}"
        )
    return _result(
        measured={"scan_onset_day": onset_day, "amplifier_peak_day": peak_day},
        violations=violations,
    )


@invariant(
    "world.ovh_crossdataset",
    scope="world",
    description="The OVH event cross-validation holds: disclosed amplifier ASes overlap the ONP view, the target AS ranks at the top",
    paper_anchor="§4.4 (1291/1297 = 99.5% AS overlap; 60% packet share; rank 1)",
    min_overlap_fraction=0.35,
    max_target_rank=5,
    min_packet_share=0.05,
)
def check_world_ovh_crossdataset(record, tolerance):
    from repro.analysis.validation import validate_ovh_event

    world = record.world
    ovh = world.registry.special["HOSTING-FR-1"]
    result = validate_ovh_event(
        world.attacks, record.parsed(), record.concentration(), world.table, ovh.asn
    )
    if result.disclosed_asns == 0 or result.onp_asns == 0:
        return None  # nothing to cross-check: no event or an empty corpus
    measured = {
        "event_attacks": result.event_attacks,
        "asn_overlap_fraction": round(result.asn_overlap_fraction, 4),
        "victim_packet_share": round(result.victim_packet_share, 4),
        "target_as_rank": result.target_as_rank,
    }
    violations = []
    if result.asn_overlap_fraction < tolerance["min_overlap_fraction"]:
        violations.append(
            f"AS overlap {result.asn_overlap_fraction:.2f} < {tolerance['min_overlap_fraction']}"
        )
    if not 1 <= result.target_as_rank <= tolerance["max_target_rank"]:
        violations.append(
            f"target AS rank {result.target_as_rank} outside [1, {tolerance['max_target_rank']}]"
        )
    if result.victim_packet_share < tolerance["min_packet_share"]:
        violations.append(
            f"overlap packet share {result.victim_packet_share:.2f} < {tolerance['min_packet_share']}"
        )
    return _result(measured=measured, violations=violations)


@invariant(
    "world.quality_reconciles",
    scope="world",
    description="The injected-vs-observed quality accounting balances on every world",
    paper_anchor="§3 data caveats (every loss the apparatus suffered is accounted for)",
)
def check_world_quality_reconciles(record, tolerance):
    report = record.quality()
    violations = [check.describe() for check in report.checks if not check.ok]
    return _result(
        measured={"injected_total": report.injected_total},
        violations=violations,
    )


@invariant(
    "world.artifacts_render",
    scope="world",
    description="Every paper artifact (F1..F16, T1..T6) renders to non-empty text",
    paper_anchor="all figures/tables (the pipeline degrades, never crashes)",
)
def check_world_artifacts_render(record, tolerance):
    from repro.cli import ARTIFACTS, render_artifact

    violations = []
    for artifact_id in ARTIFACTS:
        try:
            text = render_artifact(record.world, artifact_id, context=record.ctx)
        except Exception as exc:  # noqa: BLE001 — any crash is the violation
            violations.append(f"{artifact_id} raised {type(exc).__name__}: {exc}")
            continue
        if not isinstance(text, str) or not text.strip():
            violations.append(f"{artifact_id} rendered empty output")
    return _result(measured={"n_artifacts": len(ARTIFACTS)}, violations=violations)


@invariant(
    "world.clean_world_pristine",
    scope="world",
    description="A clean-profile world has an empty injection log and zero parse losses",
    paper_anchor="determinism contract (the fault layer is a strict no-op when disabled)",
)
def check_world_clean_pristine(record, tolerance):
    if not record.is_clean:
        return None
    report = record.quality()
    stats = report.monlist_stats
    violations = []
    if report.injected_total:
        violations.append(f"clean world logged {report.injected_total} injected faults")
    if report.monlist_outages or report.monlist_partial:
        violations.append(
            f"clean world has {report.monlist_outages} outages / "
            f"{report.monlist_partial} partial sweeps"
        )
    if stats.captures_failed or stats.captures_salvaged:
        violations.append(
            f"clean world needed parse salvage ({stats.captures_salvaged} salvaged, "
            f"{stats.captures_failed} failed)"
        )
    if report.darknet_down_days or report.arbor_missing_days:
        violations.append("clean world recorded sensor downtime")
    return _result(measured={"injected_total": report.injected_total}, violations=violations)


@invariant(
    "world.streaming_matches_batch",
    scope="world",
    description=(
        "End-of-window streaming aggregates equal the batch answers: exact "
        "windowed counts, sketch top-K within declared error bounds, replay "
        "fully accounted"
    ),
    paper_anchor="AMON follow-on architecture (online views agree with batch)",
    isp_bytes_rel_tol=1e-9,
)
def check_world_streaming_matches_batch(record, tolerance):
    from repro.analysis import queries
    from repro.stream import StreamEngine, replay_plan, replay_records

    world = record.world
    plan = replay_plan(world)
    engine = StreamEngine.for_world(world, plan=plan)
    engine.ingest_many(replay_records(world))
    engine.close()
    violations = []

    # 1. Replay accounting: the adapter emits in-order and deduplicated,
    # so *every* record must land applied — late/duplicate would mean the
    # engine dropped data the ledger cannot explain.
    ingest = engine.query_ingest()
    if not engine.balanced:
        violations.append("ingest ledger unbalanced (total != applied + late + duplicate)")
    for kind, acc in ingest["kinds"].items():
        if acc["late"] or acc["duplicate"]:
            violations.append(
                f"in-order replay produced {acc['late']} late / "
                f"{acc['duplicate']} duplicate {kind} records"
            )
        if acc["total"] != plan["expected"][kind]:
            violations.append(
                f"{kind}: replay delivered {acc['total']} records, "
                f"plan expected {plan['expected'][kind]}"
            )

    # 2. Weekly capture windows: every count the batch victimology and
    # parse layer produce, integer for integer.
    exact_keys = (
        "captures",
        "amplifiers",
        "victim_pairs",
        "unique_victims",
        "victim_packets",
        "scanner_entries",
        "non_victim_entries",
        "median_view_hours",
    )
    stream_rows = {r["window"]: r for r in engine.query("victims")["windows"]}
    window_of = engine.windows["capture"].windows.index_of
    for i, batch_row in enumerate(queries.capture_window_answers(record.ctx)):
        stream_row = stream_rows.pop(window_of(batch_row["t"]), None)
        if stream_row is None:
            # An outage week delivers zero capture records, so no window
            # opens; the batch sample must be empty too.
            if batch_row["captures"]:
                violations.append(
                    f"sample {i} (t={batch_row['t']:.0f}): no streaming window "
                    f"for {batch_row['captures']} captures"
                )
            continue
        for key in exact_keys:
            if stream_row[key] != batch_row[key]:
                violations.append(
                    f"sample {i} {key}: streaming {stream_row[key]} "
                    f"!= batch {batch_row[key]}"
                )
        if stream_row["stats"] != batch_row["stats"]:
            diffs = [
                k for k, v in batch_row["stats"].items()
                if stream_row["stats"].get(k) != v
            ]
            violations.append(f"sample {i} parse stats differ on {diffs}")
    for index, stream_row in stream_rows.items():
        violations.append(
            f"streaming window {index} ({stream_row['captures']} captures) "
            "matches no batch sample"
        )

    # 3. Fault-drift reconciliation: the stream-global ParseStats must
    # equal the quality report's corpus stats — which
    # world.quality_reconciles ties back to the injection log, so every
    # fault-induced loss the stream saw is the same loss the log explains.
    quality_stats = record.quality().monlist_stats
    for name, value in engine.query_parse_stats().items():
        expected = getattr(quality_stats, name)
        if value != expected:
            violations.append(
                f"stream-global {name}={value} != quality report {expected}"
            )

    # 4. Daily flow windows: darknet scanner counts and Arbor fractions
    # exactly, ISP byte sums within float tolerance (same addends, a
    # different summation order).
    batch_scanners = {int(d): c for d, c in queries.daily_scanner_counts(world).items()}
    stream_scanners = {
        r["window"]: r["scanners"] for r in engine.query("scanners")["windows"]
    }
    if stream_scanners != batch_scanners:
        diff_days = {
            d for d in set(batch_scanners) | set(stream_scanners)
            if batch_scanners.get(d) != stream_scanners.get(d)
        }
        violations.append(f"darknet daily scanner counts differ on days {sorted(diff_days)[:5]}")
    batch_traffic = queries.daily_traffic_answers(world)
    stream_traffic = {
        r["window"]: (r["ntp_frac"], r["dns_frac"])
        for r in engine.query("traffic")["windows"]
    }
    if stream_traffic != batch_traffic:
        violations.append("daily traffic fractions differ from batch")
    rel_tol = tolerance["isp_bytes_rel_tol"]
    batch_isp = queries.isp_day_answers(world)
    stream_isp = {i: s for i, _lo, _hi, s, _open in engine.windows["isp"].summaries()}
    if set(batch_isp) != set(stream_isp):
        violations.append(
            f"ISP day coverage differs: batch {len(batch_isp)} days, "
            f"streaming {len(stream_isp)}"
        )
    for day in set(batch_isp) & set(stream_isp):
        b, s = batch_isp[day], stream_isp[day]
        if s["cells"] != b["cells"] or s["victims"] != b["victims"]:
            violations.append(f"ISP day {day} cell/victim counts differ")
        elif abs(s["bytes"] - b["bytes"]) > rel_tol * max(1.0, abs(b["bytes"])):
            violations.append(f"ISP day {day} bytes drift beyond {rel_tol:g} relative")

    # 5. Sketches vs ground truth, against their *declared* bounds: the
    # count-min estimate never under-counts and over-counts by at most
    # eps * total; space-saving guarantees every key heavier than
    # total/capacity a slot, with count in [true, true + error].
    truth_by_sketch = {
        "victim_packets": queries.victim_packet_totals(record.ctx),
        "as_packets": queries.victim_as_packet_totals(record.ctx),
        "amplifier_entries": queries.amplifier_entry_totals(record.ctx),
        "isp_victim_bytes": queries.isp_victim_byte_totals(world),
    }
    for sketch_name, truth in truth_by_sketch.items():
        exact = sketch_name != "isp_victim_bytes"
        slack = 0 if exact else rel_tol * max(1.0, sum(map(abs, truth.values())))
        cm = engine.sketches[sketch_name]["cm"]
        total_true = sum(truth.values())
        if abs(cm.total - total_true) > slack:
            violations.append(
                f"{sketch_name}: count-min total {cm.total} != batch {total_true}"
            )
        bound = cm.error_bound()
        cm_bad = sum(
            1 for key, true in truth.items()
            if not (true - slack <= cm.estimate(key) <= true + bound + slack)
        )
        if cm_bad:
            violations.append(
                f"{sketch_name}: {cm_bad} keys outside the count-min bound"
            )
        topk = engine.sketches[sketch_name]["topk"]
        threshold = topk.guarantee_threshold()
        for key, true in truth.items():
            if true <= threshold + slack:
                continue
            if key not in topk.counters:
                violations.append(
                    f"{sketch_name}: heavy hitter {key} "
                    f"(true {true} > threshold {threshold:.1f}) not tracked"
                )
                continue
            count, error = topk.counters[key], topk.errors[key]
            if not (true - slack <= count <= true + error + slack):
                violations.append(
                    f"{sketch_name}: tracked key {key} count {count} outside "
                    f"[{true}, {true} + {error}]"
                )

    # 6. Shard invariance: route the same replay through N shard engines
    # and reduce — every query answer must be byte-identical to the
    # single engine's.  This is the contract that lets ``serve --shards
    # N`` answer exactly like ``--shards 1``.  ``REPRO_STREAM_SHARDS``
    # overrides the shard count (CI runs the matrix at 4).
    import os

    shards = int(os.environ.get("REPRO_STREAM_SHARDS", "2"))
    if shards > 0:
        from repro.stream import ShardedStream

        def comparable(source):
            # late_uids is a bounded *sample* of late records, merged in
            # shard order — compare how many were late, not which ones.
            reduced = source.merged() if hasattr(source, "merged") else source
            views = {
                "snapshot": source.snapshot(),
                "victims": source.query("victims"),
                "scanners": source.query("scanners"),
                "traffic": source.query("traffic"),
                "isp_days": list(reduced.windows["isp"].summaries()),
            }
            for acc in views["snapshot"]["ingest"]["kinds"].values():
                acc["late_uids"] = len(acc.pop("late_uids"))
            return views

        sharded = ShardedStream.for_world(world, shards=shards)
        try:
            sharded.ingest_many(replay_records(world))
            sharded.close()
            single_views = comparable(engine)
            sharded_views = comparable(sharded)
        finally:
            sharded.shutdown()
        for view_name, single_view in single_views.items():
            if sharded_views[view_name] != single_view:
                violations.append(
                    f"sharded ({shards} shards, "
                    f"{sharded.pool_info['mode']}) {view_name} answer "
                    f"differs from the single engine"
                )

    return _result(
        measured={
            "records": engine.records_seen,
            "capture_windows": len(engine.windows["capture"].closed),
            "victim_pairs": engine.totals["victim_pairs"],
            "cm_error_bound_victims": engine.sketches["victim_packets"]["cm"].error_bound(),
            "topk_threshold_victims": engine.sketches["victim_packets"]["topk"].guarantee_threshold(),
            "shards_checked": shards,
        },
        violations=violations,
    )


# ---------------------------------------------------------------------------
# Fault-overlay soundness (metamorphic: degrade the apparatus)
# ---------------------------------------------------------------------------


@invariant(
    "fault.ground_truth_invariant",
    scope="fault",
    description="Clean and faulted worlds at the same (seed, scale) share identical ground truth",
    paper_anchor="fault model contract (injection happens at the measurement boundary only)",
)
def check_fault_ground_truth(clean, faulted, tolerance):
    violations = []
    for label, fn in (
        ("host records", lambda r: len(r.world.hosts)),
        ("victims", lambda r: len(r.world.victims)),
        ("attacks", lambda r: len(r.world.attacks)),
        ("scan sweeps", lambda r: len(r.world.sweeps)),
    ):
        a, b = fn(clean), fn(faulted)
        if a != b:
            violations.append(f"{label}: clean {a} != {faulted.fault_name} {b}")
    clean_attacks, faulted_attacks = clean.world.attacks, faulted.world.attacks
    if clean_attacks and faulted_attacks:
        if (
            clean_attacks[0].start != faulted_attacks[0].start
            or clean_attacks[-1].start != faulted_attacks[-1].start
        ):
            violations.append("attack campaign timeline differs between clean and faulted")
        clean_bps = sum(a.target_bps for a in clean_attacks)
        faulted_bps = sum(a.target_bps for a in faulted_attacks)
        if clean_bps != faulted_bps:
            violations.append(
                f"campaign volume differs: clean {clean_bps:.6g} != faulted {faulted_bps:.6g}"
            )
    return _result(
        measured={"attacks": len(clean_attacks)},
        violations=violations,
    )


@invariant(
    "fault.observed_divergence_bounded",
    scope="fault",
    description="A faulted apparatus loses observations within bounds — it never invents a pool",
    paper_anchor="§3 caveats (losses shrink the view; salvage must not fabricate it)",
    min_retained_fraction=0.25,
    fabrication_slack=5,
)
def check_fault_observed_divergence(clean, faulted, tolerance):
    clean_unique = clean.unique_amplifier_ips()
    faulted_unique = faulted.unique_amplifier_ips()
    measured = {"clean_unique": clean_unique, "faulted_unique": faulted_unique}
    if clean_unique == 0:
        return _result(measured=measured, violations=["clean world observed no amplifiers"])
    violations = []
    # Bit corruption can mint a handful of phantom addresses; allow slack,
    # never growth.
    ceiling = clean_unique + tolerance["fabrication_slack"]
    if faulted_unique > ceiling:
        violations.append(
            f"faulted world observed {faulted_unique} unique amplifiers > "
            f"clean {clean_unique} + slack {tolerance['fabrication_slack']}"
        )
    floor = tolerance["min_retained_fraction"] * clean_unique
    if faulted_unique < floor:
        violations.append(
            f"faulted world retained {faulted_unique}/{clean_unique} unique amplifiers "
            f"(< {tolerance['min_retained_fraction']:.0%})"
        )
    clean_captures = clean.quality().monlist_stats.captures_total
    faulted_captures = faulted.quality().monlist_stats.captures_total
    if faulted_captures > clean_captures:
        violations.append(
            f"faulted apparatus captured more responses ({faulted_captures}) "
            f"than the clean one ({clean_captures})"
        )
    return _result(measured=measured, violations=violations)


@invariant(
    "fault.datasets_diverge",
    scope="fault",
    description="A non-empty fault profile observably degrades at least one dataset",
    paper_anchor="fault model contract (injected faults leave evidence)",
)
def check_fault_datasets_diverge(clean, faulted, tolerance):
    log = faulted.world.fault_log
    injected = log.total if log is not None else 0
    if injected == 0:
        return None  # the profile never fired (tiny world, low rates): nothing to diverge
    report = faulted.quality()
    stats = report.monlist_stats
    footprint = (
        report.monlist_outages
        + report.monlist_partial
        + report.version_outages
        + report.version_partial
        + report.darknet_down_days
        + report.arbor_missing_days
        + stats.captures_salvaged
        + stats.captures_failed
        + stats.packets_duplicate
        + stats.packets_out_of_sequence
        + stats.packets_undecodable
        + stats.packets_invalid
    )
    same_bytes = faulted.summary_text() == clean.summary_text()
    violations = []
    if footprint == 0 and same_bytes:
        violations.append(
            f"{injected} faults injected but no dataset shows degradation evidence"
        )
    return _result(
        measured={"injected": injected, "observable_footprint": footprint},
        violations=violations,
    )
