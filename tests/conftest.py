"""Shared fixtures and Hypothesis profiles.

One small end-to-end world is reused across test modules, and two
Hypothesis settings profiles are registered:

* ``ci`` — derandomized (deterministic shrink targets across runs) with a
  higher example budget; CI selects it with ``--hypothesis-profile=ci``;
* ``dev`` — the default: fast, randomized, no deadline flakiness.
"""

import os

import pytest
from hypothesis import settings

from repro.scenario import PaperWorld

settings.register_profile("ci", max_examples=200, derandomize=True, deadline=None)
settings.register_profile("dev", max_examples=25, deadline=None)
# The hypothesis pytest plugin's --hypothesis-profile flag (used by CI)
# overrides this load at configure time.
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))

#: Small but structurally complete: ~1.4K initial amplifiers, ~1K victims.
WORLD_SEED = 42
WORLD_SCALE = 0.001


@pytest.fixture(scope="session")
def world():
    return PaperWorld.build(seed=WORLD_SEED, scale=WORLD_SCALE)


@pytest.fixture(scope="session")
def parsed_monlist(world):
    from repro.analysis import parse_sample

    return [parse_sample(s) for s in world.onp.monlist_samples]


@pytest.fixture(scope="session")
def victim_report(world, parsed_monlist):
    from repro.analysis import analyze_dataset
    from repro.attack import ONP_PROBER_IP

    return analyze_dataset(parsed_monlist, onp_ip=ONP_PROBER_IP)
