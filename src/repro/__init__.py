"""Reproduction of *Taming the 800 Pound Gorilla: The Rise and Decline of
NTP DDoS Attacks* (Czyz et al., IMC 2014).

The package is layered bottom-up:

* :mod:`repro.util` — RNG streams, simulation time, statistics;
* :mod:`repro.net` — IPv4, on-wire framing, routing, AS registry, PBL;
* :mod:`repro.ntp` — NTP wire formats (modes 3/4, 6, 7), the monlist MRU
  table, and a simulated ntpd server;
* :mod:`repro.sim` — discrete-event engine;
* :mod:`repro.population` — NTP hosts, amplifier pools, remediation,
  victims, DNS resolvers;
* :mod:`repro.attack` — scanners, booters, attack campaigns;
* :mod:`repro.telescope` — IPv4/IPv6 darknets;
* :mod:`repro.measurement` — the paper's five data-collection apparatus;
* :mod:`repro.analysis` — the paper's analysis pipeline (consumes only the
  measured datasets, never simulator ground truth);
* :mod:`repro.scenario` — :class:`~repro.scenario.PaperWorld`, one call to
  build everything;
* :mod:`repro.reporting` — text rendering of the paper's tables/figures.

Quick start::

    from repro import PaperWorld
    world = PaperWorld.build(seed=2014, scale=0.001)
    from repro.analysis import parse_sample, analyze_dataset
    parsed = [parse_sample(s) for s in world.onp.monlist_samples]
    report = analyze_dataset(parsed)
"""

from repro.scenario import PaperWorld, WorldParams

# 2.0.0: columnar world core + sharded build.  The world bytes changed
# (hosts/attacks now drawn per block / per week from derived child
# streams), so every pre-2.0 cache entry must miss on the version check.
__version__ = "2.0.0"

__all__ = ["PaperWorld", "WorldParams", "__version__"]
