"""The conformance subsystem: invariants, the metamorphic runner, and
golden artifact manifests.

``python -m repro verify-world`` runs the registered invariants over a
seed x scale x fault matrix; ``python -m repro verify-manifest`` checks the
golden byte-identity manifest.  See DESIGN.md §5 for the invariant
catalogue and tolerances.
"""

from repro.verify.invariants import REGISTRY, Invariant, all_invariants, invariant
from repro.verify.manifest import (
    DEFAULT_MANIFEST_CELLS,
    DEFAULT_MANIFEST_PATH,
    artifact_checksums,
    build_manifest,
    diff_manifest,
    load_manifest,
    write_manifest,
)
from repro.verify.runner import (
    Cell,
    ConformanceReport,
    InvariantOutcome,
    WorldRecord,
    default_builder,
    run_conformance,
)

__all__ = [
    "REGISTRY",
    "Invariant",
    "all_invariants",
    "invariant",
    "Cell",
    "ConformanceReport",
    "InvariantOutcome",
    "WorldRecord",
    "default_builder",
    "run_conformance",
    "DEFAULT_MANIFEST_CELLS",
    "DEFAULT_MANIFEST_PATH",
    "artifact_checksums",
    "build_manifest",
    "diff_manifest",
    "load_manifest",
    "write_manifest",
]
