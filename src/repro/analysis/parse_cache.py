"""Content-addressed persistent cache for parsed monlist corpora.

The sibling of :mod:`repro.scenario.cache` one layer up the pipeline:
world construction caches the *built* world, this module caches the
*decoded* corpus, so ``render --all``, ``quality``, and repeated
``verify-world`` invocations decode each corpus at most once across
processes.

Correctness follows the same discipline as the world cache:

* the **cache key** is a SHA-256 over the corpus bytes themselves (every
  capture's packets, identity, and repeat count, plus the sample-level
  apparatus flags) and the package version — a world rebuilt with
  different faults, an edited capture, or an upgraded decoder all miss
  instead of silently serving stale tables;
* every cache file embeds the ``(format, version, digest)`` envelope it
  was keyed by and :func:`load_parsed_corpus` re-validates it on the way
  in; any mismatch or unreadable file is a :class:`CacheMiss`, never a
  crash and never a wrong answer.

Nothing here is consulted unless a cache directory is configured (the
``REPRO_PARSE_CACHE`` environment variable or an explicit argument), so
the default pipeline behaviour is unchanged.
"""

import hashlib
import os
import pickle
import struct

from repro.analysis.event_columns import build_event_columns

__all__ = [
    "PARSE_CACHE_ENV_VAR",
    "CacheMiss",
    "corpus_digest",
    "cached_corpus_path",
    "save_parsed_corpus",
    "load_parsed_corpus",
    "load_or_parse_corpus",
]

#: Environment variable naming the parsed-corpus cache directory.
PARSE_CACHE_ENV_VAR = "REPRO_PARSE_CACHE"

#: Bumped when the envelope or digest schema itself changes.  Format 2:
#: the cached payload is an :class:`~repro.analysis.event_columns
#: .EventColumns` (three structured arrays) instead of a list of
#: ``ParsedSample`` objects; format-1 files from older builds simply miss.
_ENVELOPE_FORMAT = 2

_PACK_SAMPLE = struct.Struct(">dBd")
_PACK_CAPTURE = struct.Struct(">IdI")


class CacheMiss(Exception):
    """The cache has no usable entry (absent, stale, or corrupt)."""


def _package_version():
    from repro import __version__

    return __version__


def corpus_digest(samples):
    """SHA-256 over everything the parse layer reads from ``samples``.

    Covers each sample's timestamp and apparatus flags and each capture's
    target, timestamp, repeat count, and raw packet bytes — i.e. the full
    input domain of :func:`~repro.analysis.monlist_parse.parse_sample`.
    Two corpora with equal digests parse to equal results; anything else
    (different faults, seeds, scales, versions of the apparatus) differs
    in at least one hashed byte.
    """
    digest = hashlib.sha256()
    digest.update(b"repro-parsed-corpus/1")
    for sample in samples:
        digest.update(
            _PACK_SAMPLE.pack(
                sample.t,
                1 if getattr(sample, "outage", False) else 0,
                getattr(sample, "coverage", 1.0),
            )
        )
        for capture in sample.captures:
            digest.update(_PACK_CAPTURE.pack(capture.target_ip, capture.t, capture.n_repeats))
            for packet in capture.packets:
                digest.update(struct.pack(">I", len(packet)))
                digest.update(packet)
    return digest.hexdigest()


def cached_corpus_path(digest, cache_dir=None):
    """The keyed file path for a corpus digest (under ``cache_dir`` or the
    ``REPRO_PARSE_CACHE`` directory); None when no directory is configured."""
    directory = cache_dir or os.environ.get(PARSE_CACHE_ENV_VAR)
    if not directory:
        return None
    return os.path.join(directory, f"parsed-{digest[:24]}.pkl")


def save_parsed_corpus(parsed, digest, path):
    """Pickle a parsed corpus to ``path`` with its validation envelope.

    Writes via a temp file + rename so a crashed writer never leaves a
    truncated entry behind.
    """
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    payload = {
        "format": _ENVELOPE_FORMAT,
        "version": _package_version(),
        "digest": digest,
        "parsed": parsed,
    }
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "wb") as handle:
        pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)
    os.replace(tmp, path)
    return path


def load_parsed_corpus(path, digest):
    """Load a cached parsed corpus, validating its envelope.

    Raises :class:`CacheMiss` when the file is absent, unreadable, written
    by a different package version, or keyed to a different corpus digest.
    """
    try:
        with open(path, "rb") as handle:
            payload = pickle.load(handle)
    except FileNotFoundError:
        raise CacheMiss(f"no cache file at {path}") from None
    except Exception as exc:  # noqa: BLE001 -- unpickling garbage raises
        # whatever opcode decodes first; any load failure is a miss.
        raise CacheMiss(f"unreadable cache file {path}: {exc}") from None
    if not isinstance(payload, dict) or "parsed" not in payload:
        raise CacheMiss(f"{path} has no validation envelope")
    if payload.get("format") != _ENVELOPE_FORMAT:
        raise CacheMiss(f"{path}: cache envelope format {payload.get('format')!r}")
    if payload.get("version") != _package_version():
        raise CacheMiss(
            f"{path}: written by repro {payload.get('version')!r}, "
            f"this is {_package_version()!r}"
        )
    if payload.get("digest") != digest:
        raise CacheMiss(f"{path}: digest mismatch (stale or foreign entry)")
    return payload["parsed"]


def load_or_parse_corpus(samples, jobs=1, cache_dir=None):
    """Parse ``samples`` through the keyed directory cache (if configured).

    The decode runs through the columnar path: one
    :class:`~repro.analysis.event_columns.EventColumns` batch per corpus,
    returned as its list of ``ParsedSample``-shaped per-sample views (all
    views share the one column store, which is what the cache pickles).

    Returns ``(parsed, n_parses)`` where ``n_parses`` is how many sample
    decodes actually ran: ``0`` on a cache hit, ``len(samples)`` otherwise
    — callers feed it straight into the parse-once ledger so a cache hit
    is visible in the accounting rather than impersonating a decode.
    With no cache directory this is exactly ``build_event_columns``.
    """
    samples = list(samples)
    directory = cache_dir or os.environ.get(PARSE_CACHE_ENV_VAR)
    if not directory:
        return build_event_columns(samples, jobs=jobs).sample_views(), len(samples)
    digest = corpus_digest(samples)
    path = cached_corpus_path(digest, directory)
    try:
        return load_parsed_corpus(path, digest).sample_views(), 0
    except CacheMiss:
        pass
    columns = build_event_columns(samples, jobs=jobs)
    try:
        save_parsed_corpus(columns, digest, path)
    except OSError:
        pass  # unwritable cache never blocks the pipeline
    return columns.sample_views(), len(samples)
