"""Tests for the scanner ecosystem."""

import pytest

from repro.attack import RESEARCH_SCANNERS, ScannerEcosystem, linux_observed_ttl, windows_observed_ttl
from repro.attack.scanner import MALICIOUS_DAILY_COVERAGE_TOTAL, ONP_PROBER_IP
from repro.util import RngStream, date_to_sim


@pytest.fixture(scope="module")
def sweeps():
    eco = ScannerEcosystem(RngStream(1, "scan-test"), scale=0.001)
    return eco.all_sweeps()


def test_sweeps_sorted(sweeps):
    times = [s.t for s in sweeps]
    assert times == sorted(times)


def test_research_scanners_present(sweeps):
    research = [s for s in sweeps if s.kind == "research"]
    assert research
    ips = {s.scanner_ip for s in research}
    assert ONP_PROBER_IP in ips
    assert all(s.coverage == 1.0 for s in research)


def test_onp_monlist_weekly_cadence():
    onp = next(s for s in RESEARCH_SCANNERS if s.name == "onp-monlist")
    times = onp.sweep_times()
    assert len(times) == 15
    assert times[0] == date_to_sim(2014, 1, 10)
    assert times[1] - times[0] == pytest.approx(7 * 86400)


def test_malicious_ramp_in_december(sweeps):
    from repro.util.simtime import DAY

    def daily(day):
        t = date_to_sim(*day)
        return sum(1 for s in sweeps if s.kind == "malicious" and t <= s.t < t + DAY)

    before = sum(daily((2013, 12, d)) for d in range(1, 8))
    after = sum(daily((2014, 1, d)) for d in range(1, 8))
    assert after > 3 * max(1, before)


def test_malicious_coverage_follows_timeline():
    assert MALICIOUS_DAILY_COVERAGE_TOTAL(date_to_sim(2013, 10, 1)) < 0.1
    assert MALICIOUS_DAILY_COVERAGE_TOTAL(date_to_sim(2014, 2, 15)) > 0.5


def test_scanner_scale_floor():
    eco = ScannerEcosystem(RngStream(1, "x"), scale=1e-6)
    assert eco.scanner_scale == 0.02


def test_scanner_ttls_look_linux(sweeps):
    ttls = [s.ttl for s in sweeps[:500]]
    assert all(34 <= t <= 64 for t in ttls)


def test_ttl_helpers_distinct():
    rng = RngStream(3, "ttl")
    linux = [linux_observed_ttl(rng) for _ in range(200)]
    windows = [windows_observed_ttl(rng) for _ in range(200)]
    assert max(linux) <= 64
    assert min(windows) > 64


def test_version_interest_grows(sweeps):
    cutoff = date_to_sim(2014, 2, 15)
    early = [s for s in sweeps if s.kind == "malicious" and s.t < cutoff]
    late = [s for s in sweeps if s.kind == "malicious" and s.t >= cutoff]
    early_v = sum(1 for s in early if s.mode == 6) / max(1, len(early))
    late_v = sum(1 for s in late if s.mode == 6) / max(1, len(late))
    assert late_v > early_v


def test_window_validation():
    with pytest.raises(ValueError):
        ScannerEcosystem(RngStream(1, "x"), start=10.0, end=5.0)
