"""Tests for the darknet telescopes."""

import pytest

from repro.sim.events import ScanSweep
from repro.telescope import Ipv4Darknet, Ipv6Darknet
from repro.util import RngStream, date_to_sim


def make_sweep(t, kind="research", coverage=1.0, ip=1234, duration=3600.0):
    return ScanSweep(
        t=t,
        scanner_ip=ip,
        kind=kind,
        mode=7,
        coverage=coverage,
        targets_per_second=1000.0,
        ttl=54,
        duration=duration,
    )


def test_full_sweep_hits_every_dark_address():
    darknet = Ipv4Darknet(RngStream(1, "d"))
    t = date_to_sim(2014, 1, 5)
    darknet.observe_sweep(make_sweep(t))
    monthly = darknet.monthly_packets_per_slash24()
    # A full sweep puts ~256 packets into each /24.
    assert monthly["2014-01"]["benign"] == pytest.approx(256, rel=0.05)
    assert monthly["2014-01"]["other"] == 0


def test_partial_sweep_proportional():
    darknet = Ipv4Darknet(RngStream(2, "d"))
    t = date_to_sim(2014, 1, 5)
    for _ in range(20):
        darknet.observe_sweep(make_sweep(t, kind="malicious", coverage=0.01))
    monthly = darknet.monthly_packets_per_slash24()
    assert monthly["2014-01"]["other"] == pytest.approx(20 * 0.01 * 256, rel=0.2)


def test_benign_fraction():
    darknet = Ipv4Darknet(RngStream(3, "d"))
    t = date_to_sim(2014, 1, 5)
    darknet.observe_sweep(make_sweep(t, kind="research"))
    darknet.observe_sweep(make_sweep(t, kind="malicious"))
    assert darknet.benign_fraction("2014-01") == pytest.approx(0.5, abs=0.05)
    assert darknet.benign_fraction("2019-01") == 0.0


def test_daily_unique_scanners_spanning_days():
    darknet = Ipv4Darknet(RngStream(4, "d"))
    t = date_to_sim(2014, 1, 5)
    darknet.observe_sweep(make_sweep(t, ip=1, duration=3 * 86400.0))
    darknet.observe_sweep(make_sweep(t, ip=2))
    daily = darknet.daily_unique_scanners()
    day0 = int(t // 86400)
    assert daily[day0] == 2
    assert daily[day0 + 1] == 1  # only the long sweep persists


def test_coverage_is_deterministic_per_month():
    darknet = Ipv4Darknet(RngStream(5, "d"))
    t = date_to_sim(2014, 2, 10)
    assert darknet.effective_slash24s(t) == darknet.effective_slash24s(t + 86400)
    total = darknet.pool.n_addresses // 256
    assert 0.6 * total < darknet.effective_slash24s(t) < 0.9 * total


def test_coverage_validation():
    with pytest.raises(ValueError):
        Ipv4Darknet(RngStream(6, "d"), coverage=0.0)


def test_world_darknet_rise(world):
    """Integration: the world's darknet shows the ~10x scanning rise with
    roughly half attributable to research."""
    report_months = world.darknet.monthly_packets_per_slash24()
    totals = {m: v["benign"] + v["other"] for m, v in report_months.items()}
    assert totals["2014-02"] > 5 * totals["2013-11"]
    assert 0.3 < world.darknet.benign_fraction("2014-02") < 0.75
    assert world.darknet.benign_fraction("2013-10") > 0.75


def test_ipv6_darknet_negative_result():
    v6 = Ipv6Darknet(RngStream(7, "d6"))
    v6.simulate_window(date_to_sim(2013, 11, 1), date_to_sim(2014, 2, 1))
    monthly = v6.monthly_packets()
    assert set(monthly) == {"2013-11", "2013-12", "2014-01"}
    # A trickle of errant packets, no scanning evidence at all.
    assert all(0 <= n < 500 for n in monthly.values())
    assert v6.scanning_evidence() == {}
    with pytest.raises(ValueError):
        v6.simulate_window(10.0, 5.0)
