"""Measurement apparatus: the paper's five data-collection vantage points."""

from repro.measurement.amplifier_state import AmplifierStateManager
from repro.measurement.arbor import (
    ArborCollector,
    ArborDataset,
    DailyTraffic,
    MonthlyAttackStats,
    SIZE_LARGE,
    SIZE_MEDIUM,
    SIZE_SMALL,
    size_bin,
)
from repro.measurement.isp import (
    CSU_FRGP_WINDOW,
    IspMeasurement,
    MERIT_WINDOW,
    SiteDataset,
    SiteSpec,
)
from repro.measurement.onp import (
    MONLIST_SAMPLE_TIMES,
    OnpDataset,
    OnpProber,
    OnpSample,
    ProbeCapture,
    VERSION_SAMPLE_TIMES,
)

__all__ = [
    "AmplifierStateManager",
    "ArborCollector",
    "ArborDataset",
    "DailyTraffic",
    "MonthlyAttackStats",
    "SIZE_LARGE",
    "SIZE_MEDIUM",
    "SIZE_SMALL",
    "size_bin",
    "CSU_FRGP_WINDOW",
    "IspMeasurement",
    "MERIT_WINDOW",
    "SiteDataset",
    "SiteSpec",
    "MONLIST_SAMPLE_TIMES",
    "OnpDataset",
    "OnpProber",
    "OnpSample",
    "ProbeCapture",
    "VERSION_SAMPLE_TIMES",
]
