"""User-facing protocol tools built on the substrate."""

from repro.tools.ntpdc import NtpdcResult, ntpdc_monlist, ntpdc_sysinfo

__all__ = ["NtpdcResult", "ntpdc_monlist", "ntpdc_sysinfo"]
