"""Tests for the simulated ntpd server."""

import pytest

from repro.net import on_wire_bytes
from repro.ntp import (
    IMPL_XNTPD,
    IMPL_XNTPD_OLD,
    NtpClient,
    NtpServer,
    ProbeReply,
    ServerConfig,
    decode_mode3_or_4,
    decode_mode6,
    decode_mode7,
    encode_mode6_request,
    encode_mode7_request,
    parse_system_variables,
)
from repro.ntp.constants import CTL_OP_READVAR, REQ_MON_GETLIST, REQ_MON_GETLIST_1
from repro.sim.events import AttackPulse

ONP_IP = 0xCB000001


def seeded_server(**config_kwargs):
    server = NtpServer(ip=0x0A0A0A0A, config=ServerConfig(**config_kwargs))
    for i, t in enumerate([100.0, 200.0, 300.0]):
        server.record_client(1000 + i, 123, 3, 4, now=t)
    return server


def test_monlist_probe_recorded_and_answered():
    server = seeded_server()
    reply = server.respond_monlist(ONP_IP, 55555, now=1000.0)
    assert isinstance(reply, ProbeReply)
    pkt = decode_mode7(reply.packets[0])
    assert pkt.n_items == 4
    assert pkt.items[0].addr == ONP_IP  # the probe tops the MRU list
    assert pkt.items[0].mode == 7


def test_monlist_disabled_still_records():
    server = seeded_server(monlist_enabled=False)
    assert server.respond_monlist(ONP_IP, 55555, now=1000.0) is None
    assert ONP_IP in server.table


def test_monlist_wrong_implementation_unanswered():
    server = seeded_server(implementations=frozenset({IMPL_XNTPD_OLD}))
    assert server.respond_monlist(ONP_IP, 55555, now=1000.0, implementation=IMPL_XNTPD) is None
    reply = server.respond_monlist(ONP_IP, 55555, now=1000.0, implementation=IMPL_XNTPD_OLD)
    assert reply is not None
    assert decode_mode7(reply.packets[0]).request_code == REQ_MON_GETLIST


def test_dual_implementation_server():
    server = seeded_server(implementations=frozenset({IMPL_XNTPD, IMPL_XNTPD_OLD}))
    for impl in (IMPL_XNTPD, IMPL_XNTPD_OLD):
        assert server.respond_monlist(ONP_IP, 55555, now=1000.0, implementation=impl)


def test_version_probe():
    server = seeded_server(stratum=2, system="Linux/3.2.0", compile_year=2011)
    reply = server.respond_version(ONP_IP, 55555, now=1000.0)
    pkt = decode_mode6(reply.packets[0])
    variables = parse_system_variables(pkt.data)
    assert variables["system"] == "Linux/3.2.0"
    assert variables["stratum"] == "2"
    assert "2011" in variables["version"]


def test_version_disabled():
    server = seeded_server(responds_version=False)
    assert server.respond_version(ONP_IP, 55555, now=1000.0) is None


def test_time_service_and_unsynchronized_leap():
    server = seeded_server(stratum=16)
    reply = server.respond_time(123456, 123, now=1000.0)
    pkt = decode_mode3_or_4(reply.packets[0])
    assert pkt.stratum == 16
    assert pkt.leap == 3


def test_handle_datagram_dispatch():
    server = seeded_server()
    now = 1000.0
    monlist = server.handle_datagram(
        encode_mode7_request(IMPL_XNTPD, REQ_MON_GETLIST_1), ONP_IP, 5, now
    )
    assert decode_mode7(monlist.packets[0]).response
    version = server.handle_datagram(encode_mode6_request(CTL_OP_READVAR), ONP_IP, 5, now)
    assert decode_mode6(version.packets[0]).response
    poll = NtpClient(777).poll(server, now)
    assert len(poll) == 1


def test_handle_datagram_ignores_responses():
    server = seeded_server()
    reply = server.respond_monlist(ONP_IP, 5, now=1000.0)
    assert server.handle_datagram(reply.packets[0], ONP_IP, 5, 1001.0) is None


def test_loop_factor_repeats_and_count_inflation():
    server = seeded_server(loop_factor=50)
    reply = server.respond_monlist(ONP_IP, 5, now=1000.0)
    assert reply.n_repeats == 50
    assert reply.total_payload_bytes == reply.payload_bytes_once * 50
    assert server.table.get(ONP_IP).count == 50


def test_probe_reply_materialize_bounds():
    reply = ProbeReply(packets=(b"x" * 100,), n_repeats=3)
    assert len(reply.materialize()) == 3
    big = ProbeReply(packets=(b"x",), n_repeats=100_000)
    with pytest.raises(ValueError):
        big.materialize(max_packets=10)


def test_probe_reply_on_wire_accounting():
    reply = ProbeReply(packets=(b"\x00" * 296,), n_repeats=2)
    assert reply.on_wire_bytes_once == on_wire_bytes(296)
    assert reply.total_on_wire_bytes == 2 * on_wire_bytes(296)


def test_attack_pulse_recording():
    server = seeded_server(loop_factor=1)
    pulse = AttackPulse(
        start=5000.0,
        duration=40.0,
        victim_ip=0x55555555,
        victim_port=80,
        amplifier_ip=server.ip,
        query_rate=10.0,
        mode=7,
        spoofer_ttl=109,
    )
    server.record_attack_pulse(pulse)
    rec = server.table.get(0x55555555)
    assert rec.count == 400
    assert rec.port == 80
    assert rec.mode == 7
    assert rec.last_seen == pulse.end
    assert rec.first_seen == pytest.approx(5000.0)


def test_restart_flushes_table():
    server = NtpServer(ip=42, config=ServerConfig(restart_interval=1000.0))
    server.record_client(1, 123, 3, 4, now=10.0)
    assert 1 in server.table
    # Move past the next flush boundary.
    server.record_client(2, 123, 3, 4, now=server.next_flush + 1.0)
    assert 1 not in server.table
    assert 2 in server.table


def test_no_restart_when_disabled():
    server = NtpServer(ip=42, config=ServerConfig(restart_interval=None))
    server.record_client(1, 123, 3, 4, now=10.0)
    assert not server.maybe_flush(1e9)
    assert 1 in server.table


def test_monlist_reply_size_matches_actual():
    server = seeded_server()
    packets, payload, wire = server.monlist_reply_size(now=1000.0)
    reply = server.respond_monlist(ONP_IP, 5, now=1000.0)
    # The actual reply has one more entry (the probe itself), so sizing
    # before the probe should be <= the probed reply.
    assert payload <= reply.total_payload_bytes
    assert packets >= 1
    assert wire >= payload


def test_monlist_reply_size_zero_when_disabled():
    server = seeded_server(monlist_enabled=False)
    assert server.monlist_reply_size(now=1000.0) == (0, 0, 0)


def test_config_validation():
    with pytest.raises(ValueError):
        ServerConfig(loop_factor=0)
    with pytest.raises(ValueError):
        ServerConfig(stratum=17)
