"""Imperfect-apparatus fault injection (the paper's §3 data caveats).

The paper's five datasets were messy in ways a simulator naturally is not:
ONP sweeps saw rate-limited and truncated mode-7 responses, weekly samples
could be missing or partial, the darknet sensor had downtime, and the
authors explicitly worked around parse failures and undercounts.  This
module models those pathologies as a :class:`FaultProfile` carried on
:class:`~repro.scenario.world.WorldParams` and applied *at the measurement
boundary* by a :class:`FaultInjector` — the ground-truth simulation is
never perturbed, only what the apparatus records of it.

Determinism contract
--------------------
Every fault decision is drawn from dedicated RNG child streams (named
under ``faults/``), never from the streams the clean simulation uses, and
every draw is guarded by its rate: with the default (empty) profile no
fault stream is ever consumed and every injection hook is a no-op, so the
clean world stays byte-identical to a build without this layer.

Each injected fault is counted in an :class:`InjectionLog` (stored on the
built world as ``world.fault_log``); ``python -m repro quality`` reconciles
the log against what the degraded datasets and the parse layer actually
report — the synthetic analogue of the paper's own data-caveats section.
"""

import dataclasses
from dataclasses import dataclass, field

__all__ = [
    "FaultProfile",
    "CLEAN_PROFILE",
    "PAPER_PROFILE",
    "HOSTILE_PROFILE",
    "FAULT_PROFILES",
    "resolve_fault_profile",
    "InjectionLog",
    "FaultInjector",
]


_RATE_FIELDS = (
    "onp_truncate_rate",
    "onp_duplicate_rate",
    "onp_reorder_rate",
    "onp_corrupt_rate",
    "onp_sample_outage_rate",
    "onp_partial_sweep_rate",
    "darknet_outage_rate",
    "arbor_missing_day_rate",
)


@dataclass(frozen=True)
class FaultProfile:
    """Per-fault-class rates, all probabilities in ``[0, 1]``.

    Each class reproduces one of the paper's acknowledged measurement
    imperfections (§3):

    * ``onp_truncate_rate`` — a multi-packet monlist response loses its
      tail fragments (rate limiting / filtering of the single scan source);
    * ``onp_duplicate_rate`` — a response fragment arrives twice
      (retransmission / capture artifacts);
    * ``onp_reorder_rate`` — fragments of one response arrive out of order
      (UDP gives no ordering guarantee);
    * ``onp_corrupt_rate`` — a captured payload is bit-corrupted and may no
      longer parse (the paper's "responses we could not parse");
    * ``onp_sample_outage_rate`` — an entire weekly sweep is missing;
    * ``onp_partial_sweep_rate`` — a sweep aborts partway through the
      address space, probing only a fraction of targets;
    * ``darknet_outage_rate`` — per-day probability the darknet sensor is
      down and records nothing;
    * ``arbor_missing_day_rate`` — per-day probability the global traffic
      collector has no daily record.
    """

    name: str = "custom"
    onp_truncate_rate: float = 0.0
    onp_duplicate_rate: float = 0.0
    onp_reorder_rate: float = 0.0
    onp_corrupt_rate: float = 0.0
    onp_sample_outage_rate: float = 0.0
    onp_partial_sweep_rate: float = 0.0
    darknet_outage_rate: float = 0.0
    arbor_missing_day_rate: float = 0.0

    def __post_init__(self):
        for rate_field in _RATE_FIELDS:
            rate = getattr(self, rate_field)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{rate_field} must be in [0, 1], got {rate!r}")

    @property
    def is_clean(self):
        """True when every fault rate is zero (nothing is ever injected)."""
        return all(getattr(self, rate_field) == 0.0 for rate_field in _RATE_FIELDS)

    def nonzero_rates(self):
        """[(field name, rate)] for every active fault class."""
        return [(f, getattr(self, f)) for f in _RATE_FIELDS if getattr(self, f) > 0.0]

    def describe(self):
        """One line: profile name plus its active rates."""
        active = self.nonzero_rates()
        if not active:
            return f"{self.name} (no faults)"
        rates = ", ".join(f"{name}={rate:g}" for name, rate in active)
        return f"{self.name}: {rates}"


#: The default: a perfect apparatus (pre-fault-layer behavior, bit for bit).
CLEAN_PROFILE = FaultProfile(name="clean")

#: Roughly the imperfection level the paper describes working around:
#: occasional truncated/unparseable responses, one-in-many-weeks outages,
#: short sensor downtimes.
PAPER_PROFILE = FaultProfile(
    name="paper",
    onp_truncate_rate=0.03,
    onp_duplicate_rate=0.005,
    onp_reorder_rate=0.02,
    onp_corrupt_rate=0.004,
    onp_sample_outage_rate=0.04,
    onp_partial_sweep_rate=0.08,
    darknet_outage_rate=0.01,
    arbor_missing_day_rate=0.005,
)

#: A stress profile for chaos testing: every fault class fires often.  The
#: analysis pipeline must degrade, never crash.
HOSTILE_PROFILE = FaultProfile(
    name="hostile",
    onp_truncate_rate=0.15,
    onp_duplicate_rate=0.08,
    onp_reorder_rate=0.20,
    onp_corrupt_rate=0.08,
    onp_sample_outage_rate=0.12,
    onp_partial_sweep_rate=0.25,
    darknet_outage_rate=0.12,
    arbor_missing_day_rate=0.08,
)

FAULT_PROFILES = {
    "clean": CLEAN_PROFILE,
    "paper": PAPER_PROFILE,
    "hostile": HOSTILE_PROFILE,
}


def resolve_fault_profile(value):
    """Accept a preset name or a ready :class:`FaultProfile`."""
    if isinstance(value, FaultProfile):
        return value
    if value is None:
        return CLEAN_PROFILE
    try:
        return FAULT_PROFILES[value]
    except KeyError:
        raise KeyError(
            f"unknown fault profile {value!r}; choose from {sorted(FAULT_PROFILES)}"
        ) from None


# ---------------------------------------------------------------------------
# Injection accounting
# ---------------------------------------------------------------------------


@dataclass
class InjectionLog:
    """Counts of every fault actually injected, by namespaced kind.

    Kinds are dotted strings (``onp.monlist.truncated_response``,
    ``darknet.down_day``, ...).  The quality report reconciles these
    against what the degraded datasets observably lost.
    """

    counts: dict = field(default_factory=dict)

    def record(self, kind, n=1):
        self.counts[kind] = self.counts.get(kind, 0) + n

    def get(self, kind):
        return self.counts.get(kind, 0)

    @property
    def total(self):
        return sum(self.counts.values())

    def as_dict(self):
        return dict(sorted(self.counts.items()))


class FaultInjector:
    """Applies a :class:`FaultProfile` at the measurement boundary.

    One injector serves a whole world build.  Each fault site draws from
    its own named child stream of the injector's RNG, so sites never
    perturb each other and a site that is disabled (rate 0) consumes no
    draws at all.
    """

    def __init__(self, profile, rng):
        self.profile = profile
        self.log = InjectionLog()
        self._rng = rng
        self._onp_rng = rng.child("onp")
        self._darknet_rng = rng.child("darknet")
        self._arbor_rng = rng.child("arbor")
        #: {day index: bool} — each darknet day's status is drawn once.
        self._darknet_days = {}

    # -- ONP sweep-level ----------------------------------------------------

    @staticmethod
    def _sweep_label(mode):
        return "monlist" if mode == 7 else "version"

    def sample_outage(self, mode, t):
        """True when the whole weekly sweep at ``t`` is missing."""
        rate = self.profile.onp_sample_outage_rate
        if rate <= 0.0:
            return False
        if self._onp_rng.random() >= rate:
            return False
        self.log.record(f"onp.{self._sweep_label(mode)}.sample_outage")
        return True

    def sweep_cutoff(self, mode, t):
        """Fraction of the sweep completed, or None for a full sweep."""
        rate = self.profile.onp_partial_sweep_rate
        if rate <= 0.0:
            return None
        if self._onp_rng.random() >= rate:
            return None
        cutoff = float(self._onp_rng.uniform(0.3, 0.95))
        self.log.record(f"onp.{self._sweep_label(mode)}.partial_sweep")
        return cutoff

    # -- ONP per-capture packet mangling -------------------------------------

    def mangle_mode7(self, packets):
        """Degrade one captured mode-7 response; returns the new tuple.

        Applied in wire order: tail truncation (rate limiting kills late
        fragments; the first fragment always survives), fragment
        duplication, reordering, and finally per-capture bit corruption.
        Always returns at least one packet.
        """
        return _mangle_packets(self.profile, self._onp_rng, self.log, packets)

    def block_mangler(self, block):
        """A per-build-block mode-7 mangler, or None with no mangle rates.

        The block-sharded ONP sweep mangles each block's captures from a
        dedicated ``onp-mangle-b{block}`` child stream (derived, never
        shared across processes) and counts into a local
        :class:`InjectionLog` the parent merges back — the same blocks
        consume the same streams at any ``--jobs``.
        """
        profile = self.profile
        if (
            profile.onp_truncate_rate == 0.0
            and profile.onp_duplicate_rate == 0.0
            and profile.onp_reorder_rate == 0.0
            and profile.onp_corrupt_rate == 0.0
        ):
            return None
        return BlockMangler(profile, self._rng.child(f"onp-mangle-b{block}"))

    # -- darknet -------------------------------------------------------------

    def darknet_down(self, day):
        """True when the darknet sensor is down for the whole ``day``.

        Drawn once per day (cached), so every sweep touching the day sees
        the same status and the log counts each down day exactly once.
        """
        rate = self.profile.darknet_outage_rate
        if rate <= 0.0:
            return False
        status = self._darknet_days.get(day)
        if status is None:
            status = bool(self._darknet_rng.random() < rate)
            self._darknet_days[day] = status
            if status:
                self.log.record("darknet.down_day")
        return status

    # -- arbor ---------------------------------------------------------------

    def arbor_missing(self, day):
        """True when the traffic collector has no record for ``day``."""
        rate = self.profile.arbor_missing_day_rate
        if rate <= 0.0:
            return False
        if self._arbor_rng.random() >= rate:
            return False
        self.log.record("arbor.missing_day")
        return True


def _mangle_packets(profile, rng, log, packets):
    """The mode-7 mangle pipeline over an explicit (rng, log) pair.

    Shared by the injector's own stream (monolithic path, pinned draw
    sequence) and per-block :class:`BlockMangler` streams (sharded path).
    """
    out = list(packets)
    if len(out) > 1 and profile.onp_truncate_rate > 0.0:
        if rng.random() < profile.onp_truncate_rate:
            keep = 1 + int(rng.integers(0, len(out) - 1))
            log.record("onp.monlist.truncated_response")
            log.record("onp.monlist.dropped_packet", len(out) - keep)
            out = out[:keep]
    if profile.onp_duplicate_rate > 0.0 and rng.random() < profile.onp_duplicate_rate:
        source = int(rng.integers(0, len(out)))
        position = int(rng.integers(0, len(out) + 1))
        out.insert(position, out[source])
        log.record("onp.monlist.duplicated_packet")
    if len(out) > 1 and profile.onp_reorder_rate > 0.0:
        if rng.random() < profile.onp_reorder_rate:
            order = list(rng.generator.permutation(len(out)))
            out = [out[i] for i in order]
            log.record("onp.monlist.reordered_response")
    if profile.onp_corrupt_rate > 0.0 and rng.random() < profile.onp_corrupt_rate:
        index = int(rng.integers(0, len(out)))
        out[index] = _flip_bytes(rng, out[index])
        log.record("onp.monlist.corrupted_packet")
    return tuple(out)


def _flip_bytes(rng, packet):
    """XOR 1-4 random bytes of a packet with random nonzero masks."""
    data = bytearray(packet)
    n_flips = 1 + int(rng.integers(0, 4))
    for _ in range(n_flips):
        position = int(rng.integers(0, len(data)))
        mask = 1 + int(rng.integers(0, 255))
        data[position] ^= mask
    return bytes(data)


class BlockMangler:
    """Mode-7 packet mangling scoped to one build block: own child stream,
    own local log (merged into the world log by the sweep parent)."""

    __slots__ = ("profile", "rng", "log")

    def __init__(self, profile, rng):
        self.profile = profile
        self.rng = rng
        self.log = InjectionLog()

    def mangle(self, packets):
        return _mangle_packets(self.profile, self.rng, self.log, packets)


def profile_fields(profile):
    """The profile as a plain {field: value} dict (for cache keys, repr)."""
    return dataclasses.asdict(profile)
