"""The end-to-end paper world.

``PaperWorld.build(seed, scale)`` runs the entire study: it generates the
synthetic Internet (AS plan, NTP host population, victim population),
the attacker ecosystem (scanners, booters, the attack campaign including
the February 10-12 OVH event and the scripted FRGP reflection spike), and
then runs all five measurement apparatus against it, materializing the
synthetic equivalents of the paper's five datasets:

1. ``world.arbor``   — global traffic and labeled-attack statistics,
2. ``world.onp``     — the ONP weekly monlist/version probe captures,
3. ``world.darknet`` — the IPv4 ≈/9 telescope,
4. ``world.darknet_v6`` — the IPv6 telescope (negative result),
5. ``world.isp``     — Merit and FRGP/CSU flow vantage points.

Every analysis in :mod:`repro.analysis` consumes these dataset objects
only — never the ground truth — so the pipeline would run unchanged on
real data with the same schemas.
"""

import math
import time
from dataclasses import dataclass, field

from repro.attack.campaign import AttackCampaign, AttackSpec, CampaignParams
from repro.attack.scanner import RESEARCH_SCANNERS, ScannerEcosystem, windows_observed_ttl
from repro.faults import CLEAN_PROFILE, FaultInjector, FaultProfile
from repro.measurement.amplifier_state import AmplifierStateManager
from repro.measurement.arbor import ArborCollector
from repro.measurement.isp import IspMeasurement
from repro.measurement.onp import OnpProber
from repro.net.asn import ASRegistry
from repro.net.geo import GeoView
from repro.net.pbl import PolicyBlockList
from repro.net.routing import RoutedBlockTable
from repro.population.amplifiers import (
    BackgroundClients,
    NtpHost,
    PoolParams,
    build_host_pool,
)
from repro.population.columns import PulseColumns
from repro.population.dns_resolvers import DnsResolverPool
from repro.population.osmodel import sample_system_attributes
from repro.population.victims import VictimParams, build_victim_pool
from repro.telescope.darknet import Ipv4Darknet, Ipv6Darknet
from repro.util.pool import ShardRunner, summarize_shard_stats
from repro.util.rng import RngStream
from repro.util.simtime import DAY, HOUR, date_to_sim

__all__ = ["WorldParams", "PaperWorld"]


@dataclass(frozen=True)
class WorldParams:
    """One knob to rule them all: the world's seed and scale."""

    seed: int = 2014
    #: Population scale relative to the real Internet (1.0 = 1.4M monlist
    #: amplifiers; benchmarks default to small worlds).
    scale: float = 0.003
    #: ASes in the synthetic registry (defaults scale sub-linearly so small
    #: worlds still have AS-level structure).
    n_ases: int = None
    observation_start: float = date_to_sim(2013, 9, 1)
    observation_end: float = date_to_sim(2014, 5, 1)
    #: Measurement-apparatus imperfection model (see :mod:`repro.faults`).
    #: The default clean profile injects nothing and leaves the world
    #: byte-identical to a build without the fault layer.
    faults: FaultProfile = CLEAN_PROFILE

    def resolved_n_ases(self):
        if self.n_ases is not None:
            return self.n_ases
        return max(400, int(3000 * math.sqrt(self.scale / 0.01)))


#: Local amplifier deployments (§7.1): counts are absolute, like the paper's.
_LOCAL_AMPLIFIER_PLAN = {
    # site AS name: (count, n_elite_full_table, remediation description)
    "REGIONAL-MI": (50, 5, "tickets"),  # Merit: tracked via trouble tickets
    "FRGP-CO": (48, 4, "slow"),  # FRGP: ongoing through February
    "CSU-EDU": (9, 3, "jan24"),  # CSU: all secured on January 24
}


@dataclass
class PaperWorld:
    """The fully-built world: ground truth plus the five datasets."""

    params: WorldParams
    registry: object
    table: object
    pbl: object
    geo: object
    hosts: object
    victims: object
    sweeps: list
    attacks: list
    state: object
    onp: object
    arbor: object
    darknet: object
    darknet_v6: object
    isp: object
    dns_pool: object
    local_amplifiers: dict = field(default_factory=dict)
    #: Wall-clock seconds per build phase (see ``build``); purely
    #: observational — never feeds back into the simulation.
    build_timings: dict = field(default_factory=dict)
    #: Per-phase shard-pool engagement and per-task timings (see
    #: :class:`~repro.util.pool.ShardRunner`); observational only.
    shard_stats: dict = field(default_factory=dict)
    #: The :class:`~repro.faults.InjectionLog` of every apparatus fault
    #: injected during the build (None on worlds from older caches).
    fault_log: object = None
    #: :class:`~repro.scenario.checkpoint.BuildCheckpoint` provenance
    #: (resumed?, phases loaded, saves) when ``checkpoint_dir`` was set;
    #: None otherwise and on worlds from older caches.
    checkpoint_stats: object = None

    # -- reporting -------------------------------------------------------------------

    def timing_summary(self):
        """Per-phase build timings as text lines (empty if not recorded)."""
        if not self.build_timings:
            return []
        total = self.build_timings.get("total", sum(self.build_timings.values()))
        lines = [f"Build: {total:.2f}s wall clock"]
        for phase, seconds in self.build_timings.items():
            if phase == "total":
                continue
            share = seconds / total if total else 0.0
            lines.append(f"  {phase:<10} {seconds:8.2f}s  {100 * share:5.1f}%")
        return lines

    def summary(self, include_timings=False, context=None):
        """A text digest of the study's headline findings for this world.

        ``include_timings`` appends per-phase build wall-clock lines; it is
        off by default so the summary stays a pure function of (seed,
        params) — golden tests depend on that.  ``context`` is an optional
        shared :class:`~repro.analysis.AnalysisContext`; passing one lets
        the CLI reuse this summary's corpus decode for later artifacts
        (and vice versa) — the text is identical either way.
        """
        from repro.analysis import (
            AnalysisContext,
            amplifier_counts,
            churn_report,
            peak_traffic_date,
            sample_baf_boxplot,
            version_sample_baf_boxplot,
        )
        from repro.util.simtime import format_sim

        if context is None:
            context = AnalysisContext(self)

        lines = []
        lines.append(
            f"PaperWorld(seed={self.params.seed}, scale={self.params.scale}): "
            f"{len(self.hosts)} host records, {len(self.victims)} victims, "
            f"{len(self.attacks)} attacks, {len(self.sweeps)} scan sweeps"
        )
        daily = self.arbor.daily
        if daily:
            nov = max(d.ntp_fraction for d in daily[:20])
            peak = max(d.ntp_fraction for d in daily)
            lines.append(
                f"NTP traffic fraction: {nov:.2e} (Nov) -> {peak:.2e} "
                f"(peak {peak_traffic_date(self.arbor)}; paper: 1e-5 -> 1e-2 on 2014-02-11)"
            )
        else:
            lines.append("NTP traffic fraction: (no data: collector recorded no days)")
        parsed = context.parsed_samples()
        rows = amplifier_counts(parsed, self.table, self.pbl)
        # Apparatus outages leave all-zero rows; the remediation headline is
        # computed between the first and last weeks that actually measured.
        measured = [r for r in rows if not r.outage and r.ips > 0]
        if len(measured) >= 2:
            first_row, last_row = measured[0], measured[-1]
            lines.append(
                f"Amplifier pool: {first_row.ips} -> {last_row.ips} "
                f"({100 * (1 - last_row.ips / first_row.ips):.0f}% remediated; paper: 92%)"
            )
        else:
            lines.append("Amplifier pool: (no data: fewer than two measured weeks)")
        churn = churn_report(parsed)
        lines.append(
            f"Unique amplifier IPs: {churn.total_unique} "
            f"(first sample {100 * churn.first_sample_share:.0f}%; paper: ~60%)"
        )
        with_tables = [p for p in parsed if p.tables]
        version_ok = [s for s in self.onp.version_samples if len(s)]
        if with_tables and version_ok:
            box = sample_baf_boxplot(with_tables[0])
            vbox = version_sample_baf_boxplot(version_ok[0])
            lines.append(
                f"BAF: monlist median {box.median:.1f}x / Q3 {box.q3:.1f}x / max {box.maximum:.1e}x; "
                f"version {vbox.q1:.1f}/{vbox.median:.1f}/{vbox.q3:.1f} (paper: 4.3/15/1e9; 3.5/4.6/6.9)"
            )
        else:
            lines.append("BAF: (no data: no parsed monlist or version samples)")
        report = context.victim_report()
        victims = report.all_victim_ips()
        lines.append(
            f"Victims observed: {len(victims)} "
            f"(~{int(len(victims) / self.params.scale):,} full-scale-equivalent; paper: 437K), "
            f"{report.total_attack_packets():.2e} packets, "
            f"undersampling {report.undersampling_factor():.1f}x (paper: 3.8x)"
        )
        samples = self.onp.monlist_samples
        if samples:
            window = f"{format_sim(samples[0].t)} .. {format_sim(samples[-1].t)}"
            lines.append(f"Window: {window} ({len(samples)} weekly samples)")
        else:
            lines.append("Window: (no data: the campaign recorded no monlist samples)")
        if include_timings:
            lines.extend(self.timing_summary())
        return "\n".join(lines)

    # -- construction --------------------------------------------------------------

    @classmethod
    def build(
        cls,
        seed=2014,
        scale=0.003,
        params=None,
        quiet=True,
        jobs=1,
        task_timeout=None,
        retries=None,
        checkpoint_dir=None,
    ):
        """Run the whole study.  Deterministic in (seed, params).

        ``jobs`` parallelizes the heavy build phases (hosts, campaign,
        ONP sweeps) across a fork pool.  The world is byte-identical at
        any ``jobs``: the work is partitioned along fixed build blocks
        with derived per-block RNG streams, and the pool merely
        distributes those same blocks (see :mod:`repro.util.pool`).

        ``task_timeout`` and ``retries`` tune the pool's supervision
        layer (per-task wall-clock budget; extra pooled attempts before
        the in-process serial fallback) — they affect scheduling only,
        never the bytes of the result.  ``checkpoint_dir`` persists the
        build state after every completed phase so an interrupted build
        resumes from the last finished phase to a byte-identical world
        (see :mod:`repro.scenario.checkpoint`).
        """
        params = params or WorldParams(seed=seed, scale=scale)
        rng = RngStream(params.seed, "paper-world")
        runner_kwargs = {}
        if task_timeout is not None:
            runner_kwargs["task_timeout"] = task_timeout
        if retries is not None:
            runner_kwargs["retries"] = retries
        runner = ShardRunner(jobs, **runner_kwargs)
        env = _BuildEnv(params=params, rng=rng, runner=runner, quiet=quiet)

        checkpoint = None
        checkpoint_stats = None
        completed = []
        state = None
        if checkpoint_dir:
            from repro.scenario.checkpoint import BuildCheckpoint

            checkpoint = BuildCheckpoint(checkpoint_dir, params)
            checkpoint_stats = checkpoint.stats
            loaded = checkpoint.load()
            if loaded is not None:
                completed, state = loaded
                env.say(
                    f"resuming from checkpoint ({len(completed)} phases done: "
                    f"{', '.join(completed)})"
                )
        resumed = bool(completed)
        if state is None:
            state = {
                "timings": {},
                # Fault decisions live on dedicated child streams
                # ("faults/...") so the clean (empty) profile leaves every
                # simulation stream — and therefore the world — byte-identical.
                "injector": FaultInjector(params.faults, rng.child("faults")),
            }
        timings = state["timings"]
        build_start = time.perf_counter()
        for name, phase_fn in _BUILD_PHASES:
            if name in completed:
                continue
            phase_start = time.perf_counter()
            phase_fn(env, state)
            timings[name] = timings.get(name, 0.0) + (time.perf_counter() - phase_start)
            completed.append(name)
            if checkpoint is not None:
                checkpoint.save(completed, state)
        if resumed:
            # Wall clock for this process would undercount the resumed
            # prefix; the per-phase sum is the honest total.
            timings["total"] = sum(v for k, v in timings.items() if k != "total")
        else:
            timings["total"] = time.perf_counter() - build_start
        if checkpoint is not None:
            checkpoint.clear()

        env.say("done")
        return cls(
            params=params,
            registry=state["registry"],
            table=state["table"],
            pbl=state["pbl"],
            geo=state["geo"],
            hosts=state["hosts"],
            victims=state["victims"],
            sweeps=state["sweeps"],
            attacks=state["attacks"],
            state=state["state"],
            onp=state["onp"],
            arbor=state["arbor"],
            darknet=state["darknet"],
            darknet_v6=state["darknet_v6"],
            isp=state["isp"],
            dns_pool=state["dns_pool"],
            local_amplifiers=state["local"],
            build_timings=timings,
            shard_stats=summarize_shard_stats(runner.stats),
            fault_log=state["injector"].log,
            checkpoint_stats=checkpoint_stats,
        )


# -- build phases ----------------------------------------------------------------------
#
# The build is an ordered pipeline of named phases.  Each phase is a
# function of ``(env, state)``: ``env`` carries the ephemeral build
# apparatus (params, the master RNG, the shard runner, verbosity) and
# ``state`` is the accumulating — and picklable — world-under-
# construction that checkpoints persist between phases.  Every phase
# draws only from RNG child streams derived statelessly by name, so
# replaying the phase suffix after a resume is byte-identical to an
# uninterrupted build.


@dataclass
class _BuildEnv:
    """Ephemeral per-build apparatus handed to each phase."""

    params: WorldParams
    rng: object
    runner: object
    quiet: bool = True

    def say(self, message):
        if not self.quiet:
            print(f"[paper-world] {message}")


def _phase_registry(env, state):
    env.say(f"building registry ({env.params.resolved_n_ases()} ASes)")
    registry = ASRegistry(env.rng.child("asn"), n_ases=env.params.resolved_n_ases())
    state["registry"] = registry
    state["table"] = RoutedBlockTable(registry)
    state["pbl"] = PolicyBlockList(registry)
    state["geo"] = GeoView(state["table"])


def _phase_hosts(env, state):
    env.say("building host population")
    hosts = build_host_pool(
        env.rng.child("hosts"),
        state["registry"],
        state["pbl"],
        PoolParams(scale=env.params.scale),
        runner=env.runner,
    )
    state["local"] = _plant_local_amplifiers(
        env.rng.child("local-amps"), state["registry"], hosts
    )
    state["hosts"] = hosts


def _phase_victims(env, state):
    env.say("building victim population")
    state["victims"] = build_victim_pool(
        env.rng.child("victims"),
        state["registry"],
        state["pbl"],
        VictimParams(scale=env.params.scale),
    )


def _phase_scanners(env, state):
    env.say("generating scanner ecosystem")
    ecosystem = ScannerEcosystem(
        env.rng.child("scanners"),
        scale=env.params.scale,
        start=env.params.observation_start,
        end=env.params.observation_end,
    )
    state["sweeps"] = ecosystem.all_sweeps()
    state["scanner_scale"] = ecosystem.scanner_scale


def _phase_campaign(env, state):
    env.say("generating attack campaign")
    campaign = AttackCampaign(
        env.rng.child("campaign"),
        state["hosts"],
        state["victims"],
        CampaignParams(scale=env.params.scale),
    )
    attacks = campaign.generate(runner=env.runner)
    attacks.extend(
        _scripted_frgp_event(
            env.rng.child("frgp-event"), state["registry"], state["hosts"], state["victims"]
        )
    )
    attacks.sort(key=lambda a: a.start)
    state["attacks"] = attacks


def _phase_darknet(env, state):
    env.say("observing darknets")
    darknet = Ipv4Darknet(env.rng.child("telescope"), faults=state["injector"])
    darknet.observe_all(state["sweeps"])
    state["darknet"] = darknet.compact()
    darknet_v6 = Ipv6Darknet(env.rng.child("telescope-v6"))
    darknet_v6.simulate_window(env.params.observation_start, env.params.observation_end)
    state["darknet_v6"] = darknet_v6


def _phase_state(env, state):
    env.say("running ONP probe campaign")
    manager = AmplifierStateManager(env.rng.child("state"), RESEARCH_SCANNERS)
    manager.register_malicious_activity(state["sweeps"])
    # The whole campaign's pulses as one columnar batch: per-host sync
    # windows become searchsorted slices, and the ~25 legs per attack
    # never exist as AttackPulse objects (at scale 1.0 that is tens of
    # millions of objects the build no longer allocates).
    manager.register_pulse_columns(PulseColumns.from_attacks(state["attacks"]))
    state["state"] = manager


def _phase_onp(env, state):
    prober = OnpProber(state["state"], faults=state["injector"])
    state["onp"] = prober.run_all(state["hosts"], env.rng.child("onp"), runner=env.runner)


def _phase_arbor(env, state):
    env.say("collecting global traffic statistics")
    collector = ArborCollector(
        env.rng.child("arbor"), scale=env.params.scale, faults=state["injector"]
    )
    state["arbor"] = collector.collect(
        state["attacks"], date_to_sim(2013, 11, 1), env.params.observation_end
    )


def _phase_isp(env, state):
    env.say("measuring at regional ISPs")
    isp = IspMeasurement(state["registry"])
    isp.observe_attacks(state["attacks"])
    isp.observe_sweeps(state["sweeps"], scanner_scale=state["scanner_scale"])
    state["isp"] = isp.compact()


def _phase_dns(env, state):
    state["dns_pool"] = DnsResolverPool(env.rng.child("dns"), scale=env.params.scale)


#: The build pipeline, in execution order.  Checkpoints store the prefix
#: of completed phase names; renaming or reordering phases invalidates
#: outstanding checkpoints (see ``BuildCheckpoint._reject_reason``).
_BUILD_PHASES = (
    ("registry", _phase_registry),
    ("hosts", _phase_hosts),
    ("victims", _phase_victims),
    ("scanners", _phase_scanners),
    ("campaign", _phase_campaign),
    ("darknet", _phase_darknet),
    ("state", _phase_state),
    ("onp", _phase_onp),
    ("arbor", _phase_arbor),
    ("isp", _phase_isp),
    ("dns", _phase_dns),
)


def _plant_local_amplifiers(rng, registry, hosts):
    """Install the §7 local amplifier deployments (absolute counts).

    Returns {site AS name: [NtpHost]}.  The hosts join the global pool, so
    booters pick them up like any other amplifier; the elite (primed,
    full-table) ones float to the top of reply-size-sorted attack lists,
    which is how a handful of local boxes end up serving thousands of
    victims (Table 5).
    """
    from repro.ntp.constants import IMPL_XNTPD

    planted = {}
    for as_name, (count, n_elite, style) in _LOCAL_AMPLIFIER_PLAN.items():
        system = registry.special[as_name]
        site_hosts = []
        attrs = sample_system_attributes(rng.child(f"attrs-{as_name}"), count, "amplifier")
        for i in range(count):
            ip = system.random_ip(rng)
            if style == "jan24":
                remediation = date_to_sim(2014, 1, 24)
            elif style == "tickets":
                remediation = date_to_sim(2014, 1, 20) + float(rng.uniform(0, 50 * DAY))
            else:  # slow: through February and beyond; some never
                remediation = (
                    None
                    if rng.random() < 0.15
                    else date_to_sim(2014, 2, 1) + float(rng.uniform(0, 70 * DAY))
                )
            elite = i < n_elite
            base_clients = 600 if elite else int(rng.bounded_pareto(0.42, 20.0, 600.0))
            restart = float(rng.lognormal_for_median(5 * DAY, 0.6))
            host = NtpHost(
                ip=ip,
                asn=system.asn,
                continent=system.continent,
                country=system.country,
                is_end_host=False,
                attrs=attrs[i],
                responds_version=True,
                monlist_amplifier=True,
                implementations=frozenset({IMPL_XNTPD}),
                base_clients=base_clients,
                primed_full=elite,
                restart_interval=restart,
                birth=0.0,
                remediation_time=remediation,
                cluster_id=-2,
            )
            host.clients = _local_clients(rng.child(f"clients-{as_name}-{i}"), base_clients)
            site_hosts.append(host)
        # Bulk-join the global pool: extend() grows the tail build block
        # and keeps the pool's block bounds and column memos consistent.
        hosts.extend(site_hosts)
        planted[as_name] = site_hosts
    return planted


def _local_clients(rng, n):
    """Background clients for a planted local amplifier."""
    import numpy as np

    if n <= 0:
        return BackgroundClients(
            ips=np.empty(0, dtype=np.int64),
            ports=np.empty(0, dtype=np.int64),
            intervals=np.empty(0, dtype=np.float64),
            first_polls=np.empty(0, dtype=np.float64),
            one_shot=np.empty(0, dtype=bool),
        )
    return BackgroundClients(
        ips=rng.integers(0x0B000000, 0xDF000000, size=n).astype(np.int64),
        ports=rng.integers(1024, 65535, size=n).astype(np.int64),
        intervals=np.clip(rng.lognormal_for_median(2048.0, 1.6, size=n), 64.0, 14 * DAY),
        first_polls=rng.uniform(0.0, 30 * DAY, size=n),
        one_shot=rng.bernoulli(0.3, size=n),
    )


def _scripted_frgp_event(rng, registry, hosts, victims):
    """§7.1's distinctive FRGP ingress spike: a reflection attack on a host
    inside FRGP on February 10th — just under 23 minutes at ~3 GB/s,
    totaling ~514 GB."""
    frgp = registry.special["FRGP-CO"]
    targets = [v for v in victims.victims if v.asn == frgp.asn]
    if not targets:
        return []
    victim = targets[0]
    start = date_to_sim(2014, 2, 10, 14, 37)
    duration = 22.8 * 60.0
    # ~3 gigaBYTES per second at full scale; scaled down so the event stays
    # proportionate to the world's traffic denominator (it remains the
    # dominant spike against FRGP's own series at any scale).
    scale_rel = min(1.0, len(hosts.monlist_hosts) / 1_405_000 * 6)
    target_bps = max(1.5e9, 3.0e9 * 8 * scale_rel)
    alive = [h for h in hosts.monlist_alive(start) if not h.is_mega]
    if not alive:
        return []
    n_amps = min(len(alive), 45)
    picks = rng.choice(len(alive), size=n_amps, replace=False)
    amps = [alive[int(k)] for k in picks]
    from repro.population.amplifiers import estimate_monlist_reply_bytes

    reply = sum(estimate_monlist_reply_bytes(h) for h in amps) / len(amps)
    rate = target_bps / 8.0 / n_amps / max(300.0, reply)
    return [
        AttackSpec(
            attack_id=10_000_000,
            victim=victim,
            port=123,
            start=start,
            duration=duration,
            mode=7,
            target_bps=target_bps,
            amplifiers=amps,
            query_rate_per_amp=min(20000.0, rate),
            spoofer_ttl=windows_observed_ttl(rng),
            booter_id=-1,
        )
    ]
