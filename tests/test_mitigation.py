"""Tests for the mitigation package (notification, rate limits, BCP38)."""

import numpy as np
import pytest

from repro.mitigation import (
    Bcp38Policy,
    NotificationCampaign,
    apply_rate_limit,
    filter_attacks,
    notified_remediation_model,
)
from repro.mitigation.notification import NotificationWave
from repro.util import RngStream, date_to_sim


# -- notification ----------------------------------------------------------------


def test_wave_validation():
    with pytest.raises(ValueError):
        NotificationWave(t=0.0, reach=1.5, hazard_multiplier=2.0)
    with pytest.raises(ValueError):
        NotificationWave(t=0.0, reach=0.5, hazard_multiplier=0.5)


def test_campaign_must_be_chronological():
    waves = (
        NotificationWave(t=10.0, reach=0.5, hazard_multiplier=2.0),
        NotificationWave(t=5.0, reach=0.5, hazard_multiplier=2.0),
    )
    with pytest.raises(ValueError):
        NotificationCampaign(waves=waves)


def test_average_boost_accumulates():
    campaign = NotificationCampaign.kuhrer_style()
    before = campaign.average_boost_after(date_to_sim(2014, 1, 1))
    mid = campaign.average_boost_after(date_to_sim(2014, 1, 20))
    late = campaign.average_boost_after(date_to_sim(2014, 3, 1))
    assert before == 1.0
    assert 1.0 < mid < late


def test_counterfactual_slows_remediation():
    """Without the notification campaign, the pool survives longer."""
    with_campaign = notified_remediation_model(with_campaign=True)
    without = notified_remediation_model(with_campaign=False)
    t = date_to_sim(2014, 3, 14)
    assert without.curve.value_at(t) > with_campaign.curve.value_at(t)
    # The counterfactual still remediates substantially (self-interest,
    # publicity): survival stays below ~60% by mid-March.
    assert without.curve.value_at(t) < 0.6


def test_counterfactual_sampling_consistency():
    """Same uniform draw -> later (or equal) remediation without campaign."""
    with_campaign = notified_remediation_model(with_campaign=True)
    without = notified_remediation_model(with_campaign=False)
    for u in (0.9, 0.5, 0.2):
        t_with = with_campaign.sample_time(u)
        t_without = without.sample_time(u)
        if t_with is None:
            assert t_without is None or t_without > 0
        elif t_without is not None:
            assert t_without >= t_with - 1.0


# -- rate limiting ----------------------------------------------------------------


def test_rate_limit_caps_series():
    series = np.array([100.0, 5000.0, 100.0])
    # Cap of 800 bytes/hour expressed in bps.
    cap_bps = 800 * 8 / 3600
    result = apply_rate_limit(series, cap_bps)
    assert result.limited.max() <= 800.0 + 1e-9
    assert result.dropped_bytes == pytest.approx(4200.0)
    assert result.passed_bytes == pytest.approx(100.0 + 800.0 + 100.0)
    assert 0 < result.dropped_fraction < 1


def test_rate_limit_activation_time():
    series = np.array([5000.0, 5000.0])
    cap_bps = 800 * 8 / 3600
    result = apply_rate_limit(series, cap_bps, activation_hour=1)
    assert result.limited[0] == 5000.0  # untouched before activation
    assert result.limited[1] <= 800.0 + 1e-9


def test_rate_limit_validation():
    with pytest.raises(ValueError):
        apply_rate_limit([1.0], 0.0)
    with pytest.raises(ValueError):
        apply_rate_limit([1.0], 10.0, activation_hour=5)


def test_rate_limit_noop_when_under_cap():
    series = np.array([10.0, 10.0])
    result = apply_rate_limit(series, cap_bps=1e9)
    assert result.dropped_fraction == 0.0
    assert np.array_equal(result.limited, series)


def test_rate_limit_on_world_series(world):
    """Applying Merit's rate limit absorbs a meaningful share of the
    February attack egress."""
    merit = world.isp.sites["merit"]
    result = apply_rate_limit(merit.ntp_out, cap_bps=20e6, activation_hour=24 * 20)
    assert result.dropped_fraction > 0.1
    assert result.limited.sum() < merit.ntp_out.sum()


# -- BCP38 ----------------------------------------------------------------


def test_policy_bounds():
    with pytest.raises(ValueError):
        Bcp38Policy(adoption=-0.1)
    with pytest.raises(ValueError):
        Bcp38Policy(adoption=1.1)


def test_zero_and_full_adoption(world):
    attacks = world.attacks[:200]
    delivered, blocked = filter_attacks(attacks, Bcp38Policy(0.0))
    assert len(delivered) == len(attacks) and not blocked
    delivered, blocked = filter_attacks(attacks, Bcp38Policy(1.0))
    assert len(blocked) == len(attacks) and not delivered


def test_adoption_is_monotone(world):
    attacks = world.attacks[:500]
    blocked_counts = []
    for adoption in (0.2, 0.5, 0.8):
        _, blocked = filter_attacks(attacks, Bcp38Policy(adoption))
        blocked_counts.append(len(blocked))
    assert blocked_counts[0] < blocked_counts[1] < blocked_counts[2]
    # Roughly proportional to adoption.
    assert blocked_counts[1] == pytest.approx(250, rel=0.35)


def test_blocking_is_deterministic(world):
    attacks = world.attacks[:100]
    policy = Bcp38Policy(0.5)
    a = [policy.blocks(x) for x in attacks]
    b = [policy.blocks(x) for x in attacks]
    assert a == b
