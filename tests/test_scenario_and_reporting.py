"""Integration tests for the scenario layer and the text reporting."""

import pytest

from repro.analysis import amplifier_counts, parse_sample
from repro.reporting import (
    render_monlist_table,
    render_series,
    render_table,
    render_table1,
    render_table2,
    render_table4,
    render_table5,
    render_table6,
)
from repro.analysis import top_amplifier_table, top_victim_table
from repro.population import OS_ALL_NTP, OS_AMPLIFIERS, OS_MEGA
from repro.util import date_to_sim


def test_world_has_all_five_datasets(world):
    assert world.arbor.daily
    assert world.onp.monlist_samples and world.onp.version_samples
    assert world.darknet.monthly_packets_per_slash24()
    assert world.darknet_v6.monthly_packets()
    assert world.isp.sites


def test_world_scale_consistency(world):
    jan10 = date_to_sim(2014, 1, 10)
    alive = len(world.hosts.monlist_alive(jan10))
    observed = len(world.onp.monlist_samples[0])
    # The first scan sees most of the alive, v2-answering pool.
    assert 0.4 * alive < observed <= alive


def test_analysis_never_touches_ground_truth(world):
    """The parsed dataset contains only information a real prober gets:
    reconstructing tables must not require the host objects."""
    sample = world.onp.monlist_samples[3]
    parsed = parse_sample(sample)
    for table in parsed.tables[:20]:
        assert isinstance(table.amplifier_ip, int)
        assert table.entries is not None


def test_render_table_alignment():
    text = render_table(["a", "bb"], [[1, 2], [333, 4]])
    lines = text.splitlines()
    assert len(lines) == 4
    assert lines[0].startswith("a")
    assert all(len(line) == len(lines[0]) or line for line in lines)


def test_render_table1(world, parsed_monlist):
    amp_rows = amplifier_counts(parsed_monlist, world.table, world.pbl)
    victim_rows = [
        {
            "ips": 10,
            "blocks": 5,
            "asns": 3,
            "end_host_fraction": 0.4,
            "ips_per_block": 2.0,
        }
    ] * len(amp_rows)
    text = render_table1(amp_rows, victim_rows)
    assert "Table 1" in text
    assert "2014-01-10" in text and "2014-04-18" in text


def test_render_table2():
    text = render_table2(OS_MEGA, OS_AMPLIFIERS, OS_ALL_NTP)
    assert "cisco" in text and "junos" in text and "linux" in text


def test_render_table4():
    text = render_table4([(80, 0.362), (123, 0.238), (25565, 0.021)])
    assert "80" in text
    assert "Minecraft (g)" in text
    assert "NTP server port" in text


def test_render_table5_and_6(world):
    merit = world.isp.sites["merit"]
    t5 = render_table5("Merit", top_amplifier_table(merit))
    assert "Table 5" in t5 and "BAF" in t5
    t6 = render_table6("Merit", top_victim_table(merit, world.table, world.geo))
    assert "Table 6" in t6 and "Country" in t6


def test_render_monlist_table(world):
    from repro.analysis import reconstruct_table

    capture = world.onp.monlist_samples[0].captures[0]
    table = reconstruct_table(capture)
    text = render_monlist_table(table.entries[:5])
    assert "Inter-arrival" in text


def test_render_series():
    text = render_series([("2014-01-10", 0.5), ("2014-01-17", 0.25)], value_label="frac")
    assert "2014-01-10" in text and "0.5" in text
