"""The OpenNTPProject-style active prober (§3's ONP dataset).

Weekly, from one measurement-network source IP, the prober sends every IPv4
address a single NTP packet and captures all response packets:

* **monlist scans** (mode 7, implementation ``IMPL_XNTPD`` only — the
  paper's scans used one of the two implementation codes, its main
  acknowledged undercount) — fifteen samples, 2014-01-10 .. 2014-04-18;
* **version scans** (mode 6 READVAR) — nine samples from 2014-02-21.

Captures store raw packet bytes; the analysis layer re-parses them with the
ntpdc protocol logic, exactly as the paper did.

Sharded sweeps
--------------
The sweep is partitioned along the host pool's fixed build blocks (see
``repro.population.columns.HOST_BLOCKS``): each block worker walks the
*whole* chronological schedule over its own disjoint host slice, with its
own :meth:`~repro.measurement.amplifier_state.AmplifierStateManager.block_view`
and per-(sample, block) loss streams, and returns one
:class:`~repro.measurement.capture_store.PackedCaptures` per sample.  The
parent concatenates block parts in block order — byte-identical at any
``--jobs`` because the blocks, their streams, and their merge order never
depend on the worker count.  Sweep-level fault decisions (outages, partial
sweeps) are drawn parent-side, serially, before any block runs.
"""

from dataclasses import dataclass, field

from repro.attack.scanner import ONP_PROBER_IP
from repro.measurement.capture_store import PackedCaptures, PackedCapturesBuilder
from repro.ntp.constants import IMPL_XNTPD, MODE_CONTROL, MODE_PRIVATE
from repro.util.pool import ShardRunner
from repro.util.simtime import WEEK, date_to_sim, format_sim, week_samples

__all__ = [
    "MONLIST_SAMPLE_TIMES",
    "VERSION_SAMPLE_TIMES",
    "ProbeCapture",
    "OnpSample",
    "OnpDataset",
    "OnpProber",
]

MONLIST_SAMPLE_TIMES = week_samples(date_to_sim(2014, 1, 10), 15)
VERSION_SAMPLE_TIMES = week_samples(date_to_sim(2014, 2, 21), 9)


@dataclass(frozen=True)
class ProbeCapture:
    """All response packets one target sent to one probe.

    ``packets`` is one rendition; mega amplifiers repeat it ``n_repeats``
    times (§3.4), so aggregate sizes are exact without materializing
    gigabytes.
    """

    target_ip: int
    t: float
    packets: tuple
    n_repeats: int = 1

    @property
    def total_packets(self):
        return len(self.packets) * self.n_repeats

    @property
    def total_payload_bytes(self):
        return sum(len(p) for p in self.packets) * self.n_repeats


class OnpSample:
    """One Internet-wide scan: a date and every capture it produced.

    Captures live in a :class:`PackedCaptures` store (flat arrays over one
    payload blob, possibly memory-mapped); ``sample.captures`` lazily
    materializes a list of :class:`ProbeCapture`-shaped views on first
    access, so analysis code is unchanged while a full-scale sample costs
    arrays, not millions of tuples.
    """

    def __init__(self, t, mode, captures=None, outage=False, coverage=1.0):
        self.t = t
        self.mode = mode
        #: True when the whole weekly sweep is missing (apparatus outage);
        #: the sample is kept in the dataset so consumers can mark the gap.
        self.outage = outage
        #: Fraction of the target list the sweep actually covered (< 1.0
        #: when the apparatus aborted partway through the address space).
        self.coverage = coverage
        self._packed = None
        self._captures = list(captures) if captures is not None else None
        self._responder_cache = None

    @property
    def date(self):
        return format_sim(self.t)

    @property
    def packed(self):
        """The backing :class:`PackedCaptures` store (None when the sample
        was built capture-by-capture or is an outage gap)."""
        return self._packed

    def attach_packed(self, packed):
        """Adopt a packed store as this sample's capture set."""
        self._packed = packed
        self._captures = None
        self._responder_cache = None

    @property
    def captures(self):
        captures = self._captures
        if captures is None:
            packed = self._packed
            captures = packed.views() if packed is not None else []
            self._captures = captures
        return captures

    def __len__(self):
        if self._captures is None and self._packed is not None:
            return len(self._packed)
        return len(self.captures)

    def responder_ips(self):
        """The set of target IPs that produced a capture (cached).

        Analysis loops call this once per (sample, artifact) pair; the set
        is rebuilt only when the capture list has grown since the last
        call, which never happens after the sweep completes.  The packed
        path reads the target-ip column directly — no views needed.
        """
        n = len(self)
        cache = self._responder_cache
        if cache is None or cache[0] != n:
            if self._captures is None and self._packed is not None:
                ips = {int(ip) for ip in self._packed.target_ips}
            else:
                ips = {c.target_ip for c in self.captures}
            cache = (n, ips)
            self._responder_cache = cache
        return cache[1]

    # Cache pickles: views and responder sets re-materialize from the
    # packed store, so only the store itself is worth carrying.
    def __getstate__(self):
        state = self.__dict__.copy()
        state["_responder_cache"] = None
        if state["_packed"] is not None:
            state["_captures"] = None
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)


@dataclass
class OnpDataset:
    """The full ONP corpus: 15 monlist samples + 9 version samples."""

    monlist_samples: list = field(default_factory=list)
    version_samples: list = field(default_factory=list)
    _unique_cache: tuple = field(default=None, repr=False, compare=False)

    def monlist_unique_ips(self):
        """Union of responder IPs over all monlist samples (cached; the
        guard is the total capture count, append-only after the sweep)."""
        total = sum(len(s) for s in self.monlist_samples)
        cache = self._unique_cache
        if cache is None or cache[0] != total:
            out = set()
            for sample in self.monlist_samples:
                out |= sample.responder_ips()
            cache = (total, out)
            self._unique_cache = cache
        return cache[1]


def _sweep_monlist(prober, state, active, t, rng, mangler):
    """One block's slice of a monlist sweep; returns a PackedCaptures.

    Two-pass, replicating the paper apparatus: every *existing* active
    host is probed (ntpd monitors all traffic regardless of response
    loss), then a small loss rate models rate-limiting and filtering of
    the single scanning source.
    """
    builder = PackedCapturesBuilder(t)
    src_ip = prober._ip
    src_port = 50557 + (int(t) % 1000)  # hoisted: constant per sweep
    sync = state.sync
    # Pass 1 — probe every active host in target-list order: sync its
    # table, record the probe, and note which hosts would reply.  The
    # reply conditions mirror NtpServer.monlist_reply exactly.
    repliers = []
    for host in active:
        server = sync(host, t)
        config = server.config
        # Direct table.record: sync(host, t) already consumed every
        # flush boundary <= t, so record_client's maybe_flush(t) would
        # be a guaranteed no-op here.
        server.table.record(src_ip, src_port, MODE_PRIVATE, 2, t, packets=config.loop_factor)
        if config.monlist_enabled and IMPL_XNTPD in config.implementations:
            repliers.append((host, server))
    if not repliers:
        return builder.finish()
    # RNG-order contract (pinned; both sweep helpers obey it): the loss
    # draw happens AFTER reply generation and ONLY for hosts that produced
    # a reply.  One block draw consumes the PCG64 stream exactly like
    # len(repliers) scalar random() calls (pinned by the block-vs-scalar
    # RNG test), so each replier still sees the draw the per-host loop
    # would have given it — reordering either part shifts every subsequent
    # draw and breaks world determinism.
    draws = rng.random(len(repliers))
    loss = prober._loss
    # Pass 2 — render replies only for survivors.  Rendering is a pure
    # function of the table at ``t`` (no table mutates between the
    # passes), so skipping lost replies changes no surviving bytes.
    for (host, server), u in zip(repliers, draws):
        if u < loss:
            continue
        reply = server.monlist_reply(t, IMPL_XNTPD)
        packets = reply.packets
        if mangler is not None:
            # Degrade only what the apparatus recorded (post-loss), from
            # the block's own stream — the sweep RNG is untouched.
            packets = mangler.mangle(packets)
        builder.add(host.ip, packets, reply.n_repeats)
    return builder.finish()


def _sweep_version(prober, state, reply_memo, active, t, rng):
    """One block's slice of a mode-6 version sweep."""
    builder = PackedCapturesBuilder(t)
    src_ip = prober._ip
    server_for = state.server_for
    # Pass 1 — render every active host's reply.  Version replies don't
    # depend on monitor-table state (no sync needed) and are rendered
    # without logging the probe: version-scan loss models the probe being
    # filtered before it reaches the target, so a lost probe leaves no
    # monitor-table trace (unlike monlist loss, which drops only the
    # response of an already-recorded probe).  A mode-6 reply is a pure
    # function of the server's frozen config and ip, so the per-block
    # memo lets later sweeps skip the render.
    repliers = []
    for host in active:
        entry = reply_memo.get(host.ip)
        if entry is None:
            server = server_for(host)
            entry = (server, server.respond_version(src_ip, 50557, t, record=False))
            reply_memo[host.ip] = entry
        server, reply = entry
        if reply is not None:
            repliers.append((host, server, reply))
    if not repliers:
        return builder.finish()
    # Same RNG-order contract as the monlist sweep (pinned): loss is drawn
    # AFTER reply generation, one draw per replying host, and the block
    # draw equals len(repliers) scalar draws on the same stream.  The
    # surviving hosts' probes are then recorded in host order — each
    # record touches only that host's own table, so batching the records
    # after the draws mutates exactly the tables the interleaved ordering
    # did, identically.
    draws = rng.random(len(repliers))
    loss = prober._loss
    for (host, server, reply), u in zip(repliers, draws):
        if u < loss:
            continue
        if server.config.monlist_enabled:
            # The probe's monitor-table trace is observable only where
            # the table can ever be rendered — monlist amplifiers.  A
            # version-only server's table is write-only dead state, so
            # recording there is skipped (no RNG involved; the world's
            # observable bytes are identical).
            server.record_client(src_ip, 50557, MODE_CONTROL, 2, t, packets=server.config.loop_factor)
        builder.add(host.ip, reply.packets, reply.n_repeats)
    return builder.finish()


def _onp_block_worker(ctx, block):
    """Run the whole chronological sweep schedule over one host block.

    Module-level (fork/pickle-friendly).  Returns (per-schedule-entry
    PackedCaptures-or-None list, mangler fault counts dict or None).
    Every stream consumed here is derived from (seed, names) — never from
    shared mutable RNG state — so the block produces the same bytes in
    any process, in any worker arrangement.
    """
    prober, host_pool, rng, schedule, plan = ctx
    state = prober._state.block_view()
    faults = prober._faults
    mangler = faults.block_mangler(block) if faults is not None else None
    reply_memo = {}
    parts = []
    for (t, mode), (outage, limit, _coverage) in zip(schedule, plan):
        if outage:
            parts.append(None)
            continue
        if mode == 7:
            window = host_pool.monlist_block_bounds(block)
            active = host_pool.monlist_alive(t, limit=limit, window=window)
            srng = rng.child(f"monlist-{int(t)}").child(f"b{block}")
            parts.append(_sweep_monlist(prober, state, active, t, srng, mangler))
        else:
            window = host_pool.version_block_bounds(block)
            active = host_pool.version_alive(t, limit=limit, window=window)
            srng = rng.child(f"version-{int(t)}").child(f"b{block}")
            parts.append(_sweep_version(prober, state, reply_memo, active, t, srng))
    counts = dict(mangler.log.counts) if mangler is not None else None
    return parts, counts


class OnpProber:
    """Runs the weekly sweeps against the simulated world."""

    def __init__(self, state_manager, prober_ip=ONP_PROBER_IP, loss_rate=0.05, faults=None):
        if not 0 <= loss_rate < 1:
            raise ValueError("loss_rate must be in [0, 1)")
        self._state = state_manager
        self._ip = prober_ip
        self._loss = loss_rate
        #: Optional :class:`~repro.faults.FaultInjector`.  All fault draws
        #: come from the injector's own streams, never from the sweep RNG,
        #: so a clean profile leaves the sweeps byte-identical.
        self._faults = faults

    def _fault_plan(self, schedule, host_pool):
        """Draw every sweep-level fault decision, serially, in schedule
        order: [(outage, target-prefix limit or None, coverage)] per entry.

        Parent-side by design — the injector's sweep-level stream is
        consumed in one deterministic order before any block (or worker)
        runs, so the plan is independent of ``--jobs``.
        """
        faults = self._faults
        plan = []
        for t, mode in schedule:
            outage = False
            limit = None
            coverage = 1.0
            if faults is not None:
                if faults.sample_outage(mode, t):
                    outage = True
                else:
                    cutoff = faults.sweep_cutoff(mode, t)
                    if cutoff is not None:
                        # Aborted sweep: only the first fraction of the
                        # target list was ever probed.  Unprobed hosts
                        # consume no draws, exactly as never-replying
                        # hosts already don't.
                        coverage = cutoff
                        n_targets = len(
                            host_pool.monlist_hosts if mode == 7 else host_pool.version_hosts
                        )
                        limit = int(n_targets * cutoff)
            plan.append((outage, limit, coverage))
        return plan

    def run_all(self, host_pool, rng, monlist_times=None, version_times=None, runner=None):
        """The full campaign, interleaved chronologically (table syncs must
        advance monotonically); returns an :class:`OnpDataset`.

        ``runner`` is an optional :class:`~repro.util.pool.ShardRunner`;
        the sweep is partitioned along the pool's build blocks either way,
        so serial and pooled runs are byte-identical.
        """
        dataset = OnpDataset()
        schedule = [(t, 7) for t in (monlist_times or MONLIST_SAMPLE_TIMES)]
        schedule += [(t, 6) for t in (version_times or VERSION_SAMPLE_TIMES)]
        schedule.sort()
        plan = self._fault_plan(schedule, host_pool)
        if runner is None:
            runner = ShardRunner(1)
        n_blocks = host_pool.n_blocks
        ctx = (self, host_pool, rng, schedule, plan)
        outputs = runner.map("onp", _onp_block_worker, ctx, n_blocks)
        for i, ((t, mode), (outage, limit, coverage)) in enumerate(zip(schedule, plan)):
            sample = OnpSample(t=t, mode=mode, outage=outage, coverage=coverage)
            if not outage:
                parts = [block_parts[i] for block_parts, _ in outputs]
                sample.attach_packed(PackedCaptures.concat(parts).maybe_spill())
            if mode == 7:
                dataset.monlist_samples.append(sample)
            else:
                dataset.version_samples.append(sample)
        faults = self._faults
        if faults is not None:
            # Block manglers counted into local logs; merge in block order
            # so the world log is identical at any --jobs.
            for _, counts in outputs:
                if counts:
                    for kind, n in counts.items():
                        faults.log.record(kind, n)
        return dataset
