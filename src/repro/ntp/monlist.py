"""The ntpd monitor (monlist) MRU table.

``ntpd`` records every peer that talks to it — normal clients, control
queries, private-mode queries, and (crucially for the paper) spoofed victims
— in a most-recently-used list.  The ``monlist`` command dumps up to the 600
most recent entries.  This is the data structure whose dump the whole
victimology pipeline (§4) parses.

Implementation notes
--------------------
The table is keyed by remote address.  Rendering sorts by last-seen time, so
records may be inserted with out-of-order timestamps (the scenario layer
applies aggregate updates); capacity enforcement is lazy — the table prunes
to the 600 most recent entries when it grows past twice the capacity, and
rendering always truncates to the capacity.
"""

from dataclasses import dataclass
from operator import attrgetter

import numpy as np

from repro.ntp.constants import (
    MON_ENTRY_V1_SIZE,
    MON_ENTRY_V2_SIZE,
    MONLIST_CAPACITY,
    REQ_MON_GETLIST,
    REQ_MON_GETLIST_1,
    items_per_packet,
)
from repro.ntp.wire import (
    MON_V1_DTYPE,
    MON_V2_DTYPE,
    MonitorEntry,
    encode_mode7_response,
    encode_mode7_response_raw,
    encode_monitor_fields,
)

__all__ = ["MonlistRecord", "MonlistTable"]

_U32_MAX = 2**32 - 1

# The on-wire layouts live in repro.ntp.wire (MON_V1_DTYPE / MON_V2_DTYPE),
# shared with the block decoder so encode and decode can never drift apart.
# ``np.zeros`` guarantees the pad bytes are zero, exactly like struct's
# ``x`` pad codes, so ``tobytes()`` of a row equals the struct encoding.
_V2_DTYPE = MON_V2_DTYPE
_V1_DTYPE = MON_V1_DTYPE

#: Below this many entries the per-array NumPy overhead exceeds the struct
#: loop; measured crossover is ~10 records on CPython 3.10–3.12.
_BULK_RENDER_MIN = 12

#: C-level sort key for the MRU orderings (the sorts dominate render time
#: for large tables; an attrgetter beats a lambda measurably there).
_BY_LAST_SEEN = attrgetter("last_seen")


def _encode_records_blob(ordered, entry_version, now):
    """Encode MRU-ordered records as one contiguous bytes blob.

    Byte-identical to concatenating :func:`encode_monitor_fields` per
    record: truncation toward zero (``astype``) matches ``int()``, and the
    clips reproduce ``_clamp_u32``; counts can legitimately exceed u32
    (loop-pathology amplifiers), hence int64 intermediates.
    """
    n = len(ordered)
    arr = np.zeros(n, dtype=_V2_DTYPE if entry_version == 2 else _V1_DTYPE)
    times = np.array([(r.last_seen, r.first_seen) for r in ordered], dtype=np.float64)
    ints = np.array([(r.count, r.addr, r.port, r.mode, r.version) for r in ordered], dtype=np.int64)
    arr["last"] = np.clip((now - times[:, 0]).astype(np.int64), 0, _U32_MAX)
    arr["first"] = np.clip((now - times[:, 1]).astype(np.int64), 0, _U32_MAX)
    arr["count"] = np.clip(ints[:, 0], 0, _U32_MAX)
    arr["addr"] = ints[:, 1] & _U32_MAX
    arr["port"] = ints[:, 2] & 0xFFFF
    arr["mode"] = ints[:, 3] & 0xFF
    arr["version"] = ints[:, 4] & 0xFF
    return arr.tobytes()


@dataclass(slots=True)
class MonlistRecord:
    """Mutable per-client state inside the MRU table.

    ``slots``: hundreds of thousands of these are constructed per build
    (every background-client sync row), and the render hot path reads
    their attributes per entry — slots cut both costs measurably.
    """

    addr: int
    port: int
    mode: int
    version: int
    count: int
    first_seen: float
    last_seen: float

    def observe(self, now, packets=1, span=0.0, port=None, mode=None, version=None):
        """Fold ``packets`` arriving over ``[now - span, now]`` into the record."""
        if packets < 1:
            raise ValueError("packets must be >= 1")
        self.count += packets
        if now > self.last_seen:
            self.last_seen = now
        self.first_seen = min(self.first_seen, now - span)
        if port is not None:
            self.port = port
        if mode is not None:
            self.mode = mode
        if version is not None:
            self.version = version


class MonlistTable:
    """MRU list of the clients a server has seen, capped for rendering."""

    def __init__(self, capacity=MONLIST_CAPACITY):
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._records = {}

    def __len__(self):
        return min(len(self._records), self.capacity)

    @property
    def n_tracked(self):
        """Distinct clients currently tracked (may exceed render capacity)."""
        return len(self._records)

    def clear(self):
        """Flush the table (ntpd restart)."""
        self._records.clear()

    def record(self, addr, port, mode, version, now, packets=1, span=0.0):
        """Record traffic from ``addr``: ``packets`` packets ending at ``now``
        that arrived over the preceding ``span`` seconds."""
        if span < 0:
            raise ValueError("span must be non-negative")
        if packets < 1:
            raise ValueError("packets must be >= 1")
        existing = self._records.get(addr)
        if existing is None:
            self._records[addr] = MonlistRecord(
                addr=addr,
                port=port,
                mode=mode,
                version=version,
                count=packets,
                first_seen=now - span,
                last_seen=now,
            )
        else:
            existing.observe(now, packets=packets, span=span, port=port, mode=mode, version=version)
        if len(self._records) > 2 * self.capacity:
            self._prune()

    def _prune(self):
        keep = sorted(self._records.values(), key=_BY_LAST_SEEN, reverse=True)
        keep = keep[: self.capacity]
        self._records = {r.addr: r for r in keep}

    def put_record(self, addr, port, mode, version, count, first_seen, last_seen):
        """Set the absolute state of one client's record.

        Used by the bulk-sync path, which recomputes a background client's
        cumulative (count, first, last) analytically instead of replaying
        individual polls; the result is identical to per-packet recording.
        """
        if count < 1:
            raise ValueError("count must be >= 1")
        if last_seen < first_seen:
            raise ValueError("last_seen must not precede first_seen")
        self._records[addr] = MonlistRecord(
            addr=addr,
            port=port,
            mode=mode,
            version=version,
            count=count,
            first_seen=first_seen,
            last_seen=last_seen,
        )
        if len(self._records) > 2 * self.capacity:
            self._prune()

    def put_client_records(self, rows, mode, version):
        """Bulk :meth:`put_record` for background-client sync rows.

        ``rows`` is ``state_at`` output — ``(addr, port, count, first_seen,
        last_seen)`` tuples whose invariants (count >= 1, ordering) the
        analytic client model guarantees, so the per-row validation is
        skipped.  The prune cadence matches per-row :meth:`put_record`
        calls exactly, keeping the table byte-identical to the slow path.
        """
        records = self._records
        threshold = 2 * self.capacity
        for addr, port, count, first_seen, last_seen in rows:
            existing = records.get(addr)
            if existing is None:
                records[addr] = MonlistRecord(addr, port, mode, version, count, first_seen, last_seen)
                if len(records) > threshold:
                    self._prune()
                    records = self._records
            else:
                # Overwrite in place: replacing the dict value would keep
                # the key's insertion position anyway, so mutating the
                # existing record preserves MRU tie-breaking bit-for-bit
                # while skipping a construction (the common resync case).
                existing.port = port
                existing.mode = mode
                existing.version = version
                existing.count = count
                existing.first_seen = first_seen
                existing.last_seen = last_seen

    def get(self, addr):
        return self._records.get(addr)

    def __contains__(self, addr):
        return addr in self._records

    def entries_mru(self, now):
        """The renderable entries, most recent first, capped at capacity.

        ``last_int``/``first_int`` are computed relative to ``now``, exactly
        as ntpd reports them (seconds ago, floored at zero).
        """
        ordered = sorted(self._records.values(), key=_BY_LAST_SEEN, reverse=True)
        out = []
        for rec in ordered[: self.capacity]:
            out.append(
                MonitorEntry(
                    last_int=max(0, int(now - rec.last_seen)),
                    first_int=max(0, int(now - rec.first_seen)),
                    count=rec.count,
                    addr=rec.addr,
                    daddr=0,
                    flags=0,
                    port=rec.port,
                    mode=rec.mode,
                    version=rec.version,
                )
            )
        return out

    def render_response_packets(self, now, entry_version, implementation, sequence_start=0):
        """Encode the table as a series of mode-7 response packets.

        Returns a list of raw packets.  The request code and item size follow
        from the entry version; the "more" bit is set on all but the last
        packet and the 7-bit sequence number wraps as in ntpd.
        """
        if entry_version == 2:
            item_size = MON_ENTRY_V2_SIZE
            request_code = REQ_MON_GETLIST_1
        elif entry_version == 1:
            item_size = MON_ENTRY_V1_SIZE
            request_code = REQ_MON_GETLIST
        else:
            raise ValueError(f"unknown entry version {entry_version}")
        # Hot path: encode straight from the records (same bytes as
        # entries_mru + encode_monitor_entry, without building a
        # MonitorEntry per record — this renders once per probe for every
        # alive amplifier in every weekly sample).
        ordered = sorted(self._records.values(), key=_BY_LAST_SEEN, reverse=True)
        ordered = ordered[: self.capacity]
        per_packet = items_per_packet(item_size)
        packets = []
        n = len(ordered)
        if not ordered:
            packets.append(
                encode_mode7_response(implementation, request_code, sequence_start % 128, False, [], item_size)
            )
            return packets
        if n >= _BULK_RENDER_MIN:
            # Vectorized: one blob for the whole table, sliced per packet.
            blob = _encode_records_blob(ordered, entry_version, now)
            n_chunks = (n + per_packet - 1) // per_packet
            stride = per_packet * item_size
            for index in range(n_chunks):
                start = index * per_packet
                count = min(per_packet, n - start)
                offset = index * stride
                packets.append(
                    encode_mode7_response_raw(
                        implementation,
                        request_code,
                        (sequence_start + index) % 128,
                        more=index < n_chunks - 1,
                        data=blob[offset : offset + count * item_size],
                        n_items=count,
                        item_size=item_size,
                    )
                )
            return packets
        encoded = [
            encode_monitor_fields(
                entry_version,
                max(0, int(now - rec.last_seen)),
                max(0, int(now - rec.first_seen)),
                rec.count,
                rec.addr,
                rec.port,
                rec.mode,
                rec.version,
            )
            for rec in ordered
        ]
        chunks = [encoded[i : i + per_packet] for i in range(0, len(encoded), per_packet)]
        for index, chunk in enumerate(chunks):
            packets.append(
                encode_mode7_response(
                    implementation,
                    request_code,
                    (sequence_start + index) % 128,
                    more=index < len(chunks) - 1,
                    items=chunk,
                    item_size=item_size,
                )
            )
        return packets
