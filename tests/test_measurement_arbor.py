"""Tests for the Arbor-style global collector (using the shared world)."""

import pytest

from repro.measurement import SIZE_LARGE, SIZE_MEDIUM, SIZE_SMALL, size_bin
from repro.measurement.arbor import ArborCollector
from repro.util import RngStream, date_to_sim


def test_size_bins():
    assert size_bin(1e9) == SIZE_SMALL
    assert size_bin(2e9) == SIZE_MEDIUM
    assert size_bin(20e9) == SIZE_MEDIUM
    assert size_bin(21e9) == SIZE_LARGE


def test_daily_series_covers_window(world):
    days = [d.day for d in world.arbor.daily]
    assert days == list(range(days[0], days[-1] + 1))
    first = days[0] * 86400
    assert date_to_sim(2013, 10, 31) <= first <= date_to_sim(2013, 11, 2)


def test_ntp_fraction_rises_three_orders(world):
    daily = world.arbor.daily
    november = [d.ntp_fraction for d in daily[:20]]
    peak = max(d.ntp_fraction for d in daily)
    assert max(november) < 5e-5
    assert peak > 100 * max(november)


def test_peak_in_mid_february(world):
    from repro.util import format_sim

    peak = world.arbor.peak_ntp_day()
    date = format_sim(peak.day * 86400)
    assert "2014-02-0" in date or "2014-02-1" in date


def test_ntp_surpasses_dns_at_peak_only(world):
    daily = world.arbor.daily
    peak = world.arbor.peak_ntp_day()
    assert peak.ntp_fraction > peak.dns_fraction
    assert daily[0].ntp_fraction < daily[0].dns_fraction


def test_dns_fraction_steady(world):
    fracs = [d.dns_fraction for d in world.arbor.daily]
    assert all(0.0008 < f < 0.0025 for f in fracs)


def test_decline_after_peak(world):
    daily = world.arbor.daily
    peak = world.arbor.peak_ntp_day()
    late_april = [d for d in daily if d.day * 86400 > date_to_sim(2014, 4, 20)]
    assert late_april
    late_mean = sum(d.ntp_fraction for d in late_april) / len(late_april)
    assert late_mean < peak.ntp_fraction / 3
    # ...but still above the November baseline (lumpy at small scale —
    # see EXPERIMENTS.md residual 1).
    assert late_mean > 1.2 * world.arbor.daily[0].ntp_fraction


def test_monthly_attack_stats_shape(world):
    months = world.arbor.monthly_attacks
    assert "2013-11" in months and "2014-04" in months
    nov = months["2013-11"]
    feb = months["2014-02"]
    assert nov.ntp_fraction() < 0.01
    assert feb.ntp_fraction(SIZE_MEDIUM) > 0.4
    assert feb.ntp_fraction() > nov.ntp_fraction()
    apr = months["2014-04"]
    assert apr.ntp_fraction() < feb.ntp_fraction()


def test_total_attacks_scale(world):
    feb = world.arbor.monthly_attacks["2014-02"]
    expected = 300_000 * world.params.scale
    assert feb.total_attacks == pytest.approx(expected, rel=0.5)


def test_collector_validation():
    collector = ArborCollector(RngStream(1, "arb"), scale=0.001)
    with pytest.raises(ValueError):
        collector.collect([], 10.0, 5.0)


def test_empty_attack_list_gives_baseline_only():
    collector = ArborCollector(RngStream(2, "arb"), scale=0.001)
    dataset = collector.collect([], date_to_sim(2014, 1, 1), date_to_sim(2014, 2, 1))
    assert len(dataset.daily) == 31
    assert all(d.ntp_fraction < 5e-5 for d in dataset.daily)
    stats = dataset.monthly_attacks["2014-01"]
    assert sum(stats.ntp.values()) == 0
    assert sum(stats.other.values()) > 0
