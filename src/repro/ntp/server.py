"""A simulated ntpd server.

Each simulated server owns a monlist MRU table and a configuration that
determines which of the paper's three query surfaces it exposes:

* mode 3 time service (every NTP server),
* mode 6 ``version`` (READVAR) responses (the 4M-strong pool of §3.3), and
* mode 7 ``monlist`` responses for one or both private-mode implementation
  codes (the 1.4M-strong amplifier pool of §3.1).

The *mega amplifier* pathology of §3.4 — a routing/switching loop or stack
flaw causing one query to be re-processed many times, each time re-sending an
updated table — is modeled by ``loop_factor``: a query is recorded
``loop_factor`` times and the reply is the rendered table repeated
``loop_factor`` times.  Replies are therefore returned as a
:class:`ProbeReply` that stores one rendition plus the repeat count, so a
136 GB reply never has to be materialized packet by packet.
"""

from dataclasses import dataclass, field

from repro.net.framing import on_wire_bytes
from repro.ntp.constants import (
    CTL_OP_READVAR,
    IMPL_XNTPD,
    IMPL_XNTPD_OLD,
    MODE6_DATA_AREA,
    MODE_CLIENT,
    MODE_CONTROL,
    MODE_PRIVATE,
    NTP_PORT,
    REQ_MON_GETLIST,
    REQ_MON_GETLIST_1,
    STRATUM_UNSYNCHRONIZED,
)
from repro.ntp.monlist import MonlistTable
from repro.ntp.variables import render_system_variables
from repro.ntp.wire import (
    decode_mode3_or_4,
    decode_mode6,
    decode_mode7,
    encode_mode4,
    encode_mode6_response,
    mode_of,
)

__all__ = ["ServerConfig", "ProbeReply", "NtpServer", "REQUEST_CODE_TO_IMPL"]

#: Which implementation code each monlist request code belongs with.
REQUEST_CODE_TO_IMPL = {
    REQ_MON_GETLIST: IMPL_XNTPD_OLD,
    REQ_MON_GETLIST_1: IMPL_XNTPD,
}

#: Entry format served per implementation code.
_ENTRY_VERSION_OF_IMPL = {IMPL_XNTPD_OLD: 1, IMPL_XNTPD: 2}


@dataclass(frozen=True)
class ServerConfig:
    """Behavioral knobs of one simulated ntpd instance."""

    stratum: int = 3
    system: str = "Linux/3.2.0"
    processor: str = "x86_64"
    daemon_version: str = "4.2.6p5"
    compile_year: int = 2012
    refid: str = "10.3.2.1"
    monlist_enabled: bool = True
    #: Which mode-7 implementation codes this build answers monlist for.
    implementations: frozenset = frozenset({IMPL_XNTPD})
    responds_version: bool = True
    #: >1 turns the server into a mega amplifier (§3.4).
    loop_factor: int = 1
    #: Seconds between daemon restarts (table flushes); None = never.
    restart_interval: float = None
    #: How many optional system variables the build reports (reply size).
    extra_vars: int = 4

    def __post_init__(self):
        if self.loop_factor < 1:
            raise ValueError("loop_factor must be >= 1")
        if not 0 <= self.stratum <= 16:
            raise ValueError("stratum must be 0..16")

    @property
    def is_unsynchronized(self):
        return self.stratum == STRATUM_UNSYNCHRONIZED


@dataclass(frozen=True)
class ProbeReply:
    """A possibly-repeated reply to a single query packet.

    ``packets`` is one rendition of the reply (raw bytes); the full reply on
    the wire is that rendition repeated ``n_repeats`` times.  Packet sizes are
    identical across repetitions (fixed-width binary entries), so aggregate
    sizes are exact without materialization.
    """

    packets: tuple
    n_repeats: int = 1

    def __post_init__(self):
        if self.n_repeats < 1:
            raise ValueError("n_repeats must be >= 1")

    @property
    def total_packets(self):
        return len(self.packets) * self.n_repeats

    @property
    def payload_bytes_once(self):
        return sum(len(p) for p in self.packets)

    @property
    def total_payload_bytes(self):
        return self.payload_bytes_once * self.n_repeats

    @property
    def on_wire_bytes_once(self):
        return sum(on_wire_bytes(len(p)) for p in self.packets)

    @property
    def total_on_wire_bytes(self):
        return self.on_wire_bytes_once * self.n_repeats

    def materialize(self, max_packets=10_000):
        """Expand repetitions into a flat packet list, bounded for safety."""
        if self.total_packets > max_packets:
            raise ValueError(
                f"refusing to materialize {self.total_packets} packets (> {max_packets})"
            )
        out = []
        for _ in range(self.n_repeats):
            out.extend(self.packets)
        return out


class NtpServer:
    """One simulated NTP server with its monitor table and restart cycle."""

    def __init__(self, ip, config=None, capacity=None):
        self.ip = ip
        self.config = config or ServerConfig()
        self.table = MonlistTable() if capacity is None else MonlistTable(capacity)
        # Deterministic restart phase so flush times differ across servers.
        interval = self.config.restart_interval
        self._next_flush = None if interval is None else (ip % 997) / 997.0 * interval
        # The mode-6 version reply is a pure function of the (frozen)
        # config and ip, so it is rendered at most once per server.
        self._version_reply = None

    # -- restart / flush cycle -------------------------------------------------

    def maybe_flush(self, now):
        """Flush the table for every restart boundary passed before ``now``."""
        interval = self.config.restart_interval
        if interval is None:
            return False
        flushed = False
        while self._next_flush is not None and self._next_flush <= now:
            self.table.clear()
            self._next_flush += interval
            flushed = True
        return flushed

    @property
    def next_flush(self):
        return self._next_flush

    # -- traffic recording ------------------------------------------------------

    def record_client(self, addr, port, mode, version, now, packets=1, span=0.0):
        """Record arbitrary observed traffic into the monitor table."""
        self.maybe_flush(now)
        self.table.record(addr, port, mode, version, now, packets=packets, span=span)

    def record_attack_pulse(self, pulse):
        """Fold one (attack, amplifier) leg into the monitor table.

        Spoofed queries appear to ntpd as ordinary mode-6/7 queries from the
        victim; with a loop pathology each is re-processed ``loop_factor``
        times, which is why victim counts in mega-amplifier tables reach
        into the billions (Table 3b).  The recorded count is bounded by the
        amplifier's uplink (~30K response packets/second sustained): a loop
        can only resend as fast as the box can transmit.
        """
        link_cap = int(30_000 * max(1.0, pulse.duration))
        packets = min(pulse.query_count * self.config.loop_factor, link_cap)
        self.record_client(
            pulse.victim_ip,
            pulse.victim_port,
            mode=pulse.mode,
            version=2,
            now=pulse.end,
            packets=packets,
            span=pulse.duration,
        )

    # -- query handling -----------------------------------------------------------

    def respond_monlist(self, src_ip, src_port, now, implementation=IMPL_XNTPD):
        """Handle one monlist probe; returns a :class:`ProbeReply` or None.

        The probe itself is always recorded (ntpd monitors all traffic);
        whether a reply comes back depends on the server's configuration and
        on the implementation code probed — a build answers only its own.
        """
        self.record_client(src_ip, src_port, MODE_PRIVATE, 2, now, packets=self.config.loop_factor)
        return self.monlist_reply(now, implementation)

    def monlist_reply(self, now, implementation=IMPL_XNTPD):
        """Render the monlist reply as of ``now`` without recording a probe.

        The bulk sampler records every probe up front (ntpd monitors all
        traffic regardless of response-path loss) and renders replies only
        for the probes whose responses survive the loss draw; rendering is
        a pure function of the table at ``now``, so deferring it past the
        draw yields the same bytes :meth:`respond_monlist` would have.
        """
        if not self.config.monlist_enabled:
            return None
        if implementation not in self.config.implementations:
            return None
        entry_version = _ENTRY_VERSION_OF_IMPL[implementation]
        packets = self.table.render_response_packets(now, entry_version, implementation)
        return ProbeReply(packets=tuple(packets), n_repeats=self.config.loop_factor)

    def respond_version(self, src_ip, src_port, now, record=True):
        """Handle one mode-6 READVAR ("version") probe.

        ``record=False`` renders the reply without logging the probe in the
        monitor table — used by samplers that decide only afterwards
        whether the probe ever reached the server (probe-path loss).
        """
        loop = self.config.loop_factor
        if record:
            self.record_client(src_ip, src_port, MODE_CONTROL, 2, now, packets=loop)
        if not self.config.responds_version:
            return None
        if self._version_reply is not None:
            return self._version_reply
        cfg = self.config
        payload = render_system_variables(
            cfg.daemon_version,
            cfg.compile_year,
            cfg.system,
            cfg.processor,
            cfg.stratum,
            cfg.refid,
            extra_vars=cfg.extra_vars,
            weekday_index=self.ip % 7,
        ).encode("ascii")
        fragments = [
            payload[i : i + MODE6_DATA_AREA] for i in range(0, len(payload), MODE6_DATA_AREA)
        ] or [b""]
        packets = []
        for index, fragment in enumerate(fragments):
            packets.append(
                encode_mode6_response(
                    CTL_OP_READVAR,
                    fragment,
                    sequence=index,
                    offset=index * MODE6_DATA_AREA,
                    more=index < len(fragments) - 1,
                )
            )
        self._version_reply = ProbeReply(packets=tuple(packets), n_repeats=loop)
        return self._version_reply

    def respond_time(self, src_ip, src_port, now):
        """Handle a normal mode-3 client poll with a mode-4 reply."""
        self.record_client(src_ip, src_port, MODE_CLIENT, 4, now)
        leap = 3 if self.config.is_unsynchronized else 0
        packet = encode_mode4(self.config.stratum, leap=leap)
        return ProbeReply(packets=(packet,))

    def handle_datagram(self, data, src_ip, src_port, now):
        """Full protocol path: decode a raw query and dispatch it.

        Returns a :class:`ProbeReply` (or ``None`` when the server does not
        answer that query).  This is the byte-level entry point used by the
        examples and protocol tests; bulk simulation uses the ``respond_*``
        methods directly.
        """
        mode = mode_of(data)
        if mode == MODE_PRIVATE:
            packet = decode_mode7(data)
            if packet.response:
                return None
            impl = REQUEST_CODE_TO_IMPL.get(packet.request_code, packet.implementation)
            return self.respond_monlist(src_ip, src_port, now, implementation=impl)
        if mode == MODE_CONTROL:
            packet = decode_mode6(data)
            if packet.response or packet.opcode != CTL_OP_READVAR:
                return None
            return self.respond_version(src_ip, src_port, now)
        if mode == MODE_CLIENT:
            decode_mode3_or_4(data)
            return self.respond_time(src_ip, src_port, now)
        return None

    # -- sizing helpers -----------------------------------------------------------

    def monlist_reply_size(self, now, implementation=IMPL_XNTPD):
        """(packets, payload bytes, on-wire bytes) of a monlist reply *now*,
        without mutating the table.  Used for attack-volume accounting."""
        if not self.config.monlist_enabled or implementation not in self.config.implementations:
            return (0, 0, 0)
        entry_version = _ENTRY_VERSION_OF_IMPL[implementation]
        packets = self.table.render_response_packets(now, entry_version, implementation)
        loop = self.config.loop_factor
        payload = sum(len(p) for p in packets)
        wire = sum(on_wire_bytes(len(p)) for p in packets)
        return (len(packets) * loop, payload * loop, wire * loop)
