#!/usr/bin/env python
"""Quickstart: build a small paper world and reproduce the headline findings.

Runs the full pipeline — world simulation, the five measurement datasets,
and the analysis — at a small scale, then prints the study's headline
numbers next to the paper's.

Usage::

    python examples/quickstart.py [scale] [seed]

Default scale 0.001 builds in well under a minute.
"""

import sys

from repro import PaperWorld
from repro.analysis import (
    amplifier_counts,
    analyze_dataset,
    churn_report,
    parse_sample,
    peak_traffic_date,
    sample_baf_boxplot,
    version_sample_baf_boxplot,
)
from repro.attack import ONP_PROBER_IP
from repro.util import format_sim


def main():
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.001
    seed = int(sys.argv[2]) if len(sys.argv) > 2 else 2014
    print(f"Building world (seed={seed}, scale={scale}) ...")
    world = PaperWorld.build(seed=seed, scale=scale, quiet=False)

    print("\n=== The rise and decline of NTP DDoS ===")
    daily = world.arbor.daily
    nov = max(d.ntp_fraction for d in daily[:20])
    peak = max(d.ntp_fraction for d in daily)
    print(f"NTP fraction of Internet traffic: Nov={nov:.2e}  peak={peak:.2e}")
    print(f"  (paper: ~1e-5 rising ~3 orders of magnitude to ~1e-2)")
    print(f"Peak date: {peak_traffic_date(world.arbor)}  (paper: 2014-02-11)")

    parsed = [parse_sample(s) for s in world.onp.monlist_samples]
    rows = amplifier_counts(parsed, world.table, world.pbl)
    print(f"\nAmplifier pool: {rows[0].ips} -> {rows[-1].ips} "
          f"({100 * (1 - rows[-1].ips / rows[0].ips):.0f}% remediated; paper: 92%)")
    churn = churn_report(parsed)
    print(f"Unique amplifier IPs over 15 weeks: {churn.total_unique} "
          f"(first sample held {100 * churn.first_sample_share:.0f}%; paper: ~60%)")

    box = sample_baf_boxplot(parsed[0])
    vbox = version_sample_baf_boxplot(world.onp.version_samples[0])
    print(f"\nmonlist BAF (first sample): median {box.median:.1f}x, Q3 {box.q3:.1f}x, "
          f"max {box.maximum:.1e}x  (paper: ~4.3x / ~15x / up to 1e9x)")
    print(f"version BAF: {vbox.q1:.1f}/{vbox.median:.1f}/{vbox.q3:.1f} "
          f"(paper: 3.5/4.6/6.9)")

    report = analyze_dataset(parsed, onp_ip=ONP_PROBER_IP)
    victims = report.all_victim_ips()
    packets = report.total_attack_packets()
    print(f"\nVictims observed through the monlist lens: {len(victims)} "
          f"(full-scale equivalent ~{int(len(victims) / scale):,}; paper: 437K)")
    print(f"Attack packets observed: {packets:.2e} "
          f"(~{report.total_attack_bytes() / 1e12:.1f} TB at the 420 B median packet)")
    print(f"View-window undersampling factor: {report.undersampling_factor():.1f}x (paper: 3.8x)")

    print("\nTop attacked ports:")
    for port, fraction in report.port_table(top=8):
        print(f"  {port:>6}: {fraction:.3f}")
    print("(paper: 80 and 123 on top, game ports prominent)")


if __name__ == "__main__":
    main()
