"""Spamhaus Policy Block List (PBL) stand-in.

The paper labels IPs as "end hosts" when they appear on the Spamhaus PBL,
which lists address space that policy says should not emit direct traffic —
overwhelmingly residential/dynamic pools.  Our stand-in lists:

* every prefix of every residential AS, and
* per-AS "dynamic pool" sub-ranges inside education and enterprise networks
  (universities and offices also have workstation pools).

Lookup semantics mirror the real PBL: an IP either is or is not covered.
"""

from repro.net.asn import NetworkKind
from repro.net.ipv4 import Prefix
from repro.net.trie import PrefixTrie

__all__ = ["PolicyBlockList"]

#: Fraction of each education/enterprise prefix listed as a dynamic pool.
_WORKSTATION_POOL_FRACTION = {
    NetworkKind.EDUCATION: 0.50,
    NetworkKind.ENTERPRISE: 0.25,
}


class PolicyBlockList:
    """End-host (residential/dynamic) address labeling."""

    def __init__(self, registry):
        self._trie = PrefixTrie()
        self._n_listed = 0
        for system in registry:
            if system.kind == NetworkKind.RESIDENTIAL:
                for prefix in system.prefixes:
                    self._list(prefix)
            elif system.kind in _WORKSTATION_POOL_FRACTION:
                fraction = _WORKSTATION_POOL_FRACTION[system.kind]
                for prefix in system.prefixes:
                    self._list_leading_fraction(prefix, fraction)

    def _list(self, prefix):
        self._trie.insert(prefix, True)
        self._n_listed += 1

    def _list_leading_fraction(self, prefix, fraction):
        """List the leading ``fraction`` of a prefix, as aligned sub-prefixes.

        A deterministic convention ("low half of the prefix is the dynamic
        pool") keeps the labeling reproducible without extra state; host
        generators elsewhere honor the same convention when they need to
        place a server vs. a workstation.
        """
        if fraction <= 0:
            return
        remaining = int(prefix.n_addresses * fraction)
        cursor = prefix.network
        length = prefix.length
        while remaining > 0 and length <= 32:
            size = 1 << (32 - length)
            if size <= remaining and cursor % size == 0:
                self._list(Prefix(cursor, length))
                cursor += size
                remaining -= size
            else:
                length += 1

    @property
    def n_listed_prefixes(self):
        return self._n_listed

    def is_end_host(self, ip):
        """True when ``ip`` is inside listed (end-host) space."""
        return self._trie.lookup(ip) is not None

    def end_host_count(self, ips):
        """How many of the given IPs are end hosts (Table 1's columns)."""
        return sum(1 for ip in ips if self.is_end_host(ip))

    def end_host_fraction(self, ips):
        """Fraction of the given IPs on the list; 0 for an empty input."""
        ips = list(ips)
        if not ips:
            return 0.0
        return self.end_host_count(ips) / len(ips)
