"""Tests for the ONP prober and its dataset (using the shared world)."""

import pytest

from repro.measurement import MONLIST_SAMPLE_TIMES, VERSION_SAMPLE_TIMES
from repro.ntp import decode_mode6, decode_mode7
from repro.util import date_to_sim, format_sim


def test_sample_schedule():
    assert len(MONLIST_SAMPLE_TIMES) == 15
    assert len(VERSION_SAMPLE_TIMES) == 9
    assert format_sim(MONLIST_SAMPLE_TIMES[0]) == "2014-01-10"
    assert format_sim(VERSION_SAMPLE_TIMES[0]) == "2014-02-21"
    assert format_sim(MONLIST_SAMPLE_TIMES[-1]) == format_sim(VERSION_SAMPLE_TIMES[-1])


def test_monlist_sample_counts_decline(world):
    counts = [len(s) for s in world.onp.monlist_samples]
    assert len(counts) == 15
    assert counts[0] > 4 * counts[-1]  # remediation visible
    assert counts[-1] > 0


def test_version_sample_counts_stable(world):
    counts = [len(s) for s in world.onp.version_samples]
    assert len(counts) == 9
    assert counts[-1] > 0.7 * counts[0]


def test_version_pool_larger_than_monlist_pool(world):
    last_monlist = world.onp.monlist_samples[-1]
    last_version = world.onp.version_samples[-1]
    assert len(last_version) > 3 * len(last_monlist)


def test_monlist_captures_decode(world):
    sample = world.onp.monlist_samples[0]
    for capture in sample.captures[:50]:
        for raw in capture.packets:
            packet = decode_mode7(raw)
            assert packet.response
            assert packet.item_size in (0, 32, 72)


def test_version_captures_decode(world):
    sample = world.onp.version_samples[0]
    for capture in sample.captures[:50]:
        packet = decode_mode6(sample.captures[0].packets[0])
        assert packet.response
        assert b"version=" in packet.data


def test_responders_only_answer_probed_implementation(world):
    """v1-only amplifiers never appear in the (IMPL_XNTPD) monlist data."""
    from repro.ntp.constants import IMPL_XNTPD

    observed = world.onp.monlist_unique_ips()
    v1_only = {
        h.ip
        for h in world.hosts.monlist_hosts
        if not h.answers_implementation(IMPL_XNTPD)
    }
    assert not (observed & v1_only)


def test_remediated_hosts_stop_responding(world):
    t_last = world.onp.monlist_samples[-1].t
    for capture in world.onp.monlist_samples[-1].captures[:200]:
        host = next(h for h in world.hosts.monlist_hosts if h.ip == capture.target_ip)
        assert host.monlist_active(t_last)


def test_mega_replies_not_materialized(world):
    sample = world.onp.monlist_samples[0]
    megas = [c for c in sample.captures if c.n_repeats > 1]
    assert megas, "mega amplifiers should answer the first sample"
    biggest = max(megas, key=lambda c: c.total_payload_bytes)
    assert biggest.total_payload_bytes > 1e9  # a giga amplifier
    assert len(biggest.packets) <= 100  # stored once, repeated arithmetically


def test_probe_recorded_in_tables(world):
    """The ONP IP tops tables (Table 3a's first row) with weekly cadence."""
    from repro.analysis import reconstruct_table
    from repro.attack import ONP_PROBER_IP

    sample = world.onp.monlist_samples[5]
    seen = 0
    for capture in sample.captures[:100]:
        table = reconstruct_table(capture)
        entries = {e.addr: e for e in table.entries}
        if ONP_PROBER_IP in entries:
            seen += 1
            entry = entries[ONP_PROBER_IP]
            assert entry.mode == 7
            assert entry.count >= 1
    assert seen > 50
