"""Streaming-vs-batch conformance: the heart of the stream package.

End-of-window streaming aggregates must equal the batch
``AnalysisContext`` answers — exactly for counts, within declared bounds
for sketches — on clean worlds across two seeds and two scales, and on
fault-injected worlds with every dropped/late record accounted (the
ParseStats discipline, extended to the stream).

The checks run through the registered ``world.streaming_matches_batch``
invariant itself (not a private re-implementation), so what CI's verify
job enforces and what this suite enforces are the same code path.
"""

import pytest

from repro.faults import resolve_fault_profile
from repro.scenario.world import PaperWorld, WorldParams
from repro.verify.invariants import REGISTRY
from repro.verify.runner import Cell, WorldRecord

SEEDS = (7, 2014)
SCALES = (0.0003, 0.0005)

# (seed, scale, fault) cells: clean across both seeds and both scales,
# plus both fault presets on one cell each.
MATRIX = [(seed, scale, "clean") for seed in SEEDS for scale in SCALES] + [
    (7, 0.0003, "paper"),
    (7, 0.0003, "hostile"),
]


@pytest.fixture(scope="module")
def records():
    """Built worlds for the conformance matrix, shared across tests."""
    out = {}
    for seed, scale, fault in MATRIX:
        params = WorldParams(
            seed=seed, scale=scale, faults=resolve_fault_profile(fault)
        )
        world = PaperWorld.build(seed=seed, scale=scale, params=params)
        out[(seed, scale, fault)] = WorldRecord(
            Cell(seed=seed, scale=scale, fault_name=fault), world
        )
    return out


@pytest.fixture(scope="module")
def invariant():
    inv = REGISTRY["world.streaming_matches_batch"]
    assert inv.scope == "world"
    return inv


@pytest.mark.parametrize("cell", MATRIX, ids=lambda c: f"seed{c[0]}-s{c[1]}-{c[2]}")
def test_streaming_matches_batch(records, invariant, cell):
    result = invariant.check(records[cell], invariant.tolerance)
    assert result is not None, "the invariant must never skip a built world"
    assert result["violations"] == []
    assert result["measured"]["records"] > 0
    assert result["measured"]["capture_windows"] > 0


@pytest.mark.parametrize("fault", ["paper", "hostile"])
def test_fault_drift_is_fully_accounted(records, fault):
    """Under injected faults the stream sees degraded data — but the
    degradation must reconcile: summed streaming ParseStats equal the
    quality report's (which the quality invariant ties to the injection
    log), and the replay ledger balances with nothing unexplained."""
    from repro.stream import StreamEngine, replay_plan, replay_records

    record = records[(7, 0.0003, fault)]
    world = record.world
    assert world.fault_log is not None and world.fault_log.total > 0, (
        "fault profile never fired; the drift test is vacuous"
    )
    plan = replay_plan(world)
    engine = StreamEngine.for_world(world, plan=plan)
    engine.ingest_many(replay_records(world))
    engine.close()

    assert engine.balanced
    ingest = engine.query_ingest()
    for kind, acc in ingest["kinds"].items():
        assert acc["total"] == acc["applied"] + acc["late"] + acc["duplicate"]
        assert acc["total"] == plan["expected"][kind]

    quality_stats = record.quality().monlist_stats
    streamed = engine.query_parse_stats()
    for name, value in streamed.items():
        assert value == getattr(quality_stats, name), name
    # The faults left parse evidence the stream must have carried through.
    clean_record = records[(7, 0.0003, "clean")]
    assert engine.records_seen != 0
    assert streamed["captures_total"] <= clean_record.quality().monlist_stats.captures_total


def test_streaming_answers_are_deterministic(records):
    """Two engines fed the same replay agree on every byte that matters —
    the determinism contract the batch pipeline holds at any --jobs."""
    from repro.stream import StreamEngine, replay_plan, replay_records

    world = records[(7, 0.0003, "clean")].world
    plan = replay_plan(world)
    engines = []
    for _ in range(2):
        engine = StreamEngine.for_world(world, plan=plan)
        engine.ingest_many(replay_records(world))
        engine.close()
        engines.append(engine)
    a, b = engines
    assert a.query("victims") == b.query("victims")
    assert a.query("scanners") == b.query("scanners")
    assert a.query_parse_stats() == b.query_parse_stats()
    for name in a.sketches:
        assert a.sketches[name]["cm"] == b.sketches[name]["cm"]
        assert a.sketches[name]["topk"] == b.sketches[name]["topk"]


def test_mid_window_answers_without_reparse(records):
    """Stopping mid-stream still yields a consistent open-window view:
    the Fig 7-style query answers from partial state, and parse-call
    accounting shows the engine never re-reads what it already ingested."""
    from repro.stream import StreamEngine, replay_plan, replay_records

    world = records[(7, 0.0003, "clean")].world
    plan = replay_plan(world)
    engine = StreamEngine.for_world(world, plan=plan)
    stream = iter(replay_records(world))
    half = plan["expected_total"] // 2
    for _ in range(half):
        engine.ingest(next(stream))

    # No close(): the mid-window answer reads open windows in place.
    view = engine.query("victims")
    assert any(row["open"] for row in view["windows"])
    total_pairs = sum(row["victim_pairs"] for row in view["windows"])
    assert total_pairs == engine.totals["victim_pairs"]
    before = engine.query_parse_stats()["captures_total"]

    # Querying again must not consume more stream or re-parse anything.
    again = engine.query("victims")
    assert again == view
    assert engine.query_parse_stats()["captures_total"] == before
    assert engine.records_seen == half
