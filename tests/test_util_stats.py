"""Tests for statistics helpers."""

import math

import pytest

from repro.util import Ecdf, boxplot_summary, percentile, rank_series, safe_ratio
from repro.util.stats import log_center_bins


def test_percentile_basic():
    assert percentile([1, 2, 3, 4, 5], 50) == 3.0


def test_percentile_empty_is_nan():
    assert math.isnan(percentile([], 50))


def test_boxplot_summary_five_numbers():
    s = boxplot_summary(range(1, 101))
    assert s.minimum == 1.0
    assert s.maximum == 100.0
    assert 49 <= s.median <= 52
    assert 24 <= s.q1 <= 27
    assert 74 <= s.q3 <= 77
    assert s.count == 100
    assert s.as_tuple()[0] == s.minimum


def test_boxplot_summary_rejects_empty():
    with pytest.raises(ValueError):
        boxplot_summary([])


def test_ecdf_top_k_fraction():
    ecdf = Ecdf([50, 30, 10, 5, 5])
    assert ecdf.fraction_within_top(1) == pytest.approx(0.5)
    assert ecdf.fraction_within_top(2) == pytest.approx(0.8)
    assert ecdf.fraction_within_top(100) == pytest.approx(1.0)
    assert ecdf.fraction_within_top(0) == 0.0
    assert ecdf.n_items == 5


def test_ecdf_series_monotone():
    series = Ecdf([3, 1, 4, 1, 5]).series()
    fracs = [f for _, f in series]
    assert fracs == sorted(fracs)
    assert fracs[-1] == pytest.approx(1.0)


def test_ecdf_rejects_bad_input():
    with pytest.raises(ValueError):
        Ecdf([])
    with pytest.raises(ValueError):
        Ecdf([0, 0])
    with pytest.raises(ValueError):
        Ecdf([1, -1])


def test_rank_series_descending():
    series = rank_series([10, 30, 20])
    assert series == [(1, 30.0), (2, 20.0), (3, 10.0)]


def test_safe_ratio():
    assert safe_ratio(1, 2) == 0.5
    assert safe_ratio(1, 0) == 0.0


def test_log_center_bins():
    bins = log_center_bins(1.0, 1000.0, per_decade=2)
    assert bins[0] == pytest.approx(1.0)
    assert bins[-1] == pytest.approx(1000.0)
    assert all(b2 > b1 for b1, b2 in zip(bins, bins[1:]))
    with pytest.raises(ValueError):
        log_center_bins(0.0, 10.0)
