"""The open-DNS-resolver comparison pool (§6.2, Fig. 10).

The paper contrasts monlist remediation (92% in ~10 weeks) against open DNS
resolvers, whose pool (33.9M at peak) "has not decreased much in relative
terms" in the year since the OpenResolverProject began publicizing counts.
We never materialize 33.9M hosts — the figure only needs the weekly count
series and the small intersection with the monlist pool, so this module is
analytic: a survival curve plus measurement noise.
"""

from dataclasses import dataclass

from repro.population.remediation import dns_survival_curve
from repro.util.simtime import WEEK, date_to_sim

__all__ = ["DnsResolverPool", "DNS_PEAK_FULL", "DNS_PUBLICITY_START"]

#: Peak open-resolver count (Fig. 10 caption).
DNS_PEAK_FULL = 33_900_000

#: The OpenResolverProject began publicizing counts roughly a year before
#: the NTP effort.
DNS_PUBLICITY_START = date_to_sim(2013, 3, 25)


@dataclass(frozen=True)
class DnsSample:
    """One weekly open-resolver census point."""

    t: float
    count: int


class DnsResolverPool:
    """Weekly open-resolver counts with survey noise.

    ``noise_sigma`` models collection/methodology wobble (the paper ablates
    a few artificially-low DNS samples caused by it).
    """

    def __init__(self, rng, scale=1.0, peak_full=DNS_PEAK_FULL, noise_sigma=0.015):
        self._curve = dns_survival_curve()
        self._rng = rng.child("dns-noise")
        self._peak = max(1000, int(peak_full * scale))
        self._noise_sigma = noise_sigma
        # Survey noise comes from a stateful stream, so each *distinct*
        # series request is memoized: re-rendering Fig 10 (in this process
        # or a forked render worker) must yield the bytes of the first
        # render, not a fresh draw.
        self._series_cache = {}

    @property
    def peak(self):
        return self._peak

    def count_at(self, t, noisy=True):
        """Pool size at time ``t`` (noise is deterministic per call order,
        so build full series via :meth:`weekly_series` for reproducibility)."""
        base = self._curve.value_at(t) * self._peak
        if not noisy:
            return int(base)
        wobble = 1.0 + self._noise_sigma * float(self._rng.normal())
        return max(0, int(base * wobble))

    def weekly_series(self, start=DNS_PUBLICITY_START, n_weeks=64, noisy=True):
        """``n_weeks`` weekly :class:`DnsSample` points from ``start``.

        Idempotent: repeated calls with the same arguments return the same
        (cached) series instead of consuming further noise draws.
        """
        if n_weeks < 1:
            raise ValueError("n_weeks must be >= 1")
        key = (start, n_weeks, noisy)
        series = self._series_cache.get(key)
        if series is None:
            series = [
                DnsSample(t=start + i * WEEK, count=self.count_at(start + i * WEEK, noisy=noisy))
                for i in range(n_weeks)
            ]
            self._series_cache[key] = series
        return series

    def overlap_with_monlist(self, monlist_hosts):
        """IPs shared between this pool and a monlist host collection.

        The overlap membership is carried on the hosts themselves
        (``also_dns_resolver``), assigned at pool build time with the
        §6.2-calibrated probability.
        """
        return {h.ip for h in monlist_hosts if h.also_dns_resolver}
