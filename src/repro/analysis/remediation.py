"""Remediation analyses (§3.1's Figure 3, §6's subgroup rates and Fig. 10).

Everything here consumes *observed* data — the weekly sets of responding
amplifier IPs — never the world's ground truth.
"""

from dataclasses import dataclass, field

from repro.net.routing import aggregate_counts
from repro.util.simtime import WEEK

__all__ = [
    "AmplifierCountRow",
    "amplifier_counts",
    "subset_counts",
    "SubgroupReduction",
    "subgroup_reductions",
    "continent_remediation",
    "pool_relative_to_peak",
    "overlap_with_dns",
]


@dataclass(frozen=True)
class AmplifierCountRow:
    """One Figure-3 / Table-1 (left half) row."""

    t: float
    ips: int
    slash24s: int
    blocks: int
    asns: int
    end_hosts: int
    end_host_fraction: float
    ips_per_block: float
    #: True when the week's sweep never ran — the zeros in this row are an
    #: apparatus gap, not a remediated-to-nothing pool.
    outage: bool = False


def amplifier_counts(parsed_samples, table, pbl):
    """Figure 3 / Table 1 left half: per-sample aggregation levels."""
    rows = []
    for parsed in parsed_samples:
        ips = parsed.amplifier_ips()
        agg = aggregate_counts(ips, table)
        end_hosts = pbl.end_host_count(ips)
        rows.append(
            AmplifierCountRow(
                t=parsed.t,
                ips=agg.ips,
                slash24s=agg.slash24s,
                blocks=agg.blocks,
                asns=agg.asns,
                end_hosts=end_hosts,
                end_host_fraction=end_hosts / agg.ips if agg.ips else 0.0,
                ips_per_block=agg.ips_per_block,
                outage=getattr(parsed, "outage", False),
            )
        )
    return rows


def subset_counts(parsed_samples, prefixes):
    """Figure 3's Merit/FRGP lines: per-sample amplifier IPs inside the
    given prefixes."""
    rows = []
    for parsed in parsed_samples:
        count = sum(
            1 for ip in parsed.amplifier_ips() if any(p.contains(ip) for p in prefixes)
        )
        rows.append((parsed.t, count))
    return rows


@dataclass(frozen=True)
class SubgroupReduction:
    """§6.1's network-level reduction percentages."""

    level: str
    initial: int
    final: int

    @property
    def reduction(self):
        if self.initial == 0:
            return 0.0
        return 1.0 - self.final / self.initial


def subgroup_reductions(first_row, last_row):
    """§6.1: reduction is steepest at IP level and shallower at each
    aggregation level (IP 92% > /24 72% > routed 59% > AS 55%)."""
    return [
        SubgroupReduction("ip", first_row.ips, last_row.ips),
        SubgroupReduction("slash24", first_row.slash24s, last_row.slash24s),
        SubgroupReduction("block", first_row.blocks, last_row.blocks),
        SubgroupReduction("asn", first_row.asns, last_row.asns),
    ]


def continent_remediation(first_sample, last_sample, table):
    """§6.1's regional axis: {continent: fraction remediated}."""
    def by_continent(parsed):
        counts = {}
        for ip in parsed.amplifier_ips():
            continent = table.continent_of(ip)
            if continent is not None:
                counts[continent] = counts.get(continent, 0) + 1
        return counts

    first = by_continent(first_sample)
    last = by_continent(last_sample)
    out = {}
    for continent, initial in first.items():
        remaining = last.get(continent, 0)
        out[continent] = 1.0 - remaining / initial if initial else 0.0
    return out


def pool_relative_to_peak(series):
    """Normalize a pool-size series to its peak: [(t, fraction of peak)].

    Figure 10 plots these for the monlist, version, and DNS pools against
    weeks since each effort's publicity began.
    """
    values = [count for _, count in series]
    if not values:
        return []
    peak = max(values)
    if peak == 0:
        return [(t, 0.0) for t, _ in series]
    return [(t, count / peak) for t, count in series]


def weeks_since(series, start):
    """Re-index a [(t, value)] series to weeks since ``start``."""
    return [((t - start) / WEEK, value) for t, value in series]


def overlap_with_dns(monlist_ips, dns_overlap_ips):
    """§6.2: |monlist ∩ DNS| and the fraction of the monlist pool."""
    inter = set(monlist_ips) & set(dns_overlap_ips)
    if not monlist_ips:
        return 0, 0.0
    return len(inter), len(inter) / len(set(monlist_ips))
