"""Tests for the OS / stratum / compile-year models."""

import pytest

from repro.population import (
    OS_ALL_NTP,
    OS_AMPLIFIERS,
    OS_MEGA,
    STRATUM16_FRACTION,
    sample_system_attributes,
)
from repro.util import RngStream


@pytest.fixture(scope="module")
def samples():
    rng = RngStream(1, "os")
    return {
        pop: sample_system_attributes(rng.child(pop), 6000, population=pop)
        for pop in ("all", "amplifier", "mega")
    }


def _family_fraction(attrs, family):
    return sum(1 for a in attrs if a.os_family == family) / len(attrs)


def test_distributions_sum_to_one():
    for dist in (OS_ALL_NTP, OS_AMPLIFIERS, OS_MEGA):
        assert sum(dist.values()) == pytest.approx(1.0, abs=0.01)


def test_all_ntp_dominated_by_cisco(samples):
    attrs = samples["all"]
    assert _family_fraction(attrs, "cisco") == pytest.approx(0.484, abs=0.04)
    assert _family_fraction(attrs, "unix") == pytest.approx(0.306, abs=0.04)


def test_amplifiers_dominated_by_linux(samples):
    attrs = samples["amplifier"]
    assert _family_fraction(attrs, "linux") == pytest.approx(0.802, abs=0.04)
    assert _family_fraction(attrs, "cisco") < 0.02


def test_mega_split_linux_junos(samples):
    attrs = samples["mega"]
    assert _family_fraction(attrs, "linux") == pytest.approx(0.442, abs=0.05)
    assert _family_fraction(attrs, "junos") == pytest.approx(0.359, abs=0.05)
    # cygwin appears only in the mega pool.
    assert _family_fraction(attrs, "cygwin") > 0.02
    assert _family_fraction(samples["all"], "cygwin") == 0.0


def test_stratum16_fraction(samples):
    for attrs in samples.values():
        frac = sum(1 for a in attrs if a.stratum == 16) / len(attrs)
        assert frac == pytest.approx(STRATUM16_FRACTION, abs=0.03)


def test_compile_year_cdf(samples):
    years = [a.compile_year for a in samples["all"]]
    n = len(years)
    assert sum(1 for y in years if y < 2004) / n == pytest.approx(0.13, abs=0.03)
    assert sum(1 for y in years if y < 2012) / n == pytest.approx(0.59, abs=0.04)
    assert sum(1 for y in years if y >= 2013) / n == pytest.approx(0.21, abs=0.04)


def test_attributes_complete(samples):
    for attrs in samples.values():
        for a in attrs[:200]:
            assert a.system
            assert a.processor
            assert a.daemon_version
            assert 1 <= a.stratum <= 16


def test_unknown_population_rejected():
    with pytest.raises(ValueError):
        sample_system_attributes(RngStream(1, "x"), 10, population="bogus")


def test_reproducible():
    a = sample_system_attributes(RngStream(3, "s"), 50)
    b = sample_system_attributes(RngStream(3, "s"), 50)
    assert a == b
