"""Load generator: N concurrent simulated clients against the service.

``repro bench-serve`` runs the whole exercise in one process: the service
(ingesting a world's replay in the background) plus ``clients`` coroutine
clients, each issuing ``requests`` HTTP queries drawn round-robin from a
representative mix.  Latency is measured per request from send to parsed
JSON body, so the numbers include the loop-scheduling cost a real client
would pay while ingestion competes for the loop.

Clients hold one **keep-alive** connection each (Content-Length framed
HTTP/1.1), reconnecting only when the server closes it; ``--no-keepalive``
falls back to a fresh connection per request so the handshake tax stays
measurable.  The result reports connections opened next to requests
served — with keep-alive the ratio should be ~one per client.

The result dict is the BENCH_serve.json payload: queries/sec, ingest
records/sec, p50/p95/max latency, error counts, plus whatever ingest
accounting the engine reports at the end — the CLI layer adds provenance
and peak RSS, keeping this module importable without the CLI.
"""

from __future__ import annotations

import asyncio
import json
import time

from repro.stream.service import StreamService
from repro.util.stats import percentile

__all__ = ["DEFAULT_QUERY_MIX", "run_loadgen"]

#: Round-robin request mix: windowed reads, sketch reads, accounting.
DEFAULT_QUERY_MIX = (
    "/query/victims",
    "/query/top_victims?n=10",
    "/query/scanners",
    "/query/top_ases?n=5",
    "/query/traffic",
    "/query/ingest",
    "/health",
)


async def _read_response(reader):
    """One framed HTTP response: (status, keep_alive, parsed body).

    The whole head arrives in one server write, so one ``readuntil``
    takes it in a single loop wake-up instead of one per header line.
    """
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            raise ConnectionResetError("server closed connection") from exc
        head = exc.partial
    status_line, _, header_blob = head.partition(b"\r\n")
    status = int(status_line.split(None, 2)[1])
    length = None
    keep = status_line.split(None, 1)[0].upper() == b"HTTP/1.1"
    for line in header_blob.split(b"\r\n"):
        header = line.decode("latin-1", "replace").strip().lower()
        if header.startswith("content-length:"):
            length = int(header.split(":", 1)[1])
        elif header.startswith("connection:"):
            keep = header.split(":", 1)[1].strip() == "keep-alive"
    body = await reader.readexactly(length) if length is not None else await reader.read()
    return status, keep, json.loads(body)


async def _fetch(host, port, target):
    """One-shot HTTP/1.0 GET; returns (status, parsed body)."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        writer.write(f"GET {target} HTTP/1.0\r\nHost: {host}\r\n\r\n".encode())
        await writer.drain()
        status, _keep, body = await _read_response(reader)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass
    return status, body


class _Client:
    """One simulated client: a persistent connection when keep-alive is
    on, a fresh connection per request otherwise."""

    def __init__(self, host, port, keepalive):
        self.host = host
        self.port = port
        self.keepalive = keepalive
        self.connections_opened = 0
        self._reader = None
        self._writer = None

    async def _connect(self):
        self._reader, self._writer = await asyncio.open_connection(self.host, self.port)
        self.connections_opened += 1

    async def close(self):
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
            self._reader = self._writer = None

    async def fetch(self, target):
        if not self.keepalive:
            self.connections_opened += 1
            return await _fetch(self.host, self.port, target)
        if self._writer is None:
            await self._connect()
        request = (
            f"GET {target} HTTP/1.1\r\nHost: {self.host}\r\n"
            "Connection: keep-alive\r\n\r\n"
        ).encode()
        try:
            self._writer.write(request)
            await self._writer.drain()
            status, keep, body = await _read_response(self._reader)
        except (ConnectionResetError, BrokenPipeError, asyncio.IncompleteReadError):
            # The server closed the idle connection (e.g. drain); one
            # reconnect attempt, then let the caller count the error.
            await self.close()
            await self._connect()
            self._writer.write(request)
            await self._writer.drain()
            status, keep, body = await _read_response(self._reader)
        if not keep:
            await self.close()
        return status, body


async def _run_client(client, targets, latencies, errors):
    try:
        for target in targets:
            started = time.monotonic()
            try:
                status, _body = await client.fetch(target)
            except (OSError, ValueError, json.JSONDecodeError, asyncio.IncompleteReadError):
                errors.append(target)
                continue
            latencies.append(time.monotonic() - started)
            if status != 200:
                errors.append(target)
    finally:
        await client.close()


async def _run(world, clients, requests, mix, batch, pace, skew, shards, keepalive):
    from repro.stream.ingest import StreamEngine
    from repro.stream.partition import ShardedStream
    from repro.stream.replay import replay_plan, replay_records

    plan = replay_plan(world)
    if shards > 1:
        engine = ShardedStream.for_world(world, shards=shards, skew=skew)
        records = () if engine.drives_ingest else replay_records(world)
    else:
        engine = StreamEngine.for_world(world, plan=plan, skew=skew)
        records = replay_records(world)
    service = StreamService(
        engine, records, batch=batch, pace=pace, keepalive=keepalive
    )
    await service.start()
    latencies, errors = [], []
    fleet = [_Client(service.host, service.port, keepalive) for _ in range(clients)]
    started = time.monotonic()
    try:
        tasks = []
        for c, client in enumerate(fleet):
            targets = [mix[(c + i) % len(mix)] for i in range(requests)]
            tasks.append(
                asyncio.create_task(_run_client(client, targets, latencies, errors))
            )
        await asyncio.gather(*tasks)
        query_seconds = time.monotonic() - started
        # Let ingestion finish so records/sec covers the whole stream.
        while not service.ingest_done:
            await asyncio.sleep(0.01)
    finally:
        service.request_shutdown()
        await service.stop()

    total_requests = clients * requests
    ok = len(latencies)
    lat_ms = sorted(x * 1000.0 for x in latencies)
    result = {
        "clients": clients,
        "requests_per_client": requests,
        "requests_total": total_requests,
        "requests_ok": ok,
        "requests_failed": len(errors),
        "query_mix": list(mix),
        "keepalive": keepalive,
        "connections": {
            "opened_by_clients": sum(c.connections_opened for c in fleet),
            "accepted_by_service": service.connections_opened,
            "requests_served": service.requests_served,
        },
        "response_cache": {
            "hits": service.cache_hits,
            "misses": service.cache_misses,
        },
        "queries_per_second": round(ok / query_seconds, 2) if query_seconds else 0.0,
        "latency_ms": {
            "p50": round(percentile(lat_ms, 50), 3) if lat_ms else None,
            "p95": round(percentile(lat_ms, 95), 3) if lat_ms else None,
            "max": round(lat_ms[-1], 3) if lat_ms else None,
        },
        "ingest": {
            "records": engine.records_seen,
            "expected": plan["expected_total"],
            "seconds": round(service.ingest_seconds, 4),
            "records_per_second": round(
                engine.records_seen / service.ingest_seconds, 2
            )
            if service.ingest_seconds
            else 0.0,
            "done": service.ingest_done,
            "balanced": engine.balanced,
            "batch": batch,
            "pace": pace,
        },
    }
    pool_info = getattr(engine, "pool_info", None)
    if pool_info is not None:
        result["shards"] = pool_info
    shutdown = getattr(engine, "shutdown", None)
    if shutdown is not None:
        shutdown()
    return result


def run_loadgen(
    world,
    clients=8,
    requests=25,
    mix=DEFAULT_QUERY_MIX,
    batch=256,
    pace=0.0,
    skew=0.0,
    shards=1,
    keepalive=True,
):
    """Run the in-process service + client fleet; return the BENCH payload."""
    if clients < 1 or requests < 1:
        raise ValueError("clients and requests must be >= 1")
    return asyncio.run(
        _run(world, clients, requests, tuple(mix), batch, pace, skew, shards, keepalive)
    )
