"""Tests for the longest-prefix-match trie."""

import pytest
from hypothesis import given, strategies as st

from repro.net import Prefix, PrefixTrie, parse_ip
from tests.strategies import ips, prefixes


def test_empty_trie():
    trie = PrefixTrie()
    assert len(trie) == 0
    assert trie.lookup(parse_ip("1.2.3.4")) is None


def test_exact_and_lpm_lookup():
    trie = PrefixTrie()
    trie.insert(Prefix.parse("10.0.0.0/8"), "eight")
    trie.insert(Prefix.parse("10.1.0.0/16"), "sixteen")
    assert trie.lookup(parse_ip("10.1.2.3")) == "sixteen"
    assert trie.lookup(parse_ip("10.2.2.3")) == "eight"
    assert trie.lookup(parse_ip("11.0.0.0")) is None
    assert trie.lookup_exact(Prefix.parse("10.0.0.0/8")) == "eight"
    assert trie.lookup_exact(Prefix.parse("10.0.0.0/9")) is None


def test_insert_replaces():
    trie = PrefixTrie()
    p = Prefix.parse("10.0.0.0/8")
    trie.insert(p, 1)
    trie.insert(p, 2)
    assert len(trie) == 1
    assert trie.lookup_exact(p) == 2


def test_default_route():
    trie = PrefixTrie()
    trie.insert(Prefix(0, 0), "default")
    trie.insert(Prefix.parse("10.0.0.0/8"), "ten")
    assert trie.lookup(parse_ip("1.1.1.1")) == "default"
    assert trie.lookup(parse_ip("10.1.1.1")) == "ten"


def test_contains():
    trie = PrefixTrie()
    p = Prefix.parse("10.0.0.0/8")
    assert p not in trie
    trie.insert(p, True)
    assert p in trie


def test_insert_requires_prefix():
    with pytest.raises(TypeError):
        PrefixTrie().insert("10.0.0.0/8", 1)


def test_items_sorted():
    trie = PrefixTrie()
    prefixes = [Prefix.parse(s) for s in ("20.0.0.0/8", "10.0.0.0/8", "10.128.0.0/9")]
    for i, p in enumerate(prefixes):
        trie.insert(p, i)
    items = trie.items()
    assert [str(p) for p, _ in items] == ["10.0.0.0/8", "10.128.0.0/9", "20.0.0.0/8"]


@given(st.lists(prefixes, min_size=1, max_size=30), ips)
def test_lpm_matches_linear_scan(prefixes, ip):
    """Property: trie LPM equals a brute-force longest-match scan."""
    trie = PrefixTrie()
    table = {}
    for p in prefixes:
        trie.insert(p, str(p))
        table[p] = str(p)
    expected = None
    best_len = -1
    for p, v in table.items():
        if p.contains(ip) and p.length > best_len:
            expected, best_len = v, p.length
    assert trie.lookup(ip) == expected
