"""Table 2 and §3.3: OS strings, stratum 16, and compile years.

Paper: the version-responding population at large is cisco-dominated
(48%/31%/19% cisco/unix/linux); monlist amplifiers are linux-dominated
(80%); mega amplifiers split linux/junos (44%/36%) with cygwin appearing
only there.  19% of version responders report stratum 16 (unsynchronized);
only 21% of builds were compiled in 2013-14 and 13% predate 2004.
"""

from repro.analysis import parse_version_captures
from repro.reporting import render_table2


def build_reports(world):
    captures = []
    for sample in world.onp.version_samples:
        captures.extend(sample.captures)
    report = parse_version_captures(captures)
    amplifier_ips = {h.ip for h in world.hosts.monlist_hosts}
    mega_ips = {h.ip for h in world.hosts.mega_hosts()}
    return (
        report,
        report.restrict_to(amplifier_ips),
        report.restrict_to(mega_ips),
        report.restrict_to({r.ip for r in report.records} - amplifier_ips),
    )


def test_table2_os_strings(benchmark, world):
    full, amplifiers, mega, non_amplifiers = benchmark(build_reports, world)

    # Non-amplifier (general) population: cisco-led, as in the right column.
    general = non_amplifiers.os_distribution()
    assert general.get("cisco", 0) > 0.35
    assert general.get("unix", 0) > 0.2

    # Amplifier subset: linux-dominated (middle column).
    amp_dist = amplifiers.os_distribution()
    assert amp_dist.get("linux", 0) > 0.5
    assert amp_dist.get("cisco", 0) < 0.1

    # Mega subset: linux + junos lead; cygwin exists only here.
    if len(mega) >= 5:
        mega_dist = mega.os_distribution()
        assert mega_dist.get("linux", 0) + mega_dist.get("junos", 0) > 0.4
        assert general.get("cygwin", 0) == 0.0

    # §3.3 extras.
    assert 0.12 < full.stratum16_fraction() < 0.27  # paper: 19%
    cdf = full.compile_year_cdf()
    assert 0.05 < cdf[2004] < 0.22  # paper: 13% pre-2004
    assert 0.45 < cdf[2012] < 0.72  # paper: 59% pre-2012

    print()
    print(
        render_table2(
            mega.os_distribution() if len(mega) else {},
            amp_dist,
            general,
        )
    )
    print(f"stratum16={full.stratum16_fraction():.2f}  year CDF={ {k: round(v, 2) for k, v in cdf.items()} }")
