#!/usr/bin/env python
"""Victim watch: who gets attacked, where, and on which ports (§4).

Builds a small world and works the victimology pipeline end-to-end,
printing the Table-4 port mix, the Figure-5 AS concentration, the OVH-like
campaign (§4.4), and the regional-ISP view of the same attacks (§7).

Usage::

    python examples/victim_watch.py [scale]
"""

import sys

from repro import PaperWorld
from repro.analysis import (
    analyze_dataset,
    as_concentration,
    parse_sample,
    top_amplifier_table,
    top_victim_table,
    ttl_forensics,
)
from repro.attack import ONP_PROBER_IP
from repro.reporting import render_table4, render_table5, render_table6


def main():
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.001
    world = PaperWorld.build(seed=77, scale=scale, quiet=False)
    parsed = [parse_sample(s) for s in world.onp.monlist_samples]
    report = analyze_dataset(parsed, onp_ip=ONP_PROBER_IP)

    print("\n" + render_table4(report.port_table(top=15)))

    concentration = as_concentration(report, world.table)
    ovh = world.registry.special["HOSTING-FR-1"]
    cdn = world.registry.special["CDN-MITIGATION"]
    print("\n=== Figure 5: AS concentration ===")
    n = len(concentration.victim_as_packets)
    for k in (1, 5, n // 10 or 1):
        frac = concentration.victim_ecdf.fraction_within_top(k)
        print(f"  top {k:>4} victim ASes hold {100 * frac:.0f}% of attack packets")
    print(f"  OVH-like hoster rank: {concentration.victim_as_rank(ovh.asn)} (paper: 1)")
    print(f"  CDN/mitigation firm rank: {concentration.victim_as_rank(cdn.asn)} (paper: 18)")

    print("\n=== §7: the view from the regional ISPs ===")
    merit = world.isp.sites["merit"]
    print(render_table5("Merit", top_amplifier_table(merit)))
    print()
    print(render_table6("Merit", top_victim_table(merit, world.table, world.geo)))

    forensics = ttl_forensics(world.sweeps, world.attacks, world.isp.sites["csu"].spec.asns)
    print(
        f"\nTTL forensics at CSU: scanning mode TTL {forensics.scan_ttl_mode} (Linux), "
        f"attack mode TTL {forensics.attack_ttl_mode} (Windows bots) — paper: 54 vs 109"
    )
    common = world.isp.common_victims("merit", "frgp")
    print(f"Victims seen at both Merit and FRGP: {len(common)} (paper: 291 at full scale)")


if __name__ == "__main__":
    main()
