"""Bounded-memory stream summaries: count-min and space-saving top-K.

Both structures follow the AMON playbook: heavy-hitter state that fits in
a few kilobytes regardless of stream length, with *declared* error bounds
the conformance harness can check against batch ground truth —

* :class:`CountMinSketch` over-estimates only: for any key,
  ``true <= estimate <= true + epsilon * total_weight`` with probability
  ``1 - delta`` (Cormode & Muthukrishnan's bound, ``width = ceil(e/eps)``,
  ``depth = ceil(ln(1/delta))``);
* :class:`SpaceSavingTopK` tracks at most ``capacity`` keys and reports a
  per-key over-estimate ``error``; any key whose true weight exceeds
  ``total_weight / capacity`` is guaranteed to be tracked.

Both merge: ``merge(a, b)`` is commutative and keeps the bounds additive
(the property tests in ``tests/test_stream_properties.py`` pin this).
Hashing is deterministic (BLAKE2b with a per-row salt) so two engines fed
the same stream agree byte-for-byte — the same determinism contract the
batch pipeline holds at any ``--jobs``.
"""

from __future__ import annotations

import hashlib
import math
import struct

__all__ = ["CountMinSketch", "SpaceSavingTopK"]

_KEY_PACK = struct.Struct(">q")


def _hash_row(key, salt):
    """Deterministic 64-bit hash of an int key under one row's salt."""
    digest = hashlib.blake2b(
        _KEY_PACK.pack(int(key)), digest_size=8, salt=salt
    ).digest()
    return int.from_bytes(digest, "big")


class CountMinSketch:
    """A count-min sketch over integer keys with numeric weights.

    ``estimate(key)`` never under-counts; the over-count is bounded by
    ``epsilon * total_weight`` with probability ``1 - delta``.  Weights
    may be ints (exact totals) or floats (byte volumes).
    """

    __slots__ = ("epsilon", "delta", "width", "depth", "rows", "total", "_salts")

    def __init__(self, epsilon=0.005, delta=0.01):
        if not 0.0 < epsilon < 1.0 or not 0.0 < delta < 1.0:
            raise ValueError("epsilon and delta must be in (0, 1)")
        self.epsilon = float(epsilon)
        self.delta = float(delta)
        self.width = max(1, math.ceil(math.e / epsilon))
        self.depth = max(1, math.ceil(math.log(1.0 / delta)))
        self.rows = [[0] * self.width for _ in range(self.depth)]
        self.total = 0
        self._salts = [b"cms-row-%02d" % d for d in range(self.depth)]

    def _cells(self, key):
        for d in range(self.depth):
            yield d, _hash_row(key, self._salts[d]) % self.width

    def add(self, key, weight=1):
        if weight < 0:
            raise ValueError("count-min supports non-negative weights only")
        for d, c in self._cells(key):
            self.rows[d][c] += weight
        self.total += weight

    def estimate(self, key):
        return min(self.rows[d][c] for d, c in self._cells(key))

    def error_bound(self):
        """The declared additive over-count ceiling at the current total."""
        return self.epsilon * self.total

    def compatible_with(self, other):
        return (
            isinstance(other, CountMinSketch)
            and self.width == other.width
            and self.depth == other.depth
        )

    def merge(self, other):
        """A new sketch summarizing both streams (commutative; bounds add
        because totals add and cells add)."""
        if not self.compatible_with(other):
            raise ValueError("cannot merge count-min sketches of different geometry")
        out = CountMinSketch(self.epsilon, self.delta)
        out.rows = [
            [a + b for a, b in zip(row_a, row_b)]
            for row_a, row_b in zip(self.rows, other.rows)
        ]
        out.total = self.total + other.total
        return out

    def __eq__(self, other):
        return (
            self.compatible_with(other)
            and self.total == other.total
            and self.rows == other.rows
        )

    def as_dict(self):
        return {
            "epsilon": self.epsilon,
            "delta": self.delta,
            "width": self.width,
            "depth": self.depth,
            "total": self.total,
            "error_bound": self.error_bound(),
        }


class SpaceSavingTopK:
    """Metwally et al.'s space-saving heavy hitters over integer keys.

    At most ``capacity`` keys are tracked; each carries ``(count, error)``
    where ``count`` over-estimates the true weight by at most ``error``.
    Any key with true weight above ``total / capacity`` is guaranteed
    present.  Eviction and reporting tie-break deterministically on
    ``(count, -key)`` so equal streams produce equal summaries.
    """

    __slots__ = ("capacity", "counters", "errors", "total")

    def __init__(self, capacity=64):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = int(capacity)
        self.counters = {}
        self.errors = {}
        self.total = 0

    def _weakest(self):
        """The tracked key cheapest to evict (deterministic tie-break)."""
        return min(self.counters, key=lambda k: (self.counters[k], -k))

    def add(self, key, weight=1):
        if weight < 0:
            raise ValueError("space-saving supports non-negative weights only")
        key = int(key)
        self.total += weight
        if key in self.counters:
            self.counters[key] += weight
            return
        if len(self.counters) < self.capacity:
            self.counters[key] = weight
            self.errors[key] = 0
            return
        victim = self._weakest()
        floor = self.counters.pop(victim)
        self.errors.pop(victim)
        # The newcomer inherits the evicted counter as its over-estimate.
        self.counters[key] = floor + weight
        self.errors[key] = floor

    def top(self, n=None):
        """``[(key, count, error)]`` descending by count (ties: lower key
        first, so output is deterministic)."""
        ranked = sorted(self.counters, key=lambda k: (-self.counters[k], k))
        if n is not None:
            ranked = ranked[:n]
        return [(k, self.counters[k], self.errors[k]) for k in ranked]

    def guarantee_threshold(self):
        """True weight above this is guaranteed to be tracked."""
        return self.total / self.capacity

    def merge(self, other):
        """A new summary of both streams (commutative by construction).

        Keys present in one side only inherit the other side's weakest
        counter as extra over-estimate — the standard space-saving merge —
        then the union is trimmed back to ``capacity`` deterministically.
        """
        if not isinstance(other, SpaceSavingTopK) or self.capacity != other.capacity:
            raise ValueError("cannot merge space-saving summaries of different capacity")

        def floor_of(summary):
            if len(summary.counters) < summary.capacity:
                return 0
            return min(summary.counters.values())

        floor_a, floor_b = floor_of(self), floor_of(other)
        out = SpaceSavingTopK(self.capacity)
        out.total = self.total + other.total
        merged_counts, merged_errors = {}, {}
        for key in set(self.counters) | set(other.counters):
            count = error = 0
            if key in self.counters:
                count += self.counters[key]
                error += self.errors[key]
            else:
                count += floor_a
                error += floor_a
            if key in other.counters:
                count += other.counters[key]
                error += other.errors[key]
            else:
                count += floor_b
                error += floor_b
            merged_counts[key] = count
            merged_errors[key] = error
        keep = sorted(merged_counts, key=lambda k: (-merged_counts[k], k))[: self.capacity]
        out.counters = {k: merged_counts[k] for k in keep}
        out.errors = {k: merged_errors[k] for k in keep}
        return out

    def __eq__(self, other):
        return (
            isinstance(other, SpaceSavingTopK)
            and self.capacity == other.capacity
            and self.total == other.total
            and self.counters == other.counters
            and self.errors == other.errors
        )

    def as_dict(self, n=None):
        return {
            "capacity": self.capacity,
            "total": self.total,
            "guarantee_threshold": self.guarantee_threshold(),
            "entries": [
                {"key": k, "count": c, "error": e} for k, c, e in self.top(n)
            ],
        }
