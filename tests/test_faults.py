"""Unit tests for the fault-injection layer (:mod:`repro.faults`)."""

import pytest

from repro.faults import (
    CLEAN_PROFILE,
    FAULT_PROFILES,
    HOSTILE_PROFILE,
    PAPER_PROFILE,
    FaultInjector,
    FaultProfile,
    resolve_fault_profile,
)
from repro.util import RngStream


def make_injector(profile, seed=5):
    return FaultInjector(profile, RngStream(seed, "faults-test"))


# -- profiles -----------------------------------------------------------------


def test_profile_rates_validated():
    with pytest.raises(ValueError):
        FaultProfile(onp_truncate_rate=1.5)
    with pytest.raises(ValueError):
        FaultProfile(darknet_outage_rate=-0.1)


def test_profile_cleanliness():
    assert CLEAN_PROFILE.is_clean
    assert not PAPER_PROFILE.is_clean
    assert not HOSTILE_PROFILE.is_clean
    assert CLEAN_PROFILE.nonzero_rates() == []
    assert "no faults" in CLEAN_PROFILE.describe()
    assert "onp_truncate_rate" in HOSTILE_PROFILE.describe()


def test_resolve_fault_profile():
    assert resolve_fault_profile(None) is CLEAN_PROFILE
    assert resolve_fault_profile("hostile") is HOSTILE_PROFILE
    assert resolve_fault_profile(PAPER_PROFILE) is PAPER_PROFILE
    with pytest.raises(KeyError, match="no-such"):
        resolve_fault_profile("no-such")
    assert set(FAULT_PROFILES) == {"clean", "paper", "hostile"}


# -- clean injector is a no-op ------------------------------------------------


def test_clean_injector_injects_nothing():
    injector = make_injector(CLEAN_PROFILE)
    packets = (b"\x87\x00\x03\x2a\x00\x00\x00\x00", b"\x87\x01\x03\x2a\x00\x00\x00\x00")
    for day in range(50):
        assert not injector.sample_outage(7, float(day))
        assert injector.sweep_cutoff(7, float(day)) is None
        assert not injector.darknet_down(day)
        assert not injector.arbor_missing(day)
    assert injector.mangle_mode7(packets) == packets
    assert injector.log.total == 0
    assert injector.log.as_dict() == {}


# -- determinism --------------------------------------------------------------


def test_injector_decisions_deterministic():
    def run(injector):
        decisions = []
        for day in range(200):
            decisions.append(injector.sample_outage(7, float(day)))
            decisions.append(injector.sweep_cutoff(6, float(day)))
            decisions.append(injector.darknet_down(day))
            decisions.append(injector.arbor_missing(day))
            decisions.append(injector.mangle_mode7((bytes(range(8)) * 3, bytes(8))))
        return decisions, injector.log.as_dict()

    a = run(make_injector(HOSTILE_PROFILE, seed=9))
    b = run(make_injector(HOSTILE_PROFILE, seed=9))
    c = run(make_injector(HOSTILE_PROFILE, seed=10))
    assert a == b
    assert a != c


# -- mangle guarantees --------------------------------------------------------


def _fragments(n, size=40):
    return tuple(bytes([0x97, seq]) + bytes(size - 2) for seq in range(n))


def test_mangle_always_keeps_a_packet():
    injector = make_injector(FaultProfile(onp_truncate_rate=1.0))
    for n in (1, 2, 5, 12):
        out = injector.mangle_mode7(_fragments(n))
        assert 1 <= len(out) <= n
        # Truncation is a tail cut: what survives is an exact prefix.
        assert out == _fragments(n)[: len(out)]
    assert injector.log.get("onp.monlist.truncated_response") > 0
    assert injector.log.get("onp.monlist.dropped_packet") > 0


def test_mangle_duplicate_and_reorder_preserve_bytes():
    injector = make_injector(
        FaultProfile(onp_duplicate_rate=1.0, onp_reorder_rate=1.0), seed=3
    )
    original = _fragments(6)
    out = injector.mangle_mode7(original)
    assert len(out) == 7  # one duplicated fragment
    assert set(out) == set(original)  # no new byte strings, only copies
    assert injector.log.get("onp.monlist.duplicated_packet") == 1
    assert injector.log.get("onp.monlist.reordered_response") == 1


def test_mangle_corrupt_changes_exactly_one_packet():
    injector = make_injector(FaultProfile(onp_corrupt_rate=1.0), seed=4)
    original = _fragments(4)
    out = injector.mangle_mode7(original)
    assert len(out) == 4
    changed = [i for i, (a, b) in enumerate(zip(original, out)) if a != b]
    assert len(changed) == 1
    assert len(out[changed[0]]) == len(original[changed[0]])  # same length, flipped bits
    assert injector.log.get("onp.monlist.corrupted_packet") == 1


# -- per-day caching ----------------------------------------------------------


def test_darknet_down_cached_and_logged_once():
    injector = make_injector(FaultProfile(darknet_outage_rate=0.5), seed=6)
    first = {day: injector.darknet_down(day) for day in range(60)}
    # Re-querying never re-draws or re-logs.
    again = {day: injector.darknet_down(day) for day in range(60)}
    assert first == again
    n_down = sum(first.values())
    assert 0 < n_down < 60
    assert injector.log.get("darknet.down_day") == n_down


# -- world integration --------------------------------------------------------


def test_world_params_carry_profile_and_default_clean():
    from repro.scenario import WorldParams

    params = WorldParams(seed=1, scale=0.001)
    assert params.faults.is_clean
    hostile = WorldParams(seed=1, scale=0.001, faults=HOSTILE_PROFILE)
    assert hostile.faults.name == "hostile"


def test_cache_key_distinguishes_fault_profiles():
    from repro.scenario import WorldParams
    from repro.scenario.cache import cache_key

    clean = cache_key(WorldParams(seed=1, scale=0.001))
    hostile = cache_key(WorldParams(seed=1, scale=0.001, faults=HOSTILE_PROFILE))
    assert clean != hostile


def test_clean_world_has_empty_fault_log(world):
    assert world.fault_log is not None
    assert world.fault_log.total == 0
