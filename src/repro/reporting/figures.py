"""ASCII rendering of the paper's figures.

Terminal-friendly chart primitives: a block-character sparkline, a log-axis
line chart for the traffic/count series, and grouped bars for Figure 2.
Everything returns plain strings; nothing touches a plotting library.
"""

import math

__all__ = ["GAP_CHAR", "sparkline", "ascii_chart", "ascii_bars"]

_BLOCKS = " .:-=+*#%@"


#: Column marker for a missing (None) observation — distinct from a zero,
#: which renders as a blank.
GAP_CHAR = "?"


def sparkline(values, width=None):
    """One-line density strip of a numeric series (linear scale).

    A None value is a measurement gap and renders as ``?`` — explicitly
    "no data", never interpolated and never conflated with zero.
    """
    values = list(values)
    if not values:
        return ""
    if width is not None and len(values) > width:
        # Downsample by taking the max of each chunk (peaks matter here;
        # a chunk with any real value shows it, an all-gap chunk stays a gap).
        chunk = len(values) / width
        downsampled = []
        for i in range(width):
            window = values[int(i * chunk) : max(int(i * chunk) + 1, int((i + 1) * chunk))]
            real = [v for v in window if v is not None]
            downsampled.append(max(real) if real else None)
        values = downsampled
    real = [v for v in values if v is not None]
    top = max(real) if real else 0
    if top <= 0:
        return "".join(GAP_CHAR if v is None else " " for v in values)
    return "".join(
        GAP_CHAR
        if v is None
        else (_BLOCKS[min(9, int(v / top * 9.999))] if v > 0 else " ")
        for v in values
    )


def ascii_chart(series, height=12, width=64, log=False, title=None, value_fmt="{:.3g}"):
    """A y-vs-x line chart of a [(x, y)] series as text.

    ``log=True`` uses a log10 y-axis — how Figures 1, 3, and 4a read.
    A None y value is a measurement gap: its column renders as a ``?``
    on the baseline instead of a point (no interpolation).
    """
    series = [(x, y) for x, y in series]
    if not series:
        return "(empty series)"
    ys = [y for _, y in series if y is not None]
    if not ys:
        return "(no data: all points are measurement gaps)"
    if log:
        floor = min(y for y in ys if y > 0) if any(y > 0 for y in ys) else 1e-12
        transform = lambda y: math.log10(max(y, floor / 10))
    else:
        transform = lambda y: y
    ty = [None if y is None else transform(y) for _, y in series]
    real_ty = [v for v in ty if v is not None]
    lo, hi = min(real_ty), max(real_ty)
    span = (hi - lo) or 1.0

    # Downsample x to the chart width.
    n = len(series)
    columns = min(width, n)
    grid = [[" "] * columns for _ in range(height)]
    n_gaps = 0
    for c in range(columns):
        index = int(c * (n - 1) / max(1, columns - 1))
        if ty[index] is None:
            grid[height - 1][c] = GAP_CHAR
            n_gaps += 1
            continue
        level = (ty[index] - lo) / span
        row = height - 1 - int(level * (height - 1))
        grid[row][c] = "*"
    lines = []
    if title:
        lines.append(title)
    top_label = value_fmt.format(max(ys))
    bottom_label = value_fmt.format(min(ys))
    for r, row in enumerate(grid):
        prefix = top_label if r == 0 else (bottom_label if r == height - 1 else "")
        lines.append(f"{prefix:>10} |" + "".join(row))
    lines.append(" " * 11 + "+" + "-" * columns)
    if n_gaps:
        lines.append(" " * 12 + f"({GAP_CHAR} = no data: {n_gaps} gap column(s))")
    return "\n".join(lines)


def ascii_bars(rows, width=40, title=None, value_fmt="{:.2f}"):
    """Horizontal bars for (label, value) rows, scaled to the max value."""
    rows = list(rows)
    if not rows:
        return "(no data)"
    top = max(v for _, v in rows) or 1.0
    label_width = max(len(str(label)) for label, _ in rows)
    lines = [title] if title else []
    for label, value in rows:
        bar = "#" * int(value / top * width)
        lines.append(f"{str(label):>{label_width}}  {bar} {value_fmt.format(value)}")
    return "\n".join(lines)
