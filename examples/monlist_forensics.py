#!/usr/bin/env python
"""Monlist forensics, packet by packet.

Recreates §4.1's Table 3 from first principles: a simulated ntpd server is
fed normal clients, a research scanner, an ONP-style probe, and a spoofed
DDoS attack; we then send it a *raw* mode-7 monlist request, decode the
raw response packets with the ntpdc protocol logic, print the table, and
run the paper's victim-classification filter over it.

Usage::

    python examples/monlist_forensics.py
"""

from repro.analysis import classify_entry
from repro.attack import ONP_PROBER_IP
from repro.net import on_wire_bytes, parse_ip
from repro.ntp import (
    IMPL_XNTPD,
    NtpServer,
    ServerConfig,
    decode_mode7,
    encode_mode7_request,
)
from repro.ntp.constants import REQ_MON_GETLIST_1
from repro.reporting import render_monlist_table
from repro.sim.events import AttackPulse
from repro.util import DAY, HOUR, WEEK


def main():
    server = NtpServer(ip=parse_ip("198.51.100.7"), config=ServerConfig(stratum=3))
    now = 40 * DAY

    # Two normal mode-3 clients (one regular poller, one that synced once).
    poll = 1024.0
    n_polls = int(10 * DAY / poll)
    server.record_client(
        parse_ip("192.0.2.10"), 123, 3, 4,
        now=now - 5 * HOUR, packets=n_polls, span=(n_polls - 1) * poll,
    )
    server.record_client(parse_ip("192.0.2.77"), 36008, 3, 4, now=now - 29 * HOUR)

    # A research survey probing weekly for three weeks (mode 6).
    server.record_client(
        parse_ip("203.0.113.50"), 10151, 6, 2, now=now - 2 * DAY, packets=3, span=2 * WEEK
    )

    # A spoofed monlist DDoS against a victim's UDP port 80 (mode 7):
    # 40 seconds at 400 queries/second.
    pulse = AttackPulse(
        start=now - 600.0,
        duration=40.0,
        victim_ip=parse_ip("198.18.5.5"),
        victim_port=80,
        amplifier_ip=server.ip,
        query_rate=400.0,
        mode=7,
        spoofer_ttl=109,
    )
    server.record_attack_pulse(pulse)

    # The ONP probe arrives as a real 8-byte mode-7 packet.
    request = encode_mode7_request(IMPL_XNTPD, REQ_MON_GETLIST_1)
    print(f"probe: {len(request)}-byte UDP payload = {on_wire_bytes(len(request))} bytes on the wire")
    reply = server.handle_datagram(request, ONP_PROBER_IP, 57915, now)

    print(f"reply: {reply.total_packets} packet(s), {reply.total_payload_bytes} payload bytes, "
          f"{reply.total_on_wire_bytes} on-wire bytes "
          f"-> BAF {reply.total_on_wire_bytes / on_wire_bytes(len(request)):.2f}x\n")

    # Decode the raw bytes exactly as ntpdc would.
    entries = []
    for raw in reply.packets:
        packet = decode_mode7(raw)
        entries.extend(packet.items)

    print(render_monlist_table(entries, title="monlist table (cf. paper Table 3)"))
    print()
    for entry in entries:
        verdict = classify_entry(entry)
        print(f"  {entry.addr:>12} mode={entry.mode} count={entry.count:>6} "
              f"interarrival={entry.avg_interval:>9.1f}s -> {verdict}")
    print("\nThe spoofed victim is the only entry the §4.2 filter flags as a victim.")


if __name__ == "__main__":
    main()
