"""Tests for survival curves and the remediation model."""

import pytest

from repro.population import (
    RemediationModel,
    SurvivalCurve,
    dns_survival_curve,
    monlist_survival_curve,
    version_survival_curve,
)
from repro.population.remediation import calibrated_monlist_curve
from repro.util import RngStream, date_to_sim


def test_survival_curve_validation():
    with pytest.raises(ValueError):
        SurvivalCurve([(0.0, 1.0)])
    with pytest.raises(ValueError):
        SurvivalCurve([(0.0, 1.0), (0.0, 0.5)])
    with pytest.raises(ValueError):
        SurvivalCurve([(0.0, 0.5), (1.0, 0.9)])  # increasing
    with pytest.raises(ValueError):
        SurvivalCurve([(0.0, 1.5), (1.0, 0.5)])


def test_survival_value_endpoints():
    curve = SurvivalCurve([(10.0, 1.0), (20.0, 0.1)])
    assert curve.value_at(0.0) == 1.0
    assert curve.value_at(25.0) == pytest.approx(0.1)
    assert curve.floor == pytest.approx(0.1)
    # Exponential interpolation passes through sqrt(0.1) at the midpoint.
    assert curve.value_at(15.0) == pytest.approx(0.1**0.5)


def test_inverse_round_trip():
    curve = monlist_survival_curve()
    for s in (0.9, 0.5, 0.2, 0.1):
        t = curve.inverse(s)
        assert t is not None
        assert curve.value_at(t) == pytest.approx(s, rel=1e-6)


def test_inverse_below_floor_is_none():
    curve = monlist_survival_curve()
    assert curve.inverse(curve.floor / 2) is None


def test_inverse_validates():
    curve = monlist_survival_curve()
    with pytest.raises(ValueError):
        curve.inverse(0.0)
    with pytest.raises(ValueError):
        curve.inverse(1.5)


def test_monlist_curve_matches_paper_anchors():
    curve = monlist_survival_curve()
    assert curve.value_at(date_to_sim(2014, 1, 10)) == pytest.approx(1.0)
    assert curve.value_at(date_to_sim(2014, 1, 24)) == pytest.approx(0.482, rel=0.01)
    assert curve.value_at(date_to_sim(2014, 4, 18)) == pytest.approx(0.074, rel=0.01)


def test_version_and_dns_curves_decay_slowly():
    version = version_survival_curve()
    assert version.value_at(date_to_sim(2014, 2, 21)) == pytest.approx(1.0)
    assert version.value_at(date_to_sim(2014, 4, 18)) == pytest.approx(0.81, rel=0.02)
    dns = dns_survival_curve()
    assert dns.value_at(date_to_sim(2014, 4, 18)) > 0.85


def test_calibrated_curve_is_below_paper_curve():
    """The per-host baseline must decay faster than the observed pool (the
    mixture of sub-1 multipliers plus churn re-inflates it)."""
    paper = monlist_survival_curve()
    calibrated = calibrated_monlist_curve()
    t = date_to_sim(2014, 3, 14)
    assert calibrated.value_at(t) < paper.value_at(t)


def test_multiplier_ordering():
    model = RemediationModel()
    assert model.multiplier_for("NA", False) > model.multiplier_for("SA", False)
    assert model.multiplier_for("EU", False) > model.multiplier_for("EU", True)


def test_sample_time_faster_for_higher_multiplier():
    model = RemediationModel()
    u = 0.5
    fast = model.sample_time(u, multiplier=2.0)
    slow = model.sample_time(u, multiplier=0.5)
    assert fast is not None
    assert slow is None or slow > fast


def test_sample_time_validates():
    model = RemediationModel()
    with pytest.raises(ValueError):
        model.sample_time(0.0)
    with pytest.raises(ValueError):
        model.sample_time(0.5, multiplier=0.0)


def test_sample_times_vectorized():
    model = RemediationModel()
    rng = RngStream(1, "remed")
    times = model.sample_times(rng, ["NA"] * 100 + ["SA"] * 100, [False] * 200)
    assert len(times) == 200
    na_none = sum(1 for t in times[:100] if t is None)
    sa_none = sum(1 for t in times[100:] if t is None)
    assert na_none < sa_none  # NA remediates more completely


def test_sample_times_alignment_check():
    model = RemediationModel()
    with pytest.raises(ValueError):
        model.sample_times(RngStream(1, "x"), ["NA"], [False, True])
