"""Figure 8: NTP scan packets per dark /24 per month at the ≈/9 telescope.

Paper: a ~10x rise from December 2013 into spring 2014; early-fall traffic
is mostly known-benign research scanning, while at peak roughly half of the
volume is attributable to research and half to suspected-malicious
scanners; volume stays high even as the vulnerable pool collapses.
"""

from repro.analysis import darknet_report


def test_fig08_darknet_volume(benchmark, world):
    report = benchmark(darknet_report, world.darknet)

    totals = report.monthly_totals()
    assert report.rise_factor("2013-11", "2014-02") > 4
    assert report.rise_factor("2013-11", "2014-04") > 4  # stays high
    # Early months: mostly benign.  Peak months: roughly half benign.
    assert report.benign_fractions["2013-09"] > 0.7
    assert 0.30 < report.benign_fractions["2014-02"] < 0.75
    assert 0.30 < report.benign_fractions["2014-04"] < 0.75
    # Absolute packets-per-/24 is scale-free: peak in the thousands.
    assert totals["2014-02"] > 3000

    print("\nFig8 (month: packets//24 benign/other, benign frac):")
    for month, values in report.monthly_per_slash24.items():
        frac = report.benign_fractions[month]
        print(f"  {month}: {values['benign']:.0f}/{values['other']:.0f}  ({frac:.2f})")
