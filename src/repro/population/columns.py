"""Columnar views of the world core: record batches over hosts and pulses.

The object layer (:class:`~repro.population.amplifiers.NtpHost`,
:class:`~repro.sim.events.AttackPulse`) stays the unit of *semantics* —
tests and analysis reason about individual hosts.  This module is the
unit of *throughput*: flat NumPy arrays aligned to the object lists, so
hot loops (per-amplifier pulse sync during ONP sweeps, reply-size
estimation over booter lists, full-pool fingerprints) touch contiguous
memory instead of chasing ~8.7M Python objects at ``scale=1.0``.

Two array families live here:

* **record batches** (``HOST_DTYPE``, ``PULSE_DTYPE``): big-endian
  structured dtypes in the style of ``repro.ntp.wire.MON_V1_DTYPE`` —
  a canonical serialized layout whose raw bytes double as a
  byte-identity fingerprint of the pool (the shard-equivalence tests
  hash them) and render as a near-memcpy.

* **compute columns** (:class:`MonlistColumns`, :class:`PulseColumns`):
  native-endian working arrays for arithmetic (liveness masks,
  searchsorted windows, vectorized reply-size estimates).

The native/big-endian split is deliberate: arithmetic on byte-swapped
arrays silently deoptimizes in NumPy, so compute columns stay native
and the wire-style batch is materialized on demand.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "HOST_BLOCKS",
    "HOST_DTYPE",
    "PULSE_DTYPE",
    "VICTIM_DTYPE",
    "HOST_FLAG_MONLIST",
    "HOST_FLAG_VERSION",
    "HOST_FLAG_END_HOST",
    "HOST_FLAG_MEGA",
    "HOST_FLAG_DNS",
    "balanced_split",
    "host_record_batch",
    "MonlistColumns",
    "PulseColumns",
]

#: Number of fine-grained build blocks the host population is split into.
#: Fixed (never derived from ``--jobs``) so the block boundaries — and
#: therefore every per-block RNG child stream — are identical whether
#: the blocks run serially or across any number of workers.  The pool
#: merely distributes these same blocks; byte-identity at any ``--jobs``
#: follows by construction.
HOST_BLOCKS = 16


def balanced_split(n, blocks):
    """Deterministic near-even partition of ``n`` items into ``blocks``
    counts (earlier blocks absorb the remainder): sums to ``n`` exactly."""
    base, extra = divmod(int(n), int(blocks))
    return [base + (b < extra) for b in range(blocks)]


# -- host record batch ---------------------------------------------------------

#: Host flag bits packed into the record batch.
HOST_FLAG_MONLIST = 1 << 0
HOST_FLAG_VERSION = 1 << 1
HOST_FLAG_END_HOST = 1 << 2
HOST_FLAG_MEGA = 1 << 3
HOST_FLAG_DNS = 1 << 4

#: Big-endian serialized host record (MON_V1_DTYPE-style fixed layout).
#: ``ends`` is ``(monlist_end, version_end, exists_end)`` so liveness at
#: any instant is reconstructible from the batch alone.
HOST_DTYPE = np.dtype(
    [
        ("ip", ">u4"),
        ("asn", ">u4"),
        ("cluster_id", ">i8"),
        ("birth", ">f8"),
        ("monlist_end", ">f8"),
        ("version_end", ">f8"),
        ("exists_end", ">f8"),
        ("base_clients", ">u4"),
        ("loop_factor", ">u4"),
        ("impl", ">u1"),
        ("flags", ">u1"),
    ]
)

#: Big-endian serialized pulse record, lexsorted by (amplifier, end).
PULSE_DTYPE = np.dtype(
    [
        ("amp_ip", ">u4"),
        ("victim_ip", ">u4"),
        ("victim_port", ">u2"),
        ("mode", ">u1"),
        ("start", ">f8"),
        ("duration", ">f8"),
        ("query_count", ">i8"),
    ]
)

#: Big-endian serialized victim record.
VICTIM_DTYPE = np.dtype(
    [
        ("ip", ">u4"),
        ("asn", ">u4"),
        ("appear", ">f8"),
        ("until", ">f8"),
        ("popularity", ">f8"),
    ]
)


def host_record_batch(hosts, monlist_end, version_end, exists_end):
    """Serialize the full pool into one contiguous ``HOST_DTYPE`` array.

    ``*_end`` are the module-level end-time functions from
    :mod:`repro.population.amplifiers` (passed in to avoid a circular
    import).  Built column-at-a-time: one pass per field over the object
    list, everything else vectorized.
    """
    n = len(hosts)
    batch = np.zeros(n, dtype=HOST_DTYPE)
    batch["ip"] = [h.ip for h in hosts]
    batch["asn"] = [h.asn for h in hosts]
    batch["cluster_id"] = [h.cluster_id for h in hosts]
    batch["birth"] = [h.birth for h in hosts]
    batch["monlist_end"] = [monlist_end(h) for h in hosts]
    batch["version_end"] = [version_end(h) for h in hosts]
    batch["exists_end"] = [exists_end(h) for h in hosts]
    batch["base_clients"] = [h.base_clients for h in hosts]
    batch["loop_factor"] = [h.loop_factor for h in hosts]
    batch["impl"] = [max(h.implementations) if h.implementations else 0 for h in hosts]
    flags = np.zeros(n, dtype=np.uint8)
    flags |= np.array([h.monlist_amplifier for h in hosts], dtype=np.uint8) * HOST_FLAG_MONLIST
    flags |= np.array([h.responds_version for h in hosts], dtype=np.uint8) * HOST_FLAG_VERSION
    flags |= np.array([h.is_end_host for h in hosts], dtype=np.uint8) * HOST_FLAG_END_HOST
    flags |= np.array([h.is_mega for h in hosts], dtype=np.uint8) * HOST_FLAG_MEGA
    flags |= np.array([h.also_dns_resolver for h in hosts], dtype=np.uint8) * HOST_FLAG_DNS
    batch["flags"] = flags
    return batch


class MonlistColumns:
    """Native compute arrays aligned index-for-index to a pool's
    ``monlist_hosts`` list.

    ``reply_once`` is the vectorized twin of
    ``estimate_monlist_reply_bytes(host, include_loop=False)`` — the
    campaign's amplifier-ranking hot loop consumes it as one fancy-index
    instead of ~40 Python calls per attack.
    """

    __slots__ = (
        "ip",
        "birth",
        "monlist_end",
        "base_clients",
        "is_mega",
        "reply_once",
        "n_hosts",
    )

    def __init__(self, monlist_hosts):
        n = len(monlist_hosts)
        self.n_hosts = n
        self.ip = np.array([h.ip for h in monlist_hosts], dtype=np.int64)
        self.birth = np.array([h.birth for h in monlist_hosts], dtype=np.float64)
        from repro.population.amplifiers import _monlist_end

        self.monlist_end = np.array(
            [_monlist_end(h) for h in monlist_hosts], dtype=np.float64
        )
        self.base_clients = np.array(
            [h.base_clients for h in monlist_hosts], dtype=np.int64
        )
        self.is_mega = np.array([h.is_mega for h in monlist_hosts], dtype=bool)
        # estimate_monlist_reply_bytes(host, include_loop=False), exactly:
        # entries clamped to the 600-slot MRU, ceil-div into 6-entry
        # packets, 8B header + 72B/entry + 66B IP/UDP overhead per packet.
        entries = np.clip(self.base_clients, 1, 600)
        packets = (entries + 5) // 6
        self.reply_once = packets * 8 + entries * 72 + packets * 66

    def alive_mask(self, t):
        return (self.birth <= t) & (t < self.monlist_end)


class PulseColumns:
    """All attack pulses as flat arrays, lexsorted by (amplifier, end).

    Replaces per-object pulse registration in the amplifier state
    manager: the per-host sync becomes a ``searchsorted`` window over a
    contiguous slice instead of a bisect over a per-ip Python list.
    ``query_count`` is precomputed with ``AttackPulse``'s exact
    ``max(1, int(query_rate * duration))`` truncation.
    """

    __slots__ = (
        "amp_ip",
        "victim_ip",
        "victim_port",
        "mode",
        "start",
        "end",
        "duration",
        "query_count",
        "n_pulses",
    )

    def __init__(self, amp_ip, victim_ip, victim_port, mode, start, duration, query_rate):
        order = np.lexsort((start + duration, amp_ip))
        self.amp_ip = np.ascontiguousarray(amp_ip[order])
        self.victim_ip = np.ascontiguousarray(victim_ip[order])
        self.victim_port = np.ascontiguousarray(victim_port[order])
        self.mode = np.ascontiguousarray(mode[order])
        self.start = np.ascontiguousarray(start[order])
        self.duration = np.ascontiguousarray(duration[order])
        self.end = self.start + self.duration
        rate = query_rate[order]
        self.query_count = np.maximum(
            1, (rate * self.duration).astype(np.int64)
        )
        self.n_pulses = len(self.amp_ip)

    @classmethod
    def from_attacks(cls, attacks):
        """Columnarize every pulse of every attack without materializing
        ``AttackPulse`` objects (one ``np.repeat`` per attack field)."""
        counts = np.array([len(a.amplifiers) for a in attacks], dtype=np.int64)
        total = int(counts.sum())
        amp_ip = np.empty(total, dtype=np.int64)
        pos = 0
        for a in attacks:
            ips = a.amplifier_ips()
            amp_ip[pos : pos + len(ips)] = ips
            pos += len(ips)
        victim_ip = np.repeat(
            np.array([a.victim.ip for a in attacks], dtype=np.int64), counts
        )
        victim_port = np.repeat(
            np.array([a.port for a in attacks], dtype=np.int64), counts
        )
        mode = np.repeat(np.array([a.mode for a in attacks], dtype=np.int64), counts)
        start = np.repeat(
            np.array([a.start for a in attacks], dtype=np.float64), counts
        )
        duration = np.repeat(
            np.array([a.duration for a in attacks], dtype=np.float64), counts
        )
        rate = np.repeat(
            np.array([a.query_rate_per_amp for a in attacks], dtype=np.float64), counts
        )
        return cls(amp_ip, victim_ip, victim_port, mode, start, duration, rate)

    def ip_range(self, ip):
        """Half-open slice ``(lo, hi)`` of this amplifier's pulses."""
        lo = int(np.searchsorted(self.amp_ip, ip, side="left"))
        hi = int(np.searchsorted(self.amp_ip, ip, side="right"))
        return lo, hi

    def record_batch(self):
        """Big-endian ``PULSE_DTYPE`` serialization (fingerprint/render)."""
        batch = np.zeros(self.n_pulses, dtype=PULSE_DTYPE)
        batch["amp_ip"] = self.amp_ip
        batch["victim_ip"] = self.victim_ip
        batch["victim_port"] = self.victim_port
        batch["mode"] = self.mode
        batch["start"] = self.start
        batch["duration"] = self.duration
        batch["query_count"] = self.query_count
        return batch
