"""Tests for attack-campaign generation (using the shared world)."""

import pytest

from repro.attack import OVH_EVENT_END, OVH_EVENT_START
from repro.attack.campaign import AttackCampaign, CampaignParams
from repro.util import DAY, date_to_sim


def test_attacks_sorted_and_windowed(world):
    starts = [a.start for a in world.attacks]
    assert starts == sorted(starts)
    assert starts[0] >= date_to_sim(2013, 11, 1)


def test_intensity_peaks_in_mid_february(world):
    def weekly(day):
        t = date_to_sim(*day)
        return sum(1 for a in world.attacks if t <= a.start < t + 7 * DAY)

    december = weekly((2013, 12, 1))
    peak = weekly((2014, 2, 8))
    april = weekly((2014, 4, 10))
    assert peak > 5 * max(1, december)
    assert peak > april


def test_amplifiers_alive_at_attack_time(world):
    for attack in world.attacks[::50]:
        assert attack.amplifiers
        for host in attack.amplifiers:
            assert host.monlist_active(attack.start)


def test_attack_ports_match_victim_profile(world):
    scripted = {-1}
    for attack in world.attacks[::25]:
        if attack.booter_id in scripted:
            continue
        assert attack.port in attack.victim.ports


def test_query_rate_bounded(world):
    for attack in world.attacks[::25]:
        assert 0.5 <= attack.query_rate_per_amp <= 20000.0


def test_spoofers_look_windows(world):
    ttls = [a.spoofer_ttl for a in world.attacks[::10]]
    assert all(t > 64 for t in ttls)


def test_most_attacks_are_monlist(world):
    version = sum(1 for a in world.attacks if a.mode == 6)
    assert version / len(world.attacks) < 0.02


def test_duration_tail_shrinks_over_time(world):
    """§4.3.4: the 95th-percentile duration declines from ~6.5 h in January
    toward ~50 min by April (medians *rise* from ~15 s to ~40 s)."""
    import numpy as np

    early = [a.duration for a in world.attacks if a.start < date_to_sim(2014, 2, 5)]
    late = [a.duration for a in world.attacks if a.start > date_to_sim(2014, 3, 20)]
    assert len(early) > 50 and len(late) > 50
    assert np.percentile(early, 98) > np.percentile(late, 98)


def test_big_attacks_use_many_amplifiers(world):
    big = [a for a in world.attacks if a.target_bps > 5e9]
    small = [a for a in world.attacks if a.target_bps < 1e7]
    if big and small:
        mean_big = sum(len(a.amplifiers) for a in big) / len(big)
        mean_small = sum(len(a.amplifiers) for a in small) / len(small)
        assert mean_big > mean_small


def test_ovh_event_targets_top_hosting_as(world):
    ovh = world.registry.special["HOSTING-FR-1"]
    event = [
        a
        for a in world.attacks
        if OVH_EVENT_START <= a.start <= OVH_EVENT_END and a.victim.asn == ovh.asn
    ]
    assert len(event) >= 3


def test_pulses_match_legs(world):
    attack = world.attacks[0]
    pulses = attack.pulses()
    assert len(pulses) == len(attack.amplifiers)
    assert {p.amplifier_ip for p in pulses} == {h.ip for h in attack.amplifiers}
    assert all(p.victim_ip == attack.victim.ip for p in pulses)


def test_coordination_same_amps_reused(world):
    """Booter list reuse: some amplifier pairs co-occur in many attacks."""
    from collections import Counter

    pair_counts = Counter()
    for attack in world.attacks[:2000]:
        ips = sorted(h.ip for h in attack.amplifiers)[:5]
        for i in range(len(ips)):
            for j in range(i + 1, len(ips)):
                pair_counts[(ips[i], ips[j])] += 1
    if pair_counts:
        assert max(pair_counts.values()) >= 5


def test_campaign_reproducible(world):
    params = CampaignParams(scale=0.0005)
    from repro.util import RngStream

    a = AttackCampaign(RngStream(9, "camp"), world.hosts, world.victims, params).generate()
    b = AttackCampaign(RngStream(9, "camp"), world.hosts, world.victims, params).generate()
    assert len(a) == len(b)
    assert [(x.start, x.victim.ip, x.target_bps) for x in a[:50]] == [
        (x.start, x.victim.ip, x.target_bps) for x in b[:50]
    ]


def test_campaign_params_validation():
    with pytest.raises(ValueError):
        CampaignParams(scale=0.0)
    with pytest.raises(ValueError):
        CampaignParams(start=10.0, end=5.0)
