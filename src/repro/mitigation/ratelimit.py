"""ISP-side NTP rate limiting (§7.1).

"During the early stages of the attacks, Merit also put in place traffic
rate limits on NTP traffic to minimize the impact of these attacks to its
customers."  This module applies a token-bucket-shaped cap to an hourly
flow series from a given activation time, reporting how much attack volume
the limiter absorbed — the operator's-eye view of mitigation value.
"""

from dataclasses import dataclass

import numpy as np

from repro.util.simtime import HOUR

__all__ = ["RateLimitResult", "apply_rate_limit"]


@dataclass(frozen=True)
class RateLimitResult:
    """Outcome of applying a rate limit to a series."""

    limited: np.ndarray
    dropped_bytes: float
    passed_bytes: float
    activation_hour: int

    @property
    def dropped_fraction(self):
        total = self.dropped_bytes + self.passed_bytes
        if total == 0:
            return 0.0
        return self.dropped_bytes / total


def apply_rate_limit(series_bytes_per_hour, cap_bps, activation_hour=0):
    """Cap an hourly byte series at ``cap_bps`` from ``activation_hour`` on.

    Returns a :class:`RateLimitResult` with the shaped series and the
    dropped/passed accounting (over the active region only).
    """
    series = np.asarray(series_bytes_per_hour, dtype=float)
    if cap_bps <= 0:
        raise ValueError("cap must be positive")
    if not 0 <= activation_hour <= len(series):
        raise ValueError("activation hour outside the series")
    cap_bytes = cap_bps / 8.0 * HOUR
    limited = series.copy()
    active = limited[activation_hour:]
    dropped = float(np.clip(active - cap_bytes, 0.0, None).sum())
    passed = float(np.minimum(active, cap_bytes).sum())
    limited[activation_hour:] = np.minimum(active, cap_bytes)
    return RateLimitResult(
        limited=limited,
        dropped_bytes=dropped,
        passed_bytes=passed,
        activation_hour=activation_hour,
    )
