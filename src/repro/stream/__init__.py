"""Streaming analysis: the batch pipeline's signals, answered online.

The batch pipeline answers the paper's questions after the fact: build
world -> parse corpus -> render.  Merit's follow-on architecture (AMON)
answers the same signals *online* over multi-gigabit streams with
bounded-memory sketches, and mid-campaign views of exactly this kind
underpin the later IXP amplification studies.  This package is that
serving layer for the repro:

* :mod:`repro.stream.replay` — adapters that turn an existing world's
  packed captures and compacted flow arrays into one sim-time-ordered
  record stream;
* :mod:`repro.stream.windows` — tumbling sim-time windows with
  watermark-based late/duplicate accounting and bounded per-window state;
* :mod:`repro.stream.sketches` — count-min and space-saving summaries
  (top victims, top amplifiers, per-AS concentration) with declared,
  mergeable error bounds;
* :mod:`repro.stream.ingest` — the incremental engine tying the three
  together, able to answer Fig 1/7/13-style queries at any mid-window
  point without a full reparse;
* :mod:`repro.stream.partition` — the sharded ingest mode: a
  deterministic key-partitioner routing records over N per-shard
  engines (in-process or supervised fork workers) whose reduction
  answers byte-identically to one engine at any shard count;
* :mod:`repro.stream.service` — a long-running asyncio HTTP/JSON service
  over one engine (``python -m repro serve`` / ``repro stream-query``);
* :mod:`repro.stream.loadgen` — the concurrent-client harness behind
  ``repro bench-serve`` and ``BENCH_serve.json``.

The conformance contract is the heart of the package: the
``world.streaming_matches_batch`` invariant in :mod:`repro.verify`
asserts that at end-of-window the streaming aggregates equal the batch
:class:`~repro.analysis.context.AnalysisContext` answers exactly
(counts) or within the declared sketch bounds (top-K membership and
estimates), across the usual seed x scale x fault matrix.
"""

from repro.stream.ingest import QUERY_NAMES, StreamEngine
from repro.stream.loadgen import run_loadgen
from repro.stream.partition import STREAM_BLOCKS, BlockRouter, ShardedStream
from repro.stream.replay import StreamRecord, replay_plan, replay_records
from repro.stream.service import StreamService, serve_world
from repro.stream.sketches import CountMinSketch, SpaceSavingTopK
from repro.stream.windows import TumblingWindows, WindowSet

__all__ = [
    "QUERY_NAMES",
    "STREAM_BLOCKS",
    "BlockRouter",
    "ShardedStream",
    "StreamEngine",
    "StreamRecord",
    "StreamService",
    "serve_world",
    "run_loadgen",
    "replay_records",
    "replay_plan",
    "CountMinSketch",
    "SpaceSavingTopK",
    "TumblingWindows",
    "WindowSet",
]
