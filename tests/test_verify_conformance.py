"""Tests for the conformance subsystem: registry shape, a real matrix run,
and the deliberate-bug demonstration (a scale-factor bug must be caught and
named in the machine-readable report)."""

import json

import pytest

from repro.verify import REGISTRY, all_invariants, run_conformance
from repro.verify.runner import Cell, default_builder

SEEDS = (7, 99)
SCALES = (0.0004, 0.0008)
FAULTS = ("clean", "paper")


@pytest.fixture(scope="module")
def conformance():
    """One real matrix run; the built worlds are kept for reuse."""
    built = {}

    def remembering_builder(cell):
        built[cell] = default_builder(cell)
        return built[cell]

    report = run_conformance(SEEDS, SCALES, FAULTS, builder=remembering_builder)
    return report, built


# -- registry shape ------------------------------------------------------------


def test_registry_has_at_least_12_named_invariants():
    invariants = all_invariants()
    assert len(invariants) >= 12
    assert len({inv.name for inv in invariants}) == len(invariants)
    for inv in invariants:
        assert inv.scope in ("world", "scale", "seed", "fault")
        assert inv.severity in ("error", "warning")
        assert inv.description
        assert inv.paper_anchor
        assert callable(inv.check)


def test_registry_covers_every_metamorphic_scope():
    scopes = {inv.scope for inv in all_invariants()}
    assert scopes == {"world", "scale", "seed", "fault"}


def test_duplicate_registration_rejected():
    from repro.verify import invariant

    with pytest.raises(ValueError):
        invariant(
            "world.onp_window",  # already registered
            scope="world",
            description="dup",
            paper_anchor="none",
        )(lambda record, tolerance: None)


# -- the real matrix -----------------------------------------------------------


def test_matrix_is_conformant(conformance):
    report, _ = conformance
    assert report.ok, report.render()
    assert report.violated() == []
    counts = report.counts()
    assert counts["fail"] == 0
    assert counts["pass"] > 0
    assert report.invariants_run >= 12
    # Every scope actually produced outcomes on a 2x2x2 matrix.
    assert {o.scope for o in report.outcomes} == {"world", "scale", "seed", "fault"}


def test_report_is_machine_readable(conformance):
    report, _ = conformance
    data = json.loads(report.to_json())
    assert data["ok"] is True
    assert data["violated"] == []
    assert data["invariants_registered"] == len(REGISTRY)
    assert len(data["matrix"]) == len(SEEDS) * len(SCALES) * len(FAULTS)
    for outcome in data["outcomes"]:
        assert outcome["invariant"] in REGISTRY
        assert outcome["status"] in ("pass", "fail", "skip")
        assert isinstance(outcome["measured"], dict)
        assert isinstance(outcome["violations"], list)


def test_skips_are_only_the_expected_ones(conformance):
    report, _ = conformance
    skipped = {o.name for o in report.outcomes if o.status == "skip"}
    # clean_world_pristine skips on faulted cells by design; nothing else
    # should lack data on a full 2x2x2 matrix.
    assert skipped <= {"world.clean_world_pristine"}


# -- the deliberate bug --------------------------------------------------------


def test_scale_factor_bug_is_caught_and_named(conformance, monkeypatch):
    """Monkeypatch the scale factor out of world construction (every cell
    gets the smallest scale's world) and the scale-monotonicity invariants
    must fail, by name, in the JSON report, with a nonzero-style verdict."""
    _, built = conformance

    def scale_blind_builder(cell):
        return built[Cell(cell.seed, SCALES[0], cell.fault_name)]

    monkeypatch.setattr("repro.verify.runner.default_builder", scale_blind_builder)
    report = run_conformance([SEEDS[0]], SCALES, ["clean"])

    assert not report.ok
    violated = report.violated()
    assert "scale.victim_population" in violated
    assert "scale.attack_count" in violated
    data = json.loads(report.to_json())
    assert data["ok"] is False
    assert "scale.victim_population" in data["violated"]
    named = [o for o in data["outcomes"] if o["invariant"] == "scale.victim_population"]
    assert any(o["status"] == "fail" and o["violations"] for o in named)


def test_crashing_check_becomes_a_violation(conformance):
    """A check that raises is reported as a failure of that invariant, not
    a crash of the harness."""
    from repro.verify.runner import _evaluate
    from repro.verify.invariants import Invariant

    bad = Invariant(
        name="test.crasher",
        scope="world",
        severity="error",
        description="always raises",
        paper_anchor="none",
        tolerance={},
        check=lambda record, tolerance: 1 / 0,
    )
    outcomes = []
    _evaluate(bad, (None,), "unit", outcomes)
    [outcome] = outcomes
    assert outcome.status == "fail"
    assert "ZeroDivisionError" in outcome.violations[0]


# -- CLI ----------------------------------------------------------------------


def test_cli_verify_world_single_cell(tmp_path, capsys):
    from repro.cli import main

    report_path = tmp_path / "conformance.json"
    code = main(
        [
            "verify-world",
            "--seeds",
            "7",
            "--scales",
            "0.0004",
            "--faults",
            "clean",
            "--quiet",
            "--report",
            str(report_path),
        ]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "CONFORMANT" in out
    data = json.loads(report_path.read_text())
    assert data["ok"] is True
    assert data["matrix"] == [{"seed": 7, "scale": 0.0004, "faults": "clean"}]


def test_cli_verify_world_rejects_bad_inputs(capsys):
    from repro.cli import main

    assert main(["verify-world", "--faults", "nonsense", "--quiet"]) == 2
    assert "fault profile" in capsys.readouterr().err
    assert main(["verify-world", "--seeds", "seven", "--quiet"]) == 2
    assert "bad seed" in capsys.readouterr().err
