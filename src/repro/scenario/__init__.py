"""Scenario orchestration: the fully-assembled paper world."""

from repro.scenario.world import PaperWorld, WorldParams

__all__ = ["PaperWorld", "WorldParams"]
