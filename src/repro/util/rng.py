"""Deterministic random-number streams.

Every stochastic component of the simulation draws from a named child stream
of one master seed.  The same ``(seed, name)`` pair always yields the same
stream, independent of the order in which streams are created, so adding a new
component never perturbs the randomness of existing ones.
"""

import hashlib
import math

import numpy as np

__all__ = ["derive_seed", "RngStream"]

_HASH_BYTES = 8


def derive_seed(master_seed, name):
    """Derive a stable 64-bit child seed from a master seed and a label.

    The derivation is a SHA-256 hash of the decimal master seed and the
    label, so it is stable across processes and Python versions (unlike the
    built-in ``hash``).
    """
    if not isinstance(name, str) or not name:
        raise ValueError("stream name must be a non-empty string")
    digest = hashlib.sha256(f"{int(master_seed)}/{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:_HASH_BYTES], "big")


class RngStream:
    """A named, deterministic random stream backed by NumPy's PCG64.

    Provides the handful of distributions the simulation needs, including a
    few heavy-tailed ones that NumPy does not expose directly in the shape
    we want (bounded Pareto, discrete Zipf over a finite support).
    """

    def __init__(self, master_seed, name):
        self.name = name
        self.seed = derive_seed(master_seed, name)
        self._gen = np.random.Generator(np.random.PCG64(self.seed))
        self._master_seed = int(master_seed)

    def child(self, name):
        """Create a child stream namespaced under this stream."""
        return RngStream(self._master_seed, f"{self.name}/{name}")

    # -- thin pass-throughs -------------------------------------------------

    @property
    def generator(self):
        """The underlying :class:`numpy.random.Generator`."""
        return self._gen

    def random(self, size=None):
        return self._gen.random(size)

    def integers(self, low, high=None, size=None):
        return self._gen.integers(low, high=high, size=size)

    def choice(self, seq, size=None, replace=True, p=None):
        return self._gen.choice(seq, size=size, replace=replace, p=p)

    def shuffle(self, array):
        self._gen.shuffle(array)

    def uniform(self, low=0.0, high=1.0, size=None):
        return self._gen.uniform(low, high, size)

    def normal(self, loc=0.0, scale=1.0, size=None):
        return self._gen.normal(loc, scale, size)

    def lognormal(self, mean=0.0, sigma=1.0, size=None):
        return self._gen.lognormal(mean, sigma, size)

    def exponential(self, scale=1.0, size=None):
        return self._gen.exponential(scale, size)

    def poisson(self, lam, size=None):
        return self._gen.poisson(lam, size)

    def geometric(self, p, size=None):
        return self._gen.geometric(p, size)

    # -- heavy-tailed helpers ------------------------------------------------

    def bounded_pareto(self, alpha, low, high, size=None):
        """Sample a Pareto distribution truncated to ``[low, high]``.

        Uses inverse-CDF sampling of the truncated Pareto, which keeps the
        tail shape while guaranteeing the bound (needed e.g. for monlist
        table sizes capped at 600 entries).
        """
        if not low > 0:
            raise ValueError("low must be positive")
        if not high > low:
            raise ValueError("high must exceed low")
        if not alpha > 0:
            raise ValueError("alpha must be positive")
        u = self._gen.random(size)
        la = low**alpha
        ha = high**alpha
        return (-(u * ha - u * la - ha) / (ha * la)) ** (-1.0 / alpha)

    def zipf_ranks(self, n_ranks, exponent, size=None):
        """Sample 0-based ranks from a Zipf law over ``n_ranks`` items.

        Returns ranks where rank 0 is the most likely.  Used for skewed
        selections such as which AS a victim lives in.
        """
        if n_ranks < 1:
            raise ValueError("n_ranks must be >= 1")
        weights = 1.0 / np.arange(1, n_ranks + 1, dtype=float) ** exponent
        weights /= weights.sum()
        return self._gen.choice(n_ranks, size=size, p=weights)

    def lognormal_for_median(self, median, sigma, size=None):
        """Lognormal samples parameterized by their median instead of mu."""
        if median <= 0:
            raise ValueError("median must be positive")
        return self._gen.lognormal(math.log(median), sigma, size)

    def bernoulli(self, p, size=None):
        """Boolean samples that are ``True`` with probability ``p``."""
        return self._gen.random(size) < p
