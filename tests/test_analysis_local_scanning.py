"""Tests for §7 local analyses, §5 darknet analyses, and Figure 5."""

import pytest

from repro.analysis import (
    as_concentration,
    common_scanner_timeline,
    coordination_report,
    darknet_report,
    daily_attack_counts,
    scanning_leads_attacks_by,
    top_amplifier_table,
    top_victim_table,
    ttl_forensics,
)
from repro.util import date_to_sim


def test_fig5_concentration(victim_report, world):
    report = as_concentration(victim_report, world.table)
    assert report.victim_as_packets
    assert report.amplifier_as_packets
    # Both distributions are heavily concentrated (Fig. 5).  The paper's
    # victim-vs-amplifier ordering is not asserted here: at small scale the
    # handful of (absolute-count) mega amplifiers concentrates the
    # amplifier side far beyond its full-scale shape.
    k = max(3, len(report.victim_as_packets) // 20)
    victim_top = report.victim_ecdf.fraction_within_top(k)
    assert victim_top > 0.3


def test_ovh_is_top_victim_as(victim_report, world):
    report = as_concentration(victim_report, world.table)
    ovh = world.registry.special["HOSTING-FR-1"]
    rank = report.victim_as_rank(ovh.asn)
    assert rank is not None and rank <= 8  # paper: rank 1


def test_table5_shape(world):
    merit_rows = top_amplifier_table(world.isp.sites["merit"])
    assert merit_rows
    assert merit_rows[0]["baf"] > 100  # paper: ~1000-class top amplifiers
    assert merit_rows[0]["unique_victims"] >= 1
    csu_rows = top_amplifier_table(world.isp.sites["csu"])
    assert len(csu_rows) >= 1


def test_table6_shape(world):
    rows = top_victim_table(world.isp.sites["merit"], world.table, world.geo)
    assert rows
    top = rows[0]
    assert top["gb"] > 0.1
    assert top["amplifiers"] >= 1
    assert top["country"]
    assert all(a["gb"] >= b["gb"] for a, b in zip(rows, rows[1:]))


def test_ttl_forensics(world):
    forensics = ttl_forensics(
        world.sweeps, world.attacks, world.isp.sites["csu"].spec.asns
    )
    assert forensics.scanners_look_linux
    assert forensics.attackers_look_windows
    assert forensics.scan_ttl_mode < forensics.attack_ttl_mode


def test_ttl_forensics_requires_data(world):
    with pytest.raises(ValueError):
        ttl_forensics([], world.attacks, world.isp.sites["csu"].spec.asns)


def test_common_scanner_timeline_trickle(world):
    timeline = common_scanner_timeline(world.isp)
    assert timeline
    # A trickle, not a flood (Fig. 16: single digits most days at Merit/CSU
    # after detection thresholds).
    import numpy as np

    assert np.median(list(timeline.values())) < 30


def test_coordination_report(world):
    merit = world.isp.sites["merit"]
    report = coordination_report(merit)
    assert report["victims"] == len(merit.victim_forensics)
    assert 0.0 <= report["fraction"] <= 1.0


def test_darknet_report_shapes(world):
    report = darknet_report(world.darknet)
    totals = report.monthly_totals()
    assert report.rise_factor("2013-11", "2014-02") > 4
    assert 0.3 < report.benign_fractions["2014-03"] < 0.8
    assert max(report.daily_unique_scanners.values()) > 20


def test_scanning_leads_attacks(world):
    report = darknet_report(world.darknet)
    attacks_daily = daily_attack_counts(world.attacks)
    lead = scanning_leads_attacks_by(report.daily_unique_scanners, attacks_daily)
    assert lead is not None
    assert lead >= 0  # scanning ramps first (paper: by about a week)
    assert lead < 45


def test_scanning_lead_edge_cases():
    assert scanning_leads_attacks_by({}, {1: 5}) is None
    assert scanning_leads_attacks_by({1: 5}, {}) is None
    assert scanning_leads_attacks_by({1: 0}, {1: 0}) is None
