"""Load generator: N concurrent simulated clients against the service.

``repro bench-serve`` runs the whole exercise in one process: the service
(ingesting a world's replay in the background) plus ``clients`` coroutine
clients, each issuing ``requests`` HTTP queries drawn round-robin from a
representative mix.  Latency is measured per request from connect to
parsed JSON body, so the numbers include the loop-scheduling cost a real
client would pay while ingestion competes for the loop.

The result dict is the BENCH_serve.json payload: queries/sec, ingest
records/sec, p50/p95/max latency, error counts, plus whatever ingest
accounting the engine reports at the end — the CLI layer adds provenance
and peak RSS, keeping this module importable without the CLI.
"""

from __future__ import annotations

import asyncio
import json
import time

from repro.stream.service import StreamService
from repro.util.stats import percentile

__all__ = ["DEFAULT_QUERY_MIX", "run_loadgen"]

#: Round-robin request mix: windowed reads, sketch reads, accounting.
DEFAULT_QUERY_MIX = (
    "/query/victims",
    "/query/top_victims?n=10",
    "/query/scanners",
    "/query/top_ases?n=5",
    "/query/traffic",
    "/query/ingest",
    "/health",
)


async def _fetch(host, port, target):
    """One HTTP/1.0 GET; returns (status, parsed body)."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        writer.write(f"GET {target} HTTP/1.0\r\nHost: {host}\r\n\r\n".encode())
        await writer.drain()
        raw = await reader.read()
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass
    head, _, body = raw.partition(b"\r\n\r\n")
    status = int(head.split(None, 2)[1])
    return status, json.loads(body)


async def _client(host, port, targets, latencies, errors):
    for target in targets:
        started = time.monotonic()
        try:
            status, _body = await _fetch(host, port, target)
        except (OSError, ValueError, json.JSONDecodeError):
            errors.append(target)
            continue
        latencies.append(time.monotonic() - started)
        if status != 200:
            errors.append(target)


async def _run(world, clients, requests, mix, batch, pace, skew):
    from repro.stream.ingest import StreamEngine
    from repro.stream.replay import replay_plan, replay_records

    plan = replay_plan(world)
    engine = StreamEngine.for_world(world, plan=plan, skew=skew)
    service = StreamService(
        engine, replay_records(world), batch=batch, pace=pace
    )
    await service.start()
    latencies, errors = [], []
    started = time.monotonic()
    try:
        tasks = []
        for c in range(clients):
            targets = [mix[(c + i) % len(mix)] for i in range(requests)]
            tasks.append(
                asyncio.create_task(
                    _client(service.host, service.port, targets, latencies, errors)
                )
            )
        await asyncio.gather(*tasks)
        query_seconds = time.monotonic() - started
        # Let ingestion finish so records/sec covers the whole stream.
        while not service.ingest_done:
            await asyncio.sleep(0.01)
    finally:
        service.request_shutdown()
        await service.stop()

    total_requests = clients * requests
    ok = len(latencies)
    lat_ms = sorted(x * 1000.0 for x in latencies)
    return {
        "clients": clients,
        "requests_per_client": requests,
        "requests_total": total_requests,
        "requests_ok": ok,
        "requests_failed": len(errors),
        "query_mix": list(mix),
        "queries_per_second": round(ok / query_seconds, 2) if query_seconds else 0.0,
        "latency_ms": {
            "p50": round(percentile(lat_ms, 50), 3) if lat_ms else None,
            "p95": round(percentile(lat_ms, 95), 3) if lat_ms else None,
            "max": round(lat_ms[-1], 3) if lat_ms else None,
        },
        "ingest": {
            "records": engine.records_seen,
            "expected": plan["expected_total"],
            "seconds": round(service.ingest_seconds, 4),
            "records_per_second": round(
                engine.records_seen / service.ingest_seconds, 2
            )
            if service.ingest_seconds
            else 0.0,
            "done": service.ingest_done,
            "balanced": engine.balanced,
            "batch": batch,
            "pace": pace,
        },
    }


def run_loadgen(
    world,
    clients=8,
    requests=25,
    mix=DEFAULT_QUERY_MIX,
    batch=256,
    pace=0.0,
    skew=0.0,
):
    """Run the in-process service + client fleet; return the BENCH payload."""
    if clients < 1 or requests < 1:
        raise ValueError("clients and requests must be >= 1")
    return asyncio.run(_run(world, clients, requests, tuple(mix), batch, pace, skew))
