"""Text rendering of the paper's tables and figure data.

Every renderer takes analysis output and returns a plain-text block shaped
like the corresponding artifact in the paper, so examples and the benchmark
harness can print directly comparable material.
"""

from repro.net.ipv4 import format_ip
from repro.population.ports import GAME_PORTS, PORT_LABELS
from repro.util.simtime import format_sim

__all__ = [
    "render_table",
    "render_table1",
    "render_table2",
    "render_table4",
    "render_table5",
    "render_table6",
    "render_monlist_table",
    "render_series",
]


def render_table(headers, rows, title=None):
    """Align a list of rows under headers (all cells become strings)."""
    cells = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_table1(amp_rows, victim_rows):
    """Table 1: per-sample amplifier and victim population aggregates."""
    headers = [
        "Date",
        "AmpIPs",
        "AmpBlocks",
        "AmpASNs",
        "AmpEndHost%",
        "Amp IP/Blk",
        "VicIPs",
        "VicBlocks",
        "VicASNs",
        "VicEndHost%",
        "Vic IP/Blk",
    ]
    rows = []
    for amp, vic in zip(amp_rows, victim_rows):
        rows.append(
            [
                format_sim(amp.t),
                amp.ips,
                amp.blocks,
                amp.asns,
                f"{100 * amp.end_host_fraction:.1f}",
                f"{amp.ips_per_block:.2f}",
                vic["ips"],
                vic["blocks"],
                vic["asns"],
                f"{100 * vic['end_host_fraction']:.1f}",
                f"{vic['ips_per_block']:.2f}",
            ]
        )
    return render_table(headers, rows, title="Table 1: amplifier and victim populations")


def render_table2(mega_dist, amplifier_dist, all_dist, top=12):
    """Table 2: OS strings across the three populations."""
    def ranked(dist):
        return sorted(dist.items(), key=lambda kv: kv[1], reverse=True)[:top]

    headers = ["Rank", "Mega OS", "%", "Amplifier OS", "%", "All NTP OS", "%"]
    mega, amp, allntp = ranked(mega_dist), ranked(amplifier_dist), ranked(all_dist)
    rows = []
    for i in range(max(len(mega), len(amp), len(allntp))):
        def cell(seq, j):
            if j < len(seq):
                return seq[j][0], f"{100 * seq[j][1]:.2f}"
            return "", ""

        m, mp = cell(mega, i)
        a, ap = cell(amp, i)
        n, np_ = cell(allntp, i)
        rows.append([i + 1, m, mp, a, ap, n, np_])
    return render_table(headers, rows, title="Table 2: operating system strings")


def render_table4(port_fractions):
    """Table 4: top attacked ports with labels and game markers."""
    headers = ["Rank", "Port", "Fraction", "Common UDP Use"]
    rows = []
    for rank, (port, fraction) in enumerate(port_fractions, start=1):
        label = PORT_LABELS.get(port, "(g)" if port in GAME_PORTS else "Unknown")
        rows.append([rank, port, f"{fraction:.3f}", label])
    return render_table(headers, rows, title="Table 4: top ports seen in victims at amplifiers")


def render_table5(site_name, rows):
    """Table 5: top amplifiers at a site."""
    headers = ["Amplifier", "BAF", "Unique victims", "GB sent"]
    table_rows = [
        [format_ip(r["ip"]), f"{r['baf']:.0f}", r["unique_victims"], f"{r['gb_sent']:.0f}"]
        for r in rows
    ]
    return render_table(headers, table_rows, title=f"Table 5: top amplifiers at {site_name}")


def render_table6(site_name, rows):
    """Table 6: top victims at a site."""
    headers = ["Victim", "ASN", "Country", "BAF", "Amplifiers", "Dur. Hours", "GB"]
    table_rows = [
        [
            format_ip(r["ip"]),
            f"AS{r['asn']}",
            r["country"],
            f"{r['baf']:.0f}",
            r["amplifiers"],
            f"{r['duration_hours']:.0f}",
            f"{r['gb']:.1f}",
        ]
        for r in rows
    ]
    return render_table(headers, table_rows, title=f"Table 6: top victims at {site_name}")


def render_monlist_table(entries, title="monlist table"):
    """Table 3-style rendering of decoded monitor entries."""
    headers = ["Address", "Src. Port", "Count", "Mode", "Inter-arrival", "Last Seen"]
    rows = [
        [
            format_ip(e.addr),
            e.port,
            e.count,
            e.mode,
            f"{e.avg_interval:.0f}",
            e.last_int,
        ]
        for e in entries
    ]
    return render_table(headers, rows, title=title)


def render_series(series, value_label="value", time_label="t", fmt="{:.4g}"):
    """A two-column rendering of a [(t, value)] series."""
    headers = [time_label, value_label]
    rows = [[t if isinstance(t, str) else f"{t:.2f}", fmt.format(v)] for t, v in series]
    return render_table(headers, rows)
