"""Darknet scanning analyses (Figures 8, 9) and the scanning/attack lead-lag.

Thin, testable wrappers over the telescope dataset plus the cross-dataset
observation the paper highlights: darknet scanning ramps about a week
before attack traffic does — the "early warning" property of darknets.
"""

from dataclasses import dataclass

from repro.util.simtime import DAY

__all__ = ["ScanningReport", "darknet_report", "scanning_leads_attacks_by"]


@dataclass(frozen=True)
class ScanningReport:
    """Figure 8/9 series."""

    monthly_per_slash24: dict  # {month: {"benign": x, "other": y}}
    benign_fractions: dict  # {month: fraction}
    daily_unique_scanners: dict  # {day index: count}

    def monthly_totals(self):
        return {
            month: values["benign"] + values["other"]
            for month, values in self.monthly_per_slash24.items()
        }

    def rise_factor(self, early_month, late_month):
        """Total-volume ratio between two months (paper: ~10x Dec->spring)."""
        totals = self.monthly_totals()
        early = totals.get(early_month, 0.0)
        late = totals.get(late_month, 0.0)
        if early == 0:
            return float("inf") if late > 0 else 0.0
        return late / early


def darknet_report(darknet):
    """Extract the Figure 8/9 series from an :class:`Ipv4Darknet`."""
    monthly = darknet.monthly_packets_per_slash24()
    return ScanningReport(
        monthly_per_slash24=monthly,
        benign_fractions={month: darknet.benign_fraction(month) for month in monthly},
        daily_unique_scanners=darknet.daily_unique_scanners(),
    )


def _ramp_day(series, threshold_fraction=0.25):
    """First day index at which a daily series reaches the given fraction
    of its peak."""
    if not series:
        return None
    peak = max(series.values())
    if peak <= 0:
        return None
    for day in sorted(series):
        if series[day] >= threshold_fraction * peak:
            return day
    return None


def scanning_leads_attacks_by(scanner_daily, attack_daily, threshold_fraction=0.25):
    """Days by which the scanning ramp precedes the attack ramp (§5.1:
    "roughly a week").  Positive = scanning first."""
    scan_day = _ramp_day(scanner_daily, threshold_fraction)
    attack_day = _ramp_day(attack_daily, threshold_fraction)
    if scan_day is None or attack_day is None:
        return None
    return attack_day - scan_day
