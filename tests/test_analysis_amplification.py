"""Tests for BAF accounting and the mega-amplifier census."""

import pytest

from repro.analysis import (
    aggregate_bytes_per_amplifier,
    mega_amplifier_census,
    on_wire_baf,
    payload_baf,
    sample_baf_boxplot,
    version_sample_baf_boxplot,
)
from repro.measurement.onp import ProbeCapture
from repro.ntp import MonlistTable
from repro.ntp.constants import IMPL_XNTPD


def capture_with(n_clients, n_repeats=1):
    table = MonlistTable()
    for i in range(n_clients):
        table.record(100 + i, 123, 3, 4, now=float(i))
    packets = table.render_response_packets(1000.0, 2, IMPL_XNTPD)
    return ProbeCapture(target_ip=7, t=1000.0, packets=tuple(packets), n_repeats=n_repeats)


def test_known_baf_for_four_entries():
    # 4 v2 entries: 296-byte payload -> 362 on-wire -> BAF 4.31.
    assert on_wire_baf(capture_with(4)) == pytest.approx(362 / 84, rel=1e-6)


def test_payload_baf_exceeds_on_wire_baf():
    capture = capture_with(4)
    # Rossow-style payload ratio (296/8) is far larger than on-wire (4.31).
    assert payload_baf(capture) == pytest.approx(37.0)
    assert payload_baf(capture) > on_wire_baf(capture)


def test_full_table_baf():
    baf = on_wire_baf(capture_with(600))
    assert 500 < baf < 700  # ~50 KB reply over an 84-byte query


def test_mega_baf_scales_with_repeats():
    once = on_wire_baf(capture_with(600))
    mega = on_wire_baf(capture_with(600, n_repeats=1000))
    assert mega == pytest.approx(once * 1000)


def test_monlist_boxplots_match_paper_shape(parsed_monlist):
    bp = sample_baf_boxplot(parsed_monlist[0])
    assert 3.0 <= bp.median <= 12.0  # paper: ~4.3 (typical server ~4x)
    assert bp.q3 <= 60.0  # paper: ~15 typically
    assert bp.maximum > 1e5  # mega outliers (paper: ~1e6..1e9)


def test_version_boxplots_match_paper_shape(world):
    bp = version_sample_baf_boxplot(world.onp.version_samples[0])
    assert 3.0 <= bp.q1 <= 5.5
    assert 3.5 <= bp.median <= 6.0  # paper: ~4.6
    assert 4.5 <= bp.q3 <= 9.0  # paper: ~6.9
    assert bp.maximum > 1e4  # loop outliers (paper: up to 2.6e8)


def test_version_quartiles_stable_across_samples(world):
    medians = [
        version_sample_baf_boxplot(s).median for s in world.onp.version_samples
    ]
    assert max(medians) - min(medians) < 1.0  # §3.3: "almost exactly the same"


def test_aggregate_rank_curve(parsed_monlist):
    totals, ranks = aggregate_bytes_per_amplifier(parsed_monlist)
    assert len(totals) == len(ranks)
    values = [v for _, v in ranks]
    assert values == sorted(values, reverse=True)
    # Three-plus orders of magnitude between the top and the median.
    assert values[0] > 1000 * values[len(values) // 2]


def test_mega_census(parsed_monlist):
    census = mega_amplifier_census(parsed_monlist)
    assert census.n_over_100kb >= census.n_over_1gb >= 1
    assert census.largest_bytes > 1e10  # the 136 GB-class amplifier
    assert census.fraction_under_50kb > 0.85  # paper: ~99% under a full table


def test_census_empty():
    census = mega_amplifier_census([])
    assert census.n_over_100kb == 0
    assert census.fraction_under_50kb == 0.0
