"""A binary longest-prefix-match trie over IPv4 prefixes.

Backs the routed-block table: lookups of "which routed block / origin AS does
this IP belong to" happen for every amplifier and victim IP in every weekly
sample, so the structure is kept simple and allocation-light.
"""

from repro.net.ipv4 import Prefix

__all__ = ["PrefixTrie"]


class _Node:
    __slots__ = ("children", "value", "has_value")

    def __init__(self):
        self.children = [None, None]
        self.value = None
        self.has_value = False


class PrefixTrie:
    """Maps IPv4 prefixes to values with longest-prefix-match lookup."""

    def __init__(self):
        self._root = _Node()
        self._size = 0

    def __len__(self):
        return self._size

    def insert(self, prefix, value):
        """Insert (or replace) the value stored at ``prefix``."""
        if not isinstance(prefix, Prefix):
            raise TypeError("insert expects a Prefix")
        node = self._root
        for depth in range(prefix.length):
            bit = (prefix.network >> (31 - depth)) & 1
            if node.children[bit] is None:
                node.children[bit] = _Node()
            node = node.children[bit]
        if not node.has_value:
            self._size += 1
        node.value = value
        node.has_value = True

    def lookup(self, ip):
        """Longest-prefix-match: the value of the most specific covering
        prefix, or ``None`` when nothing covers ``ip``."""
        node = self._root
        best = node.value if node.has_value else None
        for depth in range(32):
            bit = (ip >> (31 - depth)) & 1
            node = node.children[bit]
            if node is None:
                break
            if node.has_value:
                best = node.value
        return best

    def lookup_exact(self, prefix):
        """The value stored at exactly ``prefix``, or ``None``."""
        node = self._root
        for depth in range(prefix.length):
            bit = (prefix.network >> (31 - depth)) & 1
            node = node.children[bit]
            if node is None:
                return None
        return node.value if node.has_value else None

    def __contains__(self, prefix):
        return self.lookup_exact(prefix) is not None

    def items(self):
        """Iterate ``(Prefix, value)`` pairs in network order."""
        stack = [(self._root, 0, 0)]
        out = []
        while stack:
            node, network, depth = stack.pop()
            if node.has_value:
                out.append((Prefix(network, depth), node.value))
            # Push child 1 first so child 0 (lower addresses) pops first.
            if node.children[1] is not None:
                stack.append((node.children[1], network | (1 << (31 - depth)), depth + 1))
            if node.children[0] is not None:
                stack.append((node.children[0], network, depth + 1))
        out.sort(key=lambda item: (item[0].network, item[0].length))
        return out
