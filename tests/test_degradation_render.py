"""Direct tests for the graceful-degradation rendering paths: figure gap
markers and ``world.summary()`` over empty/degraded datasets (previously
asserted only indirectly through the chaos sweep)."""

import copy

from repro.reporting.figures import GAP_CHAR, ascii_bars, ascii_chart, sparkline


# -- sparkline gap markers -----------------------------------------------------


def test_sparkline_renders_gaps_distinct_from_zero():
    line = sparkline([0.0, None, 5.0, None, 10.0])
    assert line[1] == GAP_CHAR and line[3] == GAP_CHAR
    assert line[0] == " "  # a zero is blank, not a gap
    assert line[4] != GAP_CHAR


def test_sparkline_all_gaps():
    assert sparkline([None, None, None]) == GAP_CHAR * 3


def test_sparkline_empty():
    assert sparkline([]) == ""


def test_sparkline_downsampling_preserves_gap_only_chunks():
    # 4 values into width 2: chunk [None, None] must stay a gap, the chunk
    # with a real value must show it.
    line = sparkline([None, None, 3.0, 9.0], width=2)
    assert len(line) == 2
    assert line[0] == GAP_CHAR
    assert line[1] != GAP_CHAR


# -- ascii_chart gap markers ---------------------------------------------------


def test_ascii_chart_marks_gap_columns_and_counts_them():
    series = [(0, 1.0), (1, None), (2, 4.0), (3, None), (4, 2.0)]
    chart = ascii_chart(series, height=4, width=5)
    assert GAP_CHAR in chart
    assert f"{GAP_CHAR} = no data: 2 gap column(s)" in chart


def test_ascii_chart_all_gaps_degrades_to_message():
    assert ascii_chart([(0, None), (1, None)]) == "(no data: all points are measurement gaps)"


def test_ascii_chart_empty_series():
    assert ascii_chart([]) == "(empty series)"


def test_ascii_chart_log_axis_with_gaps_does_not_crash():
    series = [(0, 1e-5), (1, None), (2, 1e-2)]
    chart = ascii_chart(series, height=4, width=3, log=True)
    assert GAP_CHAR in chart


def test_ascii_bars_empty():
    assert ascii_bars([]) == "(no data)"


# -- world.summary() on degraded datasets --------------------------------------


def _degraded_copy(world, *, no_monlist=False, no_versions=False, no_arbor=False):
    """A shallow world copy with selected datasets emptied — simulating an
    apparatus that recorded nothing, without rebuilding anything."""
    degraded = copy.copy(world)
    degraded.onp = copy.copy(world.onp)
    if no_monlist:
        degraded.onp.monlist_samples = []
    if no_versions:
        degraded.onp.version_samples = []
    if no_arbor:
        degraded.arbor = copy.copy(world.arbor)
        degraded.arbor.daily = []
    return degraded


def test_summary_survives_empty_monlist_corpus(world):
    degraded = _degraded_copy(world, no_monlist=True)
    text = degraded.summary()
    assert "Amplifier pool: (no data" in text
    assert "Window: (no data" in text
    assert "Unique amplifier IPs: 0" in text


def test_summary_survives_everything_empty(world):
    degraded = _degraded_copy(world, no_monlist=True, no_versions=True, no_arbor=True)
    text = degraded.summary()
    assert "NTP traffic fraction: (no data" in text
    assert "BAF: (no data" in text
    assert "Window: (no data" in text
    # The ground-truth headline still renders (it needs no measurements).
    assert "host records" in text


def test_summary_window_line_counts_samples(world):
    text = world.summary()
    assert f"({len(world.onp.monlist_samples)} weekly samples)" in text


def test_summary_on_clean_world_reports_all_sections(world):
    text = world.summary()
    for marker in ("NTP traffic fraction:", "Amplifier pool:", "BAF:", "Victims observed:", "Window:"):
        assert marker in text
    assert "(no data" not in text
