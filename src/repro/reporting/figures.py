"""ASCII rendering of the paper's figures.

Terminal-friendly chart primitives: a block-character sparkline, a log-axis
line chart for the traffic/count series, and grouped bars for Figure 2.
Everything returns plain strings; nothing touches a plotting library.
"""

import math

__all__ = ["sparkline", "ascii_chart", "ascii_bars"]

_BLOCKS = " .:-=+*#%@"


def sparkline(values, width=None):
    """One-line density strip of a numeric series (linear scale)."""
    values = list(values)
    if not values:
        return ""
    if width is not None and len(values) > width:
        # Downsample by taking the max of each chunk (peaks matter here).
        chunk = len(values) / width
        values = [
            max(values[int(i * chunk) : max(int(i * chunk) + 1, int((i + 1) * chunk))])
            for i in range(width)
        ]
    top = max(values)
    if top <= 0:
        return " " * len(values)
    return "".join(_BLOCKS[min(9, int(v / top * 9.999))] if v > 0 else " " for v in values)


def ascii_chart(series, height=12, width=64, log=False, title=None, value_fmt="{:.3g}"):
    """A y-vs-x line chart of a [(x, y)] series as text.

    ``log=True`` uses a log10 y-axis — how Figures 1, 3, and 4a read.
    """
    series = [(x, y) for x, y in series]
    if not series:
        return "(empty series)"
    ys = [y for _, y in series]
    if log:
        floor = min(y for y in ys if y > 0) if any(y > 0 for y in ys) else 1e-12
        transform = lambda y: math.log10(max(y, floor / 10))
    else:
        transform = lambda y: y
    ty = [transform(y) for y in ys]
    lo, hi = min(ty), max(ty)
    span = (hi - lo) or 1.0

    # Downsample x to the chart width.
    n = len(series)
    columns = min(width, n)
    grid = [[" "] * columns for _ in range(height)]
    for c in range(columns):
        index = int(c * (n - 1) / max(1, columns - 1))
        level = (ty[index] - lo) / span
        row = height - 1 - int(level * (height - 1))
        grid[row][c] = "*"
    lines = []
    if title:
        lines.append(title)
    top_label = value_fmt.format(max(ys))
    bottom_label = value_fmt.format(min(ys))
    for r, row in enumerate(grid):
        prefix = top_label if r == 0 else (bottom_label if r == height - 1 else "")
        lines.append(f"{prefix:>10} |" + "".join(row))
    lines.append(" " * 11 + "+" + "-" * columns)
    return "\n".join(lines)


def ascii_bars(rows, width=40, title=None, value_fmt="{:.2f}"):
    """Horizontal bars for (label, value) rows, scaled to the max value."""
    rows = list(rows)
    if not rows:
        return "(no data)"
    top = max(v for _, v in rows) or 1.0
    label_width = max(len(str(label)) for label, _ in rows)
    lines = [title] if title else []
    for label, value in rows:
        bar = "#" * int(value / top * width)
        lines.append(f"{str(label):>{label_width}}  {bar} {value_fmt.format(value)}")
    return "\n".join(lines)
