"""Tests for NTP wire formats: encode/decode round-trips and strictness."""

import pytest
from hypothesis import given, strategies as st

from repro.ntp import (
    IMPL_XNTPD,
    IMPL_XNTPD_OLD,
    MODE_CLIENT,
    MODE_SERVER,
    REQ_MON_GETLIST,
    REQ_MON_GETLIST_1,
    WireError,
    decode_mode3_or_4,
    decode_mode6,
    decode_mode7,
    encode_mode3,
    encode_mode4,
    encode_mode6_request,
    encode_mode6_response,
    encode_mode7_request,
    encode_mode7_response,
    mode_of,
)
from repro.ntp.constants import CTL_OP_READVAR, MON_ENTRY_V1_SIZE, MON_ENTRY_V2_SIZE
from repro.ntp.wire import MonitorEntry, decode_monitor_entries, encode_monitor_entry
from tests.strategies import entry_versions, ips, ports


def make_entry(**overrides):
    base = dict(
        last_int=10,
        first_int=1000,
        count=5,
        addr=0x01020304,
        daddr=0,
        flags=0,
        port=50000,
        mode=7,
        version=2,
        restr=0,
    )
    base.update(overrides)
    return MonitorEntry(**base)


def test_mode7_request_is_8_bytes():
    data = encode_mode7_request(IMPL_XNTPD, REQ_MON_GETLIST_1)
    assert len(data) == 8
    assert mode_of(data) == 7


def test_mode7_request_round_trip():
    data = encode_mode7_request(IMPL_XNTPD_OLD, REQ_MON_GETLIST)
    pkt = decode_mode7(data)
    assert not pkt.response
    assert pkt.implementation == IMPL_XNTPD_OLD
    assert pkt.request_code == REQ_MON_GETLIST
    assert pkt.n_items == 0


@pytest.mark.parametrize(
    "entry_version,size", [(1, MON_ENTRY_V1_SIZE), (2, MON_ENTRY_V2_SIZE)]
)
def test_entry_sizes(entry_version, size):
    assert len(encode_monitor_entry(make_entry(), entry_version)) == size


def test_entry_round_trip_v2():
    entry = make_entry()
    data = encode_monitor_entry(entry, 2)
    [decoded] = decode_monitor_entries(data, MON_ENTRY_V2_SIZE, 1)
    assert decoded == entry


def test_entry_round_trip_v1_drops_restr():
    entry = make_entry(restr=7)
    data = encode_monitor_entry(entry, 1)
    [decoded] = decode_monitor_entries(data, MON_ENTRY_V1_SIZE, 1)
    assert decoded.restr == 0
    assert decoded.count == entry.count
    assert decoded.addr == entry.addr


def test_entry_count_clamped_to_u32():
    entry = make_entry(count=2**40)
    data = encode_monitor_entry(entry, 2)
    [decoded] = decode_monitor_entries(data, MON_ENTRY_V2_SIZE, 1)
    assert decoded.count == 2**32 - 1


def test_entry_avg_interval():
    assert make_entry(last_int=0, first_int=100, count=11).avg_interval == 10.0
    assert make_entry(count=1).avg_interval == 0.0


def test_mode7_response_round_trip():
    entries = [make_entry(addr=i) for i in range(4)]
    encoded = [encode_monitor_entry(e, 2) for e in entries]
    data = encode_mode7_response(IMPL_XNTPD, REQ_MON_GETLIST_1, 3, True, encoded, MON_ENTRY_V2_SIZE)
    pkt = decode_mode7(data)
    assert pkt.response and pkt.more
    assert pkt.sequence == 3
    assert pkt.n_items == 4
    assert pkt.item_size == MON_ENTRY_V2_SIZE
    assert [e.addr for e in pkt.items] == [0, 1, 2, 3]


def test_mode7_response_rejects_bad_sequence():
    with pytest.raises(WireError):
        encode_mode7_response(IMPL_XNTPD, REQ_MON_GETLIST_1, 200, False, [], MON_ENTRY_V2_SIZE)


def test_mode7_response_rejects_size_mismatch():
    with pytest.raises(WireError):
        encode_mode7_response(
            IMPL_XNTPD, REQ_MON_GETLIST_1, 0, False, [b"\x00" * 10], MON_ENTRY_V2_SIZE
        )


def test_decode_mode7_rejects_short_and_wrong_mode():
    with pytest.raises(WireError):
        decode_mode7(b"\x07")
    with pytest.raises(WireError):
        decode_mode7(encode_mode3())


def test_mode6_request_round_trip():
    data = encode_mode6_request(CTL_OP_READVAR, sequence=9)
    assert len(data) == 12
    pkt = decode_mode6(data)
    assert not pkt.response
    assert pkt.opcode == CTL_OP_READVAR
    assert pkt.sequence == 9
    assert pkt.count == 0


def test_mode6_response_round_trip():
    payload = b'version="ntpd 4.2.6"'
    data = encode_mode6_response(CTL_OP_READVAR, payload, sequence=1, more=True)
    pkt = decode_mode6(data)
    assert pkt.response and pkt.more
    assert pkt.data == payload
    assert len(data) % 4 == 0  # padded


def test_mode6_rejects_short():
    with pytest.raises(WireError):
        decode_mode6(b"\x06\x00")


def test_mode3_mode4_round_trip():
    data = encode_mode3()
    assert len(data) == 48
    pkt = decode_mode3_or_4(data)
    assert pkt.mode == MODE_CLIENT
    reply = encode_mode4(stratum=2, leap=0)
    decoded = decode_mode3_or_4(reply)
    assert decoded.mode == MODE_SERVER
    assert decoded.stratum == 2


def test_mode4_unsynchronized_leap():
    pkt = decode_mode3_or_4(encode_mode4(stratum=16, leap=3))
    assert pkt.leap == 3
    assert pkt.stratum == 16


def test_decode_mode3_rejects_control_packets():
    with pytest.raises(WireError):
        decode_mode3_or_4(encode_mode6_request(CTL_OP_READVAR) + b"\x00" * 40)


def test_mode_of_empty():
    with pytest.raises(WireError):
        mode_of(b"")


@given(ips, ips, ips, ports, st.integers(min_value=0, max_value=7), entry_versions)
def test_entry_round_trip_property(last_int, first_int, count, port, mode, entry_version):
    """Property: any in-range entry survives an encode/decode round trip."""
    entry = MonitorEntry(
        last_int=last_int,
        first_int=first_int,
        count=count,
        addr=0x0A000001,
        daddr=0,
        flags=0,
        port=port,
        mode=mode,
        version=2,
    )
    size = MON_ENTRY_V1_SIZE if entry_version == 1 else MON_ENTRY_V2_SIZE
    data = encode_monitor_entry(entry, entry_version)
    [decoded] = decode_monitor_entries(data, size, 1)
    assert decoded.last_int == last_int
    assert decoded.first_int == first_int
    assert decoded.count == count
    assert decoded.port == port
    assert decoded.mode == mode
