"""Darknet telescopes (IPv4 ≈/9 and IPv6)."""

from repro.telescope.darknet import Ipv4Darknet, Ipv6Darknet

__all__ = ["Ipv4Darknet", "Ipv6Darknet"]
