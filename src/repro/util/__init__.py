"""Shared utilities: deterministic RNG streams, simulation time, statistics.

These are the foundation layer; nothing in :mod:`repro.util` imports from any
other ``repro`` subpackage.
"""

from repro.util.pool import (
    ShardRunner,
    available_cpus,
    fork_pool_gate,
    summarize_shard_stats,
)
from repro.util.rng import RngStream, derive_seed
from repro.util.simtime import (
    SimClock,
    Timeline,
    date_to_sim,
    day_index,
    format_sim,
    hour_index,
    month_key,
    sim_to_date,
    week_samples,
    DAY,
    HOUR,
    MINUTE,
    WEEK,
    SIM_EPOCH,
)
from repro.util.stats import (
    BoxplotSummary,
    Ecdf,
    boxplot_summary,
    percentile,
    rank_series,
    safe_ratio,
)

__all__ = [
    "ShardRunner",
    "available_cpus",
    "fork_pool_gate",
    "summarize_shard_stats",
    "RngStream",
    "derive_seed",
    "SimClock",
    "Timeline",
    "date_to_sim",
    "day_index",
    "format_sim",
    "hour_index",
    "month_key",
    "sim_to_date",
    "week_samples",
    "DAY",
    "HOUR",
    "MINUTE",
    "WEEK",
    "SIM_EPOCH",
    "BoxplotSummary",
    "Ecdf",
    "boxplot_summary",
    "percentile",
    "rank_series",
    "safe_ratio",
]
