"""Figure 7: attacks per hour derived from monlist start-time estimates.

Paper: attack counts climb from the first January samples, peak around
February 12 (the OVH/CloudFlare event), and decline afterwards; mean
514/hour, median 280/hour at full scale — all lower bounds given the
~44-hour view window.
"""

from collections import defaultdict

from repro.util import date_to_sim, format_sim


def test_fig07_attack_timeseries(benchmark, victim_report):
    hours = benchmark(victim_report.attacks_per_hour)
    assert hours

    daily = defaultdict(int)
    for hour, count in hours.items():
        daily[hour // 24] += count
    days = sorted(daily)

    peak_day = max(daily, key=daily.get)
    peak_t = peak_day * 86400
    # Peak in the late-January..early-March band around the OVH event.
    assert date_to_sim(2014, 1, 20) <= peak_t <= date_to_sim(2014, 3, 10)

    january = [daily[d] for d in days if d * 86400 < date_to_sim(2014, 1, 20)]
    late = [daily[d] for d in days if d * 86400 > date_to_sim(2014, 4, 1)]
    # Counting one attack per (victim, sample) — the paper's rule —
    # saturates at simulation scale once the active victim pool is fully
    # hit each week, so the peak-vs-January ratio is compressed relative
    # to the paper's ~10x; direction and timing still hold.
    assert daily[peak_day] > 1.15 * max(january)
    if late:
        assert max(late) < daily[peak_day]

    # Some derived start times predate the first sample (tables retain
    # older victims — the dashed-line region of the figure).
    assert min(days) * 86400 < date_to_sim(2014, 1, 10)

    print(
        f"\nFig7: peak {daily[peak_day]} attacks/day on {format_sim(peak_t)}; "
        f"first derived day {format_sim(min(days) * 86400)}"
    )
