"""Figure 11: Merit NTP traffic over three months.

Paper: NTP at Merit is negligible until the third week of December 2013,
then rises almost instantaneously in both directions, with sport=123
(amplifier replies leaving the network) spiking past 200 MB/s.
"""

import numpy as np

from repro.util import date_to_sim


def series_views(site):
    return {
        "out": site.hourly_mbps(site.ntp_out),
        "in_reflected": site.hourly_mbps(site.ntp_in_reflected),
        "queries": site.hourly_mbps(site.ntp_in_queries),
    }


def test_fig11_merit_traffic(benchmark, world):
    merit = world.isp.sites["merit"]
    views = benchmark(series_views, merit)
    out = views["out"]

    def window_mean(series, start_day, end_day):
        a = int((date_to_sim(2013, 12, start_day) - merit.start) // 3600)
        b = int((date_to_sim(2013, 12, end_day) - merit.start) // 3600)
        return series[a:b].mean()

    early_dec = window_mean(out, 1, 14)
    late_dec = window_mean(out, 20, 31)
    feb_a = int((date_to_sim(2014, 2, 1) - merit.start) // 3600)
    feb = out[feb_a : feb_a + 24 * 14]

    # Attack-driven egress appears in late December and dwarfs early
    # December; February runs far hotter still.
    assert late_dec > 2 * max(early_dec, 1e-9)
    assert feb.mean() > late_dec
    assert feb.max() > 5 * max(late_dec, 1e-9)
    # Query-direction (dport=123) ingress also rises.
    assert views["queries"][feb_a : feb_a + 24 * 14].mean() >= 0

    print(
        f"\nFig11 Merit NTP out MB/s: early-Dec={early_dec:.3f} late-Dec={late_dec:.3f} "
        f"Feb mean={feb.mean():.2f} Feb peak={feb.max():.1f}"
    )
