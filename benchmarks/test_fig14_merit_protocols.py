"""Figure 14: all traffic at Merit by protocol.

Paper: against a 15-25 Gbps baseline dominated by web traffic, NTP rises
steeply from nothing to a visible band — roughly 2% additional traffic
overall, enough to carry transit-cost consequences under a 95th-percentile
billing model.
"""

import numpy as np

from repro.util import RngStream, date_to_sim


def protocol_view(world):
    merit = world.isp.sites["merit"]
    background = merit.background_series(RngStream(77, "fig14").generator)
    ntp = merit.ntp_out + merit.ntp_in_reflected + merit.ntp_in_queries
    return merit, background, ntp


def test_fig14_merit_protocols(benchmark, world):
    merit, background, ntp = benchmark(protocol_view, world)

    total_background = sum(s for s in background.values())
    # Web dominates the baseline.
    assert background["http"].mean() > background["https"].mean() > background["dns"].mean()

    # NTP fraction of total: negligible in early December, percent-level
    # during the attack window.
    dec = slice(0, 24 * 10)
    feb_start = int((date_to_sim(2014, 2, 1) - merit.start) // 3600)
    feb = slice(feb_start, feb_start + 24 * 20)
    ntp_frac_dec = ntp[dec].sum() / total_background[dec].sum()
    ntp_frac_feb = ntp[feb].sum() / total_background[feb].sum()
    assert ntp_frac_dec < 0.01
    assert ntp_frac_feb > 3 * max(ntp_frac_dec, 1e-6)

    # 95th-percentile billing impact: the attack months' p95 NTP load is
    # well above the pre-attack p95.
    p95_dec = np.percentile(ntp[dec], 95)
    p95_feb = np.percentile(ntp[feb], 95)
    assert p95_feb > p95_dec

    print(
        f"\nFig14: NTP share of Merit traffic Dec={ntp_frac_dec:.4f} Feb={ntp_frac_feb:.4f} "
        f"(paper: ~2% extra at peak)"
    )
