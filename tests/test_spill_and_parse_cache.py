"""Direct unit coverage for two janitors previously tested only in passing.

* :func:`~repro.measurement.capture_store.sweep_stale_spills` — dead-PID
  spill removal through the explicit ``directory=`` argument (the
  supervision suite only exercises the ``REPRO_SPILL_DIR`` path), plus
  idempotence and the live-PID / foreign-file guarantees;
* the parse cache's envelope-format discipline — a format-2 reader must
  refuse format-1 (and future-format) entries with a :class:`CacheMiss`
  naming the format, and ``load_or_parse_corpus`` must fall back to a
  real parse over such an entry rather than trusting it.
"""

import os
import pickle

import pytest

from repro.analysis.parse_cache import (
    CacheMiss,
    cached_corpus_path,
    corpus_digest,
    load_or_parse_corpus,
    load_parsed_corpus,
    save_parsed_corpus,
)
from repro.measurement.capture_store import sweep_stale_spills
from repro.scenario.world import PaperWorld

# ---------------------------------------------------------------------------
# sweep_stale_spills via the explicit directory argument
# ---------------------------------------------------------------------------


def _dead_pid():
    """A PID guaranteed dead: fork a child and reap it."""
    pid = os.fork()
    if pid == 0:
        os._exit(0)
    os.waitpid(pid, 0)
    return pid


def test_sweep_directory_argument_removes_only_dead_pid_spills(tmp_path):
    dead = tmp_path / f"repro-spill-{_dead_pid()}-abc.bin"
    own = tmp_path / f"repro-spill-{os.getpid()}-def.bin"
    foreign = tmp_path / "not-a-spill.bin"
    truncated_name = tmp_path / "repro-spill-notapid-x.bin"
    for path in (dead, own, foreign, truncated_name):
        path.write_bytes(b"x" * 8)

    removed = sweep_stale_spills(directory=str(tmp_path))

    assert removed == [str(dead)]
    assert not dead.exists()
    assert own.exists(), "a live PID's spill must never be touched"
    assert foreign.exists(), "non-spill files must never be touched"
    assert truncated_name.exists(), "non-matching names must never be touched"


def test_sweep_is_idempotent_and_inert_on_missing_directory(tmp_path):
    spill = tmp_path / f"repro-spill-{_dead_pid()}-abc.bin"
    spill.write_bytes(b"x")
    first = sweep_stale_spills(directory=str(tmp_path))
    second = sweep_stale_spills(directory=str(tmp_path))
    assert len(first) == 1
    assert second == []
    assert sweep_stale_spills(directory=str(tmp_path / "missing")) == []


def test_sweep_explicit_directory_ignores_env_var(tmp_path, monkeypatch):
    env_dir = tmp_path / "env"
    env_dir.mkdir()
    env_spill = env_dir / f"repro-spill-{_dead_pid()}-env.bin"
    env_spill.write_bytes(b"x")
    arg_dir = tmp_path / "arg"
    arg_dir.mkdir()
    monkeypatch.setenv("REPRO_SPILL_DIR", str(env_dir))

    assert sweep_stale_spills(directory=str(arg_dir)) == []
    assert env_spill.exists(), "explicit directory= must not sweep the env dir"


# ---------------------------------------------------------------------------
# Parse-cache envelope format discipline
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def corpus():
    world = PaperWorld.build(seed=7, scale=0.0002)
    return list(world.onp.monlist_samples)


def _rewrite_format(path, new_format):
    with open(path, "rb") as handle:
        payload = pickle.load(handle)
    payload["format"] = new_format
    with open(path, "wb") as handle:
        pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)


def test_format_1_entries_are_rejected_with_cache_miss(corpus, tmp_path):
    parsed, n = load_or_parse_corpus(corpus, cache_dir=str(tmp_path))
    assert n == len(corpus)
    digest = corpus_digest(corpus)
    path = cached_corpus_path(digest, str(tmp_path))
    assert os.path.exists(path)

    # A freshly written envelope loads fine...
    assert load_parsed_corpus(path, digest) is not None

    # ...a format-1 rewrite of the same bytes must not.
    _rewrite_format(path, 1)
    with pytest.raises(CacheMiss) as excinfo:
        load_parsed_corpus(path, digest)
    assert "cache envelope format" in str(excinfo.value)
    assert "1" in str(excinfo.value)


@pytest.mark.parametrize("bad_format", [1, 3, None, "2"])
def test_only_the_current_envelope_format_is_accepted(corpus, tmp_path, bad_format):
    digest = corpus_digest(corpus)
    path = cached_corpus_path(digest, str(tmp_path))
    load_or_parse_corpus(corpus, cache_dir=str(tmp_path))
    _rewrite_format(path, bad_format)
    with pytest.raises(CacheMiss):
        load_parsed_corpus(path, digest)


def test_load_or_parse_falls_back_to_a_real_parse_on_stale_format(corpus, tmp_path):
    cache_dir = str(tmp_path)
    parsed_first, n_first = load_or_parse_corpus(corpus, cache_dir=cache_dir)
    assert n_first == len(corpus)
    parsed_hit, n_hit = load_or_parse_corpus(corpus, cache_dir=cache_dir)
    assert n_hit == 0, "a valid entry must hit"

    path = cached_corpus_path(corpus_digest(corpus), cache_dir)
    _rewrite_format(path, 1)
    parsed_again, n_again = load_or_parse_corpus(corpus, cache_dir=cache_dir)
    assert n_again == len(corpus), "a stale-format entry must force a re-parse"

    # The re-parse rewrote the entry at the current format: hits resume.
    _parsed, n_after = load_or_parse_corpus(corpus, cache_dir=cache_dir)
    assert n_after == 0

    # And every path produced the same analysis input.
    for a, b in zip(parsed_first, parsed_again):
        assert a.t == b.t
        assert len(a.tables) == len(b.tables)
        assert a.stats == b.stats
