"""A parse-once handle over a built world's analysis inputs.

Almost every artifact starts the same way: decode the 15-sample monlist
corpus, derive the victimology report from the parsed tables, and maybe
aggregate victims by AS.  Before this module each renderer did that work
privately, so ``summary`` + ``validate`` + a handful of figures re-decoded
the same five-million-entry corpus once *each*.  An :class:`AnalysisContext`
owns the memoized handles instead: any number of consumers share exactly one
corpus decode per CLI invocation.

Two properties make the sharing safe:

* every derived object is a pure function of the (immutable once built)
  world, so memoization cannot change any output byte;
* the memos are lazy — a context handed to a renderer that only reads flow
  data (Fig 11..15) never triggers a parse at all.

The context also keeps the books: ``parse_calls`` records how many sample
parses *this context* triggered, and the module-level counter in
:mod:`repro.analysis.monlist_parse` records every parse in the process —
tests pin the parse-once contract on both.
"""

from repro.analysis.parse_cache import load_or_parse_corpus

__all__ = ["AnalysisContext"]


class AnalysisContext:
    """Shared, lazily-populated analysis state for one world.

    ``jobs`` only affects how fast :meth:`parsed_samples` is computed
    (sample-level process parallelism); every result is identical at any
    worker count.
    """

    def __init__(self, world, jobs=1):
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.world = world
        self.jobs = jobs
        #: Sample parses this context has performed (0 until the first
        #: consumer needs the corpus; then exactly one corpus decode).
        self.parse_calls = 0
        self._parsed = None
        self._victim_report = None
        self._concentration = None
        self._responder_sets = None
        self._version_report = None

    def parsed_samples(self):
        """The parsed monlist corpus (one decode, ever, per context).

        When a parsed-corpus cache directory is configured (the
        ``REPRO_PARSE_CACHE`` environment variable), a hit skips the
        decode entirely — visible here as ``parse_calls`` staying at 0.
        """
        if self._parsed is None:
            samples = self.world.onp.monlist_samples
            self._parsed, n_parses = load_or_parse_corpus(samples, jobs=self.jobs)
            self.parse_calls += n_parses
        return self._parsed

    def victim_report(self):
        """The §4 victimology report over the parsed corpus."""
        if self._victim_report is None:
            from repro.analysis.victimology import analyze_dataset
            from repro.attack.scanner import ONP_PROBER_IP

            self._victim_report = analyze_dataset(self.parsed_samples(), onp_ip=ONP_PROBER_IP)
        return self._victim_report

    def concentration(self):
        """The §4.3 AS-concentration report (victims aggregated by AS)."""
        if self._concentration is None:
            from repro.analysis.concentration import as_concentration

            self._concentration = as_concentration(self.victim_report(), self.world.table)
        return self._concentration

    def version_report(self):
        """The §3.3 version-probe report over all mode-6 captures.

        The regex-heavy system-variable parse is the most expensive
        non-monlist analysis; Table 2 and the conformance invariants both
        consume it, so it is memoized here like the monlist corpus.
        """
        if self._version_report is None:
            from repro.analysis.versions import parse_version_samples

            self._version_report = parse_version_samples(self.world.onp.version_samples)
        return self._version_report

    def responder_ip_sets(self):
        """Per-monlist-sample responder-IP sets, in sample order.

        Delegates to the samples' own length-guarded caches, so a set
        computed here is the same object later ``responder_ips()`` callers
        see (and vice versa).  Callers must not mutate the sets.
        """
        if self._responder_sets is None:
            self._responder_sets = [
                sample.responder_ips() for sample in self.world.onp.monlist_samples
            ]
        return self._responder_sets

    def warm(self):
        """Force the corpus decode now (before forking render workers, or
        to time the parse phase in isolation); returns self."""
        self.parsed_samples()
        return self
