"""Routed-block table: the BGP-table stand-in used for aggregation.

Table 1 and Figure 3 aggregate IPs at four levels: unique IPs, /24s, routed
blocks, and origin ASNs.  The routed blocks here are the prefixes allocated
by the :class:`~repro.net.asn.ASRegistry` address plan.
"""

from dataclasses import dataclass

from repro.net.ipv4 import slash24_of
from repro.net.trie import PrefixTrie

__all__ = ["RoutedBlockTable", "AggregateCounts", "aggregate_counts"]


class RoutedBlockTable:
    """Longest-prefix-match lookup from IP to (routed block, origin AS)."""

    def __init__(self, registry):
        self._trie = PrefixTrie()
        self._n_blocks = 0
        for prefix, system in registry.all_prefixes():
            self._trie.insert(prefix, (prefix, system))
            self._n_blocks += 1
        self._registry = registry

    @property
    def n_blocks(self):
        return self._n_blocks

    def lookup(self, ip):
        """``(Prefix, AutonomousSystem)`` covering ``ip``, or ``None``."""
        return self._trie.lookup(ip)

    def block_of(self, ip):
        hit = self._trie.lookup(ip)
        return hit[0] if hit else None

    def origin_as(self, ip):
        hit = self._trie.lookup(ip)
        return hit[1] if hit else None

    def asn_of(self, ip):
        system = self.origin_as(ip)
        return system.asn if system else None

    def continent_of(self, ip):
        system = self.origin_as(ip)
        return system.continent if system else None


@dataclass(frozen=True)
class AggregateCounts:
    """The four aggregation levels reported in Table 1 / Figure 3."""

    ips: int
    slash24s: int
    blocks: int
    asns: int

    @property
    def ips_per_block(self):
        if self.blocks == 0:
            return 0.0
        return self.ips / self.blocks


def aggregate_counts(ips, table):
    """Count unique IPs, /24s, routed blocks, and origin ASNs for a set of IPs.

    IPs that fall outside the routed plan (there should be none in a
    well-formed scenario) are excluded from block/ASN counts but still
    counted as IPs and /24s, mirroring how unrouted junk would be handled
    with a real BGP snapshot.
    """
    unique = set(ips)
    nets24 = {slash24_of(ip) for ip in unique}
    blocks = set()
    asns = set()
    for ip in unique:
        hit = table.lookup(ip)
        if hit is None:
            continue
        prefix, system = hit
        blocks.add(prefix)
        asns.add(system.asn)
    return AggregateCounts(ips=len(unique), slash24s=len(nets24), blocks=len(blocks), asns=len(asns))
