"""AS-level concentration of attack traffic (Figure 5).

For each victim observation, attribute its packets both to the victim's
origin AS and to the amplifier's origin AS, then build the two rank-CDFs
the paper plots: the top 100 amplifier ASes source ~60% of victim packets,
and the top 100 victim ASes absorb ~75%.
"""

from collections import defaultdict
from dataclasses import dataclass

from repro.util.stats import Ecdf

__all__ = ["ConcentrationReport", "as_concentration"]


@dataclass
class ConcentrationReport:
    victim_as_packets: dict
    amplifier_as_packets: dict

    @property
    def victim_ecdf(self):
        return Ecdf(self.victim_as_packets.values())

    @property
    def amplifier_ecdf(self):
        return Ecdf(self.amplifier_as_packets.values())

    def top_victim_ases(self, n=10):
        """[(asn, packets)] sorted by packets received, descending."""
        return sorted(self.victim_as_packets.items(), key=lambda kv: kv[1], reverse=True)[:n]

    def victim_as_rank(self, asn):
        """1-based rank of an AS in the victim table, or None."""
        ordered = sorted(self.victim_as_packets.items(), key=lambda kv: kv[1], reverse=True)
        for rank, (a, _) in enumerate(ordered, start=1):
            if a == asn:
                return rank
        return None


def as_concentration(report, table):
    """Build the Figure-5 view from a victimology report and a routing
    table (IPs outside the plan are dropped, as unrouted junk would be)."""
    victim_packets = defaultdict(int)
    amplifier_packets = defaultdict(int)
    for sample in report.samples:
        for obs in sample.observations:
            victim_asn = table.asn_of(obs.victim_ip)
            amp_asn = table.asn_of(obs.amplifier_ip)
            if victim_asn is not None:
                victim_packets[victim_asn] += obs.packets
            if amp_asn is not None:
                amplifier_packets[amp_asn] += obs.packets
    return ConcentrationReport(
        victim_as_packets=dict(victim_packets),
        amplifier_as_packets=dict(amplifier_packets),
    )
