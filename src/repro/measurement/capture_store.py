"""Packed storage for ONP probe captures: one blob, not a million tuples.

At ``scale=1.0`` a single monlist sweep renders mode-7 replies from
~1.4M amplifiers.  Holding those as per-capture Python tuples of bytes
objects costs several GB of object overhead before the payload itself;
this module packs a whole sweep (or one build-block's slice of it) into
five flat index arrays plus a single contiguous payload blob:

``target_ips[i]``, ``n_repeats[i]``
    per-capture identity (as in :class:`repro.measurement.onp.ProbeCapture`);
``pkt_counts[i]``, ``pkt_offsets`` (prefix sums)
    which packets belong to capture ``i``;
``pkt_lens[j]``, ``byte_offsets`` (prefix sums)
    where packet ``j``'s bytes live in ``payload``.

The payload can live in RAM (``np.ndarray``) or — past a configurable
threshold — in an anonymous memory-mapped spill file, so a full-scale
corpus streams from disk through ``np.memmap`` windows instead of
occupying tens of GB of RSS.  The spill file is unlinked immediately
after mapping: POSIX keeps the mapping alive through the open fd, so
nothing leaks even on a crashed run.

Spill files carry an integrity header (magic + payload length + CRC-32)
that is validated before the payload is mapped: a truncated write (full
disk, killed process) or corrupted file fails loudly, naming the path,
instead of feeding garbage bytes into the analysis.  File names embed
the writing PID so :func:`sweep_stale_spills` can remove files that a
dead process left behind in a configured ``REPRO_SPILL_DIR`` (the
window between ``mkstemp`` and ``unlink`` in a SIGKILLed run).

A ``PackedCaptures`` also doubles as the worker→parent transport for the
sharded ONP sweep (it pickles compactly) and as the cache-pickle form
(``__getstate__`` re-inlines a spilled payload so a cached world never
depends on an unlinked temp file).
"""

from __future__ import annotations

import os
import re
import struct
import tempfile
import zlib

import numpy as np

__all__ = [
    "PackedCaptures",
    "PackedCapturesBuilder",
    "SpillError",
    "spill_threshold_bytes",
    "write_spill",
    "map_spill",
    "maybe_spill_array",
    "inline_array",
    "sweep_stale_spills",
]

#: Environment knobs for the spill layer.
SPILL_MB_ENV = "REPRO_SPILL_MB"
SPILL_DIR_ENV = "REPRO_SPILL_DIR"

#: Default payload size past which a store spills to a memmap (256 MB).
_DEFAULT_SPILL_MB = 256

#: Spill-file integrity header: magic, payload length, CRC-32.
SPILL_MAGIC = b"RSPILL01"
_SPILL_HEADER = struct.Struct(">8sQI")
SPILL_HEADER_SIZE = _SPILL_HEADER.size

#: Spill file names embed the writing PID for the stale-file sweep.
_SPILL_NAME_RE = re.compile(r"repro-spill-(\d+)-.*\.bin$")


class SpillError(RuntimeError):
    """A spill file failed integrity validation (always names the path)."""


def spill_threshold_bytes():
    """The configured spill threshold in bytes (``REPRO_SPILL_MB`` MB)."""
    try:
        mb = float(os.environ.get(SPILL_MB_ENV, _DEFAULT_SPILL_MB))
    except ValueError:
        mb = _DEFAULT_SPILL_MB
    return int(mb * 1024 * 1024)


def write_spill(data, directory=None):
    """Write payload bytes to a fresh spill file with the integrity
    header; returns the file's path.  ``directory`` defaults to
    ``REPRO_SPILL_DIR`` (or the system temp dir when unset)."""
    if directory is None:
        directory = os.environ.get(SPILL_DIR_ENV) or None
    fd, path = tempfile.mkstemp(
        prefix=f"repro-spill-{os.getpid()}-", suffix=".bin", dir=directory
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(
                _SPILL_HEADER.pack(SPILL_MAGIC, len(data), zlib.crc32(data) & 0xFFFFFFFF)
            )
            handle.write(data)
    except BaseException:
        try:
            os.unlink(path)
        except OSError:
            pass
        raise
    return path


def map_spill(path):
    """Validate a spill file's header and memory-map its payload.

    Raises :class:`SpillError` naming the path when the file is shorter
    than its header, carries the wrong magic, promises a different
    payload length than it holds, or fails the checksum — garbage bytes
    must never silently enter the analysis.
    """
    try:
        size = os.path.getsize(path)
    except OSError as exc:
        raise SpillError(f"unreadable spill file {path}: {exc}") from None
    if size < SPILL_HEADER_SIZE:
        raise SpillError(
            f"corrupt spill file {path}: {size} bytes is shorter than "
            f"the {SPILL_HEADER_SIZE}-byte header"
        )
    with open(path, "rb") as handle:
        magic, length, checksum = _SPILL_HEADER.unpack(handle.read(SPILL_HEADER_SIZE))
    if magic != SPILL_MAGIC:
        raise SpillError(f"corrupt spill file {path}: bad magic {magic!r}")
    if size - SPILL_HEADER_SIZE != length:
        raise SpillError(
            f"short spill file {path}: header promises {length} payload bytes, "
            f"file holds {size - SPILL_HEADER_SIZE}"
        )
    if length == 0:
        return np.empty(0, dtype=np.uint8)
    mapped = np.memmap(path, dtype=np.uint8, mode="r", offset=SPILL_HEADER_SIZE)
    actual = zlib.crc32(mapped) & 0xFFFFFFFF
    if actual != checksum:
        raise SpillError(
            f"corrupt spill file {path}: payload crc32 {actual:#010x} "
            f"!= recorded {checksum:#010x}"
        )
    return mapped


def maybe_spill_array(array, threshold=None):
    """Move any numpy array's buffer into an unlinked spill memmap past
    the threshold (the generic sibling of ``PackedCaptures.maybe_spill``,
    used by the darknet/ISP corpora).  Returns the original array when it
    is small, empty, or already memmap-backed; otherwise a read-only
    memmap view with the same dtype and shape.
    """
    if threshold is None:
        threshold = spill_threshold_bytes()
    base = array.base if array.base is not None else array
    if isinstance(base, np.memmap) or array.nbytes == 0 or array.nbytes <= threshold:
        return array
    sweep_stale_spills()
    path = write_spill(np.ascontiguousarray(array).tobytes())
    try:
        mapped = map_spill(path)
    finally:
        os.unlink(path)
    return mapped.view(array.dtype).reshape(array.shape)


def inline_array(array):
    """A RAM-resident copy of a possibly memmap-backed array — the pickle
    form, so cached worlds never depend on an unlinked temp file."""
    base = array.base if array.base is not None else array
    if isinstance(base, np.memmap):
        return np.asarray(array).copy()
    return array


def _pid_alive(pid):
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except OSError:
        # EPERM and friends: the process exists but is not ours.
        return True
    return True


def sweep_stale_spills(directory=None):
    """Remove spill files left in ``REPRO_SPILL_DIR`` by dead processes.

    Normally a spill file is unlinked the moment it is mapped, but a
    process SIGKILLed inside that window leaves it behind.  Files from
    live PIDs (including our own) are never touched.  Returns the list
    of removed paths; a no-op when no spill directory is configured
    (files in the system temp dir age out by other means).
    """
    if directory is None:
        directory = os.environ.get(SPILL_DIR_ENV) or None
    if not directory or not os.path.isdir(directory):
        return []
    removed = []
    for name in sorted(os.listdir(directory)):
        match = _SPILL_NAME_RE.match(name)
        if not match:
            continue
        pid = int(match.group(1))
        if pid == os.getpid() or _pid_alive(pid):
            continue
        path = os.path.join(directory, name)
        try:
            os.unlink(path)
        except OSError:
            continue
        removed.append(path)
    return removed


class _CaptureView:
    """A :class:`ProbeCapture`-shaped view into a packed store.

    Materializes nothing until asked: ``packets`` slices the payload
    (RAM or memmap window) on access.
    """

    __slots__ = ("_store", "_index")

    def __init__(self, store, index):
        self._store = store
        self._index = index

    @property
    def target_ip(self):
        return int(self._store.target_ips[self._index])

    @property
    def t(self):
        return self._store.t

    @property
    def n_repeats(self):
        return int(self._store.n_repeats[self._index])

    @property
    def packets(self):
        store, i = self._store, self._index
        lo = int(store.pkt_offsets[i])
        hi = int(store.pkt_offsets[i + 1])
        offsets = store.byte_offsets
        payload = store.payload
        return tuple(
            payload[int(offsets[j]) : int(offsets[j + 1])].tobytes() for j in range(lo, hi)
        )

    @property
    def total_packets(self):
        store, i = self._store, self._index
        return int(store.pkt_counts[i]) * int(store.n_repeats[i])

    @property
    def total_payload_bytes(self):
        store, i = self._store, self._index
        lo = int(store.pkt_offsets[i])
        hi = int(store.pkt_offsets[i + 1])
        span = int(store.byte_offsets[hi]) - int(store.byte_offsets[lo])
        return span * int(store.n_repeats[i])


class PackedCaptures:
    """One sample's captures as flat arrays over a single payload blob."""

    __slots__ = (
        "t",
        "target_ips",
        "n_repeats",
        "pkt_counts",
        "pkt_offsets",
        "pkt_lens",
        "byte_offsets",
        "payload",
    )

    def __init__(self, t, target_ips, n_repeats, pkt_counts, pkt_offsets, pkt_lens, byte_offsets, payload):
        self.t = t
        self.target_ips = target_ips
        self.n_repeats = n_repeats
        self.pkt_counts = pkt_counts
        self.pkt_offsets = pkt_offsets
        self.pkt_lens = pkt_lens
        self.byte_offsets = byte_offsets
        self.payload = payload

    def __len__(self):
        return len(self.target_ips)

    def view(self, index):
        return _CaptureView(self, index)

    def views(self):
        return [_CaptureView(self, i) for i in range(len(self.target_ips))]

    def payload_bytes(self):
        """Size of the payload blob (stored once; repeats are arithmetic)."""
        return int(self.payload.nbytes)

    @classmethod
    def concat(cls, parts):
        """Merge block-ordered parts into one store (offsets recomputed)."""
        parts = list(parts)
        if not parts:
            return cls.empty(0.0)
        t = parts[0].t
        target_ips = np.concatenate([p.target_ips for p in parts])
        n_repeats = np.concatenate([p.n_repeats for p in parts])
        pkt_counts = np.concatenate([p.pkt_counts for p in parts])
        pkt_lens = np.concatenate([p.pkt_lens for p in parts])
        pkt_offsets = np.zeros(len(target_ips) + 1, dtype=np.int64)
        np.cumsum(pkt_counts, out=pkt_offsets[1:])
        byte_offsets = np.zeros(len(pkt_lens) + 1, dtype=np.int64)
        np.cumsum(pkt_lens, out=byte_offsets[1:])
        payload = np.concatenate(
            [np.asarray(p.payload) for p in parts]
            if parts
            else [np.empty(0, dtype=np.uint8)]
        )
        return cls(t, target_ips, n_repeats, pkt_counts, pkt_offsets, pkt_lens, byte_offsets, payload)

    @classmethod
    def empty(cls, t):
        return cls(
            t,
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.int64),
            np.zeros(1, dtype=np.int64),
            np.empty(0, dtype=np.int64),
            np.zeros(1, dtype=np.int64),
            np.empty(0, dtype=np.uint8),
        )

    def maybe_spill(self, threshold=None):
        """Move the payload into an unlinked memory-mapped spill file when
        it exceeds the threshold; a no-op below it (or if already mapped).

        Returns ``self`` either way, so it chains after :meth:`concat`.
        """
        if isinstance(self.payload, np.memmap) or len(self.payload) == 0:
            return self
        if threshold is None:
            threshold = spill_threshold_bytes()
        if self.payload.nbytes <= threshold:
            return self
        # Reclaim anything a previously-killed run left in the spill dir
        # before adding to it.
        sweep_stale_spills()
        path = write_spill(self.payload.tobytes())
        try:
            mapped = map_spill(path)
        finally:
            # The mapping (and the np.memmap's own fd) keeps the data
            # alive; unlinking now means no temp files survive the run.
            os.unlink(path)
        self.payload = mapped
        return self

    # -- pickling ----------------------------------------------------------
    # Cache pickles and worker→parent transport must be self-contained:
    # a memmap payload is re-inlined as an in-RAM array (the receiving
    # process can re-spill if it wants to).

    def __getstate__(self):
        return {
            "t": self.t,
            "target_ips": self.target_ips,
            "n_repeats": self.n_repeats,
            "pkt_counts": self.pkt_counts,
            "pkt_offsets": self.pkt_offsets,
            "pkt_lens": self.pkt_lens,
            "byte_offsets": self.byte_offsets,
            "payload": np.asarray(self.payload).copy()
            if isinstance(self.payload, np.memmap)
            else self.payload,
        }

    def __setstate__(self, state):
        for name, value in state.items():
            setattr(self, name, value)


class PackedCapturesBuilder:
    """Accumulates captures into the packed layout."""

    def __init__(self, t):
        self.t = t
        self._target_ips = []
        self._n_repeats = []
        self._pkt_counts = []
        self._pkt_lens = []
        self._blob = bytearray()

    def add(self, target_ip, packets, n_repeats=1):
        self._target_ips.append(target_ip)
        self._n_repeats.append(n_repeats)
        self._pkt_counts.append(len(packets))
        for packet in packets:
            self._pkt_lens.append(len(packet))
            self._blob += packet

    def __len__(self):
        return len(self._target_ips)

    def finish(self):
        pkt_counts = np.array(self._pkt_counts, dtype=np.int64)
        pkt_offsets = np.zeros(len(pkt_counts) + 1, dtype=np.int64)
        np.cumsum(pkt_counts, out=pkt_offsets[1:])
        pkt_lens = np.array(self._pkt_lens, dtype=np.int64)
        byte_offsets = np.zeros(len(pkt_lens) + 1, dtype=np.int64)
        np.cumsum(pkt_lens, out=byte_offsets[1:])
        return PackedCaptures(
            self.t,
            np.array(self._target_ips, dtype=np.int64),
            np.array(self._n_repeats, dtype=np.int64),
            pkt_counts,
            pkt_offsets,
            pkt_lens,
            byte_offsets,
            np.frombuffer(bytes(self._blob), dtype=np.uint8),
        )
