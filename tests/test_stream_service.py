"""Service lifecycle: start/query/shutdown, snapshot consistency, 4xx.

Two layers of coverage:

* in-process asyncio tests drive :class:`StreamService` directly —
  concurrent queries during ingestion must return internally consistent
  snapshots (no torn reads), malformed queries must come back as 4xx
  JSON rather than crashing the loop;
* a subprocess test runs the real ``python -m repro serve`` CLI, queries
  it over HTTP, sends SIGTERM, and asserts a clean drain (exit 0, the
  drained summary line, no process left behind) — the no-orphan
  discipline of ``tests/test_supervision.py`` applied to the server.
"""

import asyncio
import json
import os
import signal
import subprocess
import sys
import time
import urllib.request

import pytest

from repro.scenario.world import PaperWorld
from repro.stream import StreamEngine, StreamService, replay_plan, replay_records
from repro.stream.loadgen import _fetch

SCALE = 0.0002
SEED = 7


@pytest.fixture(scope="module")
def small_world():
    return PaperWorld.build(seed=SEED, scale=SCALE)


def _service_for(world, **kwargs):
    plan = replay_plan(world)
    engine = StreamEngine.for_world(world, plan=plan)
    # Tiny batches maximize ingest/query interleaving: more chances to
    # catch a torn read if one were possible.
    return StreamService(engine, replay_records(world), batch=16, **kwargs), plan


# ---------------------------------------------------------------------------
# In-process: consistency and error handling
# ---------------------------------------------------------------------------


def test_concurrent_queries_see_consistent_snapshots(small_world):
    async def exercise():
        service, plan = _service_for(small_world)
        await service.start()
        host, port = service.host, service.port
        inconsistencies = []

        async def reader():
            while not service.ingest_done:
                status, body = await _fetch(host, port, "/stats")
                assert status == 200
                windowed = body["windowed_victim_pairs"]
                total = body["totals"]["victim_pairs"]
                if windowed != total:
                    inconsistencies.append((windowed, total))

        await asyncio.gather(reader(), reader(), reader())
        assert service.ingest_done
        # End state: everything ingested, ledger balanced.
        status, body = await _fetch(host, port, "/query/ingest")
        assert status == 200
        assert body["result"]["balanced"] is True
        assert body["result"]["records_seen"] == plan["expected_total"]
        service.request_shutdown()
        await service.stop()
        return inconsistencies

    assert asyncio.run(exercise()) == []


def test_malformed_queries_are_4xx_json_not_crashes(small_world):
    async def exercise():
        service, _plan = _service_for(small_world)
        await service.start()
        host, port = service.host, service.port
        cases = [
            ("/query/nonsense", 400),
            ("/query/top_victims?n=banana", 400),
            ("/query/top_victims?n=0", 400),
            ("/nope", 404),
            ("/query/", 404),
        ]
        results = []
        for target, expected in cases:
            status, body = await _fetch(host, port, target)
            results.append((target, status, expected, body))
        # A garbage request line must not kill the server either.
        reader, writer = await asyncio.open_connection(host, port)
        writer.write(b"\r\n")
        await writer.drain()
        garbage_reply = await reader.read()
        writer.close()
        await writer.wait_closed()
        # POST is rejected, not crashed on.
        post_status, _ = await _fetch_method(host, port, "POST", "/health")
        # The service must still answer normally afterwards.
        status_after, body_after = await _fetch(host, port, "/health")
        service.request_shutdown()
        await service.stop()
        return results, garbage_reply, post_status, status_after, body_after

    results, garbage_reply, post_status, status_after, body_after = asyncio.run(
        exercise()
    )
    for target, status, expected, body in results:
        assert status == expected, (target, status, body)
        assert "error" in body, target
    assert b"400" in garbage_reply.split(b"\r\n", 1)[0]
    assert post_status == 405
    assert status_after == 200 and body_after["ok"] is True


async def _fetch_method(host, port, method, target):
    reader, writer = await asyncio.open_connection(host, port)
    try:
        writer.write(f"{method} {target} HTTP/1.0\r\n\r\n".encode())
        await writer.drain()
        raw = await reader.read()
    finally:
        writer.close()
        await writer.wait_closed()
    head, _, body = raw.partition(b"\r\n\r\n")
    return int(head.split(None, 2)[1]), json.loads(body)


def test_queries_after_ingest_completion_match_direct_engine(small_world):
    async def exercise():
        service, _plan = _service_for(small_world)
        await service.start()
        while not service.ingest_done:
            await asyncio.sleep(0.01)
        status, body = await _fetch(service.host, service.port, "/query/victims")
        service.request_shutdown()
        await service.stop()
        return status, body["result"], service.engine

    status, served, engine = asyncio.run(exercise())
    assert status == 200
    assert served == json.loads(json.dumps(engine.query("victims")))


# ---------------------------------------------------------------------------
# Subprocess: the real CLI, SIGTERM drain, no orphans
# ---------------------------------------------------------------------------


def _pid_exists(pid):
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    return True


def test_serve_cli_lifecycle_sigterm_drains_cleanly():
    env = os.environ.copy()
    env["PYTHONPATH"] = os.pathsep.join(
        filter(None, [os.path.join(os.getcwd(), "src"), env.get("PYTHONPATH")])
    )
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--seed",
            str(SEED),
            "--scale",
            str(SCALE),
            "--quiet",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        env=env,
        text=True,
    )
    try:
        serving = json.loads(proc.stdout.readline())["serving"]
        base = f"http://127.0.0.1:{serving['port']}"
        with urllib.request.urlopen(base + "/health", timeout=10) as response:
            health = json.loads(response.read())
        assert health["ok"] is True
        with urllib.request.urlopen(
            base + "/query/top_victims?n=3", timeout=10
        ) as response:
            top = json.loads(response.read())
        assert top["query"] == "top_victims"
        assert len(top["result"]["entries"]) <= 3

        proc.send_signal(signal.SIGTERM)
        stdout, _ = proc.communicate(timeout=30)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.communicate(timeout=30)

    assert proc.returncode == 0, stdout
    drained = json.loads(stdout.strip().splitlines()[-1])["drained"]
    assert drained["requests_served"] >= 2
    assert drained["balanced"] is True

    deadline = time.time() + 10
    while time.time() < deadline:
        if not _pid_exists(proc.pid):
            break
        time.sleep(0.1)
    assert not _pid_exists(proc.pid), "serve process survived SIGTERM"
