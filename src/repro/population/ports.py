"""Attacked-port model and labels (Table 4).

The paper tallies, per (amplifier, victim) pair, the victim source port —
i.e. the UDP port the attack traffic is aimed at.  Port 80 dominates
(attackers hoping to slip through filters), the NTP port itself is second,
and at least ten of the top twenty are game-related, supporting the
"game wars" finding (§4.3.2).
"""

__all__ = [
    "TABLE4_PORT_WEIGHTS",
    "PORT_LABELS",
    "GAME_PORTS",
    "sample_attack_port",
]

#: Table 4's top-20 ports with their fractions of amplifier/victim pairs.
TABLE4_PORT_WEIGHTS = {
    80: 0.362,
    123: 0.238,
    3074: 0.079,
    50557: 0.062,
    53: 0.025,
    25565: 0.021,
    19: 0.012,
    22: 0.011,
    5223: 0.007,
    27015: 0.006,
    43594: 0.004,
    9987: 0.004,
    8080: 0.004,
    6005: 0.003,
    7777: 0.003,
    2052: 0.003,
    1025: 0.002,
    1026: 0.002,
    88: 0.002,
    90: 0.002,
}

#: Human labels as printed in Table 4.
PORT_LABELS = {
    80: "None. via TCP:HTTP (g)",
    123: "NTP server port",
    3074: "XBox Live (g)",
    50557: "Unknown",
    53: "DNS; XBox Live (g)",
    25565: "Minecraft (g)",
    19: "chargen protocol",
    22: "None. via TCP:SSH",
    5223: "Playstation (g); other",
    27015: "Steam/e.g. Half-Life (g)",
    43594: "Runescape (g)",
    9987: "TeamSpeak3 (g)",
    8080: "None. via TCP:HTTP alt.",
    6005: "Unknown",
    7777: "Several games (g); other",
    2052: "Star Wars (g)",
    1025: "Win RPC; other",
    1026: "Win RPC; other",
    88: "XBox Live (g)",
    90: "DNSIX (military)",
}

#: Ports the paper marks "(g)" — game-associated (excludes the ambiguous 80).
GAME_PORTS = frozenset({3074, 53, 25565, 5223, 27015, 43594, 9987, 7777, 2052, 88})


def sample_attack_port(rng, gamer=False):
    """Draw a victim port.

    ``gamer`` victims skew toward the game-labeled ports; others draw from
    the full Table 4 mix.  ~15% of draws fall outside the top 20 onto random
    ephemeral ports, matching the table's unaccounted remainder.
    """
    if rng.random() < 0.148:
        return int(rng.integers(1024, 65536))
    ports = list(TABLE4_PORT_WEIGHTS)
    weights = [TABLE4_PORT_WEIGHTS[p] for p in ports]
    if gamer:
        weights = [w * (3.0 if p in GAME_PORTS else 1.0) for p, w in zip(ports, weights)]
    total = sum(weights)
    weights = [w / total for w in weights]
    return int(ports[int(rng.choice(len(ports), p=weights))])
