"""Parsing the ``version`` probe corpus (§3.3, Table 2).

Consumes raw mode-6 response captures: reassembles fragmented payloads,
parses the system-variable strings, and tabulates OS/system strings,
stratum-16 fractions, and compile years — exactly the fields Table 2 and
§3.3's "poor state of updates" findings are built from.
"""

from collections import Counter
from dataclasses import dataclass, field

from repro.ntp.constants import STRATUM_UNSYNCHRONIZED
from repro.ntp.variables import extract_compile_year, parse_system_variables
from repro.ntp.wire import WireError, decode_mode6

__all__ = [
    "VersionRecord",
    "VersionReport",
    "parse_version_captures",
    "parse_version_samples",
    "os_family_of",
]

#: Map raw ``system=`` strings onto Table 2's OS families.
_FAMILY_KEYWORDS = [
    ("cisco", "cisco"),
    ("unix", "unix"),
    ("linux", "linux"),
    ("freebsd", "bsd"),
    ("netbsd", "bsd"),
    ("openbsd", "bsd"),
    ("bsd", "bsd"),
    ("junos", "junos"),
    ("darwin", "darwin"),
    ("windows", "windows"),
    ("sunos", "sun"),
    ("sun", "sun"),
    ("vmkernel", "vmkernel"),
    ("secureos", "secureos"),
    ("qnx", "qnx"),
    ("cygwin", "cygwin"),
    ("isilon", "isilon"),
]


def os_family_of(system_string):
    """Classify a raw system string into a Table-2 OS family."""
    lowered = (system_string or "").lower()
    for keyword, family in _FAMILY_KEYWORDS:
        if keyword in lowered:
            return family
    return "other"


@dataclass(frozen=True)
class VersionRecord:
    """One server's parsed version variables."""

    ip: int
    os_family: str
    system: str
    stratum: int
    compile_year: int  # None when absent


@dataclass
class VersionReport:
    """Aggregates over a set of version records."""

    records: list = field(default_factory=list)

    def __len__(self):
        return len(self.records)

    def os_distribution(self):
        """{family: fraction} — one Table 2 column."""
        counts = Counter(r.os_family for r in self.records)
        total = sum(counts.values())
        if total == 0:
            return {}
        return {family: n / total for family, n in counts.most_common()}

    def stratum16_fraction(self):
        """§3.3: fraction reporting stratum 16 (unsynchronized)."""
        if not self.records:
            return 0.0
        n16 = sum(1 for r in self.records if r.stratum == STRATUM_UNSYNCHRONIZED)
        return n16 / len(self.records)

    def compile_year_cdf(self, years=(2004, 2010, 2011, 2012, 2013)):
        """{year: fraction compiled before it} over records with years."""
        with_years = [r.compile_year for r in self.records if r.compile_year]
        if not with_years:
            return {year: 0.0 for year in years}
        return {
            year: sum(1 for y in with_years if y < year) / len(with_years)
            for year in years
        }

    def restrict_to(self, ips):
        """A sub-report over the given IPs (e.g. the mega amplifier set)."""
        ips = set(ips)
        sub = VersionReport()
        sub.records = [r for r in self.records if r.ip in ips]
        return sub


#: Memo sentinel for packet tuples that failed to decode.
_UNPARSEABLE = object()


def _parse_one_version_capture(packets):
    """Parse one capture's packets into IP-independent record fields.

    Returns ``(os_family, system, stratum, compile_year)`` or
    ``_UNPARSEABLE``.  Split out so the corpus loop can memoize on the
    packet tuple: a server's reply bytes are identical across weekly
    sweeps (and the apparatus reuses the reply object), so a corpus with
    N captures typically has far fewer distinct payloads than captures.
    """
    try:
        fragments = sorted((decode_mode6(p) for p in packets), key=lambda p: p.offset)
    except WireError:
        return _UNPARSEABLE
    payload = b"".join(f.data for f in fragments)
    variables = parse_system_variables(payload)
    system = variables.get("system", "")
    try:
        stratum = int(variables.get("stratum", "-1"))
    except ValueError:
        stratum = -1
    return (
        os_family_of(system),
        system,
        stratum,
        extract_compile_year(variables.get("version")),
    )


def _record_fields(by_ip, memo, key, packets, target_ip):
    fields = memo.get(key)
    if fields is None:
        fields = memo[key] = _parse_one_version_capture(packets)
    if fields is _UNPARSEABLE:
        return
    os_family, system, stratum, compile_year = fields
    by_ip[target_ip] = VersionRecord(
        ip=target_ip,
        os_family=os_family,
        system=system,
        stratum=stratum,
        compile_year=compile_year,
    )


def parse_version_captures(captures):
    """Parse raw mode-6 captures (deduplicating by IP, last write wins)."""
    by_ip = {}
    # Keyed by the packets tuple *value*, so the memo entry deliberately
    # carries no IP — two servers with byte-identical replies share one
    # parse but still get their own records.
    memo = {}
    for capture in captures:
        _record_fields(by_ip, memo, capture.packets, capture.packets, capture.target_ip)
    report = VersionReport()
    report.records = list(by_ip.values())
    return report


def parse_version_samples(version_samples):
    """Parse version samples straight from their packed blobs.

    Samples holding a :class:`~repro.measurement.capture_store
    .PackedCaptures` are read column-wise — memo keys come from the raw
    payload slice and packet-length vector, so byte-identical replies
    still share one parse — and packet bytes are only sliced out on a
    memo miss.  Samples without a packed blob fall back to the per-object
    walk; both paths fill the same last-write-wins IP table in capture
    order, so the record list is identical to flattening every sample's
    captures through :func:`parse_version_captures`.
    """
    by_ip = {}
    memo = {}
    for sample in version_samples:
        packed = getattr(sample, "packed", None)
        if packed is None:
            for capture in sample.captures:
                _record_fields(
                    by_ip, memo, capture.packets, capture.packets, capture.target_ip
                )
            continue
        pkt_offsets = packed.pkt_offsets
        byte_offsets = packed.byte_offsets
        pkt_lens = packed.pkt_lens
        payload = packed.payload
        targets = packed.target_ips
        for i in range(len(packed)):
            pkt_lo = int(pkt_offsets[i])
            pkt_hi = int(pkt_offsets[i + 1])
            raw = payload[int(byte_offsets[pkt_lo]) : int(byte_offsets[pkt_hi])].tobytes()
            lens = pkt_lens[pkt_lo:pkt_hi]
            key = (raw, lens.tobytes())
            packets = None
            if key not in memo:
                packets = []
                offset = 0
                for length in lens.tolist():
                    packets.append(raw[offset : offset + length])
                    offset += length
                packets = tuple(packets)
            _record_fields(by_ip, memo, key, packets, int(targets[i]))
    report = VersionReport()
    report.records = list(by_ip.values())
    return report
