"""Replay adapters: a built world's datasets as one sim-time record stream.

The batch pipeline reads each dataset whole; the streaming engine wants
the same material as a single merged sequence of timestamped records, the
shape a live tap would deliver.  This module is the bridge: it walks the
world's packed capture stores and compacted flow arrays *without*
materializing object corpora, and yields :class:`StreamRecord` values in
nondecreasing sim-time order.

Record kinds
------------
``sweep``
    One per weekly ONP monlist sample (``t`` = sample time); the payload
    carries the apparatus flags (outage, coverage, capture count) so a
    sweep window exists even when an outage produced zero captures.
``capture``
    One per mode-7 probe capture (``t`` = its sample's time); the payload
    is the :class:`~repro.measurement.onp.ProbeCapture` view, decoded by
    the engine capture-by-capture with the *same* fast/lenient parser the
    batch corpus uses — ParseStats counters are additive, so the stream's
    per-window stats equal the batch per-sample stats counter for counter.
``darknet``
    One per (day, scanner IP) membership in the telescope's compacted
    pair array (``t`` = the day's start).
``isp``
    One per (victim IP, hour, bytes) cell of the Merit site's compacted
    victim columns (``t`` = the hour's start) — the Fig 13 signal.
``arbor``
    One per daily traffic row (``t`` = the day's start); collector-outage
    days yield a payload of ``None`` (the explicit gap marker Fig 1
    renders, never an interpolated value).

Replay is a deliberate re-read of the measurement layer, so it does not
touch the parse-once ledger; the engine keeps its own ingest counters.
Every record carries a stable ``uid`` so duplicate-delivery tests can
inject repeats the engine must detect.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

from repro.util.simtime import DAY, HOUR, WEEK

__all__ = ["StreamRecord", "replay_records", "replay_plan"]

#: Deterministic tie-break for records sharing a timestamp: sweeps open
#: their window before captures fill it; flow kinds follow.
_KIND_RANK = {"sweep": 0, "capture": 1, "darknet": 2, "isp": 3, "arbor": 4}


@dataclass(frozen=True)
class StreamRecord:
    """One timestamped event of the merged stream."""

    t: float
    kind: str
    uid: tuple
    payload: object

    def sort_key(self, seq):
        return (self.t, _KIND_RANK.get(self.kind, 9), seq)


def _onp_records(world):
    for s_idx, sample in enumerate(world.onp.monlist_samples):
        n = len(sample)
        yield StreamRecord(
            t=float(sample.t),
            kind="sweep",
            uid=("sweep", s_idx),
            payload={
                "outage": bool(getattr(sample, "outage", False)),
                "coverage": float(getattr(sample, "coverage", 1.0)),
                "n_captures": n,
            },
        )
        packed = getattr(sample, "packed", None)
        if packed is not None:
            views = (packed.view(i) for i in range(len(packed)))
        else:
            views = iter(sample.captures)
        for c_idx, capture in enumerate(views):
            yield StreamRecord(
                t=float(sample.t),
                kind="capture",
                uid=("cap", s_idx, c_idx),
                payload=capture,
            )


def _darknet_records(world):
    darknet = world.darknet
    seen = set()
    pairs = getattr(darknet, "_scanner_pairs", None)
    if pairs is not None and len(pairs):
        for day, ip in pairs.tolist():
            seen.add((int(day), int(ip)))
    for day, ips in getattr(darknet, "_daily_scanners", {}).items():
        for ip in ips:
            seen.add((int(day), int(ip)))
    for day, ip in sorted(seen):
        yield StreamRecord(
            t=float(day * DAY), kind="darknet", uid=("dk", day, ip), payload=ip
        )


def _isp_records(world, site_name="merit"):
    site = world.isp.sites.get(site_name)
    if site is None:
        return
    rows = []
    cols = getattr(site, "_victim_cols", None)
    if cols is not None:
        ips, hours, volumes = cols
        rows.extend(
            zip(
                (int(v) for v in ips.tolist()),
                (int(h) for h in hours.tolist()),
                (float(v) for v in volumes.tolist()),
            )
        )
    for (ip, hour), volume in getattr(site, "victim_hourly", {}).items():
        rows.append((int(ip), int(hour), float(volume)))
    rows.sort(key=lambda r: (r[1], r[0]))
    for seq, (ip, hour, volume) in enumerate(rows):
        yield StreamRecord(
            t=float(site.start + hour * HOUR),
            kind="isp",
            uid=("isp", site_name, seq),
            payload=(ip, volume),
        )


def _arbor_records(world):
    arbor = world.arbor
    for daily in arbor.daily:
        yield StreamRecord(
            t=float(daily.day * DAY),
            kind="arbor",
            uid=("ab", daily.day),
            payload=(daily.total_bps, daily.ntp_bps, daily.dns_bps),
        )
    for day in getattr(arbor, "missing_days", ()) or ():
        yield StreamRecord(
            t=float(day * DAY), kind="arbor", uid=("ab", day), payload=None
        )


def replay_records(world, site_name="merit"):
    """Yield the world's records merged in nondecreasing sim-time order.

    Each source is already time-ordered; ``heapq.merge`` interleaves them
    with a deterministic ``(t, kind, sequence)`` key, so two replays of
    the same world produce identical streams.
    """
    sources = [
        _onp_records(world),
        _darknet_records(world),
        _isp_records(world, site_name),
        _arbor_records(world),
    ]

    def keyed(source):
        for seq, record in enumerate(source):
            yield record.sort_key(seq), record

    for _, record in heapq.merge(*(keyed(s) for s in sources)):
        yield record


def replay_plan(world, site_name="merit"):
    """The engine-configuration facts a replay implies.

    ``capture_origin`` aligns the weekly capture windows so each monlist
    sample lands in its own window; ``expected`` carries per-kind record
    counts for ingest-rate provenance (BENCH_serve.json) and end-of-run
    accounting checks.
    """
    samples = world.onp.monlist_samples
    origin = float(samples[0].t) if samples else 0.0
    site = world.isp.sites.get(site_name)
    counts = {
        "sweep": len(samples),
        "capture": sum(len(s) for s in samples),
        "darknet": sum(1 for _ in _darknet_records(world)),
        "isp": sum(1 for _ in _isp_records(world, site_name)),
        "arbor": sum(1 for _ in _arbor_records(world)),
    }
    return {
        "capture_origin": origin,
        "capture_width": float(WEEK),
        "isp_origin": float(site.start) if site is not None else 0.0,
        "site": site_name,
        "expected": counts,
        "expected_total": sum(counts.values()),
    }
