"""Source-address validation (BCP 38/84).

Reflection attacks exist because "many networks do not follow best security
practices" and forward packets with spoofed sources (§1).  This module
models network-level SAV adoption: spoofed query streams originating inside
filtered networks never reach the amplifiers, so whole attack legs (or
attacks) evaporate.  Sweeping adoption answers the classic counterfactual:
how much SAV would have been needed to blunt the NTP wave?

Attribution model: each attack is launched through bot networks; we assign
each attack a *launch network* deterministic in its booter and attack id,
and an adoption level ``p`` filters that fraction of launch networks.
"""

from dataclasses import dataclass

__all__ = ["Bcp38Policy", "filter_attacks"]

_HASH_PRIME = 2_654_435_761


@dataclass(frozen=True)
class Bcp38Policy:
    """SAV adoption: the fraction of launch networks that filter spoofing."""

    adoption: float

    def __post_init__(self):
        if not 0.0 <= self.adoption <= 1.0:
            raise ValueError("adoption must be in [0, 1]")

    def blocks(self, attack):
        """Deterministically decide whether this attack's launch network
        validates source addresses (and therefore blocks the attack)."""
        if self.adoption <= 0.0:
            return False
        if self.adoption >= 1.0:
            return True
        key = (attack.booter_id * 1_000_003 + attack.attack_id) * _HASH_PRIME
        bucket = (key % (2**32)) / 2**32
        return bucket < self.adoption


def filter_attacks(attacks, policy):
    """Split attacks into (delivered, blocked) under an SAV policy."""
    delivered = []
    blocked = []
    for attack in attacks:
        if policy.blocks(attack):
            blocked.append(attack)
        else:
            delivered.append(attack)
    return delivered, blocked
