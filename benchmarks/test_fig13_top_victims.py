"""Figure 13: time series of the top-5 victims of Merit's amplifiers.

Paper: the five worst-hit victims of Merit-hosted amplifiers receive
multi-day coordinated attacks (up to ~166 hours), with stacked volumes
peaking around 100 MB/s, and larger attacks (more amplifiers) lasting
longer.
"""

import numpy as np


def top5_series(world):
    merit = world.isp.sites["merit"]
    top = merit.top_victims(5)
    return top, [merit.victim_series_mbps(v.ip) for v in top]


def test_fig13_top_victims(benchmark, world):
    top, series = benchmark(top5_series, world)
    assert top, "Merit amplifiers must have qualified victims"

    # Every top victim has visible in-series traffic.
    active_hours = []
    for victim, s in zip(top, series):
        assert s.sum() > 0
        active_hours.append(int((s > 0).sum()))
    # Multi-hour (often multi-day) attack campaigns.
    assert max(active_hours) >= 24

    # Coordination: top victims are hit through multiple Merit amplifiers.
    assert max(len(v.amplifiers) for v in top) >= 2

    print("\nFig13 top Merit victims (GB, amplifiers, active hours, peak MB/s):")
    for victim, s, hours in zip(top, series, active_hours):
        print(
            f"  AS{victim.asn}: {victim.gb:.1f} GB via {len(victim.amplifiers)} amps, "
            f"{hours} h active, peak {s.max():.2f} MB/s"
        )
