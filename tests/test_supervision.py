"""The supervision layer: retry/timeout/crash handling, chaos injection,
checkpointed resumable builds, spill-file integrity, and atomic writes.

The contract under test is the robustness analogue of the byte-identity
contract: a pooled run under hostile conditions (killed workers, hung
tasks, injected I/O failures, a SIGKILLed build) must either produce
exactly the serial answer or raise the genuine error — never a silently
truncated or subtly different result.
"""

import json
import os
import pickle
import signal
import subprocess
import sys
import textwrap
import time

import pytest

import repro.scenario.world as world_mod
import repro.util.pool as pool_mod
from repro.scenario import PaperWorld, WorldParams
from repro.scenario.checkpoint import BuildCheckpoint
from repro.util.chaos import (
    ChaosMonkey,
    ChaosSpecError,
    chaos_from_env,
    parse_chaos_spec,
)
from repro.util.io import atomic_write_json, atomic_write_text
from repro.util.pool import ShardRunner, fork_pool_gate

from tests.test_build_shards import _fingerprint


@pytest.fixture
def eight_cpus(monkeypatch):
    """Engage pools on the one-CPU CI container (fork works; only the
    gate refuses)."""
    monkeypatch.setattr(pool_mod, "available_cpus", lambda: 8)


# -- supervised pool: fault classes --------------------------------------------


def _marker(directory, index):
    return os.path.join(directory, f"attempted-{index}")


def test_worker_crash_is_retried(eight_cpus, tmp_path):
    """A worker dying mid-task (hard exit) is seen as EOF, the worker is
    replaced, and the task is retried to the correct answer."""
    directory = str(tmp_path)

    def crash_once(ctx, i):
        if i == 3 and not os.path.exists(_marker(ctx, i)):
            open(_marker(ctx, i), "w").close()
            os._exit(13)
        return i * i

    runner = ShardRunner(2, backoff=0.01)
    assert runner.map("t", crash_once, directory, 6) == [i * i for i in range(6)]
    stat = runner.stats["t"]
    assert stat["worker_crashes"] >= 1
    assert stat["retries"] >= 1
    assert stat["task_source"][3] in ("pooled", "fallback")
    assert any("worker died" in line for line in stat["errors"])


def test_hung_task_times_out_and_retries(eight_cpus, tmp_path):
    """A task past ``task_timeout`` gets its worker SIGKILLed and is
    retried; the retry (marker present) completes fast."""
    directory = str(tmp_path)

    def hang_once(ctx, i):
        if i == 1 and not os.path.exists(_marker(ctx, i)):
            open(_marker(ctx, i), "w").close()
            time.sleep(60)
        return -i

    runner = ShardRunner(2, task_timeout=0.5, backoff=0.01)
    started = time.monotonic()
    assert runner.map("t", hang_once, directory, 4) == [0, -1, -2, -3]
    assert time.monotonic() - started < 30  # nobody waited out the sleep
    stat = runner.stats["t"]
    assert stat["timeouts"] >= 1
    assert any("timed out" in line for line in stat["errors"])


def test_in_task_exception_is_retried(eight_cpus, tmp_path):
    """A transient in-task exception is a counted retry, distinct from a
    worker crash."""
    directory = str(tmp_path)

    def flaky(ctx, i):
        if i == 2 and not os.path.exists(_marker(ctx, i)):
            open(_marker(ctx, i), "w").close()
            raise OSError("transient")
        return i + 10

    runner = ShardRunner(2, backoff=0.01)
    assert runner.map("t", flaky, directory, 5) == [10, 11, 12, 13, 14]
    stat = runner.stats["t"]
    assert stat["task_errors"] == 1
    assert stat["worker_crashes"] == 0
    assert stat["retries"] == 1


def test_pool_resistant_failure_falls_back_to_serial(eight_cpus):
    """A task that fails in *every* pooled attempt (here: whenever it
    runs outside the parent process) is re-executed serially in-process,
    so the map still returns the right answer."""
    parent = os.getpid()

    def pool_poison(ctx, i):
        if i == 0 and os.getpid() != ctx:
            raise RuntimeError("only works in the parent")
        return i * 7

    runner = ShardRunner(2, retries=1, backoff=0.01)
    assert runner.map("t", pool_poison, parent, 4) == [0, 7, 14, 21]
    stat = runner.stats["t"]
    assert stat["serial_fallbacks"] == 1
    assert stat["task_source"][0] == "fallback"
    assert stat["task_errors"] == 2  # initial attempt + 1 retry, both pooled


def test_counters_zero_on_clean_run(eight_cpus):
    runner = ShardRunner(3)
    runner.map("t", lambda ctx, i: i, None, 9)
    stat = runner.stats["t"]
    for key in ("retries", "timeouts", "worker_crashes", "task_errors", "serial_fallbacks"):
        assert stat[key] == 0, key
    assert stat["errors"] == []
    assert stat["task_source"] == ["pooled"] * 9


# -- clean shutdown: no orphaned workers ---------------------------------------

_INTERRUPT_SCRIPT = textwrap.dedent(
    """
    import os, sys, time
    import repro.util.pool as pool_mod
    pool_mod.available_cpus = lambda: 8
    from repro.util.pool import ShardRunner

    marker_dir = sys.argv[1]

    def task(ctx, i):
        with open(os.path.join(ctx, f"task-{i}-{os.getpid()}"), "w"):
            pass
        time.sleep(120)

    try:
        ShardRunner(4).map("t", task, marker_dir, 8)
    except BaseException as exc:
        print(f"UNWOUND {type(exc).__name__}", flush=True)
        raise
    """
)


@pytest.mark.parametrize("signum", [signal.SIGINT, signal.SIGTERM])
def test_interrupt_leaves_no_orphan_workers(tmp_path, signum):
    """SIGINT/SIGTERM mid-pool unwinds through the supervisor's cleanup:
    the parent exits promptly and every forked worker is dead."""
    marker_dir = tmp_path / "markers"
    marker_dir.mkdir()
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        filter(None, [os.path.join(os.getcwd(), "src"), env.get("PYTHONPATH")])
    )
    proc = subprocess.Popen(
        [sys.executable, "-c", _INTERRUPT_SCRIPT, str(marker_dir)],
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        text=True,
        env=env,
    )
    try:
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline and len(os.listdir(marker_dir)) < 2:
            time.sleep(0.05)
        assert len(os.listdir(marker_dir)) >= 2, "pool never started its tasks"
        proc.send_signal(signum)
        stdout, _ = proc.communicate(timeout=30)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()
    assert proc.returncode != 0
    assert "UNWOUND KeyboardInterrupt" in stdout
    worker_pids = {int(name.split("-")[-1]) for name in os.listdir(marker_dir)}
    deadline = time.monotonic() + 10
    while time.monotonic() < deadline:
        alive = [pid for pid in worker_pids if _pid_exists(pid)]
        if not alive:
            break
        time.sleep(0.1)
    assert not alive, f"orphaned workers: {alive}"


def _pid_exists(pid):
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True
    return True


# -- chaos harness -------------------------------------------------------------


def test_parse_chaos_spec():
    assert parse_chaos_spec("kill:0.2,hang:0.1,enospc:0.05") == {
        "kill": 0.2,
        "hang": 0.1,
        "enospc": 0.05,
    }
    assert parse_chaos_spec(" kill:1.0 ") == {"kill": 1.0}
    for bad in ("kil:0.3", "kill", "kill:x", "kill:1.5", "kill:-0.1", "", " , "):
        with pytest.raises(ChaosSpecError):
            parse_chaos_spec(bad)


def test_chaos_decisions_are_deterministic():
    a = ChaosMonkey({"kill": 0.3, "hang": 0.2, "enospc": 0.3}, seed=7)
    b = ChaosMonkey({"kill": 0.3, "hang": 0.2, "enospc": 0.3}, seed=7)
    decisions = [a.decide("phase", i, t) for i in range(50) for t in (1, 2, 3)]
    assert decisions == [b.decide("phase", i, t) for i in range(50) for t in (1, 2, 3)]
    assert any(d is not None for d in decisions)
    assert any(d is None for d in decisions)
    other = ChaosMonkey({"kill": 0.3, "hang": 0.2, "enospc": 0.3}, seed=8)
    assert decisions != [other.decide("phase", i, t) for i in range(50) for t in (1, 2, 3)]


def test_chaos_from_env(monkeypatch):
    assert chaos_from_env({}) is None
    assert chaos_from_env({"REPRO_CHAOS": "  "}) is None
    monkey = chaos_from_env(
        {"REPRO_CHAOS": "kill:0.5", "REPRO_CHAOS_SEED": "9", "REPRO_CHAOS_HANG_S": "0.25"}
    )
    assert monkey.spec == {"kill": 0.5} and monkey.seed == 9
    assert monkey.hang_seconds == 0.25
    with pytest.raises(ChaosSpecError):
        chaos_from_env({"REPRO_CHAOS": "kill:0.5", "REPRO_CHAOS_SEED": "seven"})
    with pytest.raises(ChaosSpecError):
        chaos_from_env({"REPRO_CHAOS": "kill:0.5", "REPRO_CHAOS_HANG_S": "later"})


def test_chaos_run_still_produces_correct_answers(eight_cpus, monkeypatch):
    """Under heavy injected fault rates the supervised map returns
    exactly the clean answer — the acceptance bar: zero wrong answers."""
    monkeypatch.setenv("REPRO_CHAOS", "kill:0.35,hang:0.25,enospc:0.35")
    monkeypatch.setenv("REPRO_CHAOS_SEED", "7")
    monkeypatch.setenv("REPRO_CHAOS_HANG_S", "0.05")
    runner = ShardRunner(3, task_timeout=5.0, retries=2, backoff=0.01)
    assert runner.map("t", lambda ctx, i: i * 3, None, 16) == [i * 3 for i in range(16)]
    stat = runner.stats["t"]
    injected = stat["worker_crashes"] + stat["timeouts"] + stat["task_errors"]
    assert injected > 0, "chaos at these rates must actually inject"


def test_chaos_never_reaches_the_serial_path(monkeypatch):
    """jobs=1 never forks, so REPRO_CHAOS must be inert there."""
    monkeypatch.setenv("REPRO_CHAOS", "kill:1.0")
    runner = ShardRunner(1)
    assert runner.map("t", lambda ctx, i: i, None, 4) == [0, 1, 2, 3]
    assert runner.stats["t"]["task_source"] == ["serial"] * 4


def test_malformed_chaos_spec_fails_loudly_in_parent(eight_cpus, monkeypatch):
    monkeypatch.setenv("REPRO_CHAOS", "kil:0.3")
    with pytest.raises(ChaosSpecError):
        ShardRunner(2).map("t", lambda ctx, i: i, None, 4)


# -- checkpointed resumable builds ---------------------------------------------

CKPT_PARAMS = dict(seed=7, scale=0.0002)


def _boom_phases(crash_phase, armed_flag):
    """The build phase list with ``crash_phase`` failing while the flag
    file exists (a deterministic stand-in for dying mid-build)."""
    phases = []
    for name, fn in world_mod._BUILD_PHASES:
        if name == crash_phase:

            def wrapped(env, state, _fn=fn):
                if os.path.exists(armed_flag):
                    raise RuntimeError("injected mid-build crash")
                return _fn(env, state)

            phases.append((name, wrapped))
        else:
            phases.append((name, fn))
    return tuple(phases)


def test_interrupted_build_resumes_byte_identically(tmp_path, monkeypatch):
    params = WorldParams(**CKPT_PARAMS)
    baseline = PaperWorld.build(params=params, quiet=True)

    armed = str(tmp_path / "armed")
    open(armed, "w").close()
    ckpt_dir = str(tmp_path / "ckpt")
    monkeypatch.setattr(world_mod, "_BUILD_PHASES", _boom_phases("campaign", armed))
    with pytest.raises(RuntimeError, match="injected mid-build crash"):
        PaperWorld.build(params=params, quiet=True, checkpoint_dir=ckpt_dir)
    assert len(os.listdir(ckpt_dir)) == 1  # the crash left a checkpoint behind

    os.unlink(armed)  # "fix the machine" and re-run the same command
    resumed = PaperWorld.build(params=params, quiet=True, checkpoint_dir=ckpt_dir)
    stats = resumed.checkpoint_stats
    assert stats["resumed"] is True
    assert stats["phases_loaded"] == ["registry", "hosts", "victims", "scanners"]
    assert _fingerprint(resumed) == _fingerprint(baseline)
    # A completed build clears its checkpoint: the world cache, not a
    # stale checkpoint, is the reuse mechanism.
    assert stats.get("cleared") is True
    assert os.listdir(ckpt_dir) == []


def test_completed_build_leaves_no_checkpoint(tmp_path):
    params = WorldParams(**CKPT_PARAMS)
    world = PaperWorld.build(params=params, quiet=True, checkpoint_dir=str(tmp_path))
    assert world.checkpoint_stats["resumed"] is False
    assert world.checkpoint_stats["saves"] == len(world_mod._BUILD_PHASES)
    assert [p for p in os.listdir(tmp_path) if p.startswith("checkpoint-")] == []


@pytest.mark.parametrize(
    "mutate, reason_fragment",
    [
        (lambda p: {**p, "version": "0.0.1"}, "written by repro '0.0.1'"),
        (lambda p: {**p, "format": 99}, "envelope format"),
        (lambda p: {**p, "params": WorldParams(seed=8, scale=0.0002)}, "built for"),
        (lambda p: {**p, "phases": ["hosts", "registry"]}, "does not prefix"),
        (lambda p: {"state": p["state"]}, "envelope format"),
    ],
)
def test_stale_checkpoint_is_a_miss_never_a_wrong_world(tmp_path, mutate, reason_fragment):
    """Every envelope mismatch — version, format, params, phase order —
    restarts the build from scratch instead of resuming wrongly."""
    params = WorldParams(**CKPT_PARAMS)
    ckpt = BuildCheckpoint(str(tmp_path), params)
    good = {
        "format": 1,
        "version": __import__("repro").__version__,
        "params": params,
        "phases": ["registry"],
        "state": {"timings": {}},
    }
    with open(ckpt.path, "wb") as handle:
        pickle.dump(mutate(good), handle)
    assert ckpt.load() is None
    assert reason_fragment in ckpt.stats["reason"]
    assert ckpt.stats["resumed"] is False


def test_garbage_checkpoint_file_is_a_miss(tmp_path):
    params = WorldParams(**CKPT_PARAMS)
    ckpt = BuildCheckpoint(str(tmp_path), params)
    with open(ckpt.path, "wb") as handle:
        handle.write(b"not a pickle at all")
    assert ckpt.load() is None
    assert "unreadable checkpoint" in ckpt.stats["reason"]


def test_checkpoint_save_is_best_effort_on_io_error(tmp_path, monkeypatch):
    """A full disk must not kill a build that can finish in memory."""
    params = WorldParams(**CKPT_PARAMS)
    ckpt = BuildCheckpoint(str(tmp_path), params)

    def no_space(*args, **kwargs):
        raise OSError(28, "No space left on device")

    monkeypatch.setattr(os, "replace", no_space)
    assert ckpt.save(["registry"], {"timings": {}}) is False
    assert ckpt.stats["save_errors"] == 1
    assert "checkpoint save failed" in ckpt.stats["reason"]
    assert os.listdir(tmp_path) == []  # no tmp file left behind


_SIGKILL_BUILD_SCRIPT = textwrap.dedent(
    """
    import sys, time
    import repro.scenario.world as world_mod
    from repro.scenario import PaperWorld, WorldParams

    ckpt_dir = sys.argv[1]

    # Slow one mid-build phase down so the parent can SIGKILL us after
    # checkpoints exist but well before the build completes.
    phases = []
    for name, fn in world_mod._BUILD_PHASES:
        if name == "campaign":
            def slowed(env, state, _fn=fn):
                time.sleep(120)
                return _fn(env, state)
            phases.append((name, slowed))
        else:
            phases.append((name, fn))
    world_mod._BUILD_PHASES = tuple(phases)

    PaperWorld.build(
        params=WorldParams(seed=7, scale=0.0002), quiet=True, checkpoint_dir=ckpt_dir
    )
    """
)


def test_sigkilled_build_resumes_byte_identically(tmp_path):
    """The acceptance scenario end-to-end: a build SIGKILLed mid-phase
    (no chance to clean up) resumes via ``--checkpoint`` to a world
    byte-identical to an uninterrupted one."""
    ckpt_dir = tmp_path / "ckpt"
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        filter(None, [os.path.join(os.getcwd(), "src"), env.get("PYTHONPATH")])
    )
    proc = subprocess.Popen(
        [sys.executable, "-c", _SIGKILL_BUILD_SCRIPT, str(ckpt_dir)],
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
        env=env,
    )
    try:
        deadline = time.monotonic() + 120
        while time.monotonic() < deadline:
            # Wait for a *completed* checkpoint (atomic-rename target), not
            # an in-flight ``*.tmp.<pid>`` the kill could strand.
            if ckpt_dir.is_dir() and any(p.suffix == ".pkl" for p in ckpt_dir.iterdir()):
                break
            if proc.poll() is not None:
                pytest.fail("build subprocess exited before checkpointing")
            time.sleep(0.05)
        else:
            pytest.fail("no checkpoint appeared before the deadline")
        proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=30)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()
    assert proc.returncode == -signal.SIGKILL

    params = WorldParams(seed=7, scale=0.0002)
    resumed = PaperWorld.build(params=params, quiet=True, checkpoint_dir=str(ckpt_dir))
    assert resumed.checkpoint_stats["resumed"] is True
    assert resumed.checkpoint_stats["phases_loaded"]  # at least one phase skipped
    baseline = PaperWorld.build(params=params, quiet=True)
    assert _fingerprint(resumed) == _fingerprint(baseline)


# -- provenance consistency (the cpu_count/pool_engaged fix) -------------------


def test_gate_decision_uses_caller_provided_cpu_count():
    assert fork_pool_gate(8, 16, cpus=1) == (
        False,
        "single CPU available: fork pool would add overhead",
    )
    engaged, reason = fork_pool_gate(8, 16, cpus=8)
    assert engaged and reason is None


def test_stat_cpu_count_never_contradicts_engagement(monkeypatch):
    """The recorded cpu_count and the engagement decision come from one
    ``available_cpus()`` call: ``cpu_count: 1`` next to ``engaged: true``
    (the old BENCH_pipeline bug) is impossible by construction."""
    for cpus in (1, 8):
        monkeypatch.setattr(pool_mod, "available_cpus", lambda n=cpus: n)
        runner = ShardRunner(4)
        runner.map("t", lambda ctx, i: i, None, 8)
        stat = runner.stats["t"]
        assert stat["cpu_count"] == cpus
        assert stat["engaged"] == (cpus > 1)


def test_render_many_stats_carry_supervision_counters(eight_cpus, world):
    from repro.cli import render_many

    stats = {}
    outputs = render_many(world, ["F1", "T4"], jobs=2, stats=stats)
    assert len(outputs) == 2
    assert stats["pool_engaged"] is True
    assert stats["cpu_count"] == 8
    assert stats["supervision"]["serial_fallbacks"] == 0
    assert stats["supervision"]["retries_allowed"] == 2


# -- spill-file integrity ------------------------------------------------------


def test_spill_roundtrip_and_header(tmp_path):
    import numpy as np

    from repro.measurement.capture_store import (
        SPILL_HEADER_SIZE,
        SPILL_MAGIC,
        map_spill,
        write_spill,
    )

    data = np.arange(999, dtype=np.uint8).tobytes()
    path = write_spill(data, directory=str(tmp_path))
    assert os.path.basename(path).startswith(f"repro-spill-{os.getpid()}-")
    assert os.path.getsize(path) == SPILL_HEADER_SIZE + len(data)
    with open(path, "rb") as handle:
        assert handle.read(len(SPILL_MAGIC)) == SPILL_MAGIC
    mapped = map_spill(path)
    assert bytes(mapped) == data


@pytest.mark.parametrize(
    "corrupt",
    [
        lambda raw: raw[:-3],                                  # truncated payload
        lambda raw: raw[:40] + b"\xff" + raw[41:],             # flipped payload byte
        lambda raw: b"WRONGMAG" + raw[8:],                     # bad magic
        lambda raw: raw[:10],                                  # shorter than the header
    ],
)
def test_corrupted_spill_fails_loudly_naming_the_path(tmp_path, corrupt):
    from repro.measurement.capture_store import SpillError, map_spill, write_spill

    path = write_spill(bytes(range(256)) * 4, directory=str(tmp_path))
    with open(path, "rb") as handle:
        raw = handle.read()
    with open(path, "wb") as handle:
        handle.write(corrupt(raw))
    with pytest.raises(SpillError) as excinfo:
        map_spill(path)
    assert path in str(excinfo.value)


def test_sweep_removes_only_dead_pid_spills(tmp_path, monkeypatch):
    from repro.measurement.capture_store import sweep_stale_spills

    monkeypatch.setenv("REPRO_SPILL_DIR", str(tmp_path))
    dead = tmp_path / "repro-spill-999999-abc.bin"       # PID far above pid_max
    own = tmp_path / f"repro-spill-{os.getpid()}-x.bin"  # this (live) process
    init = tmp_path / "repro-spill-1-y.bin"              # PID 1 is always alive
    foreign = tmp_path / "unrelated.bin"                 # not a spill file at all
    for path in (dead, own, init, foreign):
        path.write_bytes(b"x")
    removed = sweep_stale_spills()
    assert removed == [str(dead)]
    assert not dead.exists()
    assert own.exists() and init.exists() and foreign.exists()


def test_sweep_is_inert_without_a_spill_dir(monkeypatch):
    from repro.measurement.capture_store import sweep_stale_spills

    monkeypatch.delenv("REPRO_SPILL_DIR", raising=False)
    assert sweep_stale_spills() == []


# -- atomic writes -------------------------------------------------------------


def test_atomic_write_json_roundtrip_and_no_tmp(tmp_path):
    path = tmp_path / "record.json"
    atomic_write_json(path, {"b": 2, "a": 1})
    assert json.loads(path.read_text()) == {"a": 1, "b": 2}
    assert path.read_text().endswith("\n")
    assert [p for p in os.listdir(tmp_path) if ".tmp." in p] == []


def test_atomic_write_json_failure_leaves_target_untouched(tmp_path):
    path = tmp_path / "record.json"
    atomic_write_text(path, "previous contents\n")
    with pytest.raises(TypeError):
        atomic_write_json(path, {"bad": object()})
    assert path.read_text() == "previous contents\n"
    assert [p for p in os.listdir(tmp_path) if ".tmp." in p] == []
