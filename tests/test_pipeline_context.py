"""The parse-once / parallel-render / vectorized-sweep contracts.

These tests pin the equivalences the performance work relies on:

* one CLI invocation decodes the ONP corpus exactly once, however many
  artifacts it renders (the AnalysisContext contract, counter-verified);
* rendering over a process pool is byte-identical to rendering serially;
* every vectorized fast path (block RNG draws, bulk monlist encoding,
  analytic client state, prefix-limited liveness) equals its scalar
  original bit-for-bit.
"""

import json

import numpy as np
import pytest

from repro.analysis import AnalysisContext, parse_call_count, parse_corpus
from repro.cli import ARTIFACTS, main, render_artifact, render_many
from repro.util.rng import RngStream

# ---------------------------------------------------------------------------
# RNG block-draw equivalence (the ONP sweep's loss-draw contract)
# ---------------------------------------------------------------------------


def test_block_random_equals_scalar_draws():
    """rng.random(n) consumes the PCG64 stream exactly like n scalar calls."""
    for n in (1, 2, 7, 64, 1023):
        a = RngStream(11, "block")
        b = RngStream(11, "block")
        block = a.random(n)
        scalars = [b.random() for _ in range(n)]
        assert list(block) == scalars
        # The streams are left in the same state too.
        assert a.random() == b.random()


# ---------------------------------------------------------------------------
# Parse-once accounting
# ---------------------------------------------------------------------------


def test_all_artifacts_one_corpus_decode(world):
    """22 artifacts + summary + validate + quality = one corpus decode."""
    from repro.cli import _validate

    n_samples = len(world.onp.monlist_samples)
    ctx = AnalysisContext(world)
    before = parse_call_count()
    for artifact_id in ARTIFACTS:
        text = render_artifact(world, artifact_id, context=ctx)
        assert isinstance(text, str) and text
    world.summary(context=ctx)
    _validate(ctx)
    from repro.analysis import quality_report

    quality_report(world, parsed_samples=ctx.parsed_samples())
    assert parse_call_count() - before == n_samples
    assert ctx.parse_calls == n_samples


def test_context_is_lazy(world):
    """A context handed only to flow-data renderers never parses."""
    ctx = AnalysisContext(world)
    before = parse_call_count()
    for artifact_id in ("F11", "F12", "F13", "F14", "F15"):
        render_artifact(world, artifact_id, context=ctx)
    assert parse_call_count() == before
    assert ctx.parse_calls == 0


def test_parse_corpus_parallel_matches_serial(world):
    samples = world.onp.monlist_samples
    serial = parse_corpus(samples, jobs=1)
    parallel = parse_corpus(samples, jobs=4)
    assert len(serial) == len(parallel) == len(samples)
    for a, b in zip(serial, parallel):
        assert a.t == b.t
        assert a.stats.as_dict() == b.stats.as_dict()
        assert [t.entries for t in a.tables] == [t.entries for t in b.tables]


def test_cached_ip_sets_are_stable(world):
    sample = world.onp.monlist_samples[0]
    assert sample.responder_ips() is sample.responder_ips()
    parsed = parse_corpus([sample])[0]
    assert parsed.amplifier_ips() is parsed.amplifier_ips()
    assert parsed.amplifier_ips() <= sample.responder_ips()
    ctx = AnalysisContext(world)
    sets = ctx.responder_ip_sets()
    assert sets[0] is sample.responder_ips()


# ---------------------------------------------------------------------------
# Deterministic parallel rendering
# ---------------------------------------------------------------------------


def test_render_parallel_byte_identical(world):
    ids = list(ARTIFACTS)
    serial = render_many(world, ids, jobs=1)
    parallel = render_many(world, ids, jobs=4)
    assert serial == parallel


def test_render_is_idempotent(world):
    """Rendering twice through one context gives the same bytes (the
    property parallel merging relies on)."""
    ctx = AnalysisContext(world)
    ids = ("F3", "F5", "F10", "T1", "T4")
    first = [render_artifact(world, i, context=ctx) for i in ids]
    second = [render_artifact(world, i, context=ctx) for i in ids]
    assert first == second


def test_render_cli_out_dir(tmp_path):
    out_dir = tmp_path / "artifacts"
    argv = [
        "render", "F1", "F2", "T5",
        "--scale", "0.0003", "--seed", "3", "--quiet",
        "--jobs", "2", "--out-dir", str(out_dir),
    ]
    assert main(argv) == 0
    names = sorted(p.name for p in out_dir.iterdir())
    assert names == ["F1.txt", "F2.txt", "T5.txt"]
    assert (out_dir / "F1.txt").read_text().startswith("Fig 1:")


def test_bench_pipeline_record(tmp_path):
    out = tmp_path / "BENCH_pipeline.json"
    argv = [
        "bench-pipeline", "--scale", "0.0003", "--seed", "3",
        "--quiet", "--jobs", "2", "--out", str(out),
    ]
    assert main(argv) == 0
    record = json.loads(out.read_text())
    assert record["byte_identical"] is True
    assert record["n_artifacts"] == len(ARTIFACTS)
    assert record["faults"] == "clean"
    assert record["preset"] == "small"
    assert record["jobs"] == 2
    assert set(record["phases"]) == {"build", "parse", "render_serial", "render_parallel"}
    assert record["parse_calls"] > 0
    memory = record["memory"]
    assert set(memory) == {"peak_rss_mb", "self_mb", "children_mb", "spill_threshold_mb"}
    assert memory["peak_rss_mb"] >= memory["self_mb"] > 0


def test_bench_pipeline_render_and_rss_tripwires(tmp_path):
    """--max-render-seconds and --max-rss-mb are CI gates: impossible
    ceilings must fail the run (and still write the record)."""
    out = tmp_path / "BENCH_pipeline.json"
    argv = [
        "bench-pipeline", "--scale", "0.0003", "--seed", "3",
        "--quiet", "--jobs", "1", "--out", str(out),
        "--max-render-seconds", "0", "--max-rss-mb", "1",
    ]
    assert main(argv) == 1
    record = json.loads(out.read_text())
    assert record["byte_identical"] is True


def test_bench_build_records_faults_and_preset(tmp_path):
    out = tmp_path / "BENCH_build.json"
    argv = [
        "bench-build", "--scale", "0.0003", "--seed", "3",
        "--quiet", "--out", str(out),
    ]
    assert main(argv) == 0
    record = json.loads(out.read_text())
    assert record["faults"] == "clean"
    assert record["preset"] == "small"


# ---------------------------------------------------------------------------
# Vectorized fast paths vs scalar originals
# ---------------------------------------------------------------------------


def _reference_render(table, now, entry_version, implementation):
    """The original per-entry struct encoding (entries_mru + encoder)."""
    from repro.ntp.constants import (
        MON_ENTRY_V1_SIZE,
        MON_ENTRY_V2_SIZE,
        REQ_MON_GETLIST,
        REQ_MON_GETLIST_1,
        items_per_packet,
    )
    from repro.ntp.wire import encode_mode7_response, encode_monitor_entry

    if entry_version == 2:
        item_size, request_code = MON_ENTRY_V2_SIZE, REQ_MON_GETLIST_1
    else:
        item_size, request_code = MON_ENTRY_V1_SIZE, REQ_MON_GETLIST
    entries = table.entries_mru(now)
    per_packet = items_per_packet(item_size)
    if not entries:
        return [encode_mode7_response(implementation, request_code, 0, False, [], item_size)]
    encoded = [encode_monitor_entry(e, entry_version) for e in entries]
    chunks = [encoded[i : i + per_packet] for i in range(0, len(encoded), per_packet)]
    return [
        encode_mode7_response(
            implementation, request_code, i % 128, i < len(chunks) - 1, chunk, item_size
        )
        for i, chunk in enumerate(chunks)
    ]


@pytest.mark.parametrize("n", [0, 1, 11, 12, 13, 250, 700])
@pytest.mark.parametrize("entry_version", [1, 2])
def test_bulk_render_matches_struct_path(n, entry_version):
    """The NumPy blob path crosses _BULK_RENDER_MIN byte-identically."""
    from repro.ntp.constants import IMPL_XNTPD
    from repro.ntp.monlist import MonlistTable

    rng = np.random.default_rng(5 + n)
    table = MonlistTable()
    for i in range(n):
        first = float(rng.uniform(0, 5000))
        table.put_record(
            addr=int(rng.integers(1, 2**32 - 1)),
            port=int(rng.integers(1, 65535)),
            mode=int(rng.integers(0, 8)),
            version=int(rng.integers(1, 5)),
            # Counts past u32 exercise the clamp (mega amplifiers).
            count=int(rng.integers(1, 2**33)),
            first_seen=first,
            last_seen=first + float(rng.uniform(0, 4000)),
        )
    now = 10_000.0
    fast = table.render_response_packets(now, entry_version, IMPL_XNTPD)
    assert fast == _reference_render(table, now, entry_version, IMPL_XNTPD)


def test_background_client_state_scalar_matches_numpy(monkeypatch):
    """state_at's small-pool scalar path equals the NumPy path exactly."""
    import repro.population.amplifiers as amplifiers

    rng = np.random.default_rng(99)
    for n in (1, 3, amplifiers._STATE_AT_SCALAR_MAX):
        clients = amplifiers.BackgroundClients(
            ips=rng.integers(1, 2**31, size=n).astype(np.int64),
            ports=rng.integers(1024, 65535, size=n).astype(np.int64),
            intervals=rng.uniform(64.0, 1e6, size=n),
            first_polls=rng.uniform(0.0, 5e5, size=n),
            one_shot=rng.random(n) < 0.4,
        )
        for now, since in ((0.0, None), (3e5, None), (9e5, 1e5), (9e5, 8.9e5)):
            scalar = clients._state_at_scalar(now, since)
            # Forcing the threshold below any n routes state_at through
            # the vectorized branch for the same inputs.
            monkeypatch.setattr(amplifiers, "_STATE_AT_SCALAR_MAX", -1)
            vectorized = clients.state_at(now, since=since)
            monkeypatch.undo()
            assert scalar == vectorized


def test_liveness_limit_equals_prefix_filter(world):
    """monlist_alive(t, limit=k) == the first-k-targets-then-filter order."""
    pool = world.hosts
    t = world.onp.monlist_samples[3].t
    for k in (0, 1, 17, len(pool.monlist_hosts)):
        limited = pool.monlist_alive(t, limit=k)
        naive = [h for h in pool.monlist_hosts[:k] if h.monlist_active(t)]
        assert limited == naive
