"""The DDoS victim population (§4).

The paper's victimology: 437K unique victim IPs over fifteen weeks, spread
over 184 countries and up to ~6.7K ASes per weekly sample, with heavy
concentration — the top 100 victim ASes receive three quarters of all attack
packets, eight of the top ten are hosting providers, the single top AS is
the OVH-like French hosting firm, and about half of victims are end hosts
(many of them gamers, per the attacked-port mix).
"""

import math
from dataclasses import dataclass

import numpy as np

from repro.net.asn import NetworkKind
from repro.population.ports import sample_attack_port
from repro.util.simtime import DAY, WEEK, date_to_sim

__all__ = ["Victim", "VictimPool", "VictimParams", "build_victim_pool"]


@dataclass(slots=True)
class Victim:
    """One attack target."""

    ip: int
    asn: int
    country: str
    continent: str
    is_end_host: bool
    gamer: bool
    ports: tuple
    appear_time: float
    active_until: float
    #: Heavy-tailed weight: how intensely attackers favor this target.
    popularity: float

    def active_at(self, t):
        return self.appear_time <= t <= self.active_until


@dataclass(frozen=True)
class VictimParams:
    """Scale and calibration knobs for the victim population."""

    scale: float = 0.01
    #: Ground-truth victim population; the ONP lens (weekly sampling, ~44 h
    #: view windows, 600-entry caps) observes roughly the paper's 437K.
    total_victims_full: int = 1_000_000
    #: Zipf exponent over AS rank; ~1.1 puts ~3/4 of weight in the top 100
    #: of a ~10K-AS victim population (Fig. 5).
    as_zipf_exponent: float = 1.1
    gamer_fraction: float = 0.45
    first_attacks: float = date_to_sim(2013, 12, 16)
    window_end: float = date_to_sim(2014, 5, 1)

    @property
    def n_victims(self):
        return max(30, int(self.total_victims_full * self.scale))


#: Relative arrival intensity of new victims (Table 1's victim counts rise
#: from 50K in January to ~170K in March then fall off in April).
_ARRIVAL_ANCHORS = [
    (date_to_sim(2013, 12, 16), 0.15),
    (date_to_sim(2014, 1, 10), 0.55),
    (date_to_sim(2014, 2, 7), 0.95),
    (date_to_sim(2014, 2, 21), 1.30),
    (date_to_sim(2014, 3, 14), 1.10),
    (date_to_sim(2014, 4, 4), 0.45),
    (date_to_sim(2014, 5, 1), 0.20),
]


class VictimPool:
    """The generated victim population with time-windowed sampling.

    Activity queries are index-driven: appearance/expiry times and
    popularities live in NumPy arrays built once at construction, so the
    per-attack ``sample_active`` call in the campaign generator is two
    vectorized comparisons plus one weighted draw rather than a Python
    scan of every victim.  Active lists preserve ``self.victims`` order,
    matching the naive per-victim scan draw-for-draw.
    """

    def __init__(self, victims, params):
        self.victims = victims
        self.params = params
        self._appear = np.array([v.appear_time for v in victims], dtype=np.float64)
        self._until = np.array([v.active_until for v in victims], dtype=np.float64)
        self._popularity = np.array([v.popularity for v in victims], dtype=np.float64)
        self._ip = np.array([v.ip for v in victims], dtype=np.int64)
        self._asn = np.array([v.asn for v in victims], dtype=np.int64)

    def __len__(self):
        return len(self.victims)

    def _active_indices(self, t):
        return np.flatnonzero((self._appear <= t) & (t <= self._until))

    def active_at(self, t):
        victims = self.victims
        return [victims[i] for i in self._active_indices(t)]

    def sample_active_indices(self, rng, t, size):
        """Sample active victims at ``t``, weighted by popularity, returning
        *global* victim indices.

        This is the process-transportable form of :meth:`sample_active`
        (the campaign's shard workers return victim indices, never victim
        objects): the RNG draw sequence is identical, so both entry
        points select the same victims from the same stream state.
        """
        active = self._active_indices(t)
        if len(active) == 0:
            return []
        weights = self._popularity[active]
        weights = weights / weights.sum()
        indices = rng.choice(len(active), size=min(size, len(active)), replace=True, p=weights)
        return [int(active[int(i)]) for i in indices]

    def sample_active(self, rng, t, size):
        """Sample active victims at ``t``, weighted by popularity."""
        victims = self.victims
        return [victims[i] for i in self.sample_active_indices(rng, t, size)]

    def record_batch(self):
        """Big-endian ``VICTIM_DTYPE`` serialization of the pool."""
        from repro.population.columns import VICTIM_DTYPE

        batch = np.zeros(len(self.victims), dtype=VICTIM_DTYPE)
        batch["ip"] = self._ip
        batch["asn"] = self._asn
        batch["appear"] = self._appear
        batch["until"] = self._until
        batch["popularity"] = self._popularity
        return batch


def _victim_as_ranking(rng, registry):
    """Order ASes by attack-target attractiveness.

    The OVH-like hoster leads, the CloudFlare-like CDN lands around
    rank ~18, the remaining hosting ASes cluster at the front (eight of the
    paper's top ten victim ASes are hosting providers), and telecoms fill in
    the next tier (residential gamers live there too).
    """
    ovh = registry.special["HOSTING-FR-1"]
    cdn = registry.special["CDN-MITIGATION"]
    hosting = [s for s in registry.systems_of_kind(NetworkKind.HOSTING) if s.asn not in (ovh.asn, cdn.asn)]
    telecom = registry.systems_of_kind(NetworkKind.TELECOM)
    residential = registry.systems_of_kind(NetworkKind.RESIDENTIAL)
    other = registry.systems_of_kind(NetworkKind.ENTERPRISE) + registry.systems_of_kind(
        NetworkKind.EDUCATION
    )
    for group in (hosting, telecom, residential, other):
        rng.shuffle(group)
    front = hosting[:40]
    # Interleave a couple of telecoms into the top ten, place the CDN around
    # rank 18 as in the paper's ranking narrative, and slot the two regional
    # ISP vantage points (plus the university inside FRGP) high enough that
    # they host the §7-scale victim populations (Merit saw 13K victims —
    # roughly 3% of the global pool).
    merit = registry.special["REGIONAL-MI"]
    frgp = registry.special["FRGP-CO"]
    csu = registry.special["CSU-EDU"]
    ranked = [ovh] + front[:5] + telecom[:2] + [merit] + front[5:10] + [frgp]
    ranked += front[10:14] + [cdn] + front[14:30] + telecom[2:6] + [csu] + front[30:]
    ranked += telecom[6:] + residential + other + hosting[40:]
    seen = set()
    unique = []
    for system in ranked:
        if system.asn not in seen:
            seen.add(system.asn)
            unique.append(system)
    return unique


def _arrival_times(rng, n, params):
    """Victim appearance times following the calibrated intensity curve."""
    anchors = [(t, w) for t, w in _ARRIVAL_ANCHORS if params.first_attacks <= t <= params.window_end]
    if not anchors:
        anchors = [(params.first_attacks, 1.0), (params.window_end, 1.0)]
    times = np.array([t for t, _ in anchors])
    weights = np.array([w for _, w in anchors])
    # Piecewise-constant density over segments between anchors.
    seg_weights = (weights[:-1] + weights[1:]) / 2.0
    seg_spans = np.diff(times)
    seg_p = seg_weights * seg_spans
    seg_p = seg_p / seg_p.sum()
    segments = rng.choice(len(seg_p), size=n, p=seg_p)
    offsets = rng.uniform(0.0, 1.0, size=n)
    return times[segments] + offsets * seg_spans[segments]


def build_victim_pool(rng, registry, pbl, params=None):
    """Generate the victim population."""
    params = params or VictimParams()
    n = params.n_victims
    rank_rng = rng.child("as-ranking")
    place_rng = rng.child("placement")
    attr_rng = rng.child("attrs")

    ranked_ases = _victim_as_ranking(rank_rng, registry)
    as_ranks = attr_rng.zipf_ranks(len(ranked_ases), params.as_zipf_exponent, size=n)
    appear = _arrival_times(attr_rng, n, params)
    # Activity windows: most victims are attacked over days-to-weeks.
    durations = np.clip(attr_rng.lognormal_for_median(10 * DAY, 1.0, size=n), DAY, 10 * WEEK)
    gamer_flags = attr_rng.bernoulli(params.gamer_fraction, size=n)
    # Popularity: heavy tail so a few victims soak most packets (Fig. 6's
    # mean >> median).
    popularity = attr_rng.bounded_pareto(0.7, 1.0, 1e4, size=n)

    ovh_asn = registry.special["HOSTING-FR-1"].asn
    # The regional education networks host many victims (campus gamers,
    # small services) but not the high-value targets that soak the heavy
    # attacks, so their per-victim intensity is damped.
    edu_asns = {
        registry.special[name].asn for name in ("REGIONAL-MI", "FRGP-CO", "CSU-EDU")
    }
    residential = registry.systems_of_kind(NetworkKind.RESIDENTIAL)
    victims = []
    for i in range(n):
        system = ranked_ases[int(as_ranks[i])]
        gamer = bool(gamer_flags[i])
        # The OVH-like hoster is the subject of a long-running campaign
        # (§4.4): its victims draw disproportionate attacker attention.
        boost = 4.0 if system.asn == ovh_asn else 1.0
        if system.asn in edu_asns:
            boost = 0.3
        if gamer and residential and attr_rng.random() < 0.70:
            # Most gamer targets are home connections: place them in
            # residential (PBL-listed) space, which is what drives the
            # paper's ~31-50% end-host victim share.
            system = residential[int(place_rng.integers(0, len(residential)))]
            ip = system.random_ip(place_rng)
            is_end = pbl.is_end_host(ip)
        else:
            ip = system.random_ip(place_rng)
            is_end = pbl.is_end_host(ip)
        n_ports = 1 + int(attr_rng.random() < 0.35)
        ports = tuple(sample_attack_port(attr_rng, gamer=gamer) for _ in range(n_ports))
        victims.append(
            Victim(
                ip=ip,
                asn=system.asn,
                country=system.country,
                continent=system.continent,
                is_end_host=is_end,
                gamer=gamer,
                ports=ports,
                appear_time=float(appear[i]),
                active_until=float(appear[i] + durations[i]),
                popularity=float(popularity[i]) * boost,
            )
        )
    # Keep victims unique by IP (collisions are possible in small ASes).
    unique = {}
    for victim in victims:
        unique.setdefault(victim.ip, victim)
    return VictimPool(list(unique.values()), params)


def expected_weekly_intensity(t):
    """The victim-arrival intensity at ``t`` (exposed for calibration tests)."""
    anchors = _ARRIVAL_ANCHORS
    if t <= anchors[0][0]:
        return anchors[0][1]
    if t >= anchors[-1][0]:
        return anchors[-1][1]
    for (t0, w0), (t1, w1) in zip(anchors, anchors[1:]):
        if t0 <= t <= t1:
            frac = (t - t0) / (t1 - t0)
            return w0 + frac * (w1 - w0)
    raise AssertionError("unreachable")
