"""Command-line interface: regenerate any of the paper's artifacts.

Usage::

    python -m repro summary  [--preset default | --scale 0.002] [--seed 2014]
    python -m repro figure F1 [...]      # F1..F16
    python -m repro table  T1 [...]      # T1..T6
    python -m repro render --all [--jobs 4] [--out-dir artifacts/]
    python -m repro validate             # §4.4 cross-dataset validation
    python -m repro quality              # per-dataset loss/outage accounting
    python -m repro bench-build          # time a build, write BENCH_build.json
    python -m repro bench-pipeline       # time build+parse+render, BENCH_pipeline.json
    python -m repro list                 # available artifacts and presets

Every invocation shares one :class:`~repro.analysis.AnalysisContext`, so the
monlist corpus is decoded exactly once no matter how many artifacts render.
``--jobs N`` parallelizes sample parsing and artifact rendering over a
process pool; outputs are merged in request order and are byte-identical at
any worker count.

A built world can be cached (``--cache world.pkl``) so successive artifact
renders skip the simulation; the cache is validated against the requested
(seed, scale, faults) and the package version, and silently rebuilt when
stale.  ``--faults {clean,paper,hostile}`` builds the world through an
imperfect measurement apparatus (see :mod:`repro.faults`).

Pooled work (build phases, sample parsing, artifact rendering, the
conformance matrix) runs under the supervised shard pool
(:mod:`repro.util.pool`): ``--task-timeout`` bounds each pooled task's
wall clock, ``--retries`` bounds its pooled attempts before the
in-process serial fallback, and ``--checkpoint DIR`` makes a build
resumable — the world state is persisted after every completed phase,
so an interrupted ``repro`` run re-issued with the same flags resumes
from the last finished phase to a byte-identical world.
"""

import argparse
import os
import sys

from repro.analysis.context import AnalysisContext
from repro.faults import FAULT_PROFILES, resolve_fault_profile
from repro.scenario import PaperWorld, WorldParams
from repro.scenario.presets import PRESETS, resolve_preset

__all__ = ["main", "build_or_load_world", "render_artifact", "render_many", "ARTIFACTS", "CliError"]


class CliError(Exception):
    """A user-input problem worth one stderr line and exit code 2."""


def _world_params(args):
    scale = args.scale if args.scale is not None else resolve_preset(args.preset).scale
    faults = resolve_fault_profile(getattr(args, "faults", None))
    return WorldParams(seed=args.seed, scale=scale, faults=faults)


def _supervision_kwargs(args):
    """The per-task supervision knobs shared by every pooled subcommand."""
    return {
        "task_timeout": getattr(args, "task_timeout", None),
        "retries": getattr(args, "retries", None),
    }


def _make_runner(jobs, args):
    """A :class:`ShardRunner` honoring the CLI's supervision flags."""
    from repro.util.pool import ShardRunner

    kwargs = {key: value for key, value in _supervision_kwargs(args).items() if value is not None}
    return ShardRunner(jobs=jobs, **kwargs)


def build_or_load_world(args):
    """Build the world from CLI args, honoring the optional pickle cache.

    A cache file is only used when it matches the *requested* world: the
    embedded (seed, scale, ...) params and package version are validated,
    and a mismatch triggers a rebuild (with a stderr note) that overwrites
    the stale entry — a cache must never answer for a different world.
    """
    from repro.scenario.cache import CacheMiss, load_world, save_world

    params = _world_params(args)
    if args.cache and os.path.isdir(args.cache):
        raise CliError(f"--cache {args.cache!r} is a directory, not a cache file")
    if args.cache:
        try:
            world = load_world(args.cache, params)
            if not args.quiet:
                print(f"(loaded cached world from {args.cache})", file=sys.stderr)
            return world
        except CacheMiss as miss:
            if os.path.exists(args.cache):
                print(f"(stale world cache: {miss}; rebuilding)", file=sys.stderr)
    world = PaperWorld.build(
        params=params,
        quiet=args.quiet,
        jobs=getattr(args, "jobs", 1),
        checkpoint_dir=getattr(args, "checkpoint", None),
        **_supervision_kwargs(args),
    )
    if args.cache:
        try:
            save_world(world, args.cache)
            if not args.quiet:
                print(f"(cached world to {args.cache})", file=sys.stderr)
        except OSError as exc:
            # An unwritable cache only loses the reuse, not the render.
            print(f"warning: could not write world cache {args.cache}: {exc}", file=sys.stderr)
    return world


# ---------------------------------------------------------------------------
# Artifact renderers
#
# Each renderer takes the shared AnalysisContext; parsed corpus, victim
# report, and AS concentration come from its memos so one CLI invocation
# decodes the ONP corpus exactly once however many artifacts it renders.
# ---------------------------------------------------------------------------


def _fig1(ctx):
    from repro.analysis import traffic_fractions
    from repro.reporting.figures import ascii_chart

    series = traffic_fractions(ctx.world.arbor, include_gaps=True)
    ntp = [(d, f) for d, f, _ in series]
    return ascii_chart(ntp, log=True, title="Fig 1: NTP fraction of Internet traffic (log y)")


def _fig2(ctx):
    from repro.analysis import attack_fraction_rows
    from repro.reporting import render_table

    rows = attack_fraction_rows(ctx.world.arbor)
    return render_table(
        ["Month", "Small", "Medium", "Large", "All"],
        [[r.month, f"{r.small:.2f}", f"{r.medium:.2f}", f"{r.large:.2f}", f"{r.overall:.3f}"] for r in rows],
        title="Fig 2: NTP fraction of monthly DDoS attacks by size bin",
    )


def _fig3(ctx):
    from repro.analysis import amplifier_counts
    from repro.reporting.figures import ascii_chart
    from repro.util import format_sim

    rows = amplifier_counts(ctx.parsed_samples(), ctx.world.table, ctx.world.pbl)
    # An outage week is a gap (None), not a zero-amplifier data point.
    series = [(format_sim(r.t), None if r.outage else r.ips) for r in rows]
    return ascii_chart(series, log=True, title="Fig 3: monlist amplifier IPs (log y)", value_fmt="{:.0f}")


def _fig4(ctx):
    from repro.analysis import sample_baf_boxplot, version_sample_baf_boxplot
    from repro.reporting import render_table
    from repro.util import format_sim

    rows = []
    for p in ctx.parsed_samples():
        if not p.tables:
            rows.append([format_sim(p.t), "-", "-", "-", "- (no data)"])
            continue
        b = sample_baf_boxplot(p)
        rows.append([format_sim(p.t), f"{b.q1:.1f}", f"{b.median:.1f}", f"{b.q3:.1f}", f"{b.maximum:.1e}"])
    out = [render_table(["Sample", "Q1", "Median", "Q3", "Max"], rows, title="Fig 4b: monlist BAF")]
    vrows = []
    for s in ctx.world.onp.version_samples:
        if not len(s):
            vrows.append([format_sim(s.t), "-", "-", "-", "- (no data)"])
            continue
        b = version_sample_baf_boxplot(s)
        vrows.append([format_sim(s.t), f"{b.q1:.2f}", f"{b.median:.2f}", f"{b.q3:.2f}", f"{b.maximum:.1e}"])
    out.append(render_table(["Sample", "Q1", "Median", "Q3", "Max"], vrows, title="Fig 4c: version BAF"))
    return "\n\n".join(out)


def _fig5(ctx):
    from repro.reporting.figures import ascii_bars

    conc = ctx.concentration()
    rows = []
    for k in (1, 3, 10, 30, 100):
        rows.append((f"top {k}", conc.victim_ecdf.fraction_within_top(k)))
    ovh = ctx.world.registry.special["HOSTING-FR-1"]
    chart = ascii_bars(rows, title="Fig 5: victim-packet share by top victim ASes")
    return chart + f"\nOVH-like AS rank: {conc.victim_as_rank(ovh.asn)} (paper: 1)"


def _fig6(ctx):
    from repro.reporting import render_table
    from repro.util import format_sim

    rows = [
        [format_sim(t), f"{mean:.2e}", f"{median:.0f}", f"{p95:.2e}"]
        for t, mean, median, p95 in ctx.victim_report().victim_packet_stats()
    ]
    return render_table(["Sample", "Mean", "Median", "95th"], rows, title="Fig 6: packets per victim")


def _fig7(ctx):
    from collections import defaultdict

    from repro.reporting.figures import ascii_chart
    from repro.util import format_sim

    hours = ctx.victim_report().attacks_per_hour()
    daily = defaultdict(int)
    for hour, count in hours.items():
        daily[hour // 24] += count
    series = [(format_sim(d * 86400), daily[d]) for d in sorted(daily)]
    return ascii_chart(series, title="Fig 7: attacks per day (derived starts)", value_fmt="{:.0f}")


def _fig8(ctx):
    from repro.analysis import darknet_report
    from repro.reporting import render_table

    report = darknet_report(ctx.world.darknet)
    rows = [
        [month, f"{v['benign']:.0f}", f"{v['other']:.0f}", f"{report.benign_fractions[month]:.2f}"]
        for month, v in report.monthly_per_slash24.items()
    ]
    return render_table(
        ["Month", "Benign pkts//24", "Other pkts//24", "Benign frac"],
        rows,
        title="Fig 8: darknet NTP scanning volume",
    )


def _fig9(ctx):
    from repro.analysis import daily_attack_counts, darknet_report, scanning_leads_attacks_by
    from repro.reporting.figures import sparkline

    report = darknet_report(ctx.world.darknet)
    scanners = report.daily_unique_scanners
    attacks = daily_attack_counts(ctx.world.attacks)
    days = sorted(set(scanners) | set(attacks))
    lead = scanning_leads_attacks_by(scanners, attacks)
    return (
        "Fig 9: scanners (top) vs attacks (bottom), per day\n"
        f"  [{sparkline([scanners.get(d, 0) for d in days], width=72)}]\n"
        f"  [{sparkline([attacks.get(d, 0) for d in days], width=72)}]\n"
        f"scanning leads attacks by {lead} days (paper: about a week)"
    )


def _fig10(ctx):
    from repro.analysis import pool_relative_to_peak
    from repro.reporting.figures import sparkline

    world = ctx.world
    monlist = pool_relative_to_peak([(p.t, len(p.amplifier_ips())) for p in ctx.parsed_samples()])
    version = pool_relative_to_peak([(s.t, len(s)) for s in world.onp.version_samples])
    dns = pool_relative_to_peak([(s.t, s.count) for s in world.dns_pool.weekly_series(n_weeks=60)])
    return (
        "Fig 10: pool size relative to peak\n"
        f"  monlist [{sparkline([f for _, f in monlist])}] -> {monlist[-1][1]:.2f}\n"
        f"  version [{sparkline([f for _, f in version])}] -> {version[-1][1]:.2f}\n"
        f"  openDNS [{sparkline([f for _, f in dns])}] -> {dns[-1][1]:.2f}"
    )


def _site_series(world, site_name, arrays):
    from repro.reporting.figures import sparkline

    site = world.isp.sites[site_name]
    lines = [f"{site_name} NTP traffic (hourly, Dec-Feb):"]
    for label, array in arrays.items():
        series = site.hourly_mbps(array)
        lines.append(f"  {label:<14} [{sparkline(series, width=72)}] peak {series.max():.1f} MB/s")
    return "\n".join(lines)


def _fig11(ctx):
    site = ctx.world.isp.sites["merit"]
    return "Fig 11: " + _site_series(
        ctx.world, "merit", {"sport=123 out": site.ntp_out, "dport=123 in": site.ntp_in_queries}
    )


def _fig12(ctx):
    world = ctx.world
    csu = world.isp.sites["csu"]
    frgp = world.isp.sites["frgp"]
    return (
        "Fig 12: "
        + _site_series(world, "csu", {"sport=123 out": csu.ntp_out})
        + "\n"
        + _site_series(world, "frgp", {"sport=123 in": frgp.ntp_in_reflected, "sport=123 out": frgp.ntp_out})
    )


def _fig13(ctx):
    from repro.reporting.figures import sparkline

    merit = ctx.world.isp.sites["merit"]
    lines = ["Fig 13: top-5 victims of Merit amplifiers (hourly egress)"]
    for victim in merit.top_victims(5):
        series = merit.victim_series_mbps(victim.ip)
        lines.append(
            f"  AS{victim.asn:<6} [{sparkline(series, width=64)}] {victim.gb:.1f} GB via "
            f"{len(victim.amplifiers)} amps"
        )
    return "\n".join(lines)


def _fig14(ctx):
    from repro.reporting.figures import sparkline
    from repro.util import RngStream

    merit = ctx.world.isp.sites["merit"]
    background = merit.background_series(RngStream(77, "fig14").generator)
    ntp = merit.ntp_out + merit.ntp_in_reflected + merit.ntp_in_queries
    lines = ["Fig 14: Merit traffic by protocol (hourly bytes)"]
    for label, series in list(background.items()) + [("ntp", ntp)]:
        lines.append(f"  {label:<6} [{sparkline(series, width=72)}]")
    return "\n".join(lines)


def _fig15(ctx):
    from repro.net import format_ip

    world = ctx.world
    common = world.isp.common_victims("merit", "frgp")
    merit, frgp = world.isp.sites["merit"], world.isp.sites["frgp"]
    lines = [f"Fig 15: {len(common)} victims common to Merit and FRGP (GB merit/frgp)"]
    ranked = sorted(
        common, key=lambda ip: merit.victim_forensics[ip].gb + frgp.victim_forensics[ip].gb, reverse=True
    )
    for ip in ranked[:8]:
        lines.append(
            f"  {format_ip(ip):<16} {merit.victim_forensics[ip].gb:8.2f} / "
            f"{frgp.victim_forensics[ip].gb:8.2f}"
        )
    return "\n".join(lines)


def _fig16(ctx):
    from repro.analysis import common_scanner_timeline, ttl_forensics
    from repro.util import format_sim

    world = ctx.world
    timeline = common_scanner_timeline(world.isp)
    forensics = ttl_forensics(world.sweeps, world.attacks, world.isp.sites["csu"].spec.asns)
    days = sorted(timeline)
    lines = ["Fig 16: common Merit/CSU scanners per day (first/last shown)"]
    for day in days[:4] + days[-4:]:
        lines.append(f"  {format_sim(day * 86400)}: {timeline[day]}")
    lines.append(
        f"TTL forensics: scanning mode {forensics.scan_ttl_mode} (Linux), "
        f"attacks mode {forensics.attack_ttl_mode} (Windows)"
    )
    return "\n".join(lines)


def _table1(ctx):
    from repro.analysis import amplifier_counts
    from repro.net import aggregate_counts
    from repro.reporting import render_table1

    world = ctx.world
    amp_rows = amplifier_counts(ctx.parsed_samples(), world.table, world.pbl)
    victim_rows = []
    for sample in ctx.victim_report().samples:
        ips = sample.victim_ips()
        agg = aggregate_counts(ips, world.table)
        end = world.pbl.end_host_count(ips)
        victim_rows.append(
            {
                "ips": agg.ips,
                "blocks": agg.blocks,
                "asns": agg.asns,
                "end_host_fraction": end / agg.ips if agg.ips else 0.0,
                "ips_per_block": agg.ips_per_block,
            }
        )
    return render_table1(amp_rows, victim_rows)


def _table2(ctx):
    from repro.reporting import render_table2

    world = ctx.world
    report = ctx.version_report()
    amplifier_ips = {h.ip for h in world.hosts.monlist_hosts}
    mega_ips = {h.ip for h in world.hosts.mega_hosts()}
    non_amp = report.restrict_to({r.ip for r in report.records} - amplifier_ips)
    text = render_table2(
        report.restrict_to(mega_ips).os_distribution(),
        report.restrict_to(amplifier_ips).os_distribution(),
        non_amp.os_distribution(),
    )
    cdf = report.compile_year_cdf()
    return text + (
        f"\nstratum 16: {report.stratum16_fraction():.2f} (paper 0.19); "
        f"compiled pre-2004: {cdf[2004]:.2f} (paper 0.13)"
    )


def _table3(ctx):
    from repro.analysis import ParseStats, reconstruct_table_lenient
    from repro.attack import ONP_PROBER_IP
    from repro.reporting import render_monlist_table

    samples = ctx.world.onp.monlist_samples
    sample = samples[min(6, len(samples) - 1)]
    stats = ParseStats()
    for capture in sample.captures:
        table = reconstruct_table_lenient(capture, stats)
        if table is None:
            continue
        if table.entries and table.entries[0].addr == ONP_PROBER_IP and len(table.entries) >= 4:
            return render_monlist_table(table.entries[:8], title="Table 3: an amplifier's monlist table")
    return (
        f"(no probe-topped table found: scanned {stats.captures_total} captures "
        f"of sample {sample.date} — {stats.captures_parsed} parsed, "
        f"{stats.captures_failed} unparseable)"
    )


def _table4(ctx):
    from repro.reporting import render_table4

    return render_table4(ctx.victim_report().port_table(top=20))


def _table5(ctx):
    from repro.analysis import top_amplifier_table
    from repro.reporting import render_table5

    sites = ctx.world.isp.sites
    return (
        render_table5("Merit", top_amplifier_table(sites["merit"]))
        + "\n\n"
        + render_table5("CSU", top_amplifier_table(sites["csu"]))
    )


def _table6(ctx):
    from repro.analysis import top_victim_table
    from repro.reporting import render_table6

    world = ctx.world
    return (
        render_table6("Merit", top_victim_table(world.isp.sites["merit"], world.table, world.geo))
        + "\n\n"
        + render_table6("FRGP/CSU", top_victim_table(world.isp.sites["frgp"], world.table, world.geo))
    )


def _validate(ctx):
    from repro.analysis.validation import validate_ovh_event

    world = ctx.world
    ovh = world.registry.special["HOSTING-FR-1"]
    result = validate_ovh_event(
        world.attacks, ctx.parsed_samples(), ctx.concentration(), world.table, ovh.asn
    )
    rank = str(result.target_as_rank) if result.target_as_rank else "- (AS unobserved)"
    text = (
        "§4.4 cross-dataset validation (the OVH/CloudFlare event):\n"
        f"  event attacks on the hoster: {result.event_attacks}\n"
        f"  amplifier ASes in the event ('disclosed'): {result.disclosed_asns}\n"
        f"  ... also present in the ONP data: {result.overlapping_asns} "
        f"({100 * result.asn_overlap_fraction:.0f}%; paper: 1291/1297 = 99.5%)\n"
        f"  victim-packet share of overlapping ASes: {result.victim_packet_share:.2f} (paper: 0.60)\n"
        f"  target AS victim rank: {rank} (paper: 1)"
    )
    if result.degraded:
        text += (
            "\n  DEGRADED: one side of the cross-check is missing "
            f"(disclosed ASes: {result.disclosed_asns}, ONP amplifier ASes: {result.onp_asns}, "
            f"target rank: {result.target_as_rank}) — agreement figures are vacuous"
        )
    return text


ARTIFACTS = {
    "F1": ("Fig 1: global NTP/DNS traffic fractions", _fig1),
    "F2": ("Fig 2: NTP share of attacks by size bin", _fig2),
    "F3": ("Fig 3: amplifier counts", _fig3),
    "F4": ("Fig 4: BAF boxplots (monlist + version)", _fig4),
    "F5": ("Fig 5: victim AS concentration", _fig5),
    "F6": ("Fig 6: packets per victim", _fig6),
    "F7": ("Fig 7: attacks per day", _fig7),
    "F8": ("Fig 8: darknet scan volume", _fig8),
    "F9": ("Fig 9: scanners vs attacks lead-lag", _fig9),
    "F10": ("Fig 10: remediation of three pools", _fig10),
    "F11": ("Fig 11: Merit NTP traffic", _fig11),
    "F12": ("Fig 12: CSU/FRGP NTP traffic", _fig12),
    "F13": ("Fig 13: top Merit victims", _fig13),
    "F14": ("Fig 14: Merit traffic by protocol", _fig14),
    "F15": ("Fig 15: common Merit/FRGP victims", _fig15),
    "F16": ("Fig 16: common scanners + TTL forensics", _fig16),
    "T1": ("Table 1: populations", _table1),
    "T2": ("Table 2: OS strings", _table2),
    "T3": ("Table 3: monlist example", _table3),
    "T4": ("Table 4: attacked ports", _table4),
    "T5": ("Table 5: top local amplifiers", _table5),
    "T6": ("Table 6: top local victims", _table6),
}


def render_artifact(world, artifact_id, context=None):
    """Render one artifact by id (``F1``..``F16``, ``T1``..``T6``).

    ``context`` shares parsed state across renders; without one, a private
    context is created (same output, but each call re-parses what it needs).
    """
    key = artifact_id.upper()
    if key not in ARTIFACTS:
        raise KeyError(f"unknown artifact {artifact_id!r}; choose from {sorted(ARTIFACTS)}")
    if context is None:
        context = AnalysisContext(world)
    _, renderer = ARTIFACTS[key]
    return renderer(context)


# ---------------------------------------------------------------------------
# Parallel rendering
# ---------------------------------------------------------------------------


def _render_task(state, index):
    """One supervised render task: ``state`` is ``(ctx, ids)`` COW-inherited."""
    ctx, ids = state
    return render_artifact(ctx.world, ids[index], context=ctx)


def render_many(world, artifact_ids, jobs=1, context=None, stats=None, runner=None):
    """Render several artifacts, optionally over a supervised process pool.

    Returns the rendered texts in the order requested — never completion
    order — so the output is byte-identical at any ``jobs`` value (each
    renderer is a pure function of the world).  Parallelism requires the
    ``fork`` start method: the parent decodes the corpus once (``warm``)
    and workers inherit the parsed state copy-on-write, keeping the
    parse-once contract across the whole pool.  Where fork is unavailable
    the serial path runs instead, with identical output.

    Pooled renders run under :class:`repro.util.pool.ShardRunner`, so a
    crashed, hung, or erroring render worker is retried and, as a last
    resort, re-run serially in this process — the call either returns
    every requested artifact or raises the genuine exception.

    ``stats``, when given, is a dict filled with pool diagnostics:
    whether the pool engaged, how many workers and tasks it ran, how many
    CPUs the host exposes, why the pool did *not* engage, and a
    ``supervision`` sub-dict of retry/timeout/crash/fallback counters.
    ``bench-pipeline`` reports these so a no-op parallel phase is
    explainable from the benchmark record alone.
    """
    from repro.util.pool import ShardRunner, fork_pool_gate

    ids = [artifact_id.upper() for artifact_id in artifact_ids]
    ctx = context if context is not None else AnalysisContext(world, jobs=jobs)
    if stats is None:
        stats = {}
    if runner is None:
        runner = ShardRunner(jobs=jobs)
    # Warm the parent before forking when the pool will engage, so workers
    # inherit the parsed corpus copy-on-write instead of re-decoding it.
    engaged, _ = fork_pool_gate(runner.jobs, len(ids))
    if engaged:
        ctx.warm()
    outputs = runner.map("render", _render_task, (ctx, ids), len(ids))
    shard = runner.stats["render"]
    stats.update(
        {
            "pool_engaged": shard["engaged"],
            "workers": shard["workers"] if shard["engaged"] else 0,
            "tasks": shard["tasks"],
            "cpu_count": shard["cpu_count"],
            "reason": shard["reason"],
            "supervision": {
                key: shard[key]
                for key in (
                    "task_timeout",
                    "retries_allowed",
                    "retries",
                    "timeouts",
                    "worker_crashes",
                    "task_errors",
                    "serial_fallbacks",
                )
            },
        }
    )
    return outputs


def _emit_artifacts(ids, outputs, out_dir=None):
    """Print rendered artifacts, or write one ``<id>.txt`` per artifact."""
    if out_dir is None:
        for text in outputs:
            print(text)
            print()
        return
    from repro.util.io import atomic_write_text

    os.makedirs(out_dir, exist_ok=True)
    for artifact_id, text in zip(ids, outputs):
        path = os.path.join(out_dir, f"{artifact_id.upper()}.txt")
        atomic_write_text(path, text + "\n")
    print(f"(wrote {len(ids)} artifacts to {out_dir})", file=sys.stderr)


# ---------------------------------------------------------------------------
# Benchmarks
# ---------------------------------------------------------------------------


def _provenance(args, params):
    """The shared benchmark-record fields tying a run to its world."""
    import platform
    import time as _time

    from repro import __version__

    return {
        "seed": params.seed,
        "scale": params.scale,
        "preset": args.preset,
        "faults": getattr(params.faults, "name", "unknown"),
        "n_ases": params.resolved_n_ases(),
        "package_version": __version__,
        "python": platform.python_version(),
        "unix_time": int(_time.time()),
    }


def _peak_rss_mb():
    """(self MB, children MB) peak RSS so far for this process tree.

    Linux reports ``ru_maxrss`` in KB (macOS in bytes); children covers
    the largest fork-pool worker, so self+children bounds the build's
    true footprint from above.
    """
    import resource

    self_raw = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    child_raw = resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss
    divisor = 1024.0 * 1024.0 if sys.platform == "darwin" else 1024.0
    return round(self_raw / divisor, 2), round(child_raw / divisor, 2)


def _bench_build(args):
    """Build worlds fresh (never cached), record timings + memory to JSON.

    The JSON is the perf trajectory's unit record: one file per run with
    enough provenance (seed/scale/faults/version/host counts, shard-pool
    engagement, peak RSS) to compare across commits.  ``--scale`` accepts
    a comma-separated list for a scaling sweep (the record then carries a
    ``runs`` array, one entry per scale).  ``--max-seconds`` and
    ``--max-rss-mb`` turn it into a CI regression gate.
    """
    from repro.measurement.capture_store import spill_threshold_bytes
    from repro.util.io import atomic_write_json

    faults = resolve_fault_profile(args.faults)
    if args.scale is not None:
        scales = _parse_list(args.scale, float, "scale")
    else:
        scales = [resolve_preset(args.preset).scale]
    runs = []
    worst_total = 0.0
    params = None
    for scale in scales:
        params = WorldParams(seed=args.seed, scale=scale, faults=faults)
        world = PaperWorld.build(
            params=params,
            quiet=args.quiet,
            jobs=args.jobs,
            checkpoint_dir=getattr(args, "checkpoint", None),
            **_supervision_kwargs(args),
        )
        timings = dict(world.build_timings)
        total = timings.pop("total")
        worst_total = max(worst_total, total)
        self_mb, children_mb = _peak_rss_mb()
        run = {
            "scale": scale,
            "n_ases": params.resolved_n_ases(),
            "hosts": len(world.hosts),
            "victims": len(world.victims),
            "attacks": len(world.attacks),
            "sweeps": len(world.sweeps),
            "total_seconds": round(total, 4),
            "phases": {phase: round(seconds, 4) for phase, seconds in timings.items()},
            "memory": {
                "peak_rss_mb": round(self_mb + children_mb, 2),
                "self_mb": self_mb,
                "children_mb": children_mb,
                "spill_threshold_mb": round(spill_threshold_bytes() / (1024 * 1024), 2),
            },
            "shards": world.shard_stats,
            "supervision": _supervision_kwargs(args),
        }
        if world.checkpoint_stats is not None:
            run["checkpoint"] = world.checkpoint_stats
        runs.append(run)
        print("\n".join(world.timing_summary()))
        print(
            f"  scale {scale:g}: peak RSS {run['memory']['peak_rss_mb']:.0f} MB "
            f"(self {self_mb:.0f} + children {children_mb:.0f})"
        )
    record = _provenance(args, params)
    record["jobs"] = args.jobs
    if len(runs) == 1:
        record.update(runs[0])
    else:
        record.pop("scale", None)
        record.pop("n_ases", None)  # varies per run; each runs[] entry has its own
        record["scales"] = scales
        record["runs"] = runs
    atomic_write_json(args.out, record)
    print(f"(wrote {args.out})")
    status = 0
    if args.max_seconds is not None and worst_total > args.max_seconds:
        print(
            f"FAIL: build took {worst_total:.2f}s > ceiling {args.max_seconds:.2f}s",
            file=sys.stderr,
        )
        status = 1
    peak = runs[-1]["memory"]["peak_rss_mb"]
    if args.max_rss_mb is not None and peak > args.max_rss_mb:
        print(
            f"FAIL: peak RSS {peak:.0f} MB > ceiling {args.max_rss_mb:.0f} MB",
            file=sys.stderr,
        )
        status = 1
    return status


def _bench_pipeline(args):
    """Time the full artifact pipeline: build, parse, render x2.

    Renders all 22 artifacts twice — serially and over ``--jobs`` workers —
    and fails (exit 1) if the two render passes are not byte-identical:
    the determinism contract is load-bearing, so the benchmark doubles as
    its enforcement.  Writes a BENCH_pipeline.json record with the same
    provenance scheme as BENCH_build.json.
    """
    from time import perf_counter

    params = _world_params(args)
    ids = list(ARTIFACTS)

    start = perf_counter()
    world = PaperWorld.build(
        params=params,
        quiet=args.quiet,
        checkpoint_dir=getattr(args, "checkpoint", None),
        **_supervision_kwargs(args),
    )
    build_seconds = perf_counter() - start

    context = AnalysisContext(world, jobs=args.jobs)
    start = perf_counter()
    context.warm()
    parse_seconds = perf_counter() - start

    start = perf_counter()
    serial = [render_artifact(world, artifact_id, context=context) for artifact_id in ids]
    serial_seconds = perf_counter() - start

    pool_stats = {}
    start = perf_counter()
    parallel = render_many(
        world,
        ids,
        jobs=args.jobs,
        context=context,
        stats=pool_stats,
        runner=_make_runner(args.jobs, args),
    )
    parallel_seconds = perf_counter() - start

    from repro.measurement.capture_store import spill_threshold_bytes

    identical = serial == parallel
    total = build_seconds + parse_seconds + serial_seconds + parallel_seconds
    self_mb, children_mb = _peak_rss_mb()
    record = _provenance(args, params)
    record.update(
        {
            "jobs": args.jobs,
            "n_artifacts": len(ids),
            "parse_calls": context.parse_calls,
            "byte_identical": identical,
            "total_seconds": round(total, 4),
            "phases": {
                "build": round(build_seconds, 4),
                "parse": round(parse_seconds, 4),
                "render_serial": round(serial_seconds, 4),
                "render_parallel": round(parallel_seconds, 4),
            },
            "memory": {
                "peak_rss_mb": round(self_mb + children_mb, 2),
                "self_mb": self_mb,
                "children_mb": children_mb,
                "spill_threshold_mb": round(spill_threshold_bytes() / (1024 * 1024), 2),
            },
            "render_pool": pool_stats,
        }
    )
    from repro.util.io import atomic_write_json

    atomic_write_json(args.out, record)
    print(f"Pipeline: {total:.2f}s wall clock ({len(ids)} artifacts, jobs={args.jobs})")
    for phase, seconds in record["phases"].items():
        print(f"  {phase:<16} {seconds:8.2f}s")
    if pool_stats.get("pool_engaged"):
        print(
            f"  (render pool: {pool_stats['workers']} workers, "
            f"{pool_stats['tasks']} tasks, host has {pool_stats['cpu_count']} CPUs)"
        )
    else:
        print(f"  (render pool not engaged: {pool_stats.get('reason')})")
    peak = record["memory"]["peak_rss_mb"]
    print(f"  peak RSS {peak:.0f} MB (self {self_mb:.0f} + children {children_mb:.0f})")
    print(f"(wrote {args.out})")
    status = 0
    if not identical:
        print("FAIL: parallel render output differs from serial", file=sys.stderr)
        status = 1
    if args.max_parse_seconds is not None and parse_seconds > args.max_parse_seconds:
        print(
            f"FAIL: parse phase took {parse_seconds:.2f}s > ceiling "
            f"{args.max_parse_seconds:.2f}s",
            file=sys.stderr,
        )
        status = 1
    if args.max_render_seconds is not None and serial_seconds > args.max_render_seconds:
        print(
            f"FAIL: serial render took {serial_seconds:.2f}s > ceiling "
            f"{args.max_render_seconds:.2f}s",
            file=sys.stderr,
        )
        status = 1
    if args.max_rss_mb is not None and peak > args.max_rss_mb:
        print(
            f"FAIL: peak RSS {peak:.0f} MB > ceiling {args.max_rss_mb:.0f} MB",
            file=sys.stderr,
        )
        status = 1
    if args.max_seconds is not None and total > args.max_seconds:
        print(
            f"FAIL: pipeline took {total:.2f}s > ceiling {args.max_seconds:.2f}s",
            file=sys.stderr,
        )
        status = 1
    return status


def _bench_verify(args):
    """Time the conformance matrix, write a BENCH_verify.json record.

    The verify-world analogue of ``bench-pipeline``: runs the full
    invariant matrix at ``--jobs`` workers, records wall clock, matrix
    shape, pool facts, and outcome counts, and optionally enforces a
    wall-clock ceiling (CI regression gate).  Exit 1 when the matrix is
    nonconformant or over budget.
    """
    from time import perf_counter

    from repro.verify import run_conformance

    seeds = _parse_list(args.seeds, int, "seed")
    scales = _parse_list(args.scales, float, "scale")
    faults = _parse_list(args.faults, str, "fault preset")
    for name in faults:
        try:
            resolve_fault_profile(name)
        except KeyError as error:
            raise CliError(str(error).strip("'\""))

    def progress(message):
        if not args.quiet:
            print(f"[bench-verify] {message}", file=sys.stderr)

    start = perf_counter()
    report = run_conformance(
        seeds,
        scales,
        faults,
        progress=progress,
        jobs=args.jobs,
        build_jobs=args.build_jobs,
        **_supervision_kwargs(args),
    )
    total = perf_counter() - start

    import platform
    import time as _time

    from repro import __version__
    from repro.util.io import atomic_write_json
    from repro.util.pool import available_cpus

    record = {
        "seeds": seeds,
        "scales": scales,
        "faults": faults,
        "jobs": args.jobs,
        "build_jobs": args.build_jobs,
        "cpu_count": available_cpus(),
        "cells": len(report.cells),
        "invariants_registered": report.invariants_run,
        "counts": report.counts(),
        "ok": report.ok,
        "shards": report.shards,
        "supervision": _supervision_kwargs(args),
        "total_seconds": round(total, 4),
        "package_version": __version__,
        "python": platform.python_version(),
        "unix_time": int(_time.time()),
    }
    atomic_write_json(args.out, record)
    counts = report.counts()
    print(
        f"Verify: {total:.2f}s wall clock ({len(report.cells)} worlds, "
        f"{report.invariants_run} invariants, jobs={args.jobs}; "
        f"{counts['pass']} pass / {counts['fail']} fail / {counts['skip']} skip)"
    )
    print(f"(wrote {args.out})")
    if not report.ok:
        print(
            "FAIL: matrix nonconformant: " + ", ".join(report.violated()),
            file=sys.stderr,
        )
        return 1
    if args.max_seconds is not None and total > args.max_seconds:
        print(
            f"FAIL: verify matrix took {total:.2f}s > ceiling {args.max_seconds:.2f}s",
            file=sys.stderr,
        )
        return 1
    return 0


# ---------------------------------------------------------------------------
# Streaming service
# ---------------------------------------------------------------------------


def _serve(args):
    """Build/load a world and serve its replay stream over HTTP/JSON."""
    import asyncio

    from repro.stream import serve_world

    world = build_or_load_world(args)
    return asyncio.run(
        serve_world(
            world,
            host=args.host,
            port=args.port,
            skew=args.skew,
            batch=args.batch,
            pace=args.pace,
            shards=args.shards,
            keepalive=not args.no_keepalive,
        )
    )


def _stream_query(args):
    """One query against a running ``repro serve`` instance."""
    import json
    import urllib.error
    import urllib.request

    target = f"/query/{args.query}" if args.query not in ("health", "stats") else f"/{args.query}"
    if args.n is not None:
        target += f"?n={args.n}"
    url = args.url.rstrip("/") + target
    try:
        with urllib.request.urlopen(url, timeout=args.timeout) as response:
            body = json.loads(response.read())
    except urllib.error.HTTPError as error:
        print(json.dumps({"status": error.code, "error": json.loads(error.read())}))
        return 1
    except (urllib.error.URLError, OSError) as error:
        print(f"error: cannot reach {url}: {error}", file=sys.stderr)
        return 2
    print(json.dumps(body, indent=2, sort_keys=True))
    return 0


def _shard_provenance(shards, pool_info=None):
    """Shard-engagement provenance for BENCH_serve: the same
    engagement-honesty rule BENCH_build/BENCH_verify follow.

    When the loadgen ran sharded it hands back the live ``pool_info``
    from :class:`ShardedStream`; otherwise we evaluate the gate here so
    the record still explains *why* no fork pool ran.  Either way the
    recorded ``cpu_count`` can never contradict the engagement verdict —
    both come from the same :func:`fork_pool_gate` call."""
    from repro.stream.partition import STREAM_BLOCKS
    from repro.util.pool import available_cpus, fork_pool_gate

    if pool_info is not None:
        info = dict(pool_info)
    else:
        cpus = available_cpus()
        engaged, reason = fork_pool_gate(
            shards, STREAM_BLOCKS, cpus=cpus, phase="serve-shards"
        )
        info = {
            "requested": shards,
            "engaged": engaged,
            "reason": reason,
            "workers": min(shards, STREAM_BLOCKS) if engaged else 0,
            "blocks": STREAM_BLOCKS,
            "cpu_count": cpus,
            "mode": "fork" if engaged else "in-process",
        }
    if info["engaged"] and info["cpu_count"] <= 1:
        raise AssertionError(
            "shard pool recorded as engaged on a single-CPU host: "
            f"{info!r}"
        )
    return info


def _bench_serve(args):
    """Hammer an in-process service; write the BENCH_serve.json record.

    The serve analogue of ``bench-pipeline``: ``--clients`` concurrent
    simulated clients x ``--requests`` queries each against a service
    ingesting the world's replay, recording queries/sec, ingest
    records/sec, latency percentiles, and peak RSS.  ``--warmup`` runs
    prime caches and the allocator; ``--repeats`` measured runs are all
    recorded and the best (by queries/sec) becomes the headline — this
    box shares cores, so single runs are too noisy to gate on.
    ``--max-p95-ms``, ``--min-ingest-rps`` and ``--max-seconds`` turn it
    into a CI perf gate (exit 1 on breach).
    """
    import time as _time

    from repro.stream import run_loadgen
    from repro.util.io import atomic_write_json
    from repro.util.pool import pool_provenance

    params = _world_params(args)
    world = build_or_load_world(args)

    def one_run():
        return run_loadgen(
            world,
            clients=args.clients,
            requests=args.requests,
            batch=args.batch,
            pace=args.pace,
            shards=args.shards,
            keepalive=not args.no_keepalive,
        )

    started = _time.monotonic()
    for _ in range(max(0, args.warmup)):
        one_run()
    runs = [one_run() for _ in range(max(1, args.repeats))]
    total = _time.monotonic() - started
    result = max(runs, key=lambda r: r["queries_per_second"])
    self_mb, children_mb = _peak_rss_mb()
    record = _provenance(args, params)
    record.update(result)
    record["total_seconds"] = round(total, 4)
    record["warmup_runs"] = max(0, args.warmup)
    record["runs"] = [
        {
            "queries_per_second": r["queries_per_second"],
            "ingest_records_per_second": r["ingest"]["records_per_second"],
            "p95_ms": r["latency_ms"]["p95"],
            "best": r is result,
        }
        for r in runs
    ]
    record["memory"] = {
        "peak_rss_mb": round(self_mb + children_mb, 2),
        "self_mb": self_mb,
        "children_mb": children_mb,
    }
    record["pool"] = pool_provenance()
    record["pool"]["shards"] = _shard_provenance(args.shards, result.get("shards"))
    atomic_write_json(args.out, record)
    p95 = result["latency_ms"]["p95"]
    ingest_rps = result["ingest"]["records_per_second"]
    print(
        f"bench-serve: {result['queries_per_second']} q/s, "
        f"{ingest_rps} rec/s ingest, "
        f"p50 {result['latency_ms']['p50']} ms, p95 {p95} ms "
        f"({result['requests_ok']}/{result['requests_total']} ok, "
        f"best of {len(runs)}) -> {args.out}"
    )
    failed = []
    if result["requests_failed"]:
        failed.append(f"{result['requests_failed']} requests failed")
    if not result["ingest"]["balanced"]:
        failed.append("ingest accounting unbalanced")
    if args.max_p95_ms is not None and (p95 is None or p95 > args.max_p95_ms):
        failed.append(f"p95 {p95} ms > ceiling {args.max_p95_ms} ms")
    if args.min_ingest_rps is not None and ingest_rps < args.min_ingest_rps:
        failed.append(
            f"ingest {ingest_rps} rec/s < floor {args.min_ingest_rps} rec/s"
        )
    if args.max_seconds is not None and total > args.max_seconds:
        failed.append(f"took {total:.2f}s > ceiling {args.max_seconds:.2f}s")
    if failed:
        print("FAIL: " + "; ".join(failed), file=sys.stderr)
        return 1
    return 0


# ---------------------------------------------------------------------------
# Argument parsing
# ---------------------------------------------------------------------------


def _quality(ctx):
    from repro.analysis import quality_report

    report = quality_report(ctx.world, parsed_samples=ctx.parsed_samples())
    print(report.render())
    return 0 if report.ok else 1


def _parse_list(text, convert, what):
    values = []
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        try:
            values.append(convert(part))
        except ValueError:
            raise CliError(f"bad {what} {part!r} in {text!r}")
    if not values:
        raise CliError(f"no {what}s in {text!r}")
    return values


def _verify_world(args):
    import os

    from repro.verify import run_conformance

    if args.stream_shards is not None:
        # The invariant (and its matrix workers, which inherit the
        # environment) read this when running the shard-invariance pass.
        os.environ["REPRO_STREAM_SHARDS"] = str(args.stream_shards)
    seeds = _parse_list(args.seeds, int, "seed")
    scales = _parse_list(args.scales, float, "scale")
    faults = _parse_list(args.faults, str, "fault preset")
    for name in faults:
        try:
            resolve_fault_profile(name)  # fail fast on typos, before any build
        except KeyError as error:
            raise CliError(str(error).strip("'\""))

    def progress(message):
        if not args.quiet:
            print(f"[verify] {message}", file=sys.stderr)

    report = run_conformance(
        seeds,
        scales,
        faults,
        progress=progress,
        jobs=args.jobs,
        build_jobs=args.build_jobs,
        **_supervision_kwargs(args),
    )
    if args.report:
        from repro.util.io import atomic_write_text

        atomic_write_text(args.report, report.to_json() + "\n")
        progress(f"wrote {args.report}")
    print(report.render())
    return 0 if report.ok else 1


def _verify_manifest(args):
    from repro.verify import (
        build_manifest,
        diff_manifest,
        load_manifest,
        write_manifest,
    )

    def progress(message):
        if not args.quiet:
            print(f"[manifest] {message}", file=sys.stderr)

    current = build_manifest(progress=progress, jobs=args.jobs)
    if args.write:
        path = write_manifest(current, path=args.manifest)
        print(f"wrote {path} ({len(current['worlds'])} golden worlds)")
        return 0
    try:
        recorded = load_manifest(args.manifest)
    except FileNotFoundError:
        print(
            f"error: no manifest at {args.manifest}; generate one with "
            f"'python -m repro verify-manifest --write'",
            file=sys.stderr,
        )
        return 2
    ok, lines = diff_manifest(recorded, current)
    print("\n".join(lines))
    return 0 if ok else 1


def _add_world_args(parser, scale_list=False):
    parser.add_argument("--seed", type=int, default=2014)
    if scale_list:
        parser.add_argument(
            "--scale",
            type=str,
            default=None,
            metavar="S[,S...]",
            help="overrides --preset; comma-separated values run a scaling sweep",
        )
    else:
        parser.add_argument("--scale", type=float, default=None, help="overrides --preset")
    parser.add_argument("--preset", default="small", choices=sorted(PRESETS))
    parser.add_argument(
        "--faults",
        default="clean",
        choices=sorted(FAULT_PROFILES),
        help="measurement-apparatus fault profile (default: clean)",
    )
    parser.add_argument("--cache", default=None, help="pickle path to cache/reuse the world")
    parser.add_argument(
        "--checkpoint",
        default=None,
        metavar="DIR",
        help="persist build progress after every phase; an interrupted build "
        "re-run with the same flags resumes from the last completed phase "
        "(the resumed world is byte-identical to an uninterrupted one)",
    )
    parser.add_argument("--quiet", action="store_true", default=False)
    _add_supervision_args(parser)


def _add_supervision_args(parser):
    parser.add_argument(
        "--task-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="kill and retry any pooled task that exceeds this wall clock "
        "(default: no per-task timeout)",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=None,
        metavar="N",
        help="pooled attempts per task before the in-process serial fallback "
        "(default: 2 retries after the first attempt)",
    )


def _add_jobs_arg(parser):
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="parse samples and render artifacts over N processes "
        "(output is byte-identical at any N)",
    )


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="repro", description="Regenerate artifacts of the NTP DDoS paper."
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    p_summary = subparsers.add_parser("summary", help="headline findings vs the paper")
    _add_world_args(p_summary)
    p_summary.add_argument(
        "--timings", action="store_true", default=False, help="append per-phase build timings"
    )

    p_bench = subparsers.add_parser(
        "bench-build", help="time a world build and write a BENCH_build.json record"
    )
    _add_world_args(p_bench, scale_list=True)
    p_bench.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="shard the build phases over N fork-pool workers "
        "(the world is byte-identical at any N)",
    )
    p_bench.add_argument("--out", default="BENCH_build.json", help="output JSON path")
    p_bench.add_argument(
        "--max-seconds",
        type=float,
        default=None,
        help="exit nonzero if the build exceeds this wall-clock ceiling (CI smoke)",
    )
    p_bench.add_argument(
        "--max-rss-mb",
        type=float,
        default=None,
        help="exit nonzero if peak RSS (self + children) exceeds this ceiling "
        "(memory-regression tripwire)",
    )

    p_bench_pipe = subparsers.add_parser(
        "bench-pipeline",
        help="time build + parse + serial/parallel render of all artifacts",
    )
    _add_world_args(p_bench_pipe)
    _add_jobs_arg(p_bench_pipe)
    p_bench_pipe.add_argument("--out", default="BENCH_pipeline.json", help="output JSON path")
    p_bench_pipe.add_argument(
        "--max-seconds",
        type=float,
        default=None,
        help="exit nonzero if the pipeline exceeds this wall-clock ceiling (CI smoke)",
    )
    p_bench_pipe.add_argument(
        "--max-parse-seconds",
        type=float,
        default=None,
        help="exit nonzero if the parse phase alone exceeds this ceiling "
        "(decode-regression tripwire)",
    )
    p_bench_pipe.add_argument(
        "--max-render-seconds",
        type=float,
        default=None,
        help="exit nonzero if the serial render pass exceeds this ceiling "
        "(aggregation-kernel regression tripwire)",
    )
    p_bench_pipe.add_argument(
        "--max-rss-mb",
        type=float,
        default=None,
        help="exit nonzero if peak RSS (self + children) exceeds this ceiling",
    )

    p_bench_verify = subparsers.add_parser(
        "bench-verify",
        help="time the conformance matrix and write a BENCH_verify.json record",
    )
    p_bench_verify.add_argument("--seeds", default="7,2014,99", help="comma-separated seeds")
    p_bench_verify.add_argument(
        "--scales", default="0.0005,0.001", help="comma-separated scales"
    )
    p_bench_verify.add_argument(
        "--faults",
        default="clean,paper",
        help=f"comma-separated fault presets ({', '.join(FAULT_PROFILES)})",
    )
    p_bench_verify.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="build matrix cells over N fork-pool workers",
    )
    p_bench_verify.add_argument(
        "--build-jobs",
        type=int,
        default=1,
        metavar="N",
        help="shard each world build over N workers (compose with --jobs carefully)",
    )
    p_bench_verify.add_argument("--out", default="BENCH_verify.json", help="output JSON path")
    p_bench_verify.add_argument(
        "--max-seconds",
        type=float,
        default=None,
        help="exit nonzero if the matrix exceeds this wall-clock ceiling (CI smoke)",
    )
    p_bench_verify.add_argument("--quiet", action="store_true", default=False)
    _add_supervision_args(p_bench_verify)

    p_figure = subparsers.add_parser("figure", help="render figures F1..F16")
    p_figure.add_argument("ids", nargs="+", metavar="F#")
    _add_world_args(p_figure)
    _add_jobs_arg(p_figure)

    p_table = subparsers.add_parser("table", help="render tables T1..T6")
    p_table.add_argument("ids", nargs="+", metavar="T#")
    _add_world_args(p_table)
    _add_jobs_arg(p_table)

    p_render = subparsers.add_parser(
        "render", help="render many artifacts (optionally in parallel / to files)"
    )
    p_render.add_argument("ids", nargs="*", metavar="ID", help="artifact ids (or use --all)")
    p_render.add_argument(
        "--all", action="store_true", default=False, help="render every artifact (F1..T6)"
    )
    p_render.add_argument(
        "--out-dir", default=None, metavar="DIR", help="write one DIR/<id>.txt per artifact"
    )
    _add_world_args(p_render)
    _add_jobs_arg(p_render)

    p_validate = subparsers.add_parser("validate", help="§4.4 cross-dataset validation")
    _add_world_args(p_validate)

    p_quality = subparsers.add_parser(
        "quality", help="per-dataset loss/outage/parse-failure accounting"
    )
    _add_world_args(p_quality)

    p_verify = subparsers.add_parser(
        "verify-world",
        help="run the registered conformance invariants over a seed x scale x fault matrix",
    )
    p_verify.add_argument("--seeds", default="7,2014,99", help="comma-separated seeds")
    p_verify.add_argument("--scales", default="0.0005,0.001", help="comma-separated scales")
    p_verify.add_argument(
        "--faults",
        default="clean,paper",
        help=f"comma-separated fault presets ({', '.join(FAULT_PROFILES)})",
    )
    p_verify.add_argument(
        "--report", default=None, metavar="JSON", help="write the machine-readable report here"
    )
    p_verify.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="build matrix cells over N fork-pool workers "
        "(the report is identical at any N)",
    )
    p_verify.add_argument(
        "--build-jobs",
        type=int,
        default=1,
        metavar="N",
        help="shard each world build over N workers; use instead of --jobs "
        "when cells are few but large (the report is identical at any N)",
    )
    p_verify.add_argument(
        "--stream-shards",
        type=int,
        default=None,
        metavar="N",
        help="shard count for the streaming invariant's shard-invariance "
        "pass (sets REPRO_STREAM_SHARDS; the report is identical at any N)",
    )
    p_verify.add_argument("--quiet", action="store_true", default=False)
    _add_supervision_args(p_verify)

    p_manifest = subparsers.add_parser(
        "verify-manifest",
        help="check rendered-artifact checksums against the golden manifest",
    )
    p_manifest.add_argument(
        "--manifest", default="MANIFEST_golden.json", help="manifest path"
    )
    p_manifest.add_argument(
        "--write", action="store_true", default=False, help="regenerate the manifest instead"
    )
    p_manifest.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="parse and render each golden world over N processes",
    )
    p_manifest.add_argument("--quiet", action="store_true", default=False)

    p_serve = subparsers.add_parser(
        "serve",
        help="long-running HTTP/JSON streaming-analysis service over a world's replay",
    )
    _add_world_args(p_serve)
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument(
        "--port", type=int, default=0, help="0 binds an ephemeral port (printed on start)"
    )
    p_serve.add_argument(
        "--skew",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help="watermark lag: tolerate records up to this far behind the stream head",
    )
    p_serve.add_argument(
        "--batch",
        type=int,
        default=256,
        metavar="N",
        help="records ingested per event-loop turn (queries interleave between batches)",
    )
    p_serve.add_argument(
        "--pace",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help="sleep between ingest batches (0 = ingest as fast as the loop allows)",
    )
    p_serve.add_argument(
        "--shards",
        type=int,
        default=1,
        metavar="N",
        help="partition ingest over N shard engines (answers are identical at any N)",
    )
    p_serve.add_argument(
        "--no-keepalive",
        action="store_true",
        default=False,
        help="close every connection after one response (HTTP/1.0 behaviour)",
    )

    p_squery = subparsers.add_parser(
        "stream-query", help="query a running 'repro serve' instance"
    )
    p_squery.add_argument(
        "query",
        help="query name (victims, top_victims, scanners, traffic, ingest, ...) "
        "or 'health'/'stats'",
    )
    p_squery.add_argument("--url", default="http://127.0.0.1:8123", help="service base URL")
    p_squery.add_argument("--n", type=int, default=None, help="top-K size for top_* queries")
    p_squery.add_argument("--timeout", type=float, default=10.0)

    p_bench_serve = subparsers.add_parser(
        "bench-serve",
        help="load-test the streaming service, write BENCH_serve.json",
    )
    _add_world_args(p_bench_serve)
    p_bench_serve.add_argument("--clients", type=int, default=8, metavar="N")
    p_bench_serve.add_argument(
        "--requests", type=int, default=25, metavar="N", help="queries per client"
    )
    p_bench_serve.add_argument("--batch", type=int, default=512, metavar="N")
    p_bench_serve.add_argument("--pace", type=float, default=0.0, metavar="SECONDS")
    p_bench_serve.add_argument(
        "--shards",
        type=int,
        default=1,
        metavar="N",
        help="partition ingest over N shard engines (answers are identical at any N)",
    )
    p_bench_serve.add_argument(
        "--no-keepalive",
        action="store_true",
        default=False,
        help="one connection per request: measures the keep-alive win",
    )
    p_bench_serve.add_argument(
        "--warmup",
        type=int,
        default=1,
        metavar="N",
        help="unrecorded priming runs before the measured ones",
    )
    p_bench_serve.add_argument(
        "--repeats",
        type=int,
        default=3,
        metavar="N",
        help="measured runs; all are recorded, the best becomes the headline",
    )
    p_bench_serve.add_argument("--out", default="BENCH_serve.json")
    p_bench_serve.add_argument(
        "--max-p95-ms",
        type=float,
        default=None,
        help="exit 1 if p95 query latency exceeds this many milliseconds",
    )
    p_bench_serve.add_argument(
        "--min-ingest-rps",
        type=float,
        default=None,
        help="exit 1 if ingest records/sec falls below this floor",
    )
    p_bench_serve.add_argument(
        "--max-seconds",
        type=float,
        default=None,
        help="exit 1 if the whole exercise exceeds this wall clock",
    )

    subparsers.add_parser("list", help="list artifacts and presets")

    args = parser.parse_args(argv)

    if args.command == "list":
        print("Artifacts:")
        for key, (description, _) in ARTIFACTS.items():
            print(f"  {key:>3}  {description}")
        print("Presets:")
        for preset in PRESETS.values():
            print(f"  {preset.name:>8}  scale={preset.scale}  {preset.description}")
        return 0

    if args.command == "bench-build":
        try:
            return _bench_build(args)
        except CliError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
    if args.command == "bench-pipeline":
        return _bench_pipeline(args)
    if args.command == "bench-verify":
        try:
            return _bench_verify(args)
        except CliError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
    if args.command == "verify-world":
        try:
            return _verify_world(args)
        except CliError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
    if args.command == "verify-manifest":
        return _verify_manifest(args)
    if args.command == "serve":
        try:
            return _serve(args)
        except CliError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
    if args.command == "stream-query":
        return _stream_query(args)
    if args.command == "bench-serve":
        try:
            return _bench_serve(args)
        except CliError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2

    if args.command == "render":
        if args.all:
            if args.ids:
                print("error: pass artifact ids or --all, not both", file=sys.stderr)
                return 2
            args.ids = list(ARTIFACTS)
        elif not args.ids:
            print("error: no artifacts requested (pass ids or --all)", file=sys.stderr)
            return 2

    if args.command in ("figure", "table", "render"):
        # Validate ids before spending minutes building a world.
        unknown = [i for i in args.ids if i.upper() not in ARTIFACTS]
        if unknown:
            print(
                f"error: unknown artifact id(s) {', '.join(map(repr, unknown))}; "
                f"choose from {', '.join(sorted(ARTIFACTS))}",
                file=sys.stderr,
            )
            return 2

    try:
        world = build_or_load_world(args)
    except CliError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    context = AnalysisContext(world, jobs=getattr(args, "jobs", 1))
    if args.command == "summary":
        print(world.summary(include_timings=args.timings, context=context))
    elif args.command in ("figure", "table", "render"):
        outputs = render_many(
            world, args.ids, jobs=args.jobs, context=context, runner=_make_runner(args.jobs, args)
        )
        _emit_artifacts(args.ids, outputs, out_dir=getattr(args, "out_dir", None))
    elif args.command == "validate":
        print(_validate(context))
    elif args.command == "quality":
        return _quality(context)
    return 0


if __name__ == "__main__":
    sys.exit(main())
