"""Tests for deterministic RNG streams."""

import numpy as np
import pytest

from repro.util import RngStream, derive_seed


def test_derive_seed_is_stable():
    assert derive_seed(42, "a") == derive_seed(42, "a")


def test_derive_seed_differs_by_name_and_seed():
    assert derive_seed(42, "a") != derive_seed(42, "b")
    assert derive_seed(42, "a") != derive_seed(43, "a")


def test_derive_seed_rejects_empty_name():
    with pytest.raises(ValueError):
        derive_seed(42, "")


def test_streams_reproducible():
    a = RngStream(7, "x").random(10)
    b = RngStream(7, "x").random(10)
    assert np.array_equal(a, b)


def test_streams_independent_of_creation_order():
    s1 = RngStream(7, "first")
    _ = s1.random(100)
    s2 = RngStream(7, "second")
    fresh = RngStream(7, "second")
    assert np.array_equal(s2.random(5), fresh.random(5))


def test_child_streams_namespaced():
    parent = RngStream(7, "p")
    child = parent.child("c")
    assert child.seed == derive_seed(7, "p/c")


def test_bounded_pareto_respects_bounds():
    rng = RngStream(1, "pareto")
    samples = rng.bounded_pareto(0.4, 1.0, 600.0, size=5000)
    assert samples.min() >= 1.0
    assert samples.max() <= 600.0


def test_bounded_pareto_is_heavy_tailed():
    rng = RngStream(1, "pareto2")
    samples = rng.bounded_pareto(0.4, 1.0, 600.0, size=20000)
    median = np.median(samples)
    mean = samples.mean()
    assert mean > 3 * median  # heavy tail: mean far above median


def test_bounded_pareto_validates_args():
    rng = RngStream(1, "pareto3")
    with pytest.raises(ValueError):
        rng.bounded_pareto(0.4, 0.0, 10.0)
    with pytest.raises(ValueError):
        rng.bounded_pareto(0.4, 5.0, 5.0)
    with pytest.raises(ValueError):
        rng.bounded_pareto(-1.0, 1.0, 10.0)


def test_zipf_ranks_skewed_to_low_ranks():
    rng = RngStream(1, "zipf")
    ranks = rng.zipf_ranks(100, 1.2, size=10000)
    assert (ranks == 0).mean() > (ranks == 50).mean()
    assert ranks.min() >= 0 and ranks.max() < 100


def test_lognormal_for_median_centers_on_median():
    rng = RngStream(1, "ln")
    samples = rng.lognormal_for_median(40.0, 0.5, size=20000)
    assert 35.0 < np.median(samples) < 45.0


def test_bernoulli_probability():
    rng = RngStream(1, "bern")
    hits = rng.bernoulli(0.25, size=20000)
    assert 0.22 < hits.mean() < 0.28
