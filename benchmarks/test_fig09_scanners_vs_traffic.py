"""Figure 9: darknet scanner counts vs NTP attack traffic.

Paper: the rise in unique darknet-observed scanners (mid-December 2013)
precedes the attack-traffic surge by roughly a week — the early-warning
property of darknets.
"""

from repro.analysis import daily_attack_counts, darknet_report, scanning_leads_attacks_by
from repro.util import date_to_sim


def test_fig09_scanners_lead_attacks(benchmark, world):
    report = darknet_report(world.darknet)
    attacks_daily = benchmark(daily_attack_counts, world.attacks)

    scanners = report.daily_unique_scanners
    # Scanner counts explode in mid-December.
    before = [c for d, c in scanners.items() if d * 86400 < date_to_sim(2013, 12, 10)]
    after = [
        c
        for d, c in scanners.items()
        if date_to_sim(2014, 1, 1) < d * 86400 < date_to_sim(2014, 2, 1)
    ]
    assert max(after) > 5 * max(before)

    lead = scanning_leads_attacks_by(scanners, attacks_daily)
    assert lead is not None
    assert 0 <= lead <= 45  # scanning ramps first (paper: ~a week)

    # Merit's own NTP egress also surges after the scanning onset.
    merit = world.isp.sites["merit"]
    out = merit.hourly_mbps(merit.ntp_out)
    dec_early = out[: 24 * 9].mean()
    jan = out[24 * 40 : 24 * 55].mean()
    assert jan > dec_early

    print(f"\nFig9: scanning leads attacks by {lead} days; peak scanners/day={max(after)}")
