"""The attacker ecosystem: scanners, booters, and attack campaigns."""

from repro.attack.campaign import (
    ATTACK_INTENSITY_FULL,
    AttackCampaign,
    AttackSpec,
    Booter,
    CampaignParams,
    OVH_EVENT_END,
    OVH_EVENT_START,
)
from repro.attack.scanner import (
    ONP_PROBER_IP,
    RESEARCH_SCANNERS,
    ResearchScanner,
    ScannerEcosystem,
    linux_observed_ttl,
    windows_observed_ttl,
)

__all__ = [
    "ATTACK_INTENSITY_FULL",
    "AttackCampaign",
    "AttackSpec",
    "Booter",
    "CampaignParams",
    "OVH_EVENT_END",
    "OVH_EVENT_START",
    "ONP_PROBER_IP",
    "RESEARCH_SCANNERS",
    "ResearchScanner",
    "ScannerEcosystem",
    "linux_observed_ttl",
    "windows_observed_ttl",
]
