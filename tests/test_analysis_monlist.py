"""Tests for monlist-table reconstruction from raw packets."""

import pytest

from repro.analysis import parse_sample, reconstruct_table
from repro.measurement.onp import ProbeCapture
from repro.ntp import MonlistTable, WireError, encode_mode3
from repro.ntp.constants import IMPL_XNTPD


def build_capture(n_clients, now=1000.0, capacity=600, n_repeats=1):
    table = MonlistTable(capacity=capacity)
    for i in range(n_clients):
        table.record(1000 + i, 123, 3, 4, now=float(i))
    packets = table.render_response_packets(now, 2, IMPL_XNTPD)
    return ProbeCapture(target_ip=42, t=now, packets=tuple(packets), n_repeats=n_repeats)


def test_reconstruct_small_table():
    capture = build_capture(4)
    table = reconstruct_table(capture)
    assert len(table) == 4
    assert table.amplifier_ip == 42
    assert not table.is_mega
    assert table.entry_size == 72
    assert {e.addr for e in table.entries} == {1000, 1001, 1002, 1003}


def test_reconstruct_multi_packet_order():
    capture = build_capture(20)
    table = reconstruct_table(capture)
    assert len(table) == 20
    assert table.n_packets_once == 4
    # MRU order preserved across packet boundaries.
    last_ints = [e.last_int for e in table.entries]
    assert last_ints == sorted(last_ints)


def test_reconstruct_mega():
    capture = build_capture(6, n_repeats=1000)
    table = reconstruct_table(capture)
    assert table.is_mega
    assert table.total_packets == 1000
    assert table.total_on_wire_bytes == 1000 * table.on_wire_bytes_once


def test_reconstruct_rejects_garbage():
    bad = ProbeCapture(target_ip=1, t=0.0, packets=(encode_mode3(),))
    with pytest.raises(WireError):
        reconstruct_table(bad)
    empty = ProbeCapture(target_ip=1, t=0.0, packets=())
    with pytest.raises(WireError):
        reconstruct_table(empty)


def test_parse_sample_skips_malformed(world):
    sample = world.onp.monlist_samples[0]
    parsed = parse_sample(sample)
    assert len(parsed) == len(sample.captures)
    assert parsed.amplifier_ips() == sample.responder_ips()


def test_world_tables_parse_cleanly(parsed_monlist, world):
    for parsed, sample in zip(parsed_monlist, world.onp.monlist_samples):
        assert len(parsed) == len(sample.captures)


def test_table_sizes_match_paper_shape(parsed_monlist):
    """Median table small, mean pulled up by a heavy tail (§4.1)."""
    import numpy as np

    sizes = [len(t) for t in parsed_monlist[0].tables]
    median = float(np.median(sizes))
    mean = float(np.mean(sizes))
    assert 2 <= median <= 12
    assert mean > 2 * median
    assert max(sizes) == 600  # capped full tables exist
