"""The vectorized decode fast path, the parse cache, and the parallel matrix.

Three contracts from this layer of the pipeline:

* the block decoder and the whole-capture fast path are *invisible*:
  entry-for-entry equal to the scalar/lenient paths on clean streams, and
  deferring to the lenient path — with identical :class:`ParseStats` —
  the moment a capture is truncated, bit-flipped, or reordered;
* the persistent parsed-corpus cache returns exactly what a fresh parse
  would, registers zero parse calls on a hit, and misses (never lies) on
  a version change or a corrupt file;
* ``run_conformance(jobs=N)`` produces a report byte-identical to the
  serial runner, with the parent's parse-call ledger advancing by the
  same amount.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.monlist_parse import (
    ParsedSample,
    ParseStats,
    add_parse_calls,
    parse_call_count,
    parse_sample,
    reconstruct_table_fast,
    reconstruct_table_lenient,
)
from repro.ntp.constants import MON_ENTRY_V1_SIZE, MON_ENTRY_V2_SIZE
from repro.ntp.wire import (
    WireError,
    decode_monitor_entries,
    decode_monitor_entries_block,
    encode_monitor_entry,
)
from tests.strategies import (
    BASE_PACKET_SETS,
    capture_of,
    entry_versions,
    monitor_entries,
)

# ---------------------------------------------------------------------------
# Block decoder == scalar decoder
# ---------------------------------------------------------------------------


@given(st.lists(monitor_entries, min_size=0, max_size=40), entry_versions)
@settings(max_examples=100, deadline=None)
def test_block_decoder_matches_scalar(entries, entry_version):
    """Across the bulk-decode threshold, any in-range entry list decodes
    identically through the NumPy block path and the struct loop."""
    item_size = MON_ENTRY_V2_SIZE if entry_version == 2 else MON_ENTRY_V1_SIZE
    data = b"".join(encode_monitor_entry(e, entry_version) for e in entries)
    scalar = decode_monitor_entries(data, item_size, len(entries))
    block = decode_monitor_entries_block(data, item_size, len(entries))
    assert block == scalar


def test_block_decoder_rejects_bad_item_size():
    with pytest.raises(WireError):
        decode_monitor_entries_block(b"\x00" * 720, 33, 20)


def test_block_decoder_rejects_truncated_area():
    data = b"\x00" * (MON_ENTRY_V2_SIZE * 20 - 1)
    with pytest.raises(WireError):
        decode_monitor_entries_block(data, MON_ENTRY_V2_SIZE, 20)


def test_block_decoded_entries_are_real_instances():
    """The fast construction path must produce fully usable entries:
    hashable, comparable, with working derived properties."""
    from tests.strategies import build_packets
    from repro.analysis import reconstruct_table

    table = reconstruct_table(capture_of(build_packets(30)))
    entry = table.entries[0]
    assert hash(entry) == hash(entry)
    assert entry.avg_interval >= 0.0
    with pytest.raises(Exception):  # frozen dataclass contract intact
        entry.count = 5


# ---------------------------------------------------------------------------
# Fast capture path == lenient path
# ---------------------------------------------------------------------------


def _lenient_result(packets):
    stats = ParseStats()
    table = reconstruct_table_lenient(capture_of(packets), stats)
    return table, stats


def _fast_result(packets):
    stats = ParseStats()
    table = reconstruct_table_fast(capture_of(packets), stats)
    return table, stats


@pytest.mark.parametrize("n_clients", sorted(BASE_PACKET_SETS))
def test_fast_path_matches_lenient_on_clean_captures(n_clients):
    fast_table, fast_stats = _fast_result(BASE_PACKET_SETS[n_clients])
    lenient_table, lenient_stats = _lenient_result(BASE_PACKET_SETS[n_clients])
    assert fast_table == lenient_table
    assert fast_stats == lenient_stats
    assert fast_stats.captures_ok == 1
    assert not fast_stats.degraded


@given(st.sampled_from(sorted(BASE_PACKET_SETS)), st.data())
@settings(max_examples=150, deadline=None)
def test_fast_path_defers_on_bitflips(n_clients, data):
    """Bit corruption anywhere: the fast path's result — table and stats —
    is indistinguishable from running the lenient path alone."""
    packets = list(BASE_PACKET_SETS[n_clients])
    n_flips = data.draw(st.integers(min_value=1, max_value=6))
    for _ in range(n_flips):
        index = data.draw(st.integers(min_value=0, max_value=len(packets) - 1))
        victim = bytearray(packets[index])
        position = data.draw(st.integers(min_value=0, max_value=len(victim) - 1))
        victim[position] ^= data.draw(st.integers(min_value=1, max_value=255))
        packets[index] = bytes(victim)
    fast_table, fast_stats = _fast_result(packets)
    lenient_table, lenient_stats = _lenient_result(packets)
    assert fast_table == lenient_table
    assert fast_stats == lenient_stats


@given(st.sampled_from([4, 20, 40]), st.data())
@settings(max_examples=150, deadline=None)
def test_fast_path_defers_on_loss_mutations(n_clients, data):
    """Truncation, drops, reordering, duplication: same equivalence."""
    packets = list(BASE_PACKET_SETS[n_clients])
    mutation = data.draw(st.sampled_from(["truncate", "drop", "reorder", "duplicate"]))
    if mutation == "truncate":
        index = data.draw(st.integers(min_value=0, max_value=len(packets) - 1))
        keep = data.draw(st.integers(min_value=0, max_value=len(packets[index]) - 1))
        packets[index] = packets[index][:keep]
    elif mutation == "drop" and len(packets) > 1:
        del packets[data.draw(st.integers(min_value=0, max_value=len(packets) - 1))]
    elif mutation == "reorder":
        indices = data.draw(st.permutations(range(len(packets))))
        packets = [packets[i] for i in indices]
    else:
        index = data.draw(st.integers(min_value=0, max_value=len(packets) - 1))
        packets.insert(index, packets[index])
    fast_table, fast_stats = _fast_result(packets)
    lenient_table, lenient_stats = _lenient_result(packets)
    assert fast_table == lenient_table
    assert fast_stats == lenient_stats


def test_fast_path_empty_capture_defers():
    fast_table, fast_stats = _fast_result([])
    lenient_table, lenient_stats = _lenient_result([])
    assert fast_table is None and lenient_table is None
    assert fast_stats == lenient_stats


# ---------------------------------------------------------------------------
# Parse-call ledger
# ---------------------------------------------------------------------------


def test_add_parse_calls_advances_ledger():
    before = parse_call_count()
    add_parse_calls(0)
    assert parse_call_count() == before
    add_parse_calls(7)
    assert parse_call_count() == before + 7
    with pytest.raises(ValueError):
        add_parse_calls(-1)


# ---------------------------------------------------------------------------
# Persistent parsed-corpus cache
# ---------------------------------------------------------------------------


class _FakeSample:
    def __init__(self, t, captures):
        self.t = t
        self.captures = captures
        self.outage = False
        self.coverage = 1.0


def _corpus():
    from tests.strategies import build_packets

    return [
        _FakeSample(100.0, [capture_of(build_packets(20), target_ip=7)]),
        _FakeSample(200.0, [capture_of(build_packets(4), target_ip=9, t=200.0)]),
    ]


def test_parse_cache_roundtrip(tmp_path):
    from repro.analysis.parse_cache import load_or_parse_corpus

    samples = _corpus()
    fresh = [parse_sample(s) for s in samples]

    first, n_first = load_or_parse_corpus(samples, cache_dir=str(tmp_path))
    assert n_first == len(samples)  # miss: everything parsed
    second, n_second = load_or_parse_corpus(samples, cache_dir=str(tmp_path))
    assert n_second == 0  # hit: nothing parsed

    for got in (first, second):
        assert len(got) == len(fresh)
        for a, b in zip(got, fresh):
            assert a.t == b.t
            assert a.stats == b.stats
            assert [t.entries for t in a.tables] == [t.entries for t in b.tables]


def test_parse_cache_unconfigured_is_plain_parse(tmp_path, monkeypatch):
    from repro.analysis import parse_cache

    monkeypatch.delenv(parse_cache.PARSE_CACHE_ENV_VAR, raising=False)
    samples = _corpus()
    parsed, n = parse_cache.load_or_parse_corpus(samples)
    assert n == len(samples)
    assert not list(tmp_path.iterdir())


def test_parse_cache_distinguishes_corpora(tmp_path):
    from repro.analysis.parse_cache import corpus_digest

    a = _corpus()
    b = _corpus()
    assert corpus_digest(a) == corpus_digest(b)
    mutated = bytearray(b[0].captures[0].packets[0])
    mutated[-1] ^= 0xFF
    b[0].captures[0] = capture_of(
        [bytes(mutated), *b[0].captures[0].packets[1:]], target_ip=7
    )
    assert corpus_digest(a) != corpus_digest(b)


def test_parse_cache_version_gate(tmp_path, monkeypatch):
    from repro.analysis import parse_cache

    samples = _corpus()
    _, n = parse_cache.load_or_parse_corpus(samples, cache_dir=str(tmp_path))
    assert n == len(samples)
    monkeypatch.setattr("repro.__version__", "0.0.0-test")
    _, n = parse_cache.load_or_parse_corpus(samples, cache_dir=str(tmp_path))
    assert n == len(samples)  # version mismatch: a miss, not a stale hit


def test_parse_cache_corrupt_file_is_a_miss(tmp_path):
    from repro.analysis.parse_cache import (
        cached_corpus_path,
        corpus_digest,
        load_or_parse_corpus,
    )

    samples = _corpus()
    load_or_parse_corpus(samples, cache_dir=str(tmp_path))
    path = cached_corpus_path(corpus_digest(samples), str(tmp_path))
    with open(path, "wb") as handle:
        handle.write(b"not a pickle")
    parsed, n = load_or_parse_corpus(samples, cache_dir=str(tmp_path))
    assert n == len(samples)
    assert len(parsed) == len(samples)


def test_context_uses_parse_cache(world, tmp_path, monkeypatch):
    """A second context over the same world hits the cache: zero parses."""
    from repro.analysis.context import AnalysisContext
    from repro.analysis.parse_cache import PARSE_CACHE_ENV_VAR

    monkeypatch.setenv(PARSE_CACHE_ENV_VAR, str(tmp_path))
    warm_ctx = AnalysisContext(world)
    warm_ctx.warm()
    assert warm_ctx.parse_calls == len(world.onp.monlist_samples)

    hit_ctx = AnalysisContext(world)
    hit_ctx.warm()
    assert hit_ctx.parse_calls == 0
    assert len(hit_ctx.parsed_samples()) == len(warm_ctx.parsed_samples())
    for a, b in zip(hit_ctx.parsed_samples(), warm_ctx.parsed_samples()):
        assert a.stats == b.stats
        assert [t.entries for t in a.tables] == [t.entries for t in b.tables]


# ---------------------------------------------------------------------------
# Parallel conformance matrix
# ---------------------------------------------------------------------------


def test_run_conformance_jobs_report_identical():
    from repro.verify.runner import run_conformance

    before = parse_call_count()
    serial = run_conformance([3, 5], [0.0002], ["clean"], jobs=1)
    serial_parses = parse_call_count() - before

    before = parse_call_count()
    parallel = run_conformance([3, 5], [0.0002], ["clean"], jobs=2)
    parallel_parses = parse_call_count() - before

    assert serial.as_dict() == parallel.as_dict()
    assert serial_parses == parallel_parses > 0


def test_run_conformance_jobs_catches_injected_bug():
    """A deliberately broken builder is caught identically at any jobs."""
    from repro.verify.runner import Cell, default_builder, run_conformance

    def broken_builder(cell):
        # Sabotage one cell's scale so the scale-growth invariants see a
        # flat (non-growing) pair.
        actual = cell if cell.scale != 0.0004 else Cell(cell.seed, 0.0002, cell.fault_name)
        return default_builder(actual)

    serial = run_conformance([11], [0.0002, 0.0004], ["clean"], builder=broken_builder, jobs=1)
    parallel = run_conformance([11], [0.0002, 0.0004], ["clean"], builder=broken_builder, jobs=2)
    assert serial.as_dict() == parallel.as_dict()
    assert not serial.ok


def test_bench_verify_cli(tmp_path, capsys):
    from repro.cli import main

    out = tmp_path / "BENCH_verify.json"
    code = main(
        [
            "bench-verify",
            "--seeds",
            "7,99",
            "--scales",
            "0.0004",
            "--faults",
            "clean",
            "--jobs",
            "2",
            "--out",
            str(out),
            "--quiet",
        ]
    )
    assert code == 0
    record = json.loads(out.read_text())
    assert record["ok"] is True
    assert record["jobs"] == 2
    assert record["cells"] == 2
    assert record["total_seconds"] > 0
    assert set(record["counts"]) == {"pass", "fail", "skip"}


def test_bench_verify_cli_bad_fault_exits_2(tmp_path):
    from repro.cli import main

    code = main(["bench-verify", "--faults", "nope", "--out", str(tmp_path / "b.json")])
    assert code == 2
