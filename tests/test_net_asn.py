"""Tests for the AS registry, routing table, geo view, and PBL."""

import pytest

from repro.net import (
    ASRegistry,
    CONTINENT_OF,
    GeoView,
    NetworkKind,
    PolicyBlockList,
    RoutedBlockTable,
    aggregate_counts,
)
from repro.net.asn import DARKNET_POOL, MEASUREMENT_POOL
from repro.util import RngStream


@pytest.fixture(scope="module")
def registry():
    return ASRegistry(RngStream(123, "asn-test"), n_ases=800)


@pytest.fixture(scope="module")
def table(registry):
    return RoutedBlockTable(registry)


def test_registry_size(registry):
    assert len(registry) == 800 + len(registry.special)


def test_registry_reproducible():
    a = ASRegistry(RngStream(5, "x"), n_ases=100)
    b = ASRegistry(RngStream(5, "x"), n_ases=100)
    assert [(s.asn, s.name, str(s.prefixes[0])) for s in a] == [
        (s.asn, s.name, str(s.prefixes[0])) for s in b
    ]


def test_every_as_has_prefixes(registry):
    for system in registry:
        assert system.prefixes, f"AS{system.asn} has no prefixes"
        assert system.n_addresses > 0


def test_prefixes_do_not_overlap(registry):
    prefixes = sorted((p for p, _ in registry.all_prefixes()), key=lambda p: p.network)
    for a, b in zip(prefixes, prefixes[1:]):
        assert a.last < b.network, f"{a} overlaps {b}"


def test_reserved_pools_untouched(registry):
    for prefix, _ in registry.all_prefixes():
        assert not DARKNET_POOL.contains_prefix(prefix)
        assert not MEASUREMENT_POOL.contains_prefix(prefix)


def test_specials_exist(registry):
    for name in ("REGIONAL-MI", "FRGP-CO", "CSU-EDU", "HOSTING-FR-1", "CDN-MITIGATION"):
        assert name in registry.special
    jp = [s for n, s in registry.special.items() if n.startswith("JP-NET-")]
    assert len(jp) == 7
    assert all(s.country == "JP" for s in jp)


def test_countries_match_continent(registry):
    for system in registry:
        assert CONTINENT_OF[system.country] == system.continent


def test_kind_mix_plausible(registry):
    kinds = {k: len(registry.systems_of_kind(k)) for k in NetworkKind}
    assert all(count > 0 for count in kinds.values())
    assert kinds[NetworkKind.TELECOM] > kinds[NetworkKind.EDUCATION]


def test_random_ip_within_as(registry):
    rng = RngStream(9, "iptest")
    for system in list(registry)[:50]:
        ip = system.random_ip(rng)
        assert any(p.contains(ip) for p in system.prefixes)


def test_routing_lookup_consistent(registry, table):
    rng = RngStream(10, "route")
    for system in list(registry)[:100]:
        ip = system.random_ip(rng)
        hit = table.lookup(ip)
        assert hit is not None
        assert hit[1].asn == system.asn
        assert table.asn_of(ip) == system.asn
        assert table.continent_of(ip) == system.continent


def test_lookup_outside_plan(table):
    assert table.lookup(DARKNET_POOL.network + 5) is None
    assert table.asn_of(DARKNET_POOL.network + 5) is None


def test_aggregate_counts(registry, table):
    rng = RngStream(11, "agg")
    systems = list(registry)[:10]
    ips = [s.random_ip(rng) for s in systems for _ in range(3)]
    counts = aggregate_counts(ips, table)
    assert counts.ips == len(set(ips))
    assert counts.asns <= 10
    assert counts.blocks >= counts.asns / 4
    assert counts.slash24s <= counts.ips
    assert counts.ips_per_block == counts.ips / counts.blocks


def test_aggregate_counts_empty(table):
    counts = aggregate_counts([], table)
    assert counts.ips == 0
    assert counts.ips_per_block == 0.0


def test_geo_view(registry, table):
    geo = GeoView(table)
    rng = RngStream(12, "geo")
    system = list(registry)[0]
    ip = system.random_ip(rng)
    assert geo.country_of(ip) == system.country
    assert geo.continent_of(ip) == system.continent
    assert geo.country_of(DARKNET_POOL.network) is None
    assert system.country in geo.countries_of([ip, DARKNET_POOL.network])


def test_pbl_labels_residential_space(registry, table):
    pbl = PolicyBlockList(registry)
    rng = RngStream(13, "pbl")
    residential = registry.systems_of_kind(NetworkKind.RESIDENTIAL)[:20]
    hosting = registry.systems_of_kind(NetworkKind.HOSTING)[:20]
    res_ips = [s.random_ip(rng) for s in residential]
    host_ips = [s.random_ip(rng) for s in hosting]
    assert pbl.end_host_fraction(res_ips) == 1.0
    assert pbl.end_host_fraction(host_ips) == 0.0
    assert pbl.end_host_count(res_ips + host_ips) == len(res_ips)


def test_pbl_education_split(registry):
    pbl = PolicyBlockList(registry)
    education = registry.systems_of_kind(NetworkKind.EDUCATION)
    prefix = education[0].prefixes[0]
    # Leading half of an education prefix is the dynamic (end-host) pool.
    assert pbl.is_end_host(prefix.first)
    assert not pbl.is_end_host(prefix.last)


def test_pbl_empty_fraction(registry):
    assert PolicyBlockList(registry).end_host_fraction([]) == 0.0
