"""Tumbling sim-time windows with watermark-based late-record accounting.

The engine's memory contract is per-window, not per-stream: exact state
(sets, counters, per-window parse stats) lives only while a window is
*open*; once the watermark passes a window's end the window is finalized
into a small summary dict and its exact state is freed.  Cross-window
heavy-hitter questions are answered by the sketches, never by keeping
every window's raw state.

Accounting mirrors the :class:`~repro.analysis.monlist_parse.ParseStats`
discipline: a record is never silently skipped.  Every offered record
lands in exactly one of four ledgers — ``applied``, ``late`` (its window
ended at or before the watermark), ``duplicate`` (same uid seen in the
same open window), or ``early_buffered`` is deliberately *not* a state
(tumbling windows accept any future time; there is no out-of-range) —
and ``total == applied + late + duplicate`` is an engine invariant the
tests and the conformance harness both assert.

Lateness is defined by the watermark alone, not by whether the window
ever held state: a record whose window end the watermark has already
passed is late even when no earlier record opened that window.  The
distinction only matters for out-of-order streams, and it is what makes
the sharded ingest mode's per-block ledgers sum to the single-engine
ledger record for record — a block that never saw a window's earlier
records must still refuse its stragglers exactly as the whole-stream
engine would.
"""

from __future__ import annotations

import math

__all__ = ["TumblingWindows", "WindowSet"]


class TumblingWindows:
    """Pure window arithmetic: fixed ``width``, aligned to ``origin``."""

    __slots__ = ("width", "origin")

    def __init__(self, width, origin=0.0):
        if not width > 0:
            raise ValueError("window width must be positive")
        self.width = float(width)
        self.origin = float(origin)

    def index_of(self, t):
        """The window index holding event time ``t`` (floor semantics).

        The division is self-correcting: when ``t`` sits within one ulp
        of a boundary the float quotient can round across it, so the
        result is nudged until ``lo <= t < hi`` actually holds — the
        containment property the window tests pin exactly.
        """
        t = float(t)
        origin, width = self.origin, self.width
        index = math.floor((t - origin) / width)
        if t < origin + index * width:
            index -= 1
        elif t >= origin + (index + 1) * width:
            index += 1
        return index

    def bounds(self, index):
        """``[lo, hi)`` of window ``index``.

        ``hi`` is computed as the *next* window's ``lo`` (not ``lo +
        width``), so adjacent windows tile the line exactly under float
        rounding — no time can fall between or inside two windows.
        """
        return (
            self.origin + index * self.width,
            self.origin + (index + 1) * self.width,
        )

    def contains(self, index, t):
        lo, hi = self.bounds(index)
        return lo <= t < hi


class _OpenWindow:
    __slots__ = ("state", "seen", "records")

    def __init__(self, state):
        self.state = state
        self.seen = set()
        self.records = 0


class WindowSet:
    """Windowed state for one record kind, driven by a shared watermark.

    ``state_factory()`` builds a fresh per-window mutable state;
    ``finalize(index, lo, hi, state, records)`` condenses it into the
    summary dict retained after close.  ``offer`` returns the open
    window's state when the record should be applied, or ``None`` when it
    was accounted as late/duplicate instead.
    """

    __slots__ = ("windows", "_factory", "_finalize", "_on_close", "open", "closed", "closed_states", "keep_state", "total", "applied", "late", "duplicate", "late_uids", "_next_close", "_closed_rows", "_open_summaries")

    #: How many late-record uids to retain verbatim for forensics (the
    #: counters are complete either way).
    LATE_UID_KEEP = 32

    def __init__(self, width, origin=0.0, state_factory=dict, finalize=None, on_close=None, keep_state=False):
        self.windows = TumblingWindows(width, origin=origin)
        self._factory = state_factory
        # finalize must be PURE: summaries() also runs it on still-open
        # windows for mid-window reads.  Side effects that must happen
        # exactly once per window belong in on_close.
        self._finalize = finalize or (lambda index, lo, hi, state, records: dict(state))
        self._on_close = on_close
        self.open = {}
        self.closed = {}
        # Sharded block engines keep the raw mergeable state of closed
        # windows (keep_state=True) so the query-time reduction can union
        # per-block states losslessly; the single-engine default frees
        # state at close, preserving the per-window memory contract.
        self.keep_state = bool(keep_state)
        self.closed_states = {}
        self.total = 0
        self.applied = 0
        self.late = 0
        self.duplicate = 0
        self.late_uids = []
        # Advance fast path: the earliest open-window end, so the per-
        # record watermark sweep is one comparison when nothing closes.
        # None means "unknown — scan"; scanning an empty set yields inf.
        self._next_close = None
        # Read-side memoization: closed windows are immutable, so their
        # summary rows are built once; an open window's summary is reused
        # until another record lands in it (its ``records`` count moves).
        self._closed_rows = None
        self._open_summaries = {}

    # -- ingest ------------------------------------------------------------

    def offer(self, t, uid, watermark):
        """Account one record; return its window state iff it applies."""
        return self.offer_at(self.windows.index_of(t), uid, watermark)

    def offer_at(self, index, uid, watermark):
        """:meth:`offer` with the window index already computed (the
        engine reuses the index for capture-buffer bookkeeping)."""
        self.total += 1
        window = self.open.get(index)
        if window is None:
            w = self.windows
            if index in self.closed or (
                watermark is not None
                and w.origin + (index + 1) * w.width <= watermark
            ):
                self.late += 1
                if len(self.late_uids) < self.LATE_UID_KEEP:
                    self.late_uids.append(uid)
                return None
            window = _OpenWindow(self._factory())
            self.open[index] = window
            hi = w.origin + (index + 1) * w.width
            if self._next_close is not None and hi < self._next_close:
                self._next_close = hi
        if uid is not None:
            if uid in window.seen:
                self.duplicate += 1
                return None
            window.seen.add(uid)
        window.records += 1
        self.applied += 1
        return window.state

    def advance(self, watermark):
        """Close every open window whose end the watermark has passed.

        One comparison against the cached earliest open end in the
        common nothing-to-close case — this runs on every watermark
        move, i.e. nearly every record of a time-sorted stream.
        """
        nxt = self._next_close
        if nxt is not None and watermark < nxt:
            return
        nxt = math.inf
        for index in sorted(self.open):
            lo, hi = self.windows.bounds(index)
            if watermark < hi:
                if hi < nxt:
                    nxt = hi
                continue
            self._close(index, lo, hi)
        self._next_close = nxt

    def close_all(self):
        """End of stream: finalize everything still open."""
        for index in sorted(self.open):
            lo, hi = self.windows.bounds(index)
            self._close(index, lo, hi)
        self._next_close = math.inf

    def _close(self, index, lo, hi):
        window = self.open.pop(index)
        if self._on_close is not None:
            self._on_close(window.state)
        self.closed[index] = self._finalize(index, lo, hi, window.state, window.records)
        self._closed_rows = None
        self._open_summaries.pop(index, None)
        if self.keep_state:
            self.closed_states[index] = (window.state, window.records)

    # -- views -------------------------------------------------------------

    def summaries(self, include_open=True):
        """``[(index, lo, hi, summary, is_open)]`` ascending by window.

        Open windows are summarized through the same ``finalize`` hook on
        a *copy*-free read — the mid-window answer the service serves —
        without mutating or closing them.
        """
        rows = self._closed_rows
        if rows is None or len(rows) != len(self.closed):
            rows = []
            for index in sorted(self.closed):
                lo, hi = self.windows.bounds(index)
                rows.append((index, lo, hi, self.closed[index], False))
            self._closed_rows = rows
        out = list(rows)
        if include_open:
            memo = self._open_summaries
            for index in sorted(self.open):
                window = self.open[index]
                cached = memo.get(index)
                if cached is not None and cached[0] == window.records:
                    out.append(cached[1])
                    continue
                lo, hi = self.windows.bounds(index)
                row = (index, lo, hi, self._finalize(index, lo, hi, window.state, window.records), True)
                memo[index] = (window.records, row)
                out.append(row)
        return out

    def accounting(self):
        return {
            "total": self.total,
            "applied": self.applied,
            "late": self.late,
            "duplicate": self.duplicate,
            "open_windows": len(self.open),
            "closed_windows": len(self.closed),
            "late_uids": list(self.late_uids),
        }

    @property
    def balanced(self):
        """The no-record-unaccounted invariant."""
        return self.total == self.applied + self.late + self.duplicate
