"""Batch ground-truth answers shaped like the streaming engine's windows.

The conformance contract (``world.streaming_matches_batch``) compares a
:class:`~repro.stream.ingest.StreamEngine` fed by replay against the
batch pipeline's answers.  The batch side of that comparison lives here:
small adapters over :class:`~repro.analysis.context.AnalysisContext` and
the world's flow datasets that emit exactly the keys the engine's window
summaries and sketches use, so the invariant is a dict comparison rather
than a re-derivation in two places.

Everything here is a pure function of the (immutable once built) world —
the same property the context's memos rely on — and the monlist-backed
adapters go through the context's parse-once corpus, so conformance
checking never adds a second corpus decode.
"""

from __future__ import annotations

import dataclasses
import math

from repro.analysis.monlist_parse import ParseStats
from repro.util.simtime import DAY, HOUR

__all__ = [
    "capture_window_answers",
    "daily_scanner_counts",
    "daily_traffic_answers",
    "isp_day_answers",
    "isp_victim_byte_totals",
    "victim_packet_totals",
    "victim_as_packet_totals",
    "amplifier_entry_totals",
]

_STATS_FIELDS = tuple(f.name for f in dataclasses.fields(ParseStats))


def capture_window_answers(ctx):
    """Per weekly sample, the exact aggregates a capture window holds.

    Keys mirror :meth:`StreamEngine._finalize_capture`; rows are in sample
    order, one per monlist sample (the windows are aligned to the first
    sample and the samples are exactly one window width apart).
    """
    parsed = ctx.parsed_samples()
    report = ctx.victim_report()
    world_samples = ctx.world.onp.monlist_samples
    rows = []
    for sample, parsed_sample, vict in zip(world_samples, parsed, report.samples):
        rows.append(
            {
                "t": float(sample.t),
                "captures": len(sample),
                "amplifiers": len(parsed_sample.amplifier_ips()),
                "victim_pairs": vict.n_victim_pairs,
                "unique_victims": len(vict.victim_ips()),
                "victim_packets": sum(o.packets for o in vict.observations),
                "scanner_entries": vict.n_scanner,
                "non_victim_entries": vict.n_non_victim,
                "median_view_hours": vict.median_view_window_hours(),
                "stats": {
                    name: getattr(parsed_sample.stats, name)
                    for name in _STATS_FIELDS
                },
            }
        )
    return rows


def daily_scanner_counts(world):
    """{day index: unique darknet scanner IPs} — Fig 9's ground truth."""
    return world.darknet.daily_unique_scanners()


def daily_traffic_answers(world):
    """{day index: (ntp_frac, dns_frac) or (None, None) on gap days}."""
    out = {}
    for daily in world.arbor.daily:
        if daily.total_bps:
            out[int(daily.day)] = (
                daily.ntp_bps / daily.total_bps,
                daily.dns_bps / daily.total_bps,
            )
        else:
            out[int(daily.day)] = (0.0, 0.0)
    for day in getattr(world.arbor, "missing_days", ()) or ():
        out.setdefault(int(day), (None, None))
    return out


def _site_cells(site):
    """Every (victim ip, hour, bytes) cell of a site, columnar + overlay."""
    cols = getattr(site, "_victim_cols", None)
    if cols is not None:
        ips, hours, volumes = cols
        yield from zip(
            (int(v) for v in ips.tolist()),
            (int(h) for h in hours.tolist()),
            (float(v) for v in volumes.tolist()),
        )
    for (ip, hour), volume in getattr(site, "victim_hourly", {}).items():
        yield int(ip), int(hour), float(volume)


def isp_day_answers(world, site_name="merit"):
    """Per sim-day ISP victim-flow aggregates for one site.

    ``{day index: {"cells": n, "victims": n, "bytes": float}}`` with the
    day index computed from absolute time (``site.start + hour * HOUR``),
    matching the engine's day-aligned ISP windows.
    """
    site = world.isp.sites.get(site_name)
    if site is None:
        return {}
    out = {}
    for ip, hour, volume in _site_cells(site):
        day = math.floor((site.start + hour * HOUR) / DAY)
        row = out.setdefault(day, {"cells": 0, "victims": {}, "bytes": 0.0})
        row["cells"] += 1
        row["victims"][ip] = row["victims"].get(ip, 0.0) + volume
        row["bytes"] += volume
    return {
        day: {
            "cells": row["cells"],
            "victims": len(row["victims"]),
            "bytes": row["bytes"],
        }
        for day, row in sorted(out.items())
    }


def isp_victim_byte_totals(world, site_name="merit"):
    """{victim ip: total bytes} across the whole site window (Fig 13)."""
    site = world.isp.sites.get(site_name)
    if site is None:
        return {}
    totals = {}
    for ip, _hour, volume in _site_cells(site):
        totals[ip] = totals.get(ip, 0.0) + volume
    return totals


def victim_packet_totals(ctx):
    """{victim ip: monlist packets across all samples} — the top-victims
    sketch's ground truth."""
    totals = {}
    for sample in ctx.victim_report().samples:
        for ip, packets in sample.packets_per_victim().items():
            totals[ip] = totals.get(ip, 0) + packets
    return totals


def victim_as_packet_totals(ctx):
    """{origin ASN: victim packets} over routed victims (per-AS sketch
    ground truth; unrouted victims are excluded, as the engine excludes
    them)."""
    table = ctx.world.table
    totals = {}
    for sample in ctx.victim_report().samples:
        for obs in sample.observations:
            asn = table.asn_of(obs.victim_ip)
            if asn is None:
                continue
            totals[asn] = totals.get(asn, 0) + obs.packets
    return totals


def amplifier_entry_totals(ctx):
    """{amplifier ip: recovered monlist entries across all samples}."""
    totals = {}
    for parsed_sample in ctx.parsed_samples():
        for table in parsed_sample.tables:
            if table.entries:
                totals[table.amplifier_ip] = totals.get(
                    table.amplifier_ip, 0
                ) + len(table.entries)
    return totals
