"""Tests for the CLI, ASCII figures, presets, summary, and §4.4 validation."""

import pickle

import pytest

from repro.cli import ARTIFACTS, build_or_load_world, main, render_artifact
from repro.reporting.figures import ascii_bars, ascii_chart, sparkline
from repro.scenario.presets import PRESETS, resolve_preset


# -- presets ---------------------------------------------------------------------


def test_presets_resolve():
    assert resolve_preset("tiny").scale == 0.0005
    assert resolve_preset("default").scale == 0.002
    with pytest.raises(KeyError):
        resolve_preset("enormous")


def test_presets_ordered_by_scale():
    scales = [PRESETS[name].scale for name in ("tiny", "small", "default", "large", "xl")]
    assert scales == sorted(scales)


# -- ascii figures ------------------------------------------------------------------


def test_sparkline_basic():
    line = sparkline([0, 1, 5, 10])
    assert len(line) == 4
    assert line[0] == " "
    assert line[-1] == "@"


def test_sparkline_downsamples():
    line = sparkline(range(1000), width=40)
    assert len(line) == 40


def test_sparkline_empty_and_zero():
    assert sparkline([]) == ""
    assert sparkline([0, 0, 0]) == "   "


def test_ascii_chart_shape():
    text = ascii_chart([(i, i * i) for i in range(1, 50)], height=8, width=30, title="t")
    lines = text.splitlines()
    assert lines[0] == "t"
    assert len(lines) == 10  # title + 8 rows + axis
    assert "*" in text


def test_ascii_chart_log():
    text = ascii_chart([(0, 1e-5), (1, 1e-2)], log=True)
    assert "*" in text


def test_ascii_chart_empty():
    assert ascii_chart([]) == "(empty series)"


def test_ascii_bars():
    text = ascii_bars([("a", 1.0), ("bb", 0.5)], width=10)
    lines = text.splitlines()
    assert lines[0].count("#") == 10
    assert lines[1].count("#") == 5
    assert ascii_bars([]) == "(no data)"


# -- artifact registry ------------------------------------------------------------------


def test_artifact_registry_complete():
    assert {f"F{i}" for i in range(1, 17)} <= set(ARTIFACTS)
    assert {f"T{i}" for i in range(1, 7)} <= set(ARTIFACTS)


def test_render_unknown_artifact(world):
    with pytest.raises(KeyError):
        render_artifact(world, "F99")


@pytest.mark.parametrize("artifact_id", sorted(ARTIFACTS))
def test_every_artifact_renders(world, artifact_id):
    text = render_artifact(world, artifact_id)
    assert isinstance(text, str)
    assert len(text) > 20


def test_render_case_insensitive(world):
    assert render_artifact(world, "f2") == render_artifact(world, "F2")


# -- summary + validation ------------------------------------------------------------------


def test_world_summary(world):
    text = world.summary()
    assert "Amplifier pool" in text
    assert "remediated" in text
    assert "BAF" in text
    assert "437K" in text  # paper comparisons included


def test_ovh_validation(world, parsed_monlist, victim_report):
    from repro.analysis import as_concentration
    from repro.analysis.validation import validate_ovh_event

    concentration = as_concentration(victim_report, world.table)
    ovh = world.registry.special["HOSTING-FR-1"]
    result = validate_ovh_event(
        world.attacks, parsed_monlist, concentration, world.table, ovh.asn
    )
    assert result.event_attacks >= 3
    assert result.disclosed_asns > 0
    # Nearly all event amplifier ASes appear in the ONP data (paper: 99.5%).
    assert result.asn_overlap_fraction > 0.8
    assert 0.0 <= result.victim_packet_share <= 1.0
    assert result.target_as_rank >= 1


def test_ovh_validation_empty():
    from repro.analysis.concentration import ConcentrationReport
    from repro.analysis.validation import validate_ovh_event

    empty = ConcentrationReport(victim_as_packets={}, amplifier_as_packets={})

    class FakeTable:
        def asn_of(self, ip):
            return None

    result = validate_ovh_event([], [], empty, FakeTable(), target_asn=1)
    assert result.event_attacks == 0
    assert result.asn_overlap_fraction == 0.0
    assert result.onp_asns == 0
    assert result.target_as_rank == 0
    assert result.degraded


def test_ovh_validation_empty_onp_corpus(world, victim_report):
    """An ONP corpus eaten by sample outages (reachable under hostile
    faults): the disclosure side exists, the measurement side is empty, and
    every figure is well-defined rather than a crash or a division."""
    from repro.analysis import as_concentration
    from repro.analysis.validation import validate_ovh_event

    concentration = as_concentration(victim_report, world.table)
    ovh = world.registry.special["HOSTING-FR-1"]
    result = validate_ovh_event(world.attacks, [], concentration, world.table, ovh.asn)
    assert result.disclosed_asns > 0
    assert result.onp_asns == 0
    assert result.overlapping_asns == 0
    assert result.asn_overlap_fraction == 0.0
    assert result.degraded


def test_ovh_validation_target_as_absent(world, parsed_monlist, victim_report):
    """A target AS that never shows up in the victimology gets rank 0 (not
    None, not a crash) and marks the result degraded."""
    from repro.analysis import as_concentration
    from repro.analysis.validation import validate_ovh_event

    concentration = as_concentration(victim_report, world.table)
    absent_asn = max(concentration.victim_as_packets, default=0) + 10_000
    result = validate_ovh_event(
        world.attacks, parsed_monlist, concentration, world.table, absent_asn
    )
    assert result.event_attacks == 0
    assert result.target_as_rank == 0
    assert result.degraded


# -- CLI plumbing ------------------------------------------------------------------


def test_cli_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "F10" in out and "T4" in out and "preset" in out.lower()


def test_world_pickle_round_trip(world, tmp_path):
    path = tmp_path / "world.pkl"
    with open(path, "wb") as handle:
        pickle.dump(world, handle)
    with open(path, "rb") as handle:
        loaded = pickle.load(handle)
    assert len(loaded.attacks) == len(world.attacks)
    assert loaded.params.seed == world.params.seed
    assert len(loaded.onp.monlist_samples) == 15


def test_build_or_load_world_uses_cache(world, tmp_path):
    from repro.scenario.cache import save_world

    path = tmp_path / "cache.pkl"
    save_world(world, str(path))

    class Args:
        cache = str(path)
        scale = world.params.scale
        preset = "tiny"
        seed = world.params.seed
        quiet = True

    loaded = build_or_load_world(Args())
    # The cached world matches the requested params, so it is served as-is.
    assert loaded.params.seed == world.params.seed
    assert loaded.params.scale == world.params.scale
    assert loaded.summary() == world.summary()


def test_build_or_load_world_rebuilds_stale_cache(world, tmp_path, capsys):
    """A cache for a *different* world (here: a legacy bare pickle carrying
    no provenance) must not be served; the requested world is rebuilt and
    the stale entry overwritten."""
    path = tmp_path / "cache.pkl"
    with open(path, "wb") as handle:
        pickle.dump(world, handle)

    class Args:
        cache = str(path)
        scale = 0.0002
        preset = "tiny"
        seed = 1
        quiet = True

    loaded = build_or_load_world(Args())
    assert loaded.params.seed == 1
    assert loaded.params.scale == 0.0002
    assert "stale world cache" in capsys.readouterr().err
    # The rebuilt world replaced the stale entry with a validated one.
    loaded_again = build_or_load_world(Args())
    assert loaded_again.params.seed == 1
    assert loaded_again.summary() == loaded.summary()


# -- CLI error hygiene ---------------------------------------------------------


def test_main_unknown_artifact_exits_2(capsys):
    """Unknown artifact ids fail fast (before any world build) with a
    one-line error and exit code 2, not a traceback."""
    assert main(["figure", "F99", "--preset", "tiny", "--quiet"]) == 2
    err = capsys.readouterr().err
    assert "unknown artifact id" in err
    assert "F99" in err and "F1" in err
    assert main(["table", "T9", "nope", "--preset", "tiny", "--quiet"]) == 2
    assert "'T9', 'nope'" in capsys.readouterr().err


def test_main_unreadable_cache_exits_2(tmp_path, capsys):
    """A --cache path that cannot be a cache file (a directory) is a
    user-input error: one line on stderr, exit 2."""
    code = main(["summary", "--preset", "tiny", "--quiet", "--cache", str(tmp_path)])
    assert code == 2
    err = capsys.readouterr().err
    assert "error:" in err and "is a directory" in err


def test_unwritable_cache_warns_and_continues(tmp_path, capsys):
    """save_world failing must not kill the render: warn and return the
    freshly-built world."""
    blocker = tmp_path / "blocker"
    blocker.write_text("not a directory")

    class Args:
        cache = str(blocker / "nested" / "world.pkl")  # unwritable: under a file
        scale = 0.0002
        preset = "tiny"
        seed = 3
        quiet = True

    loaded = build_or_load_world(Args())
    assert loaded.params.seed == 3
    assert "could not write world cache" in capsys.readouterr().err


def test_quality_command_clean_world(capsys):
    """python -m repro quality on a clean tiny world: exit 0, empty log."""
    assert main(["quality", "--preset", "tiny", "--seed", "5", "--quiet"]) == 0
    out = capsys.readouterr().out
    assert "clean apparatus" in out
    assert "RECONCILED" in out


def test_quality_command_hostile_world(capsys):
    """--faults hostile: nonzero injected counts that reconcile (exit 0)."""
    assert (
        main(["quality", "--preset", "tiny", "--seed", "5", "--quiet", "--faults", "hostile"]) == 0
    )
    out = capsys.readouterr().out
    assert "hostile" in out
    assert "Injection log" in out and "clean apparatus" not in out
    assert "RECONCILED" in out and "FAILED" not in out
