"""Figure 1: NTP and DNS fractions of global Internet traffic.

Paper: NTP rises nearly three orders of magnitude from ~0.001% of traffic
in November 2013 to ~1% at the February 11 peak — surpassing DNS's steady
~0.15% — then falls back to ~0.1% by May.
"""

from repro.analysis import peak_traffic_date, traffic_fractions


def test_fig01_global_traffic(benchmark, world):
    series = benchmark(traffic_fractions, world.arbor)

    dates = [d for d, _, _ in series]
    ntp = {d: f for d, f, _ in series}
    dns = {d: f for d, _, f in series}

    november = [ntp[d] for d in dates if d.startswith("2013-11")]
    peak = max(ntp.values())
    late_april = [ntp[d] for d in dates if d >= "2014-04-20"]

    # Three-order-of-magnitude rise (allow two-plus at simulation scale).
    assert peak > 100 * max(november)
    # Peak lands in the first half of February, around the OVH event.
    peak_date = peak_traffic_date(world.arbor)
    assert "2014-02-0" in peak_date or "2014-02-1" in peak_date
    # NTP surpasses DNS at peak but not in November.
    peak_day = max(dates, key=lambda d: ntp[d])
    assert ntp[peak_day] > dns[peak_day]
    assert ntp[dates[0]] < dns[dates[0]]
    # Post-peak decline to an intermediate level: well below peak, still
    # above the November baseline (paper: ~0.1% vs 1% vs 0.001%).  At
    # simulation scale the late series is lumpy — a handful of heavy
    # attacks dominate single days — so the intermediate level is asserted
    # via both the mean and the maximum.
    late_mean = sum(late_april) / len(late_april)
    assert late_mean < peak / 3
    assert late_mean > 1.2 * max(november)
    assert max(late_april) > 3 * max(november)
    # DNS hovers near 0.15% throughout.
    assert all(0.0008 < f < 0.0025 for f in dns.values())

    print(f"\nFig1: Nov={max(november):.2e}  peak={peak:.2e} on {peak_date}  late-Apr={late_mean:.2e}")
