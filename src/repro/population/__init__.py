"""Population models: NTP hosts, amplifier pools, victims, DNS resolvers."""

from repro.population.amplifiers import (
    BackgroundClients,
    HostPool,
    NtpHost,
    PoolParams,
    build_host_pool,
)
from repro.population.dns_resolvers import DNS_PEAK_FULL, DNS_PUBLICITY_START, DnsResolverPool
from repro.population.osmodel import (
    COMPILE_YEAR_BUCKETS,
    OS_ALL_NTP,
    OS_AMPLIFIERS,
    OS_MEGA,
    STRATUM16_FRACTION,
    SystemAttributes,
    sample_system_attributes,
)
from repro.population.ports import (
    GAME_PORTS,
    PORT_LABELS,
    TABLE4_PORT_WEIGHTS,
    sample_attack_port,
)
from repro.population.remediation import (
    CONTINENT_MULTIPLIER,
    END_HOST_MULTIPLIER,
    RemediationModel,
    SurvivalCurve,
    dns_survival_curve,
    monlist_survival_curve,
    version_survival_curve,
)
from repro.population.victims import Victim, VictimParams, VictimPool, build_victim_pool

__all__ = [
    "BackgroundClients",
    "HostPool",
    "NtpHost",
    "PoolParams",
    "build_host_pool",
    "DNS_PEAK_FULL",
    "DNS_PUBLICITY_START",
    "DnsResolverPool",
    "COMPILE_YEAR_BUCKETS",
    "OS_ALL_NTP",
    "OS_AMPLIFIERS",
    "OS_MEGA",
    "STRATUM16_FRACTION",
    "SystemAttributes",
    "sample_system_attributes",
    "GAME_PORTS",
    "PORT_LABELS",
    "TABLE4_PORT_WEIGHTS",
    "sample_attack_port",
    "CONTINENT_MULTIPLIER",
    "END_HOST_MULTIPLIER",
    "RemediationModel",
    "SurvivalCurve",
    "dns_survival_curve",
    "monlist_survival_curve",
    "version_survival_curve",
    "Victim",
    "VictimParams",
    "VictimPool",
    "build_victim_pool",
]
