"""Tests for the golden-manifest module: checksum stability, tamper
detection, and the version gate."""

import copy
import json

import pytest

import repro
from repro.verify import (
    artifact_checksums,
    build_manifest,
    diff_manifest,
    load_manifest,
    write_manifest,
)


@pytest.fixture(scope="module")
def manifest(world):
    cells = ({"seed": 42, "scale": 0.001, "faults": "clean"},)
    return build_manifest(cells, builder=lambda cell: world)


def test_checksums_cover_every_artifact_plus_summary(manifest):
    from repro.cli import ARTIFACTS

    [entry] = manifest["worlds"]
    assert set(entry["checksums"]) == set(ARTIFACTS) | {"SUMMARY"}
    assert all(len(v) == 64 for v in entry["checksums"].values())
    assert manifest["package_version"] == repro.__version__


def test_checksums_deterministic(manifest, world):
    assert artifact_checksums(world) == manifest["worlds"][0]["checksums"]


def test_diff_identical_manifests_ok(manifest):
    ok, lines = diff_manifest(manifest, manifest)
    assert ok
    assert any("byte-identical" in line for line in lines)


def test_diff_tamper_without_version_bump_fails(manifest):
    tampered = copy.deepcopy(manifest)
    tampered["worlds"][0]["checksums"]["F3"] = "0" * 64
    ok, lines = diff_manifest(tampered, manifest)
    assert not ok
    text = "\n".join(lines)
    assert "CHANGED F3" in text
    assert "__version__ is still" in text  # undeclared change: the hard failure


def test_diff_tamper_across_version_bump_requests_regeneration(manifest):
    tampered = copy.deepcopy(manifest)
    tampered["package_version"] = "0.0.0-previous"
    tampered["worlds"][0]["checksums"]["T1"] = "f" * 64
    ok, lines = diff_manifest(tampered, manifest)
    assert not ok
    text = "\n".join(lines)
    assert "version bump" in text
    assert "verify-manifest --write" in text


def test_diff_reports_missing_and_extra_worlds(manifest):
    recorded = copy.deepcopy(manifest)
    recorded["worlds"][0]["seed"] = 43  # the recorded golden world moved
    ok, lines = diff_manifest(recorded, manifest)
    assert not ok
    text = "\n".join(lines)
    assert "not in recorded manifest" in text
    assert "recorded but not checked" in text


def test_write_load_roundtrip(manifest, tmp_path):
    path = write_manifest(manifest, path=tmp_path / "m.json")
    assert load_manifest(path) == manifest
    assert json.loads(path.read_text())["package_version"] == repro.__version__


def test_repo_manifest_exists_and_names_the_golden_seeds():
    from pathlib import Path

    recorded = load_manifest(Path(__file__).resolve().parent.parent / "MANIFEST_golden.json")
    cells = {(w["seed"], w["scale"], w["faults"]) for w in recorded["worlds"]}
    assert cells == {(7, 0.0005, "clean"), (2014, 0.0005, "clean")}
    assert recorded["package_version"] == repro.__version__
