"""Figure 2: fraction of monthly global DDoS attacks that are NTP-based.

Paper: NTP is absent in November (0.07% of attacks), rises to dominate
Medium (2-20 Gbps) and Large (>20 Gbps) attacks in February-March (~0.6-0.7
of each), and declines in April below February levels.
"""

from repro.analysis import attack_fraction_rows


def test_fig02_attack_fractions(benchmark, world):
    rows = benchmark(attack_fraction_rows, world.arbor)
    by_month = {r.month: r for r in rows}

    november = by_month["2013-11"]
    february = by_month["2014-02"]
    march = by_month["2014-03"]
    april = by_month["2014-04"]

    # November: NTP not on the radar.
    assert november.overall < 0.01
    assert november.medium < 0.05 and november.large < 0.05
    # February: NTP dominates the medium bin and is heavy in large.
    assert february.medium > 0.40
    assert max(february.large, march.large) > 0.40
    # The majority-of-medium claim holds in at least one of Feb/Mar.
    assert max(february.medium, march.medium) > 0.5
    # Small attacks stay majority non-NTP throughout.
    assert all(r.small < 0.35 for r in rows)
    # April declines from the February level.
    assert april.overall < february.overall
    assert april.medium < february.medium

    print("\nFig2 (month: small/medium/large/all):")
    for r in rows:
        print(f"  {r.month}: {r.small:.2f} / {r.medium:.2f} / {r.large:.2f} / {r.overall:.3f}")
