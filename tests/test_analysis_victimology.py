"""Tests for the victim-classification filter and §4 aggregates."""

import pytest

from repro.analysis import (
    CLASS_NON_VICTIM,
    CLASS_SCANNER,
    CLASS_VICTIM,
    classify_entry,
)
from repro.analysis.victimology import VictimObservation
from repro.ntp.wire import MonitorEntry
from repro.util import date_to_sim


def entry(mode=7, count=100, last_int=10, first_int=1000, port=80):
    return MonitorEntry(
        last_int=last_int,
        first_int=first_int,
        count=count,
        addr=1,
        daddr=0,
        flags=0,
        port=port,
        mode=mode,
        version=2,
    )


def test_normal_modes_are_non_victims():
    for mode in (0, 1, 2, 3, 4, 5):
        assert classify_entry(entry(mode=mode)) == CLASS_NON_VICTIM


def test_low_count_is_scanner():
    assert classify_entry(entry(count=2)) == CLASS_SCANNER
    assert classify_entry(entry(count=3)) == CLASS_VICTIM


def test_slow_interarrival_is_scanner():
    # 10 packets over ~5 hours -> interval ~2000s: victim.
    assert classify_entry(entry(count=10, first_int=18000)) == CLASS_VICTIM
    # 10 packets over 10 hours -> interval 4000s: scanner/low-volume.
    assert classify_entry(entry(count=10, first_int=36000 + 10)) == CLASS_SCANNER


def test_mode6_can_be_victim():
    assert classify_entry(entry(mode=6)) == CLASS_VICTIM


def test_observation_derived_times():
    obs = VictimObservation(
        sample_t=1_000_000.0,
        amplifier_ip=1,
        victim_ip=2,
        port=80,
        mode=7,
        packets=100,
        avg_interval=2.0,
        last_seen_ago=500,
    )
    assert obs.duration == 200.0
    assert obs.end_time == 999_500.0
    assert obs.start_time == 999_300.0


def test_report_victims_nonzero(victim_report):
    victims = victim_report.all_victim_ips()
    assert len(victims) > 50


def test_victims_grow_then_attacks_subside(victim_report):
    counts = [len(s.victim_ips()) for s in victim_report.samples]
    assert len(counts) == 15
    # Victim counts grow strongly from January (Table 1's right half).
    assert max(counts) > 3 * counts[0]
    # The attack *pair* load peaks mid-window and subsides afterwards.
    pairs = [s.n_victim_pairs for s in victim_report.samples]
    peak_index = pairs.index(max(pairs))
    assert 3 <= peak_index <= 12
    assert pairs[-1] < max(pairs)


def test_mean_far_above_median(victim_report):
    """Fig. 6: a few heavily-attacked victims drag the mean far above the
    median."""
    for t, mean, median, p95 in victim_report.victim_packet_stats():
        if median > 0:
            assert mean > 3 * median


def test_port80_and_123_dominate(victim_report):
    ports = victim_report.port_table(top=20)
    assert ports
    ranked = [p for p, _ in ports]
    assert ranked[0] == 80
    assert 123 in ranked[:3]


def test_game_ports_prominent(victim_report):
    from repro.population import GAME_PORTS

    ports = victim_report.port_table(top=20)
    game_fraction = sum(f for p, f in ports if p in GAME_PORTS)
    assert game_fraction >= 0.10  # paper: at least 15% in the top 20


def test_attacks_per_hour_peaks_in_february(victim_report):
    hours = victim_report.attacks_per_hour()
    assert hours
    daily = {}
    for hour, count in hours.items():
        daily[hour // 24] = daily.get(hour // 24, 0) + count
    peak_day = max(daily, key=daily.get) * 86400
    assert date_to_sim(2014, 1, 20) <= peak_day <= date_to_sim(2014, 3, 10)


def test_undersampling_factor_plausible(victim_report):
    factor = victim_report.undersampling_factor()
    assert 2.0 < factor < 12.0  # paper: 3.8


def test_amplifiers_per_victim_declines(victim_report):
    rows = victim_report.amplifiers_per_victim()
    early = rows[0][1]
    late = rows[-1][1]
    assert late <= early


def test_total_packets_scale(victim_report, world):
    total = victim_report.total_attack_packets()
    # The paper's 2.92T observed packets are a stated lower bound; our lens
    # is less lossy, so the scaled total should be at least that and within
    # a few orders of magnitude.
    full_equiv = total / world.params.scale
    assert 1e12 < full_equiv < 1e16
    assert victim_report.total_attack_bytes() == total * 420
