"""Operating-system, stratum, and compile-year models for NTP hosts.

The distributions are taken from the paper:

* Table 2 gives OS-string distributions for three populations — the top-10k
  "mega" amplifiers, all monlist amplifiers, and all NTP servers reporting
  version information.
* §3.3 reports that 19% of version responders are stratum 16
  (unsynchronized) and gives the compile-year CDF of version strings
  ("13% were compiled before 2004, ... only 21% in 2013 or 2014").
"""

from dataclasses import dataclass

__all__ = [
    "OS_ALL_NTP",
    "OS_AMPLIFIERS",
    "OS_MEGA",
    "COMPILE_YEAR_BUCKETS",
    "STRATUM16_FRACTION",
    "SystemAttributes",
    "sample_system_attributes",
]

#: Table 2, "All NTP" column (version-responding population).
OS_ALL_NTP = {
    "cisco": 0.4839,
    "unix": 0.3064,
    "linux": 0.1897,
    "bsd": 0.0097,
    "junos": 0.0033,
    "sun": 0.0021,
    "darwin": 0.0013,
    "other": 0.0014,
    "vmkernel": 0.0010,
    "windows": 0.0007,
    "secureos": 0.0003,
    "qnx": 0.0002,
}

#: Table 2, "All Amplifiers" column (monlist responders).
OS_AMPLIFIERS = {
    "linux": 0.8022,
    "bsd": 0.1108,
    "junos": 0.0343,
    "vmkernel": 0.0142,
    "darwin": 0.0092,
    "windows": 0.0084,
    "unix": 0.0056,
    "secureos": 0.0049,
    "sun": 0.0025,
    "qnx": 0.0022,
    "cisco": 0.0017,
    "other": 0.0041,
}

#: Table 2, "Mega (10k)" column.
OS_MEGA = {
    "linux": 0.4418,
    "junos": 0.3585,
    "bsd": 0.0918,
    "cygwin": 0.0482,
    "vmkernel": 0.0241,
    "unix": 0.0201,
    "windows": 0.0042,
    "sun": 0.0037,
    "secureos": 0.0025,
    "isilon": 0.0023,
    "other": 0.0021,
    "cisco": 0.0006,
}

#: Compile-year buckets derived from §3.3's cumulative fractions:
#: 13% < 2004, 23% < 2010, 48% < 2011, 59% < 2012, 79% < 2013, 21% >= 2013.
COMPILE_YEAR_BUCKETS = [
    ((1998, 2003), 0.13),
    ((2004, 2009), 0.10),
    ((2010, 2010), 0.25),
    ((2011, 2011), 0.11),
    ((2012, 2012), 0.20),
    ((2013, 2013), 0.15),
    ((2014, 2014), 0.06),
]

#: §3.3: "nearly a fifth, 19%, reported stratum 16".
STRATUM16_FRACTION = 0.19

#: Processor strings per system family (purely cosmetic but parsed back by
#: the analysis, so they must be present).
_PROCESSORS = {
    "linux": "x86_64",
    "unix": "sparc",
    "cisco": "mips",
    "bsd": "amd64",
    "junos": "octeon",
    "darwin": "x86_64",
    "windows": "x86",
    "sun": "sparcv9",
    "vmkernel": "x86_64",
    "secureos": "x86_64",
    "qnx": "armle",
    "cygwin": "x86",
    "isilon": "x86_64",
    "other": "unknown",
}

_SYSTEM_VERSIONS = {
    "linux": "Linux/3.2.0",
    "unix": "UNIX",
    "cisco": "cisco",
    "bsd": "FreeBSD/9.1",
    "junos": "JUNOS12.1",
    "darwin": "Darwin/12.5.0",
    "windows": "Windows",
    "sun": "SunOS5.10",
    "vmkernel": "VMkernel/5.1.0",
    "secureos": "SecureOS",
    "qnx": "QNX",
    "cygwin": "Cygwin",
    "isilon": "Isilon OneFS",
    "other": "unknown",
}

_DAEMON_VERSIONS = ["4.1.1", "4.2.0", "4.2.4p8", "4.2.6p3", "4.2.6p5", "4.2.7p404"]


@dataclass(frozen=True)
class SystemAttributes:
    """The identity a server reports via the ``version`` command."""

    os_family: str
    system: str
    processor: str
    daemon_version: str
    compile_year: int
    stratum: int


def _sample_from(distribution, rng, size):
    families = list(distribution)
    weights = [distribution[f] for f in families]
    total = sum(weights)
    weights = [w / total for w in weights]
    picks = rng.choice(len(families), size=size, p=weights)
    return [families[int(i)] for i in picks]


def _sample_compile_years(rng, size):
    spans = [span for span, _ in COMPILE_YEAR_BUCKETS]
    weights = [w for _, w in COMPILE_YEAR_BUCKETS]
    total = sum(weights)
    weights = [w / total for w in weights]
    bucket_ids = rng.choice(len(spans), size=size, p=weights)
    years = []
    for b in bucket_ids:
        low, high = spans[int(b)]
        years.append(int(rng.integers(low, high + 1)))
    return years


def sample_system_attributes(rng, size, population="all"):
    """Sample ``size`` server identities from one of the three populations.

    ``population`` is ``"all"`` (Table 2's All NTP), ``"amplifier"``, or
    ``"mega"``.  Stratum is 16 with the §3.3 probability, otherwise 1-5
    skewed toward 2-3.
    """
    distributions = {"all": OS_ALL_NTP, "amplifier": OS_AMPLIFIERS, "mega": OS_MEGA}
    if population not in distributions:
        raise ValueError(f"unknown population {population!r}")
    families = _sample_from(distributions[population], rng, size)
    years = _sample_compile_years(rng, size)
    unsync = rng.bernoulli(STRATUM16_FRACTION, size=size)
    strata = rng.choice([1, 2, 3, 4, 5], size=size, p=[0.03, 0.35, 0.40, 0.15, 0.07])
    daemon_ids = rng.integers(0, len(_DAEMON_VERSIONS), size=size)
    out = []
    for i in range(size):
        family = families[i]
        out.append(
            SystemAttributes(
                os_family=family,
                system=_SYSTEM_VERSIONS[family],
                processor=_PROCESSORS[family],
                daemon_version=_DAEMON_VERSIONS[int(daemon_ids[i])],
                compile_year=years[i],
                stratum=16 if unsync[i] else int(strata[i]),
            )
        )
    return out
