"""Legacy shim so `pip install -e .` / `setup.py develop` work offline.

The offline environment has setuptools but not `wheel`, so PEP 517 editable
builds (which require building an editable wheel) are unavailable; this shim
enables the classic develop path.  All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
