"""Mode-6 system-variable strings (the ``version`` probe's reply payload).

A READVAR response carries an ASCII list of system variables.  Its length —
typically a few hundred bytes against an 84-byte on-wire query — is what
gives the ``version`` command its 3.5–6.9x quartile BAFs (§3.3, Fig. 4c).

The strings here are synthesized from the server's attributes (daemon
version, compile year, OS/system string, stratum, refid) in the shape real
ntpd emits, so that the analysis side can parse OS/system/stratum/compile
year back out of raw payload bytes exactly as the paper did.
"""

import re

__all__ = [
    "render_system_variables",
    "parse_system_variables",
    "extract_compile_year",
    "WEEKDAYS",
]

WEEKDAYS = ("Mon", "Tue", "Wed", "Thu", "Fri", "Sat", "Sun")

#: Optional variables some builds include; used to vary payload size.
#: The spread of reply sizes across builds is what produces the paper's
#: version-BAF quartiles of roughly 3.5 / 4.6 / 6.9 (Fig. 4c).
_OPTIONAL_VARS = (
    ("peer", "45524"),
    ("tc", "10"),
    ("mintc", "3"),
    ("offset", "0.382"),
    ("frequency", "-14.926"),
    ("sys_jitter", "1.436"),
    ("clk_jitter", "0.358"),
    ("clk_wander", "0.036"),
    ("mobilize", "28"),
    ("demobilize", "17"),
    ("tai", "35"),
    ("leapsec", "201207010000"),
    ("expire", "201412280000"),
    ("mintemp", "22.1"),
    ("maxtemp", "48.7"),
    ("state", "4"),
    ("peeradr", "198.51.100.23:123"),
    ("peermode", "1"),
    ("hostname", "core-gw7.example-isp.net"),
    ("refclock", "GPS_NMEA(0)"),
    ("daemonflags", "kernel ntp monitor stats"),
    ("build", "4.2.6p5@1.2349-o fallback config disabled monitor enabled"),
)


def render_system_variables(
    daemon_version,
    compile_year,
    system,
    processor,
    stratum,
    refid,
    extra_vars=0,
    weekday_index=1,
):
    """Render a READVAR payload string for a server.

    ``extra_vars`` (0..len(_OPTIONAL_VARS)) pads the reply with optional
    variables, modeling the build-to-build variation in reply sizes.
    """
    if not 0 <= extra_vars <= len(_OPTIONAL_VARS):
        raise ValueError("extra_vars out of range")
    weekday = WEEKDAYS[weekday_index % len(WEEKDAYS)]
    version_field = (
        f'version="ntpd {daemon_version}@1.2349-o {weekday} Dec 11 08:40:34 UTC {compile_year} (1)"'
    )
    fields = [
        version_field,
        f'processor="{processor}"',
        f'system="{system}"',
        "leap=0",
        f"stratum={stratum}",
        "precision=-20",
        "rootdelay=31.250",
        "rootdisp=48.250",
        f"refid={refid}",
        "reftime=0xd63f8f2e.85b73b00",
        "clock=0xd63f9b42.577b0b0d",
    ]
    fields.extend(f"{name}={value}" for name, value in _OPTIONAL_VARS[:extra_vars])
    return ", ".join(fields)


_FIELD_RE = re.compile(r'(\w+)=("(?:[^"]*)"|[^,]*)')
_YEAR_RE = re.compile(r"UTC (\d{4})")


def parse_system_variables(payload):
    """Parse a READVAR payload back into a dict of variables.

    Accepts ``bytes`` or ``str``; quoted values are unquoted.  This is the
    parser the analysis layer runs over captured version-probe responses.
    """
    if isinstance(payload, (bytes, bytearray)):
        payload = payload.decode("ascii", errors="replace")
    out = {}
    for match in _FIELD_RE.finditer(payload):
        name, value = match.group(1), match.group(2).strip()
        if value.startswith('"') and value.endswith('"') and len(value) >= 2:
            value = value[1:-1]
        out[name] = value
    return out


def extract_compile_year(version_value):
    """The four-digit compile year embedded in a version string, or None."""
    match = _YEAR_RE.search(version_value or "")
    if match is None:
        return None
    year = int(match.group(1))
    if not 1990 <= year <= 2100:
        return None
    return year
