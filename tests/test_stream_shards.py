"""Sharded stream ingestion: partition-then-merge equals one engine.

Two layers, mirroring ``tests/test_build_shards.py`` for the serving
side:

* Hypothesis properties over the shared ``tests/strategies.py`` domains —
  routing a stream over N blocks with the tagged-watermark protocol and
  summing the per-block ledgers/window aggregates reproduces the single
  ledger exactly, and partitioned sketch folds merge back to the
  unpartitioned sketches;
* a real small world — every query answer of the sharded engine is
  byte-identical (as served JSON) at ``--shards`` 1, 2, and 4, in-process
  and fork mode, and ``ingest_many`` matches per-record ``ingest`` on an
  adversarially reordered replay (the promise its docstring makes).
"""

import json

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.scenario.world import PaperWorld
from repro.stream import (
    STREAM_BLOCKS,
    BlockRouter,
    ShardedStream,
    StreamEngine,
    replay_plan,
    replay_records,
)
from repro.stream.partition import _mix64
from repro.stream.sketches import CountMinSketch, SpaceSavingTopK
from repro.stream.windows import WindowSet
from tests.strategies import record_streams, sketch_streams

SCALE = 0.0002
SEED = 7

shard_counts = st.integers(min_value=1, max_value=5)


@pytest.fixture(scope="module")
def small_world():
    return PaperWorld.build(seed=SEED, scale=SCALE)


# ---------------------------------------------------------------------------
# Properties: ledgers and window aggregates are partition-invariant
# ---------------------------------------------------------------------------


def _state_factory():
    # "n" stands in for any additive count, "sum" for any per-window
    # aggregate a capture's ParseStats contributes.
    return {"n": 0, "sum": 0}


def _drive_single(arrivals, skew, width=7200.0):
    ws = WindowSet(width, state_factory=_state_factory)
    max_t = None
    for t, _kind, key, uid in arrivals:
        max_t = t if max_t is None else max(max_t, t)
        watermark = max_t - skew
        state = ws.offer(t, uid, watermark)
        if state is not None:
            state["n"] += 1
            state["sum"] += key
        ws.advance(watermark)
    ws.close_all()
    return ws


def _drive_partitioned(arrivals, skew, shards, width=7200.0):
    """The tagged protocol: each record's owning block first advances to
    the whole-stream watermark, then offers — exactly what
    ``StreamEngine.ingest_tagged`` does per block."""
    blocks = [WindowSet(width, state_factory=_state_factory) for _ in range(shards)]
    max_t = None
    for t, _kind, key, uid in arrivals:
        pre_max = max_t
        max_t = t if max_t is None else max(max_t, t)
        watermark = max_t - skew
        ws = blocks[_mix64(key) % shards]
        if pre_max is not None:
            # The tagged pre-advance: close everything the whole stream's
            # watermark had already passed before this record, so the
            # block classifies it exactly as the single engine did.
            ws.advance(pre_max - skew)
        state = ws.offer(t, uid, watermark)
        if state is not None:
            state["n"] += 1
            state["sum"] += key
        ws.advance(watermark)
    for ws in blocks:
        ws.close_all()
    return blocks


@given(record_streams(), shard_counts)
def test_partitioned_ledgers_sum_to_the_single_ledger(stream, shards):
    arrivals, skew = stream
    single = _drive_single(arrivals, skew)
    blocks = _drive_partitioned(arrivals, skew, shards)
    for field in ("total", "applied", "late", "duplicate"):
        assert sum(getattr(ws, field) for ws in blocks) == getattr(single, field)
    assert all(ws.balanced for ws in blocks)


@given(record_streams(), shard_counts)
def test_partitioned_window_aggregates_merge_losslessly(stream, shards):
    arrivals, skew = stream
    single = _drive_single(arrivals, skew)
    blocks = _drive_partitioned(arrivals, skew, shards)
    merged = {}
    for ws in blocks:
        for index, summary in ws.closed.items():
            into = merged.setdefault(index, {"n": 0, "sum": 0})
            into["n"] += summary["n"]
            into["sum"] += summary["sum"]
    # Blocks may close empty windows the single engine never opened
    # (a block that saw no record of a window has nothing to report).
    merged = {i: s for i, s in merged.items() if s["n"]}
    expected = {i: s for i, s in single.closed.items() if s["n"]}
    assert merged == expected


# ---------------------------------------------------------------------------
# Properties: sketches are partition-invariant
# ---------------------------------------------------------------------------


@given(sketch_streams, shard_counts)
def test_count_min_partition_then_merge_is_exact(stream, shards):
    whole = CountMinSketch()
    parts = [CountMinSketch() for _ in range(shards)]
    for key, weight in stream:
        whole.add(key, weight)
        parts[_mix64(key) % shards].add(key, weight)
    merged = parts[0]
    for part in parts[1:]:
        merged = merged.merge(part)
    assert merged == whole


@given(sketch_streams, shard_counts)
def test_space_saving_partitioned_fold_matches_single_fold(stream, shards):
    """The reducer's contract: blocks never fold into the (order
    sensitive) top-K themselves; the merged exact totals are folded in
    sorted-key order, which must equal the single engine's fold of the
    same totals."""
    totals = {}
    parts = [{} for _ in range(shards)]
    for key, weight in stream:
        totals[key] = totals.get(key, 0) + weight
        block = parts[_mix64(key) % shards]
        block[key] = block.get(key, 0) + weight
    merged_totals = {}
    for block in parts:
        for key, weight in block.items():
            merged_totals[key] = merged_totals.get(key, 0) + weight
    single = SpaceSavingTopK(capacity=8)
    sharded = SpaceSavingTopK(capacity=8)
    for key in sorted(totals):
        single.add(key, totals[key])
    for key in sorted(merged_totals):
        sharded.add(key, merged_totals[key])
    assert sharded == single


# ---------------------------------------------------------------------------
# Router: deterministic, total, in range
# ---------------------------------------------------------------------------


def test_router_is_deterministic_and_total(small_world):
    router_a = BlockRouter()
    router_b = BlockRouter()
    seen_blocks = set()
    for record in replay_records(small_world):
        block = router_a.block_of(record)
        assert block == router_b.block_of(record)
        assert 0 <= block < STREAM_BLOCKS
        seen_blocks.add(block)
    # The mixer must actually spread the stream, not funnel it.
    assert len(seen_blocks) > STREAM_BLOCKS // 2


# ---------------------------------------------------------------------------
# Real world: byte-identical answers at any shard count
# ---------------------------------------------------------------------------

_COMPARED_QUERIES = (
    "victims",
    "amplifiers",
    "scanners",
    "traffic",
    "top_victims",
    "top_amplifiers",
    "top_ases",
    "top_isp_victims",
    "parse_stats",
    "ingest",
)


def _served_answers(engine):
    """Every query answer as the service would serialize it."""
    out = {}
    for name in _COMPARED_QUERIES:
        out[name] = json.dumps(engine.query(name), sort_keys=True)
    out["snapshot"] = json.dumps(engine.snapshot(), sort_keys=True)
    return out


def _single_answers(world):
    engine = StreamEngine.for_world(world, plan=replay_plan(world))
    engine.ingest_many(replay_records(world))
    engine.close()
    return _served_answers(engine)


def _sharded_answers(world, shards, force_fork=False):
    sharded = ShardedStream.for_world(world, shards=shards, force_fork=force_fork)
    try:
        if sharded.drives_ingest:
            while not sharded.ingest_step(1024):
                pass
        else:
            sharded.ingest_many(replay_records(world))
        sharded.close()
        return _served_answers(sharded), sharded.pool_info
    finally:
        sharded.shutdown()


def test_sharded_answers_byte_identical_at_1_2_4(small_world):
    single = _single_answers(small_world)
    for shards in (1, 2, 4):
        answers, _info = _sharded_answers(small_world, shards)
        assert answers == single, f"shards={shards}"


def test_fork_mode_matches_in_process(small_world):
    single = _single_answers(small_world)
    answers, info = _sharded_answers(small_world, 2, force_fork=True)
    assert info["mode"] == "fork"
    assert answers == single


def test_pool_gate_never_contradicts_cpu_count(small_world):
    sharded = ShardedStream.for_world(small_world, shards=4)
    try:
        info = sharded.pool_info
    finally:
        sharded.shutdown()
    assert info["requested"] == 4
    assert info["blocks"] == STREAM_BLOCKS
    if info["cpu_count"] <= 1:
        assert not info["engaged"]
        assert "single CPU" in info["reason"]
    if info["engaged"]:
        assert info["cpu_count"] > 1
        assert info["reason"] is None


# ---------------------------------------------------------------------------
# ingest_many == ingest, record for record, on an adversarial stream
# ---------------------------------------------------------------------------


def _adversarial_replay(world):
    """The ordered replay, roughed up: every 7th record displaced later
    (some land inside the skew, some genuinely late) and every 31st
    redelivered — the stream shape the run-batching fast paths must
    refuse to take."""
    records = list(replay_records(world))
    displaced = []
    held = []
    for i, record in enumerate(records):
        if i % 7 == 3:
            held.append(record)
            if len(held) >= 5:
                displaced.extend(held)
                held.clear()
        else:
            displaced.append(record)
        if i % 31 == 17 and displaced:
            displaced.append(displaced[-1])
    displaced.extend(held)
    return displaced


@pytest.mark.parametrize("skew", [0.0, 3600.0, 2 * 86400.0])
def test_ingest_many_matches_per_record_ingest(small_world, skew):
    records = _adversarial_replay(small_world)
    plan = replay_plan(small_world)
    batched = StreamEngine.for_world(small_world, plan=plan, skew=skew)
    batched.ingest_many(records)
    batched.close()
    one_by_one = StreamEngine.for_world(small_world, plan=plan, skew=skew)
    for record in records:
        one_by_one.ingest(record)
    one_by_one.close()
    assert _served_answers(batched) == _served_answers(one_by_one)
