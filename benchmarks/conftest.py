"""Benchmark fixtures: one world per session, regenerated artifacts per test.

Each benchmark regenerates one of the paper's figures/tables against the
simulated world and asserts the paper's *shape* claims (who wins, rough
factors, crossovers) — absolute values are expected to differ since the
substrate is a scaled simulation, not the authors' testbed.
"""

import pytest

from repro.scenario import WorldParams

BENCH_SEED = 2014
BENCH_SCALE = 0.002


@pytest.fixture(scope="session")
def world():
    # Opt-in persistent reuse: export REPRO_WORLD_CACHE=/some/dir and the
    # built world is stored there, keyed by (params, package version) with
    # stale-key rejection — a code upgrade or different scale rebuilds
    # instead of serving yesterday's world.  Unset, this is a plain build.
    from repro.scenario.cache import build_world_cached

    return build_world_cached(WorldParams(seed=BENCH_SEED, scale=BENCH_SCALE))


@pytest.fixture(scope="session")
def parsed_monlist(world):
    from repro.analysis import parse_sample

    return [parse_sample(s) for s in world.onp.monlist_samples]


@pytest.fixture(scope="session")
def victim_report(world, parsed_monlist):
    from repro.analysis import analyze_dataset
    from repro.attack import ONP_PROBER_IP

    return analyze_dataset(parsed_monlist, onp_ip=ONP_PROBER_IP)
