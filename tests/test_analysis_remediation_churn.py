"""Tests for remediation analyses (Fig. 3, Fig. 10, §6) and churn (§3.1)."""

import pytest

from repro.analysis import (
    amplifier_counts,
    churn_report,
    continent_remediation,
    overlap_with_dns,
    pool_relative_to_peak,
    subgroup_reductions,
    subset_counts,
    weeks_since,
)
from repro.population import DnsResolverPool
from repro.util import RngStream, WEEK, date_to_sim


@pytest.fixture(scope="module")
def amp_rows(parsed_monlist, world):
    return amplifier_counts(parsed_monlist, world.table, world.pbl)


def test_fifteen_rows(amp_rows):
    assert len(amp_rows) == 15


def test_ip_counts_decline_then_plateau(amp_rows):
    ips = [r.ips for r in amp_rows]
    assert ips[2] < 0.65 * ips[0]  # sharp early drop (paper: 48% by week 2)
    assert ips[-1] < 0.2 * ips[0]  # deep overall reduction (paper: 92%)
    late = ips[-4:]
    assert max(late) < 1.5 * min(late)  # plateau from mid-March


def test_aggregation_levels_ordered(amp_rows):
    for row in amp_rows:
        assert row.ips >= row.slash24s >= row.blocks >= row.asns >= 1


def test_reduction_shallower_at_higher_aggregation(amp_rows):
    reductions = {r.level: r.reduction for r in subgroup_reductions(amp_rows[0], amp_rows[-1])}
    assert reductions["ip"] > reductions["slash24"] > reductions["asn"]
    assert reductions["ip"] > 0.75
    assert reductions["asn"] < reductions["ip"]


def test_end_host_fraction_roughly_doubles(amp_rows):
    first = amp_rows[0].end_host_fraction
    last = amp_rows[-1].end_host_fraction
    assert 0.12 <= first <= 0.25
    assert last > 1.25 * first


def test_ips_per_block_declines(amp_rows):
    assert amp_rows[-1].ips_per_block < amp_rows[0].ips_per_block


def test_continent_ordering(parsed_monlist, world):
    rates = continent_remediation(parsed_monlist[0], parsed_monlist[-1], world.table)
    assert rates["NA"] > rates["SA"]
    assert rates["NA"] > 0.8
    assert 0.3 < rates["SA"] < 0.9


def test_merit_subset_counts(parsed_monlist, world):
    merit = world.registry.special["REGIONAL-MI"]
    rows = subset_counts(parsed_monlist, merit.prefixes)
    assert rows[0][1] >= 20  # most of the 50 planted amplifiers respond
    assert rows[-1][1] < rows[0][1]  # ticket-driven remediation visible


def test_pool_relative_to_peak():
    series = [(0.0, 50), (1.0, 100), (2.0, 25)]
    rel = pool_relative_to_peak(series)
    assert rel == [(0.0, 0.5), (1.0, 1.0), (2.0, 0.25)]
    assert pool_relative_to_peak([]) == []


def test_weeks_since():
    start = date_to_sim(2014, 1, 10)
    series = [(start, 1.0), (start + 2 * WEEK, 0.5)]
    rel = weeks_since(series, start)
    assert rel[0][0] == 0.0
    assert rel[1][0] == pytest.approx(2.0)


def test_fig10_monlist_falls_fastest(parsed_monlist, world):
    monlist_series = [(p.t, len(p.amplifier_ips())) for p in parsed_monlist]
    monlist_rel = pool_relative_to_peak(monlist_series)
    version_series = [(s.t, len(s)) for s in world.onp.version_samples]
    version_rel = pool_relative_to_peak(version_series)
    dns = DnsResolverPool(RngStream(4, "dns"), scale=0.001)
    dns_series = [(s.t, s.count) for s in dns.weekly_series(n_weeks=60)]
    dns_rel = pool_relative_to_peak(dns_series)
    assert monlist_rel[-1][1] < 0.2  # monlist: >80% off peak
    assert version_rel[-1][1] > 0.7  # version: mild decline (paper: 19%)
    assert dns_rel[-1][1] > 0.8  # DNS: barely moves


def test_dns_overlap(world, parsed_monlist):
    last_ips = parsed_monlist[-1].amplifier_ips()
    overlap_ips = world.dns_pool.overlap_with_monlist(world.hosts.monlist_hosts)
    count, fraction = overlap_with_dns(last_ips, overlap_ips)
    assert count >= 1
    assert 0.02 < fraction < 0.2  # paper: ~7K of 107K ≈ 6.5%
    assert overlap_with_dns(set(), overlap_ips) == (0, 0.0)


def test_churn_report(parsed_monlist):
    churn = churn_report(parsed_monlist)
    assert churn.total_unique > 0
    assert 0.5 < churn.first_sample_share < 0.92  # paper: ~60%
    assert churn.seen_once_fraction > 0.15  # paper: ~half
    assert churn.discovers_new_every_sample  # new amplifiers on every scan


def test_churn_empty():
    churn = churn_report([])
    assert churn.total_unique == 0
    assert churn.first_sample_share == 0.0
