"""Reconstructing monlist tables from captured response packets (§4.2).

This is the ntpdc-equivalent protocol logic the paper applied to 5M
amplifier-week response sets: parse each mode-7 packet, validate it against
the request, and reassemble the multi-packet table in sequence order.  When
an amplifier sent repeated copies of the table (a mega amplifier), the
*final* table received is used, as in the paper — our captures store
exactly that rendition plus the repeat count.
"""

from dataclasses import dataclass, field

from repro.net.framing import on_wire_bytes
from repro.ntp.constants import MON_ENTRY_V1_SIZE, MON_ENTRY_V2_SIZE
from repro.ntp.wire import WireError, decode_mode7

__all__ = ["ReconstructedTable", "reconstruct_table", "ParsedSample", "parse_sample"]


@dataclass
class ReconstructedTable:
    """One amplifier's parsed monlist reply for one sample."""

    amplifier_ip: int
    t: float
    entries: tuple
    entry_size: int
    n_packets_once: int
    n_repeats: int
    payload_bytes_once: int
    on_wire_bytes_once: int

    @property
    def total_packets(self):
        return self.n_packets_once * self.n_repeats

    @property
    def total_on_wire_bytes(self):
        return self.on_wire_bytes_once * self.n_repeats

    @property
    def total_payload_bytes(self):
        return self.payload_bytes_once * self.n_repeats

    @property
    def is_mega(self):
        return self.n_repeats > 1

    def __len__(self):
        return len(self.entries)


def reconstruct_table(capture):
    """Parse one :class:`~repro.measurement.onp.ProbeCapture` into a table.

    Packets are validated (response bit, consistent implementation/request
    code, item size) and entries concatenated in sequence order.  Raises
    :class:`~repro.ntp.wire.WireError` on malformed input.
    """
    decoded = [decode_mode7(p) for p in capture.packets]
    if not decoded:
        raise WireError("empty capture")
    first = decoded[0]
    for pkt in decoded:
        if not pkt.response:
            raise WireError("capture contains a non-response packet")
        if pkt.implementation != first.implementation:
            raise WireError("mixed implementations in one capture")
        if pkt.item_size not in (0, MON_ENTRY_V1_SIZE, MON_ENTRY_V2_SIZE):
            raise WireError(f"unexpected item size {pkt.item_size}")
    ordered = sorted(decoded, key=lambda p: p.sequence)
    entries = []
    for pkt in ordered:
        entries.extend(pkt.items)
    payload = sum(len(p) for p in capture.packets)
    wire = sum(on_wire_bytes(len(p)) for p in capture.packets)
    return ReconstructedTable(
        amplifier_ip=capture.target_ip,
        t=capture.t,
        entries=tuple(entries),
        entry_size=first.item_size,
        n_packets_once=len(capture.packets),
        n_repeats=capture.n_repeats,
        payload_bytes_once=payload,
        on_wire_bytes_once=wire,
    )


@dataclass
class ParsedSample:
    """All reconstructed tables of one weekly ONP monlist sample."""

    t: float
    tables: list = field(default_factory=list)

    def __len__(self):
        return len(self.tables)

    def amplifier_ips(self):
        return {table.amplifier_ip for table in self.tables}


def parse_sample(sample):
    """Reconstruct every capture of an ONP sample (skipping any that fail
    to parse, as a real pipeline would; our captures should all parse)."""
    parsed = ParsedSample(t=sample.t)
    for capture in sample.captures:
        try:
            parsed.tables.append(reconstruct_table(capture))
        except WireError:
            continue
    return parsed
