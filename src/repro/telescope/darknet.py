"""Darknet (network telescope) observers (§5.1).

The IPv4 telescope models the Merit darknet: full packet capture over ~75%
of a /8 of unused space ("an effective /9"), with the effective /24 count
varying month to month as routing and suballocations shift.  Scanners
sweeping the IPv4 space spill into the dark space in proportion to their
coverage; the telescope aggregates

* monthly average NTP scan packets per effective dark /24, split into
  known-benign (research, identified by source) and other — Figure 8; and
* daily unique scanning source IPs — Figure 9.

The IPv6 telescope reproduces the paper's negative result: scanners in this
world are IPv4-only, so the v6 telescope sees only errant point-to-point
NTP packets and no broad scanning.
"""

from collections import defaultdict

import numpy as np

from repro.measurement.capture_store import inline_array, maybe_spill_array
from repro.net.asn import DARKNET_POOL
from repro.util.simtime import DAY, month_key

__all__ = ["Ipv4Darknet", "Ipv6Darknet"]


def _empty_month_counts():
    """defaultdict factory (module-level so telescopes stay picklable)."""
    return {"benign": 0, "other": 0}


class Ipv4Darknet:
    """The ≈/9 IPv4 telescope."""

    def __init__(self, rng, pool=DARKNET_POOL, coverage=0.75, coverage_jitter=0.04, faults=None):
        if not 0 < coverage <= 1:
            raise ValueError("coverage must be in (0, 1]")
        self._rng = rng.child("darknet")
        self._pool = pool
        self._base_coverage = coverage
        self._coverage_jitter = coverage_jitter
        self._monthly_packets = defaultdict(_empty_month_counts)
        self._daily_scanners = defaultdict(set)
        #: Compacted (day, scanner_ip) pairs — flat arrays instead of a
        #: dict of sets once the observation phase ends (see compact()).
        self._scanner_pairs = None
        self._monthly_coverage = {}
        #: Optional :class:`~repro.faults.FaultInjector`; fault draws use the
        #: injector's streams, never ``self._rng``, so a clean profile leaves
        #: the telescope byte-identical.
        self._faults = faults
        #: Day indexes the sensor was down (observable evidence of outages).
        self.down_days = set()

    # -- coverage ---------------------------------------------------------------

    def effective_slash24s(self, t):
        """Effective dark /24s during the month containing ``t``.

        Deterministic per month (hash-jittered around the base coverage),
        reflecting routing-driven variation in telescope size.
        """
        key = month_key(t)
        if key not in self._monthly_coverage:
            jitter = (self._rng.random() - 0.5) * 2 * self._coverage_jitter
            coverage = min(1.0, max(0.05, self._base_coverage + jitter))
            total_24s = self._pool.n_addresses // 256
            self._monthly_coverage[key] = int(total_24s * coverage)
        return self._monthly_coverage[key]

    @property
    def pool(self):
        return self._pool

    # -- observation --------------------------------------------------------------

    def observe_sweep(self, sweep):
        """Record one scan sweep's spillover into the dark space.

        A sweep covering fraction ``c`` of IPv4 hits each dark address with
        probability ``c``; the expected packet count into the telescope is
        ``c * dark_addresses`` (Poisson-sampled for realism).
        """
        day = int(sweep.t // DAY)
        if self._faults is not None and self._faults.darknet_down(day):
            # Sensor downtime: nothing is captured on a down day.  Packet
            # volume is keyed to the sweep's start day; the per-day scanner
            # sets below check each spanned day individually.
            self.down_days.add(day)
        else:
            n24 = self.effective_slash24s(sweep.t)
            dark_addresses = n24 * 256
            expected = sweep.coverage * dark_addresses
            packets = int(self._rng.poisson(expected)) if expected < 1e7 else int(expected)
            if packets <= 0 and sweep.coverage >= 1.0:
                packets = dark_addresses
            key = month_key(sweep.t)
            label = "benign" if sweep.kind == "research" else "other"
            self._monthly_packets[key][label] += packets
        # The sweep is visible on every day it spans (that the sensor is up).
        last_day = int((sweep.t + sweep.duration) // DAY)
        for d in range(day, last_day + 1):
            if self._faults is not None and self._faults.darknet_down(d):
                self.down_days.add(d)
                continue
            self._daily_scanners[d].add(sweep.scanner_ip)

    def observe_all(self, sweeps):
        for sweep in sweeps:
            self.observe_sweep(sweep)

    # -- figures -------------------------------------------------------------------

    def monthly_packets_per_slash24(self):
        """{month: {"benign": avg packets per dark /24, "other": ...}}."""
        out = {}
        for key in sorted(self._monthly_packets):
            n24 = self._monthly_coverage.get(key)
            if not n24:
                continue
            counts = self._monthly_packets[key]
            out[key] = {
                "benign": counts["benign"] / n24,
                "other": counts["other"] / n24,
            }
        return out

    def benign_fraction(self, month):
        counts = self._monthly_packets.get(month)
        if not counts:
            return 0.0
        total = counts["benign"] + counts["other"]
        if total == 0:
            return 0.0
        return counts["benign"] / total

    def compact(self):
        """Freeze the per-day scanner sets into one flat, (day, ip)-sorted
        pair array, spilled to an unlinked memmap past ``REPRO_SPILL_MB``.

        A full-scale observation season holds millions of (day, scanner)
        memberships; as Python sets of ints they cost ~100 bytes each,
        as int64 pairs 16.  Observation can continue afterwards (new
        sightings land in the dict overlay and are merged on the next
        compact), and every figure-facing count is unchanged.  Returns
        ``self`` so it chains.
        """
        parts = []
        if self._scanner_pairs is not None and len(self._scanner_pairs):
            parts.append(np.asarray(self._scanner_pairs))
        for day, ips in self._daily_scanners.items():
            pair = np.empty((len(ips), 2), dtype=np.int64)
            pair[:, 0] = day
            pair[:, 1] = np.fromiter(ips, dtype=np.int64, count=len(ips))
            parts.append(pair)
        if parts:
            pairs = np.concatenate(parts)
            order = np.lexsort((pairs[:, 1], pairs[:, 0]))
            pairs = pairs[order]
            keep = np.ones(len(pairs), dtype=bool)
            keep[1:] = (pairs[1:] != pairs[:-1]).any(axis=1)
            pairs = np.ascontiguousarray(pairs[keep])
        else:
            pairs = np.empty((0, 2), dtype=np.int64)
        self._scanner_pairs = maybe_spill_array(pairs)
        self._daily_scanners = defaultdict(set)
        return self

    def daily_unique_scanners(self):
        """{day index: unique scanner source IPs seen that day}."""
        if self._scanner_pairs is None:
            return {day: len(ips) for day, ips in sorted(self._daily_scanners.items())}
        if self._daily_scanners:
            self.compact()
        pairs = self._scanner_pairs
        days, counts = np.unique(pairs[:, 0], return_counts=True)
        return {int(d): int(c) for d, c in zip(days.tolist(), counts.tolist())}

    # -- pickling ------------------------------------------------------------------
    # Cached worlds must be self-contained: a memmap-backed pair array is
    # re-inlined so the pickle never references an unlinked temp file.

    def __getstate__(self):
        state = self.__dict__.copy()
        if state.get("_scanner_pairs") is not None:
            state["_scanner_pairs"] = inline_array(state["_scanner_pairs"])
        return state

    def __setstate__(self, state):
        # Worlds cached before the compacted layout predate this slot.
        state.setdefault("_scanner_pairs", None)
        self.__dict__.update(state)


class Ipv6Darknet:
    """The IPv6 telescope: covering prefixes for four of five RIRs.

    In this world no scanner sweeps v6 space, so all the telescope ever
    records is a low-rate trickle of errant point-to-point NTP packets
    (misconfigured clients), reproducing the paper's negative result.
    """

    ERRANT_PACKETS_PER_DAY = 3.0

    def __init__(self, rng):
        self._rng = rng.child("darknet-v6")
        self._monthly_packets = defaultdict(int)
        self._scan_packets = defaultdict(int)

    def simulate_window(self, start, end):
        """Accumulate errant noise over [start, end)."""
        if end <= start:
            raise ValueError("end must follow start")
        day = start
        while day < end:
            self._monthly_packets[month_key(day)] += int(
                self._rng.poisson(self.ERRANT_PACKETS_PER_DAY)
            )
            day += DAY

    def monthly_packets(self):
        return dict(sorted(self._monthly_packets.items()))

    def scanning_evidence(self):
        """Broad-scanning packet counts: always empty in this world."""
        return dict(self._scan_packets)
