"""On-wire byte accounting.

The paper computes bandwidth amplification factors (BAF) from *on-wire*
bytes: every bit that occupies time on an Ethernet link, i.e. the frame
including header and FCS (minimum 64 bytes) plus the 8-byte preamble and the
12-byte inter-packet gap.  A minimum frame therefore costs 84 bytes on the
wire — the figure §3.2 uses for the monlist query packet.
"""

__all__ = [
    "ETHERNET_HEADER",
    "ETHERNET_FCS",
    "ETHERNET_PREAMBLE",
    "ETHERNET_IPG",
    "ETHERNET_OVERHEAD",
    "MIN_FRAME",
    "MIN_ONWIRE_FRAME",
    "IPV4_HEADER",
    "UDP_HEADER",
    "UDP_IP_HEADERS",
    "MAX_UDP_PAYLOAD",
    "udp_datagram_bytes",
    "frame_bytes",
    "on_wire_bytes",
    "on_wire_bytes_array",
    "on_wire_total",
]

ETHERNET_HEADER = 14
ETHERNET_FCS = 4
ETHERNET_PREAMBLE = 8
ETHERNET_IPG = 12
#: Per-frame cost beyond the frame itself (preamble + inter-packet gap).
ETHERNET_OVERHEAD = ETHERNET_PREAMBLE + ETHERNET_IPG
#: Minimum Ethernet frame size including header and FCS.
MIN_FRAME = 64
#: Minimum cost of any packet on the wire: 64-byte frame + preamble + IPG.
MIN_ONWIRE_FRAME = MIN_FRAME + ETHERNET_OVERHEAD

IPV4_HEADER = 20
UDP_HEADER = 8
UDP_IP_HEADERS = IPV4_HEADER + UDP_HEADER
#: Largest UDP payload in an unfragmented 1500-byte-MTU IP packet.
MAX_UDP_PAYLOAD = 1500 - UDP_IP_HEADERS


def udp_datagram_bytes(payload_len):
    """IP packet size of a UDP datagram with the given payload."""
    if payload_len < 0:
        raise ValueError("payload length must be non-negative")
    return UDP_IP_HEADERS + payload_len


def frame_bytes(payload_len):
    """Ethernet frame size (header + FCS, padded to the 64-byte minimum)."""
    return max(MIN_FRAME, ETHERNET_HEADER + udp_datagram_bytes(payload_len) + ETHERNET_FCS)


def on_wire_bytes(payload_len):
    """On-wire cost of one UDP packet with the given payload length.

    ``on_wire_bytes(0) == 84``, the minimum the paper uses for the monlist
    query packet.
    """
    return frame_bytes(payload_len) + ETHERNET_OVERHEAD


def on_wire_bytes_array(payload_lens):
    """Vectorized :func:`on_wire_bytes` over an array of payload lengths.

    Returns an ``int64`` array; elementwise equal to ``on_wire_bytes`` for
    non-negative lengths.
    """
    import numpy as np

    lens = np.asarray(payload_lens, dtype=np.int64)
    fixed = ETHERNET_HEADER + UDP_IP_HEADERS + ETHERNET_FCS + ETHERNET_OVERHEAD
    pad_below = MIN_FRAME - (ETHERNET_HEADER + UDP_IP_HEADERS + ETHERNET_FCS)
    return np.where(lens < pad_below, MIN_ONWIRE_FRAME, lens + fixed)


def on_wire_total(payload_lens):
    """Aggregate on-wire bytes over an iterable of UDP payload lengths."""
    return sum(on_wire_bytes(n) for n in payload_lens)
