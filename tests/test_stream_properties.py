"""Property tests for the streaming layer's pure machinery.

Three families, all driven by the shared strategies in
``tests/strategies.py``:

* window arithmetic — ``index_of``/``bounds`` containment is exact, even
  at float boundaries;
* watermark accounting — for any arrival order within a bounded skew
  (plus duplicate deliveries), every record lands in exactly one ledger
  and the books balance;
* sketch algebra — count-min and space-saving merges are commutative,
  and the declared error bounds survive both single-stream use and
  merging.
"""

from hypothesis import given
from hypothesis import strategies as st

from repro.stream.sketches import CountMinSketch, SpaceSavingTopK
from repro.stream.windows import TumblingWindows, WindowSet
from tests.strategies import (
    bounded_skews,
    record_streams,
    sketch_streams,
    stream_events,
    window_widths,
)

# ---------------------------------------------------------------------------
# Window assignment
# ---------------------------------------------------------------------------


@given(
    window_widths,
    st.floats(min_value=-1e6, max_value=1e7, allow_nan=False),
    st.floats(min_value=0.0, max_value=3e6, allow_nan=False),
)
def test_window_assignment_contains_its_time(width, origin, t):
    windows = TumblingWindows(width, origin=origin)
    index = windows.index_of(t)
    lo, hi = windows.bounds(index)
    assert lo <= t < hi
    assert windows.contains(index, t)


@given(window_widths, st.integers(min_value=-100, max_value=100))
def test_window_bounds_tile_the_line(width, index):
    windows = TumblingWindows(width, origin=0.0)
    lo, hi = windows.bounds(index)
    assert hi == windows.bounds(index + 1)[0]
    assert lo < hi


# ---------------------------------------------------------------------------
# Watermark handling and the accounting ledger
# ---------------------------------------------------------------------------


def _drive(arrivals, skew, width=7200.0):
    """Feed one WindowSet the way the engine does; return it + applied log."""
    ws = WindowSet(width, state_factory=lambda: {"n": 0})
    applied_times = []
    max_t = None
    for t, _kind, _key, uid in arrivals:
        max_t = t if max_t is None else max(max_t, t)
        watermark = max_t - skew
        state = ws.offer(t, uid, watermark)
        if state is not None:
            state["n"] += 1
            applied_times.append(t)
        ws.advance(watermark)
    return ws, applied_times


@given(record_streams())
def test_every_record_lands_in_exactly_one_ledger(stream):
    arrivals, skew = stream
    ws, applied_times = _drive(arrivals, skew)
    assert ws.balanced
    assert ws.total == len(arrivals)
    assert ws.applied == len(applied_times)
    ws.close_all()
    assert ws.balanced
    # Applied records are exactly the ones the window summaries retain.
    assert sum(s["n"] for s in ws.closed.values()) == ws.applied
    assert not ws.open


@given(record_streams())
def test_applied_records_sit_inside_their_windows(stream):
    arrivals, skew = stream
    ws, applied_times = _drive(arrivals, skew)
    for t in applied_times:
        assert ws.windows.contains(ws.windows.index_of(t), t)


@given(st.lists(stream_events, min_size=0, max_size=100), bounded_skews)
def test_in_order_unique_stream_is_never_late_or_duplicate(events, skew):
    ordered = sorted(events, key=lambda e: e[0])
    arrivals = [(t, kind, key, uid) for uid, (t, kind, key) in enumerate(ordered)]
    ws, _ = _drive(arrivals, skew)
    assert ws.late == 0
    assert ws.duplicate == 0
    assert ws.applied == len(arrivals)


@given(st.lists(stream_events, min_size=1, max_size=50))
def test_redelivery_into_an_open_window_is_a_duplicate(events):
    # Infinite skew: no window ever closes, so every re-send of a uid is
    # caught by the open window's seen-set, never misfiled as late.
    ordered = sorted(events, key=lambda e: e[0])
    arrivals = [(t, kind, key, uid) for uid, (t, kind, key) in enumerate(ordered)]
    arrivals = arrivals + arrivals
    ws, _ = _drive(arrivals, skew=float("inf"))
    assert ws.duplicate == len(ordered)
    assert ws.late == 0
    assert ws.applied == len(ordered)
    assert ws.balanced


@given(record_streams())
def test_late_records_only_after_the_watermark_passed_their_window(stream):
    arrivals, skew = stream
    ws = WindowSet(7200.0, state_factory=lambda: {"n": 0})
    max_t = None
    for t, _kind, _key, uid in arrivals:
        max_t = t if max_t is None else max(max_t, t)
        watermark = max_t - skew
        before = ws.late
        state = ws.offer(t, uid, watermark)
        if ws.late > before:
            # A record may only be refused as late when the watermark has
            # genuinely passed its window's end — whether or not any
            # earlier record opened that window (the sharded blocks rely
            # on never-opened windows refusing stragglers identically).
            assert state is None
            index = ws.windows.index_of(t)
            assert ws.windows.bounds(index)[1] <= watermark
            assert index not in ws.open
        ws.advance(watermark)


# ---------------------------------------------------------------------------
# Sketch algebra
# ---------------------------------------------------------------------------


def _totals(stream):
    out = {}
    for key, weight in stream:
        out[key] = out.get(key, 0) + weight
    return out


def _cm_of(stream):
    cm = CountMinSketch()
    for key, weight in stream:
        cm.add(key, weight)
    return cm


def _ss_of(stream, capacity=8):
    ss = SpaceSavingTopK(capacity)
    for key, weight in stream:
        ss.add(key, weight)
    return ss


@given(sketch_streams)
def test_count_min_respects_its_declared_bound(stream):
    cm = _cm_of(stream)
    truth = _totals(stream)
    assert cm.total == sum(truth.values())
    for key, true in truth.items():
        estimate = cm.estimate(key)
        assert true <= estimate <= true + cm.error_bound()


@given(sketch_streams, sketch_streams)
def test_count_min_merge_is_commutative_and_bound_preserving(a, b):
    cm_a, cm_b = _cm_of(a), _cm_of(b)
    merged = cm_a.merge(cm_b)
    assert merged == cm_b.merge(cm_a)
    assert merged.total == cm_a.total + cm_b.total
    assert merged.error_bound() == merged.epsilon * merged.total
    truth = _totals(a + b)
    for key, true in truth.items():
        assert true <= merged.estimate(key) <= true + merged.error_bound()
    # Merging never mutates the inputs.
    assert cm_a == _cm_of(a)
    assert cm_b == _cm_of(b)


@given(sketch_streams)
def test_space_saving_tracks_every_guaranteed_heavy_hitter(stream):
    ss = _ss_of(stream)
    truth = _totals(stream)
    assert ss.total == sum(truth.values())
    assert len(ss.counters) <= ss.capacity
    threshold = ss.guarantee_threshold()
    for key, true in truth.items():
        if true > threshold:
            assert key in ss.counters
    for key, count, error in ss.top():
        true = truth.get(key, 0)
        assert true <= count <= true + error


@given(sketch_streams, sketch_streams)
def test_space_saving_merge_is_commutative(a, b):
    ss_a, ss_b = _ss_of(a), _ss_of(b)
    merged = ss_a.merge(ss_b)
    assert merged == ss_b.merge(ss_a)
    assert merged.total == ss_a.total + ss_b.total
    assert len(merged.counters) <= merged.capacity
    # Merging never mutates the inputs.
    assert ss_a == _ss_of(a)
    assert ss_b == _ss_of(b)


@given(sketch_streams, sketch_streams)
def test_space_saving_merge_preserves_count_bounds(a, b):
    merged = _ss_of(a).merge(_ss_of(b))
    truth = _totals(a + b)
    for key, count, error in merged.top():
        true = truth.get(key, 0)
        assert true <= count <= true + error


def test_sketches_reject_incompatible_merges():
    import pytest

    with pytest.raises(ValueError):
        CountMinSketch(epsilon=0.005).merge(CountMinSketch(epsilon=0.05))
    with pytest.raises(ValueError):
        SpaceSavingTopK(8).merge(SpaceSavingTopK(16))
