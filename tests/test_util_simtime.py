"""Tests for simulation time helpers."""

import pytest

from repro.util import (
    DAY,
    HOUR,
    SimClock,
    Timeline,
    WEEK,
    date_to_sim,
    day_index,
    format_sim,
    hour_index,
    month_key,
    sim_to_date,
    week_samples,
)
from repro.util.simtime import month_range


def test_epoch_is_zero():
    assert date_to_sim(2013, 9, 1) == 0.0


def test_round_trip():
    t = date_to_sim(2014, 2, 11, 13, 30)
    d = sim_to_date(t)
    assert (d.year, d.month, d.day, d.hour, d.minute) == (2014, 2, 11, 13, 30)


def test_format_sim():
    assert format_sim(date_to_sim(2014, 1, 10)) == "2014-01-10"


def test_day_and_hour_index():
    t = date_to_sim(2013, 9, 2, 5)
    assert day_index(t) == 1
    assert hour_index(t) == 29


def test_month_key():
    assert month_key(date_to_sim(2014, 2, 28, 23)) == "2014-02"


def test_week_samples_match_onp_dates():
    samples = week_samples(date_to_sim(2014, 1, 10), 15)
    assert len(samples) == 15
    assert format_sim(samples[0]) == "2014-01-10"
    assert format_sim(samples[5]) == "2014-02-14"
    assert format_sim(samples[-1]) == "2014-04-18"


def test_week_samples_rejects_negative_count():
    with pytest.raises(ValueError):
        week_samples(0.0, -1)


def test_month_range():
    keys = month_range(date_to_sim(2013, 11, 15), date_to_sim(2014, 2, 2))
    assert keys == ["2013-11", "2013-12", "2014-01", "2014-02"]


def test_month_range_empty_for_reversed():
    assert month_range(10.0, 5.0) == []


def test_clock_monotonic():
    clock = SimClock(0.0)
    clock.advance_to(10.0)
    with pytest.raises(ValueError):
        clock.advance_to(5.0)
    clock.advance_by(HOUR)
    assert clock.now == 10.0 + HOUR


def test_timeline_interpolates_linearly():
    line = Timeline([(0.0, 0.0), (10.0, 100.0)])
    assert line(5.0) == pytest.approx(50.0)
    assert line(-1.0) == 0.0
    assert line(11.0) == 100.0


def test_timeline_log_interpolation():
    line = Timeline([(0.0, 1e-5), (2.0, 1e-3)], log=True)
    assert line(1.0) == pytest.approx(1e-4, rel=1e-6)


def test_timeline_validation():
    with pytest.raises(ValueError):
        Timeline([(0.0, 1.0)])
    with pytest.raises(ValueError):
        Timeline([(0.0, 1.0), (0.0, 2.0)])
    with pytest.raises(ValueError):
        Timeline([(0.0, 0.0), (1.0, 1.0)], log=True)


def test_constants_consistent():
    assert WEEK == 7 * DAY
    assert DAY == 24 * HOUR
