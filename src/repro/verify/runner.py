"""The metamorphic-relation runner.

Builds a (seed x scale x fault-preset) matrix of worlds, wraps each in a
lazily-memoizing :class:`WorldRecord`, groups the records by invariant
scope, evaluates every check in :data:`~repro.verify.invariants.REGISTRY`,
and folds the outcomes into a :class:`ConformanceReport` — machine-readable
(``as_dict``/``to_json``), human-readable (``render``), and judgeable
(``ok`` is False iff an error-severity invariant was violated).

A check that raises is not a crash of the harness: the exception is
converted into a violation of that invariant (the harness's own contract is
"the pipeline degrades, never crashes", so an analysis-layer exception is
exactly the kind of bug the run exists to catch).
"""

import json
from dataclasses import dataclass, field

from repro.verify.invariants import all_invariants

__all__ = [
    "Cell",
    "WorldRecord",
    "InvariantOutcome",
    "ConformanceReport",
    "run_conformance",
    "default_builder",
]


@dataclass(frozen=True)
class Cell:
    """One point of the verification matrix."""

    seed: int
    scale: float
    fault_name: str

    def label(self):
        return f"seed={self.seed} scale={self.scale:g} faults={self.fault_name}"


def default_builder(cell, jobs=1):
    """Build the world for a matrix cell (no cache: verification must
    exercise the real construction path).  ``jobs`` shards the build
    itself — the world is byte-identical at any value."""
    from repro.faults import resolve_fault_profile
    from repro.scenario.world import PaperWorld, WorldParams

    params = WorldParams(
        seed=cell.seed,
        scale=cell.scale,
        faults=resolve_fault_profile(cell.fault_name),
    )
    return PaperWorld.build(params=params, jobs=jobs)


class WorldRecord:
    """A built world plus memoized derived views, keyed by matrix cell.

    Everything expensive (corpus parse, victimology, quality accounting,
    version demographics, the summary text) is computed at most once per
    record no matter how many invariants consult it.
    """

    def __init__(self, cell, world):
        self.cell = cell
        self.world = world
        from repro.analysis.context import AnalysisContext

        self.ctx = AnalysisContext(world)
        self._amp_rows = None
        self._quality = None
        self._summary_text = None
        self._ip_union = None

    # -- identity ----------------------------------------------------------

    @property
    def seed(self):
        return self.cell.seed

    @property
    def scale(self):
        return self.cell.scale

    @property
    def fault_name(self):
        return self.cell.fault_name

    @property
    def is_clean(self):
        return self.world.params.faults.is_clean

    # -- memoized views ----------------------------------------------------

    def parsed(self):
        return self.ctx.parsed_samples()

    def victim_report(self):
        return self.ctx.victim_report()

    def concentration(self):
        return self.ctx.concentration()

    def amplifier_rows(self):
        """Figure-3 rows, one per monlist sample (outage rows included)."""
        if self._amp_rows is None:
            from repro.analysis.remediation import amplifier_counts

            self._amp_rows = amplifier_counts(
                self.parsed(), self.world.table, self.world.pbl
            )
        return self._amp_rows

    def measured_rows(self):
        """Figure-3 rows where the sweep actually ran (outages excluded)."""
        return [row for row in self.amplifier_rows() if not row.outage]

    def unique_amplifier_ips(self):
        return len(self.amplifier_ip_union())

    def amplifier_ip_union(self):
        if self._ip_union is None:
            union = set()
            for parsed in self.parsed():
                union.update(parsed.amplifier_ips())
            self._ip_union = frozenset(union)
        return self._ip_union

    def quality(self):
        if self._quality is None:
            from repro.analysis.quality import quality_report

            self._quality = quality_report(self.world, parsed_samples=self.parsed())
        return self._quality

    def version_report(self):
        return self.ctx.version_report()

    def summary_text(self):
        if self._summary_text is None:
            self._summary_text = self.world.summary()
        return self._summary_text

    def warm_group_views(self):
        """Force every view a group-scope invariant can consult.

        The parallel matrix evaluates world-scope invariants inside the
        worker, then ships the record back to the parent for the
        scale/seed/fault-scope groups — warming first means the parent
        never re-derives anything, and the raw parsed corpus (by far the
        heaviest memo, and re-derivable) can be dropped from the pickle.
        """
        self.victim_report()
        self.concentration()
        self.amplifier_rows()
        self.amplifier_ip_union()
        self.quality()
        self.version_report()
        self.summary_text()
        return self

    def drop_parsed_corpus(self):
        """Release the parsed-corpus memo (kept: everything derived)."""
        self.ctx._parsed = None
        self.ctx._responder_sets = None
        return self


@dataclass
class InvariantOutcome:
    """One invariant evaluated against one group of records."""

    name: str
    scope: str
    severity: str
    #: Which matrix slice was judged (e.g. "seed=7 faults=clean" for a
    #: scale-scope group, or a single cell label for world scope).
    subject: str
    #: "pass" | "fail" | "skip"
    status: str
    measured: dict = field(default_factory=dict)
    violations: list = field(default_factory=list)

    @property
    def failed(self):
        return self.status == "fail"

    def as_dict(self):
        return {
            "invariant": self.name,
            "scope": self.scope,
            "severity": self.severity,
            "subject": self.subject,
            "status": self.status,
            "measured": self.measured,
            "violations": list(self.violations),
        }


@dataclass
class ConformanceReport:
    """The full matrix run: every outcome, plus the verdict."""

    cells: list = field(default_factory=list)
    outcomes: list = field(default_factory=list)
    invariants_run: int = 0
    #: Shard-pool provenance for the cell-build pool (engagement, per-task
    #: timings, supervisor fault counters); empty on serial runs.
    shards: dict = field(default_factory=dict)

    @property
    def ok(self):
        """True iff no error-severity invariant failed."""
        return not self.violated()

    def violated(self, include_warnings=False):
        """Names of invariants with at least one failing outcome."""
        names = []
        for outcome in self.outcomes:
            if not outcome.failed:
                continue
            if outcome.severity != "error" and not include_warnings:
                continue
            if outcome.name not in names:
                names.append(outcome.name)
        return names

    def counts(self):
        counts = {"pass": 0, "fail": 0, "skip": 0}
        for outcome in self.outcomes:
            counts[outcome.status] += 1
        return counts

    def as_dict(self):
        # ``shards`` is deliberately NOT serialized: the report dict is
        # contractually identical at any ``jobs`` value, while pool
        # provenance (worker counts, per-task timings, retry counters)
        # varies by run.  ``bench-verify`` records ``report.shards``
        # separately in BENCH_verify.json.
        return {
            "ok": self.ok,
            "invariants_registered": self.invariants_run,
            "matrix": [
                {"seed": c.seed, "scale": c.scale, "faults": c.fault_name}
                for c in self.cells
            ],
            "counts": self.counts(),
            "violated": self.violated(),
            "violated_warnings": [
                name
                for name in self.violated(include_warnings=True)
                if name not in self.violated()
            ],
            "outcomes": [outcome.as_dict() for outcome in self.outcomes],
        }

    def to_json(self):
        return json.dumps(self.as_dict(), indent=2, sort_keys=False)

    def render(self):
        counts = self.counts()
        lines = [
            f"Conformance: {len(self.cells)} worlds, "
            f"{self.invariants_run} invariants, "
            f"{counts['pass']} pass / {counts['fail']} fail / {counts['skip']} skip",
        ]
        for outcome in self.outcomes:
            if outcome.status != "fail":
                continue
            tag = "FAIL" if outcome.severity == "error" else "warn"
            lines.append(f"  [{tag}] {outcome.name} ({outcome.subject})")
            for violation in outcome.violations:
                lines.append(f"         - {violation}")
        lines.append("CONFORMANT" if self.ok else "NONCONFORMANT: " + ", ".join(self.violated()))
        return "\n".join(lines)


def _evaluate(inv, args, subject, outcomes):
    """Run one check, converting raised exceptions into violations."""
    try:
        result = inv.check(*args, inv.tolerance)
    except Exception as exc:  # noqa: BLE001 — a crashing check is a finding
        outcomes.append(
            InvariantOutcome(
                name=inv.name,
                scope=inv.scope,
                severity=inv.severity,
                subject=subject,
                status="fail",
                violations=[f"check raised {type(exc).__name__}: {exc}"],
            )
        )
        return
    if result is None:
        status, measured, violations = "skip", {}, []
    else:
        measured = result.get("measured", {})
        violations = result.get("violations", [])
        status = "fail" if violations else "pass"
    outcomes.append(
        InvariantOutcome(
            name=inv.name,
            scope=inv.scope,
            severity=inv.severity,
            subject=subject,
            status=status,
            measured=measured,
            violations=violations,
        )
    )


def _cell_task(state, index):
    """Build one matrix cell and run its world-scope checks in-process.

    One supervised shard-pool task (also the serial/fallback body).
    Returns ``(record, outcomes, parse_delta)``: the record has every
    group-consumed view warmed and its raw parsed corpus dropped
    (smaller pickle; the parent only reads derived views), ``outcomes``
    are the world-scope results in invariant registration order, and
    ``parse_delta`` is how many sample parses this task performed — the
    parent folds *pooled* tasks' deltas into its own ledger so the
    parse-once accounting stays whole across the pool (serial and
    fallback tasks already incremented the parent's counter directly).
    """
    from repro.analysis.monlist_parse import parse_call_count

    cells, builder, world_invs = state
    cell = cells[index]
    before = parse_call_count()
    record = WorldRecord(cell, builder(cell))
    outcomes = []
    for inv in world_invs:
        _evaluate(inv, (record,), cell.label(), outcomes)
    record.warm_group_views()
    record.drop_parsed_corpus()
    return record, outcomes, parse_call_count() - before


def run_conformance(
    seeds,
    scales,
    faults,
    builder=None,
    progress=None,
    jobs=1,
    build_jobs=1,
    task_timeout=None,
    retries=None,
):
    """Build the matrix and evaluate every registered invariant.

    Parameters
    ----------
    seeds, scales, faults:
        The matrix axes.  ``faults`` are preset names ("clean", "paper",
        "hostile"); fault-scope invariants need "clean" present to pair
        against.
    builder:
        ``builder(cell) -> world`` override; tests inject deliberately
        broken builders here to prove violations are caught and named.
    progress:
        Optional ``progress(message)`` callback for CLI feedback.
    jobs:
        Matrix cells built (and world-scope invariants evaluated) over
        this many fork-pool workers.  The report is identical at any
        value: outcomes are merged in request order, never completion
        order.  Pool engagement is decided by the shared
        :func:`repro.util.pool.fork_pool_gate` — the serial path runs
        where fork is unavailable, the matrix has a single cell, or the
        host exposes one CPU.
    build_jobs:
        Forwarded to :func:`default_builder`: each cell's *build* phases
        shard over this many workers (byte-identical at any value).
        Useful for few-but-large cells, where cell-level parallelism
        alone leaves CPUs idle.  Ignored with an injected ``builder``.
    task_timeout, retries:
        Supervision knobs for the cell pool (see
        :class:`~repro.util.pool.ShardRunner`): per-cell wall-clock
        budget and extra pooled attempts before the in-process fallback.
        They affect scheduling only — a retried cell re-derives the same
        seeded world and the same outcomes.
    """
    if builder is None:
        if build_jobs > 1:
            builder = lambda cell: default_builder(cell, jobs=build_jobs)  # noqa: E731
        else:
            builder = default_builder
    say = progress or (lambda message: None)

    cells = [
        Cell(seed=seed, scale=scale, fault_name=fault)
        for seed in seeds
        for scale in scales
        for fault in faults
    ]
    invariants = all_invariants()
    world_invs = [inv for inv in invariants if inv.scope == "world"]

    from repro.analysis.monlist_parse import add_parse_calls
    from repro.util.pool import ShardRunner, fork_pool_gate, summarize_shard_stats

    runner_kwargs = {}
    if task_timeout is not None:
        runner_kwargs["task_timeout"] = task_timeout
    if retries is not None:
        runner_kwargs["retries"] = retries
    runner = ShardRunner(jobs, **runner_kwargs)
    engaged, gate_reason = fork_pool_gate(jobs, len(cells), phase="cells")
    if engaged:
        say(f"building {len(cells)} worlds over {min(jobs, len(cells))} workers")
    elif jobs > 1:
        say(f"cell pool not engaged: {gate_reason}")

    def built_one(index):
        say(f"built {cells[index].label()}")

    state = (cells, builder, world_invs)
    outputs = runner.map("cells", _cell_task, state, len(cells), on_result=built_one)
    cell_stat = runner.stats["cells"]
    records = {}
    world_outcomes = {}
    for cell, source, (record, outcomes, parse_delta) in zip(
        cells, cell_stat["task_source"], outputs
    ):
        records[cell] = record
        world_outcomes[cell] = outcomes
        if source == "pooled":
            # Serial/fallback tasks already advanced the parent's
            # parse-call ledger in-process; only pooled work (counted in
            # a forked copy) needs mirroring.
            add_parse_calls(parse_delta)

    report = ConformanceReport(
        cells=cells, invariants_run=len(invariants), shards=summarize_shard_stats(runner.stats)
    )
    say(f"evaluating {len(invariants)} invariants over {len(cells)} worlds")

    for inv in invariants:
        if inv.scope == "world":
            position = world_invs.index(inv)
            for cell in cells:
                report.outcomes.append(world_outcomes[cell][position])
        elif inv.scope == "scale":
            for seed in seeds:
                for fault in faults:
                    group = sorted(
                        (records[c] for c in cells if c.seed == seed and c.fault_name == fault),
                        key=lambda record: record.scale,
                    )
                    if len(group) < 2:
                        continue
                    subject = f"seed={seed} faults={fault} scales={[r.scale for r in group]}"
                    _evaluate(inv, (group,), subject, report.outcomes)
        elif inv.scope == "seed":
            for scale in scales:
                for fault in faults:
                    group = sorted(
                        (records[c] for c in cells if c.scale == scale and c.fault_name == fault),
                        key=lambda record: record.seed,
                    )
                    if len(group) < 2:
                        continue
                    subject = f"scale={scale:g} faults={fault} seeds={[r.seed for r in group]}"
                    _evaluate(inv, (group,), subject, report.outcomes)
        elif inv.scope == "fault":
            for seed in seeds:
                for scale in scales:
                    clean = records.get(Cell(seed, scale, "clean"))
                    if clean is None:
                        continue
                    for fault in faults:
                        if fault == "clean":
                            continue
                        faulted = records[Cell(seed, scale, fault)]
                        subject = f"seed={seed} scale={scale:g} clean-vs-{fault}"
                        _evaluate(inv, (clean, faulted), subject, report.outcomes)
    return report
