"""Table 5: the worst amplifiers at Merit and CSU.

Paper: Merit's top five amplifiers ran flow-level BAFs around 1000-1300 and
individually served 1.6K-3K victims, shipping terabytes; CSU's nine ran
BAFs in the 400-800 range.  (Victim counts scale with the simulated attack
volume; BAF is scale-free.)
"""

from repro.analysis import coordination_report, top_amplifier_table
from repro.reporting import render_table5


def test_table5_local_amplifiers(benchmark, world):
    merit_rows = benchmark(top_amplifier_table, world.isp.sites["merit"])
    csu_rows = top_amplifier_table(world.isp.sites["csu"])

    assert merit_rows
    # Flow-level BAF of full-table amplifiers lands in the many-hundreds
    # (the paper's §7 definition: bytes sent over bytes received).
    assert merit_rows[0]["baf"] > 300
    assert merit_rows[0]["unique_victims"] >= 2
    assert merit_rows[0]["gb_sent"] > 0.5
    # Rows sorted by BAF.
    bafs = [r["baf"] for r in merit_rows]
    assert bafs == sorted(bafs, reverse=True)

    # CSU amplifiers were active during their January window.
    assert csu_rows
    assert csu_rows[0]["baf"] > 100

    # Coordination: many local victims are hit via several local amplifiers.
    coordination = coordination_report(world.isp.sites["merit"])
    assert coordination["victims"] > 0

    print()
    print(render_table5("Merit", merit_rows))
    print()
    print(render_table5("CSU", csu_rows))
    print(f"coordination: {coordination}")
