"""Discrete-event simulation engine."""

from repro.sim.engine import Event, EventEngine
from repro.sim.events import (
    AttackPulse,
    ClientPoll,
    ProbeSent,
    ScanSweep,
)

__all__ = [
    "Event",
    "EventEngine",
    "AttackPulse",
    "ClientPoll",
    "ProbeSent",
    "ScanSweep",
]
