"""Local (regional-ISP) analyses (§7): Tables 5-6, Figures 13, 15, 16, and
the TTL forensics separating scanners from attack spoofers."""

from collections import Counter
from dataclasses import dataclass

__all__ = [
    "top_amplifier_table",
    "top_victim_table",
    "TtlForensics",
    "ttl_forensics",
    "common_scanner_timeline",
    "coordination_report",
]


def top_amplifier_table(site, geo=None, n=5):
    """Table 5 rows: (amplifier ip, BAF, unique victims, GB sent)."""
    rows = []
    for forensics in site.top_amplifiers(n):
        rows.append(
            {
                "ip": forensics.ip,
                "baf": forensics.baf,
                "unique_victims": len(forensics.victims),
                "gb_sent": forensics.gb_sent,
            }
        )
    return rows


def top_victim_table(site, table, geo, n=5):
    """Table 6 rows: (victim ip, ASN, country, BAF, amplifiers, duration
    hours, GB received)."""
    rows = []
    for forensics in site.top_victims(n):
        rows.append(
            {
                "ip": forensics.ip,
                "asn": forensics.asn,
                "country": geo.country_of(forensics.ip) or forensics.country,
                "baf": forensics.baf,
                "amplifiers": len(forensics.amplifiers),
                "duration_hours": forensics.duration_hours,
                "gb": forensics.gb,
            }
        )
    return rows


@dataclass(frozen=True)
class TtlForensics:
    """§7.2: mode TTLs of scanning vs spoofed attack traffic at a site."""

    scan_ttl_mode: int
    attack_ttl_mode: int

    @property
    def scanners_look_linux(self):
        """Initial TTL 64 observed in the 34..64 range."""
        return 34 <= self.scan_ttl_mode <= 64

    @property
    def attackers_look_windows(self):
        """Initial TTL 128 observed in the 98..128 range."""
        return 98 <= self.attack_ttl_mode <= 128


def ttl_forensics(sweeps, attacks, site_asns):
    """Compute the TTL modes from sweeps (any — scanning is Internet-wide)
    and from attacks whose amplifiers sit inside the site."""
    scan_ttls = Counter(s.ttl for s in sweeps)
    attack_ttls = Counter()
    for attack in attacks:
        if any(h.asn in site_asns for h in attack.amplifiers):
            attack_ttls[attack.spoofer_ttl] += 1
    if not scan_ttls or not attack_ttls:
        raise ValueError("need both scanning and local attack traffic")
    return TtlForensics(
        scan_ttl_mode=scan_ttls.most_common(1)[0][0],
        attack_ttl_mode=attack_ttls.most_common(1)[0][0],
    )


def common_scanner_timeline(isp, a="merit", b="csu"):
    """Figure 16: {day: count of scanners detected at both sites}."""
    return {day: len(ips) for day, ips in isp.common_scanners(a, b).items()}


def coordination_report(site):
    """§7.1's coordination evidence: how many victims were hit by several
    of the site's amplifiers (attack lists are reused across targets)."""
    multi_amp_victims = sum(
        1 for v in site.victim_forensics.values() if len(v.amplifiers) >= 3
    )
    total = len(site.victim_forensics)
    return {
        "victims": total,
        "victims_with_3plus_local_amplifiers": multi_amp_victims,
        "fraction": multi_amp_victims / total if total else 0.0,
    }
