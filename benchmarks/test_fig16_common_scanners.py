"""Figure 16 and §7.2: common Merit/CSU scanners, plus TTL forensics.

Paper: only a trickle of scanner IPs (singles per day) is seen at both
sites, and most of those are research scanners — malicious scanning is too
slow/distributed to synchronize across two vantage points.  TTLs separate
the actors: scanning traffic modes at TTL ≈54 (Linux), spoofed attack
traffic at ≈109 (Windows botnets).
"""

import numpy as np

from repro.analysis import common_scanner_timeline, ttl_forensics


def test_fig16_common_scanners(benchmark, world):
    timeline = benchmark(common_scanner_timeline, world.isp)

    assert timeline  # some common scanners exist
    counts = list(timeline.values())
    # A trickle per day, not a flood.
    assert np.median(counts) <= 25
    # Research scanners account for a recurring share of the overlap.
    research_ips = {s.scanner_ip for s in world.sweeps if s.kind == "research"}
    common = world.isp.common_scanners("merit", "csu")
    research_days = sum(1 for ips in common.values() if ips & research_ips)
    assert research_days >= len(common) / 3

    forensics = ttl_forensics(world.sweeps, world.attacks, world.isp.sites["csu"].spec.asns)
    assert forensics.scanners_look_linux  # paper: mode TTL 54
    assert forensics.attackers_look_windows  # paper: mode TTL 109

    print(
        f"\nFig16: {len(timeline)} days with common scanners, median {np.median(counts):.0f}/day; "
        f"TTL modes scan={forensics.scan_ttl_mode} attack={forensics.attack_ttl_mode}"
    )
