"""Amplifier-population churn (§3.1).

The paper: fifteen weekly scans saw 2,166,097 unique amplifier IPs; the
first sample held only ~60% of them; about half of all unique IPs appeared
in exactly one weekly scan (rapid remediation plus DHCP churn).
"""

from collections import Counter
from dataclasses import dataclass

import numpy as np

__all__ = ["ChurnReport", "churn_report"]


@dataclass(frozen=True)
class ChurnReport:
    total_unique: int
    first_sample_share: float
    seen_once_fraction: float
    new_per_sample: tuple

    @property
    def discovers_new_every_sample(self):
        return all(n > 0 for n in self.new_per_sample[1:])


def _churn_report_columnar(parsed_samples):
    """Churn over the amplifier columns without building per-sample sets.

    One lexsort over (ip, sample) replaces the cumulative-set walk: the
    first row of each ip run is its discovery sample, and the run length
    is its seen-count — both identical to the scalar loop's Counter/set
    accounting.
    """
    per_sample = []
    for parsed in parsed_samples:
        cols = parsed.columns
        lo, hi = cols.sample_table_span(parsed.sample_index)
        per_sample.append(np.unique(cols.table_native("amplifier")[lo:hi]))
    sample_of = np.repeat(
        np.arange(len(per_sample)), [len(u) for u in per_sample]
    )
    ips = np.concatenate(per_sample) if per_sample else np.empty(0, dtype=np.int64)
    order = np.lexsort((sample_of, ips))
    ips_sorted = ips[order]
    first_mask = np.ones(len(ips_sorted), dtype=bool)
    first_mask[1:] = ips_sorted[1:] != ips_sorted[:-1]
    new_per_sample = np.bincount(
        sample_of[order][first_mask], minlength=len(per_sample)
    )
    total = int(first_mask.sum())
    if total == 0:
        return ChurnReport(0, 0.0, 0.0, tuple(int(n) for n in new_per_sample))
    run_starts = np.flatnonzero(first_mask)
    run_lengths = np.diff(np.append(run_starts, len(ips_sorted)))
    return ChurnReport(
        total_unique=total,
        first_sample_share=len(per_sample[0]) / total,
        seen_once_fraction=int((run_lengths == 1).sum()) / total,
        new_per_sample=tuple(int(n) for n in new_per_sample),
    )


def churn_report(parsed_samples):
    """Churn statistics over the weekly amplifier-IP sets."""
    from repro.analysis.event_columns import ColumnarSample

    parsed_samples = list(parsed_samples)
    if parsed_samples and all(isinstance(p, ColumnarSample) for p in parsed_samples):
        return _churn_report_columnar(parsed_samples)
    seen_counts = Counter()
    cumulative = set()
    new_per_sample = []
    first_sample_ips = None
    for parsed in parsed_samples:
        ips = parsed.amplifier_ips()
        if first_sample_ips is None:
            first_sample_ips = set(ips)
        new = len(ips - cumulative)
        new_per_sample.append(new)
        cumulative |= ips
        for ip in ips:
            seen_counts[ip] += 1
    total = len(cumulative)
    if total == 0:
        return ChurnReport(0, 0.0, 0.0, tuple(new_per_sample))
    once = sum(1 for n in seen_counts.values() if n == 1)
    return ChurnReport(
        total_unique=total,
        first_sample_share=len(first_sample_ips) / total,
        seen_once_fraction=once / total,
        new_per_sample=tuple(new_per_sample),
    )
