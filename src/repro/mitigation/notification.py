"""Operator-notification campaigns (§6.4).

The paper credits part of the monlist pool's exceptional remediation speed
to "an aggressive notification effort ... conducted via CERTs and direct
operator contact" (Kührer et al.), while noting causality could not be
established.  This module makes that question experimentable: a
:class:`NotificationCampaign` is a set of dated waves, each reaching a
fraction of still-vulnerable operators and multiplying their subsequent
remediation hazard.  Building a remediation model with and without the
campaign yields the counterfactual the paper wished for.
"""

import math
from dataclasses import dataclass

from repro.population.remediation import RemediationModel, SurvivalCurve, calibrated_monlist_curve
from repro.util.simtime import WEEK, date_to_sim

__all__ = ["NotificationWave", "NotificationCampaign", "notified_remediation_model"]


@dataclass(frozen=True)
class NotificationWave:
    """One mailing: when it went out, whom it reached, how hard it pushed."""

    t: float
    reach: float  # fraction of vulnerable operators contacted
    hazard_multiplier: float  # hazard boost for reached operators

    def __post_init__(self):
        if not 0 <= self.reach <= 1:
            raise ValueError("reach must be in [0, 1]")
        if self.hazard_multiplier < 1:
            raise ValueError("a notification cannot slow remediation")


@dataclass(frozen=True)
class NotificationCampaign:
    """A sequence of notification waves."""

    waves: tuple

    def __post_init__(self):
        times = [w.t for w in self.waves]
        if times != sorted(times):
            raise ValueError("waves must be chronological")

    @classmethod
    def kuhrer_style(cls):
        """The campaign shape reported by Kührer et al.: CERT advisories in
        mid-January followed by direct operator contact in February."""
        return cls(
            waves=(
                NotificationWave(t=date_to_sim(2014, 1, 13), reach=0.55, hazard_multiplier=2.2),
                NotificationWave(t=date_to_sim(2014, 2, 10), reach=0.35, hazard_multiplier=1.8),
            )
        )

    def average_boost_after(self, t):
        """Expected hazard multiplier over operators, for waves sent by ``t``."""
        boost = 1.0
        for wave in self.waves:
            if wave.t <= t:
                boost *= 1.0 + wave.reach * (wave.hazard_multiplier - 1.0)
        return boost


def _dampen_curve(curve, campaign, n_points=64):
    """The counterfactual baseline: divide out the campaign's boost.

    The calibrated curve matches the *observed* (notified) world; removing
    the campaign means hazard accumulates more slowly after each wave, so
    survival stays higher.  We rebuild the curve by integrating the damped
    hazard on a weekly grid.
    """
    start, end = curve.start, curve.end
    step = (end - start) / n_points
    times = [start + i * step for i in range(n_points + 1)]
    adjusted = [(times[0], 1.0)]
    log_s = 0.0
    for t0, t1 in zip(times, times[1:]):
        s0 = curve.value_at(t0)
        s1 = curve.value_at(t1)
        hazard = -(math.log(s1) - math.log(s0))  # observed hazard over [t0, t1]
        boost = campaign.average_boost_after(t1)
        log_s -= hazard / boost
        adjusted.append((t1, max(1e-9, math.exp(log_s))))
    # Enforce monotone non-increase (guards float jitter).
    floor = 1.0
    monotone = []
    for t, v in adjusted:
        floor = min(floor, v)
        monotone.append((t, floor))
    return SurvivalCurve(monotone)


def notified_remediation_model(campaign=None, with_campaign=True):
    """A remediation model with or without the notification campaign.

    ``with_campaign=True`` returns the calibrated (observed-world) model;
    ``with_campaign=False`` returns the counterfactual where the campaign
    never happened — remediation driven only by self-interest and publicity.
    """
    campaign = campaign or NotificationCampaign.kuhrer_style()
    base = calibrated_monlist_curve()
    if with_campaign:
        return RemediationModel(curve=base)
    return RemediationModel(curve=_dampen_curve(base, campaign))
