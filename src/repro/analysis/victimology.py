"""Victim identification and attack accounting from monlist tables (§4).

The classification filter, verbatim from §4.2:

* mode < 6 — **non-victim** (normal NTP operation provides no
  amplification, so attackers have no reason to spoof it);
* mode 6 or 7 with fewer than 3 packets, or an average inter-arrival above
  3600 s (at most ~one packet/hour) — **scanner / low-volume victim**;
* otherwise — **victim** of that amplifier.

Per victim we extract the packet count, inter-arrival, last-seen, a
duration estimate (count x inter-arrival), and a derived start time; the
aggregations reproduce Table 1 (right half), Table 4, and Figures 5-7.
"""

import math
from collections import Counter, defaultdict
from dataclasses import dataclass, field

import numpy as np

from repro.util.simtime import HOUR
from repro.util.stats import percentile

__all__ = [
    "CLASS_NON_VICTIM",
    "CLASS_SCANNER",
    "CLASS_VICTIM",
    "classify_entry",
    "VictimObservation",
    "SampleVictimology",
    "analyze_sample",
    "VictimologyReport",
    "analyze_dataset",
]

CLASS_NON_VICTIM = "non-victim"
CLASS_SCANNER = "scanner/low-volume"
CLASS_VICTIM = "victim"

_MIN_PACKETS = 3
_MAX_INTERARRIVAL = 3600.0


def classify_entry(entry):
    """Apply the paper's three-way filter to one monlist entry."""
    if entry.mode < 6:
        return CLASS_NON_VICTIM
    if entry.count < _MIN_PACKETS:
        return CLASS_SCANNER
    if entry.avg_interval > _MAX_INTERARRIVAL:
        return CLASS_SCANNER
    return CLASS_VICTIM


@dataclass(frozen=True)
class VictimObservation:
    """One (amplifier, victim) pair seen in one weekly sample."""

    sample_t: float
    amplifier_ip: int
    victim_ip: int
    port: int
    mode: int
    packets: int
    avg_interval: float
    last_seen_ago: int

    @property
    def duration(self):
        """§4.2's attack-duration estimate: count x inter-arrival."""
        return self.packets * self.avg_interval

    @property
    def end_time(self):
        return self.sample_t - self.last_seen_ago

    @property
    def start_time(self):
        return self.end_time - self.duration


@dataclass
class SampleVictimology:
    """Classification results for one weekly sample."""

    t: float
    observations: list = field(default_factory=list)
    n_non_victim: int = 0
    n_scanner: int = 0
    max_last_seen: list = field(default_factory=list)

    @property
    def n_victim_pairs(self):
        return len(self.observations)

    def victim_ips(self):
        return {o.victim_ip for o in self.observations}

    def packets_per_victim(self):
        """{victim ip: total packets received across amplifiers}."""
        out = defaultdict(int)
        for obs in self.observations:
            out[obs.victim_ip] += obs.packets
        return dict(out)

    def median_view_window_hours(self):
        """Median (over tables) largest last-seen, in hours (§4.2: ~44 h)."""
        if not self.max_last_seen:
            return 0.0
        return percentile(self.max_last_seen, 50) / HOUR


def analyze_sample(parsed_sample, onp_ip=None):
    """Classify every entry of every reconstructed table in a sample.

    ``onp_ip``: the prober's own address is excluded from classification
    outright (it is an artifact of measurement, though the filter would
    bin it as a scanner anyway).
    """
    result = SampleVictimology(t=parsed_sample.t)
    for table in parsed_sample.tables:
        largest = 0
        for entry in table.entries:
            largest = max(largest, entry.last_int)
            if onp_ip is not None and entry.addr == onp_ip:
                continue
            kind = classify_entry(entry)
            if kind == CLASS_NON_VICTIM:
                result.n_non_victim += 1
            elif kind == CLASS_SCANNER:
                result.n_scanner += 1
            else:
                result.observations.append(
                    VictimObservation(
                        sample_t=parsed_sample.t,
                        amplifier_ip=table.amplifier_ip,
                        victim_ip=entry.addr,
                        port=entry.port,
                        mode=entry.mode,
                        packets=entry.count,
                        avg_interval=entry.avg_interval,
                        last_seen_ago=entry.last_int,
                    )
                )
        if table.entries:
            result.max_last_seen.append(largest)
    return result


@dataclass
class VictimologyReport:
    """Dataset-wide victimology: the paper's §4.3 aggregates."""

    samples: list = field(default_factory=list)

    def all_victim_ips(self):
        out = set()
        for sample in self.samples:
            out |= sample.victim_ips()
        return out

    def total_attack_packets(self):
        """§4.3.3's headline: ~2.92 trillion packets at full scale."""
        return sum(o.packets for s in self.samples for o in s.observations)

    def total_attack_bytes(self, median_packet_bytes=420):
        """Packets x the 420-byte median on-wire response packet."""
        return self.total_attack_packets() * median_packet_bytes

    def victim_packet_stats(self):
        """Per-sample (mean, median, 95th) of per-victim packets (Fig. 6)."""
        rows = []
        for sample in self.samples:
            per_victim = list(sample.packets_per_victim().values())
            if not per_victim:
                rows.append((sample.t, 0.0, 0.0, 0.0))
                continue
            rows.append(
                (
                    sample.t,
                    sum(per_victim) / len(per_victim),
                    percentile(per_victim, 50),
                    percentile(per_victim, 95),
                )
            )
        return rows

    def port_table(self, top=20):
        """Table 4: top attacked ports by fraction of amplifier/victim
        pairs."""
        counts = Counter()
        for sample in self.samples:
            for obs in sample.observations:
                counts[obs.port] += 1
        total = sum(counts.values())
        if total == 0:
            return []
        return [(port, n / total) for port, n in counts.most_common(top)]

    def attacks_per_hour(self):
        """Figure 7: attack counts binned by derived (median) start hour.

        Each victim in each weekly sample counts as one attack; its start
        time is the median of the per-amplifier derived start times.
        """
        per_attack_starts = defaultdict(list)
        for sample in self.samples:
            for obs in sample.observations:
                per_attack_starts[(sample.t, obs.victim_ip)].append(obs.start_time)
        hours = Counter()
        for starts in per_attack_starts.values():
            starts.sort()
            median_start = starts[len(starts) // 2]
            hours[int(median_start // HOUR)] += 1
        return dict(sorted(hours.items()))

    def durations(self, since=None):
        """Per-attack duration estimates (median across amplifiers)."""
        per_attack = defaultdict(list)
        for sample in self.samples:
            if since is not None and sample.t < since:
                continue
            for obs in sample.observations:
                per_attack[(sample.t, obs.victim_ip)].append(obs.duration)
        out = []
        for values in per_attack.values():
            values.sort()
            out.append(values[len(values) // 2])
        return out

    def amplifiers_per_victim(self):
        """Per-sample median amplifiers seen attacking each victim (§6.3)."""
        rows = []
        for sample in self.samples:
            per_victim = Counter()
            for obs in sample.observations:
                per_victim[obs.victim_ip] += 1
            if per_victim:
                rows.append((sample.t, percentile(list(per_victim.values()), 50)))
            else:
                rows.append((sample.t, 0.0))
        return rows

    def undersampling_factor(self):
        """§4.2: hours-per-week over the median view window (≈3.8x).

        The median is pooled over every table in every sample ("across all
        ONP weekly samples, the median largest last seen time...").
        """
        pooled = [w for s in self.samples for w in s.max_last_seen]
        if not pooled:
            return float("nan")
        median_window = percentile(pooled, 50) / HOUR
        if median_window <= 0:
            return float("inf")
        return 168.0 / median_window


class ColumnarSampleVictimology:
    """Array-backed :class:`SampleVictimology` for one columnar sample.

    Holds the victim-classified entry columns (entry order preserved);
    ``observations`` materializes :class:`VictimObservation` objects only
    if a consumer still iterates them — the report-level aggregations
    below never do.
    """

    __slots__ = (
        "t",
        "n_non_victim",
        "n_scanner",
        "max_last_seen",
        "_victim",
        "_amplifier",
        "_port",
        "_mode",
        "_packets",
        "_avg",
        "_last",
        "_obs",
        "_ips",
    )

    def __init__(self, t, n_non_victim, n_scanner, max_last_seen, victim, amplifier, port, mode, packets, avg, last):
        self.t = t
        self.n_non_victim = n_non_victim
        self.n_scanner = n_scanner
        self.max_last_seen = max_last_seen
        self._victim = victim
        self._amplifier = amplifier
        self._port = port
        self._mode = mode
        self._packets = packets
        self._avg = avg
        self._last = last
        self._obs = None
        self._ips = None

    @property
    def n_victim_pairs(self):
        return len(self._victim)

    @property
    def observations(self):
        if self._obs is None:
            t = self.t
            amp = self._amplifier.tolist()
            vic = self._victim.tolist()
            port = self._port.tolist()
            mode = self._mode.tolist()
            packets = self._packets.tolist()
            avg = self._avg.tolist()
            last = self._last.tolist()
            self._obs = [
                VictimObservation(
                    sample_t=t,
                    amplifier_ip=amp[k],
                    victim_ip=vic[k],
                    port=port[k],
                    mode=mode[k],
                    packets=packets[k],
                    avg_interval=avg[k],
                    last_seen_ago=last[k],
                )
                for k in range(len(vic))
            ]
        return self._obs

    def victim_ips(self):
        if self._ips is None:
            self._ips = set(self._victim.tolist())
        return self._ips

    def packets_per_victim(self):
        """{victim ip: total packets received across amplifiers}."""
        uniq, first_idx, inv = np.unique(self._victim, return_index=True, return_inverse=True)
        sums = np.bincount(inv, weights=self._packets.astype(np.float64))
        order = np.argsort(first_idx, kind="stable")
        keys = uniq[order].tolist()
        values = sums[order].tolist()
        return {k: int(v) for k, v in zip(keys, values)}

    def start_times(self):
        """Derived per-observation start times (vectorized, entry order)."""
        end = self.t - self._last.astype(np.float64)
        return end - self._packets.astype(np.float64) * self._avg

    def median_view_window_hours(self):
        """Median (over tables) largest last-seen, in hours (§4.2: ~44 h)."""
        if not self.max_last_seen:
            return 0.0
        return percentile(self.max_last_seen, 50) / HOUR


def _analyze_columnar_sample(parsed, onp_ip=None):
    """The array form of :func:`analyze_sample` for one columnar sample.

    Float arithmetic replicates the scalar path operation-for-operation
    (all operands are exact in float64), so classification masks and every
    derived quantity are bit-identical to the object pipeline.
    """
    cols = parsed.columns
    index = parsed.sample_index
    e_lo, e_hi = cols.sample_entry_span(index)
    t_lo, t_hi = cols.sample_table_span(index)
    t = parsed.t

    last = cols.entry_native("last")[e_lo:e_hi]
    first = cols.entry_native("first")[e_lo:e_hi]
    count = cols.entry_native("count")[e_lo:e_hi]
    addr = cols.entry_native("addr")[e_lo:e_hi]
    port = cols.entry_native("port")[e_lo:e_hi]
    mode = cols.entry_native("mode")[e_lo:e_hi]

    counts_tbl = cols.table_native("entry_count")[t_lo:t_hi]
    starts_tbl = cols.table_native("entry_start")[t_lo:t_hi]
    nonzero = counts_tbl > 0
    if nonzero.any():
        seg_starts = starts_tbl[nonzero] - e_lo
        max_last_seen = np.maximum.reduceat(last, seg_starts).tolist()
    else:
        max_last_seen = []

    keep = np.ones(len(addr), dtype=bool) if onp_ip is None else addr != onp_ip
    non_victim = keep & (mode < 6)
    avg = np.zeros(len(count), dtype=np.float64)
    multi = count > 1
    avg[multi] = (first[multi] - last[multi]).astype(np.float64) / (
        count[multi].astype(np.float64) - 1.0
    )
    victim = keep & (mode >= 6) & (count >= _MIN_PACKETS) & (avg <= _MAX_INTERARRIVAL)
    n_non_victim = int(non_victim.sum())
    n_scanner = int(keep.sum()) - n_non_victim - int(victim.sum())

    amp_entry = np.repeat(cols.table_native("amplifier")[t_lo:t_hi], counts_tbl)
    return ColumnarSampleVictimology(
        t=t,
        n_non_victim=n_non_victim,
        n_scanner=n_scanner,
        max_last_seen=max_last_seen,
        victim=addr[victim],
        amplifier=amp_entry[victim],
        port=port[victim],
        mode=mode[victim],
        packets=count[victim],
        avg=avg[victim],
        last=last[victim],
    )


class ColumnarVictimologyReport(VictimologyReport):
    """Array-kernel overrides of the hot §4.3 aggregations.

    Every override reproduces the scalar method's exact output — the
    integer sums are exact in either representation, percentiles see the
    same multisets, and tie-breaking replicates ``Counter.most_common``'s
    insertion-order rule via first-occurrence indices.
    """

    def total_attack_packets(self):
        return sum(int(s._packets.sum()) for s in self.samples)

    def victim_packet_stats(self):
        rows = []
        for sample in self.samples:
            if not len(sample._victim):
                rows.append((sample.t, 0.0, 0.0, 0.0))
                continue
            uniq, inv = np.unique(sample._victim, return_inverse=True)
            sums = np.bincount(inv, weights=sample._packets.astype(np.float64))
            total = int(sample._packets.sum())
            rows.append(
                (
                    sample.t,
                    total / len(uniq),
                    percentile(sums, 50),
                    percentile(sums, 95),
                )
            )
        return rows

    def port_table(self, top=20):
        parts = [s._port for s in self.samples if len(s._port)]
        if not parts:
            return []
        ports = np.concatenate(parts)
        uniq, first_idx, counts = np.unique(ports, return_index=True, return_counts=True)
        # -counts primary, first occurrence secondary: Counter.most_common's
        # ordering (heapq.nlargest is stable over insertion order).
        order = np.lexsort((first_idx, -counts))
        total = len(ports)
        return [(int(uniq[k]), int(counts[k]) / total) for k in order[:top]]

    def attacks_per_hour(self):
        hours = {}
        for sample in self.samples:
            if not len(sample._victim):
                continue
            starts = sample.start_times()
            order = np.lexsort((starts, sample._victim))
            starts_sorted = starts[order]
            _, group_start, group_count = np.unique(
                sample._victim[order], return_index=True, return_counts=True
            )
            medians = starts_sorted[group_start + group_count // 2]
            bins = np.floor_divide(medians, HOUR).astype(np.int64)
            uniq_bins, bin_counts = np.unique(bins, return_counts=True)
            for h, c in zip(uniq_bins.tolist(), bin_counts.tolist()):
                hours[h] = hours.get(h, 0) + c
        return dict(sorted(hours.items()))

    def amplifiers_per_victim(self):
        rows = []
        for sample in self.samples:
            if not len(sample._victim):
                rows.append((sample.t, 0.0))
                continue
            _, counts = np.unique(sample._victim, return_counts=True)
            rows.append((sample.t, percentile(counts, 50)))
        return rows


def analyze_dataset(parsed_samples, onp_ip=None):
    """Victimology over all weekly samples.

    Columnar corpora (every sample a
    :class:`~repro.analysis.event_columns.ColumnarSample`) run through the
    array kernels; anything else takes the original per-entry loop.  The
    two paths produce identical reports.
    """
    from repro.analysis.event_columns import ColumnarSample

    parsed_samples = list(parsed_samples)
    if parsed_samples and all(isinstance(p, ColumnarSample) for p in parsed_samples):
        report = ColumnarVictimologyReport()
        for parsed in parsed_samples:
            report.samples.append(_analyze_columnar_sample(parsed, onp_ip=onp_ip))
        return report
    report = VictimologyReport()
    for parsed in parsed_samples:
        report.samples.append(analyze_sample(parsed, onp_ip=onp_ip))
    return report
