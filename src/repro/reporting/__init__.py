"""Text rendering of the paper's tables and figures."""

from repro.reporting.tables import (
    render_monlist_table,
    render_series,
    render_table,
    render_table1,
    render_table2,
    render_table4,
    render_table5,
    render_table6,
)

__all__ = [
    "render_monlist_table",
    "render_series",
    "render_table",
    "render_table1",
    "render_table2",
    "render_table4",
    "render_table5",
    "render_table6",
]
