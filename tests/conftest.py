"""Shared fixtures: one small end-to-end world reused across test modules."""

import pytest

from repro.scenario import PaperWorld

#: Small but structurally complete: ~1.4K initial amplifiers, ~1K victims.
WORLD_SEED = 42
WORLD_SCALE = 0.001


@pytest.fixture(scope="session")
def world():
    return PaperWorld.build(seed=WORLD_SEED, scale=WORLD_SCALE)


@pytest.fixture(scope="session")
def parsed_monlist(world):
    from repro.analysis import parse_sample

    return [parse_sample(s) for s in world.onp.monlist_samples]


@pytest.fixture(scope="session")
def victim_report(world, parsed_monlist):
    from repro.analysis import analyze_dataset
    from repro.attack import ONP_PROBER_IP

    return analyze_dataset(parsed_monlist, onp_ip=ONP_PROBER_IP)
