"""Tests for the ntpdc-style diagnostic client."""

import pytest

from repro.ntp import IMPL_XNTPD, IMPL_XNTPD_OLD, NtpServer, ServerConfig
from repro.tools import ntpdc_monlist, ntpdc_sysinfo


def make_server(**config):
    server = NtpServer(ip=0x0A0B0C0D, config=ServerConfig(**config))
    for i in range(8):
        server.record_client(2000 + i, 123, 3, 4, now=float(i))
    return server


def test_monlist_modern_server_first_try():
    server = make_server(implementations=frozenset({IMPL_XNTPD}))
    result = ntpdc_monlist(server, client_ip=999, now=100.0)
    assert result
    assert result.attempts == 1
    assert result.implementation == IMPL_XNTPD
    assert len(result.entries) == 9  # 8 clients + the query itself
    # MRU order: the query tops the list.
    assert result.entries[0].addr == 999


def test_monlist_falls_back_to_legacy():
    server = make_server(implementations=frozenset({IMPL_XNTPD_OLD}))
    result = ntpdc_monlist(server, client_ip=999, now=100.0)
    assert result
    assert result.attempts == 2
    assert result.implementation == IMPL_XNTPD_OLD
    assert len(result.entries) >= 9


def test_onp_mode_misses_legacy_servers():
    """fallback=False reproduces the ONP scans' acknowledged undercount."""
    server = make_server(implementations=frozenset({IMPL_XNTPD_OLD}))
    result = ntpdc_monlist(server, client_ip=999, now=100.0, fallback=False)
    assert not result
    assert result.attempts == 1
    assert result.entries == ()


def test_monlist_disabled_server_fails_both():
    server = make_server(monlist_enabled=False)
    result = ntpdc_monlist(server, client_ip=999, now=100.0)
    assert not result
    assert result.attempts == 2


def test_monlist_multi_packet_reassembly():
    server = NtpServer(ip=1, config=ServerConfig())
    for i in range(40):
        server.record_client(3000 + i, 123, 3, 4, now=float(i))
    result = ntpdc_monlist(server, client_ip=999, now=1000.0)
    assert result.n_packets >= 7  # 41 entries at 6 per packet
    last_ints = [e.last_int for e in result.entries]
    assert last_ints == sorted(last_ints)  # MRU order across packets


def test_monlist_refuses_mega_floods():
    server = make_server(loop_factor=1_000_000)
    with pytest.raises(ValueError):
        ntpdc_monlist(server, client_ip=999, now=100.0, max_packets=100)


def test_sysinfo():
    server = make_server(stratum=4, system="FreeBSD/9.1", compile_year=2009)
    variables = ntpdc_sysinfo(server, client_ip=999, now=100.0)
    assert variables["system"] == "FreeBSD/9.1"
    assert variables["stratum"] == "4"
    assert "2009" in variables["version"]


def test_sysinfo_disabled():
    server = make_server(responds_version=False)
    assert ntpdc_sysinfo(server, client_ip=999, now=100.0) is None


def test_counts_accumulate_across_runs():
    server = make_server()
    first = ntpdc_monlist(server, client_ip=999, now=100.0)
    second = ntpdc_monlist(server, client_ip=999, now=200.0)
    me_first = next(e for e in first.entries if e.addr == 999)
    me_second = next(e for e in second.entries if e.addr == 999)
    assert me_second.count == me_first.count + 1
