"""Sharded-build equivalence and fork-pool gating (v2.0.0 columnar core).

The build pool must be invisible: a world built with any ``--jobs`` is
byte-identical to the serial build, because both paths run the same
fixed-block algorithm in the same block order with the same derived RNG
child streams.  These tests pin that contract at bench scale across
seeds and shard counts, the gating decisions that keep the pool off
one-CPU machines, the partitioner's invariants, and the BENCH_build
record schema (memory + shard provenance) the CI gates read.
"""

import hashlib
import json

import numpy as np
import pytest
from hypothesis import given, settings

import repro.util.pool as pool_mod
from repro.population.columns import HOST_BLOCKS, PulseColumns, balanced_split
from repro.scenario import PaperWorld, WorldParams
from repro.scenario.cache import build_world_cached
from repro.util.pool import ShardRunner, fork_pool_gate

from tests.strategies import shard_partitions

BENCH_SEEDS = (7, 2014)
BENCH_SCALE = 0.0005


# -- the partitioner -----------------------------------------------------------


@given(shard_partitions)
@settings(max_examples=200)
def test_balanced_split_invariants(partition):
    n, blocks = partition
    parts = balanced_split(n, blocks)
    assert len(parts) == blocks
    assert sum(parts) == n
    assert max(parts) - min(parts) <= 1
    # Earlier blocks absorb the remainder, so sizes never increase.
    assert all(a >= b for a, b in zip(parts, parts[1:]))


def test_host_blocks_is_fixed():
    """Block count must never derive from --jobs: the per-block RNG
    streams (and so the world bytes) depend on these boundaries."""
    assert HOST_BLOCKS == 16


# -- pool gating ---------------------------------------------------------------


def test_gate_reasons(monkeypatch):
    monkeypatch.setattr(pool_mod, "available_cpus", lambda: 8)
    assert fork_pool_gate(1, 10) == (False, "jobs <= 1: serial path requested")
    assert fork_pool_gate(4, 1) == (False, "single task: nothing to parallelize")
    assert fork_pool_gate(4, 2, min_tasks=8) == (False, "2 tasks < 8: not worth forking")
    engaged, reason = fork_pool_gate(4, 16)
    assert engaged and reason is None


def test_gate_reason_carries_phase_name(monkeypatch):
    """Every phase's veto reads unambiguously in a multi-phase record."""
    monkeypatch.setattr(pool_mod, "available_cpus", lambda: 8)
    assert fork_pool_gate(1, 10, phase="onp") == (
        False,
        "onp: jobs <= 1: serial path requested",
    )
    assert fork_pool_gate(4, 1, phase="campaign") == (
        False,
        "campaign: single task: nothing to parallelize",
    )
    engaged, reason = fork_pool_gate(4, 16, phase="onp")
    assert engaged and reason is None


def test_gate_refuses_single_cpu(monkeypatch):
    monkeypatch.setattr(pool_mod, "available_cpus", lambda: 1)
    assert fork_pool_gate(8, 16) == (
        False,
        "single CPU available: fork pool would add overhead",
    )


def test_shard_runner_serial_and_pooled_merge_in_task_order(monkeypatch):
    def fn(ctx, i):
        return (ctx, i * i)

    serial = ShardRunner(1).map("t", fn, 3, 8)
    assert serial == [(3, i * i) for i in range(8)]

    monkeypatch.setattr(pool_mod, "available_cpus", lambda: 8)
    runner = ShardRunner(4)
    pooled = runner.map("t", fn, 3, 8)
    assert pooled == serial
    stat = runner.stats["t"]
    assert stat["engaged"] and stat["workers"] == 4 and stat["tasks"] == 8
    assert len(stat["task_seconds"]) == 8


def test_shard_runner_propagates_worker_errors(monkeypatch):
    monkeypatch.setattr(pool_mod, "available_cpus", lambda: 8)

    def boom(ctx, i):
        if i == 5:
            raise RuntimeError("task 5 failed")
        return i

    with pytest.raises(RuntimeError, match="task 5 failed"):
        ShardRunner(4).map("t", boom, None, 8)


# -- byte-identity: sharded == serial ------------------------------------------


def _fingerprint(world):
    """SHA-256 over every serialized surface of the world core: host,
    victim, and pulse record batches plus each ONP sample's packed
    capture arrays and payload blob."""
    digest = hashlib.sha256()
    digest.update(world.summary().encode())
    digest.update(world.hosts.record_batch().tobytes())
    digest.update(world.victims.record_batch().tobytes())
    digest.update(PulseColumns.from_attacks(world.attacks).record_batch().tobytes())
    for sample in world.onp.monlist_samples + world.onp.version_samples:
        digest.update(
            repr((sample.t, sample.mode, sample.outage, sample.coverage, len(sample))).encode()
        )
        packed = sample.packed
        if packed is not None:
            for array in (
                packed.target_ips,
                packed.n_repeats,
                packed.pkt_counts,
                packed.pkt_lens,
            ):
                digest.update(np.ascontiguousarray(array).tobytes())
            digest.update(np.asarray(packed.payload).tobytes())
    return digest.hexdigest()


@pytest.fixture(scope="module")
def many_cpus():
    """Make the gate see a multi-core box so pools engage even on the
    one-CPU CI container (fork itself works there; only the gate says no)."""
    original = pool_mod.available_cpus
    pool_mod.available_cpus = lambda: 8
    yield
    pool_mod.available_cpus = original


@pytest.fixture(scope="module")
def serial_worlds():
    return {
        seed: PaperWorld.build(seed=seed, scale=BENCH_SCALE, quiet=True, jobs=1)
        for seed in BENCH_SEEDS
    }


@pytest.mark.parametrize("jobs", [2, 4, 8])
@pytest.mark.parametrize("seed", BENCH_SEEDS)
def test_sharded_build_byte_identical_to_serial(serial_worlds, many_cpus, seed, jobs):
    sharded = PaperWorld.build(seed=seed, scale=BENCH_SCALE, quiet=True, jobs=jobs)
    for phase in ("hosts", "campaign", "onp"):
        assert sharded.shard_stats[phase]["engaged"], (phase, sharded.shard_stats[phase])
    assert _fingerprint(sharded) == _fingerprint(serial_worlds[seed])


def test_sharded_build_byte_identical_under_faults(many_cpus):
    """Fault injection must also be jobs-invariant: sweep-level draws
    (outages, coverage cutoffs) happen parent-side in chronological order,
    per-capture mangling on derived per-block streams."""
    from repro.faults import resolve_fault_profile

    profile = resolve_fault_profile("paper")
    params = WorldParams(seed=7, scale=BENCH_SCALE, faults=profile)
    serial = PaperWorld.build(params=params, quiet=True, jobs=1)
    sharded = PaperWorld.build(params=params, quiet=True, jobs=4)
    assert _fingerprint(sharded) == _fingerprint(serial)


def test_sharded_artifacts_match_serial(serial_worlds, many_cpus):
    """Every rendered artifact (F1..T6) from a jobs=4 world hashes
    identically to the serial world's render."""
    from repro.verify import artifact_checksums

    sharded = PaperWorld.build(seed=7, scale=BENCH_SCALE, quiet=True, jobs=4)
    serial_sums = artifact_checksums(serial_worlds[7])
    assert len(serial_sums) >= 22  # every registered artifact, F1.. plus T1..T6
    assert artifact_checksums(sharded) == serial_sums


def test_serial_build_ignores_cpu_gate(serial_worlds):
    """jobs=1 must never consult the pool: every phase reports the
    serial-path reason regardless of how many CPUs exist."""
    stats = serial_worlds[7].shard_stats
    for phase in ("hosts", "campaign", "onp"):
        assert not stats[phase]["engaged"]
        assert stats[phase]["reason"] == f"{phase}: jobs <= 1: serial path requested"


def test_cache_hit_across_jobs(tmp_path, monkeypatch):
    """``jobs`` is not part of the cache key: a world cached by a sharded
    build answers a serial request (and vice versa) without rebuilding."""
    monkeypatch.setattr(pool_mod, "available_cpus", lambda: 8)
    params = WorldParams(seed=7, scale=0.0002)
    notes = []
    build_world_cached(params, cache_dir=str(tmp_path), jobs=4, note=notes.append)
    assert any("cached world to" in line for line in notes)
    notes.clear()
    build_world_cached(params, cache_dir=str(tmp_path), jobs=1, note=notes.append)
    assert any("loaded cached world" in line for line in notes)
    assert not any("miss" in line for line in notes)


# -- BENCH_build record schema -------------------------------------------------


def test_bench_build_record_schema(tmp_path):
    from repro.cli import main

    out = tmp_path / "bench.json"
    rc = main(
        ["bench-build", "--seed", "7", "--scale", "0.0002", "--jobs", "2",
         "--out", str(out), "--quiet"]
    )
    assert rc == 0
    record = json.loads(out.read_text())
    assert record["jobs"] == 2
    memory = record["memory"]
    assert set(memory) == {"peak_rss_mb", "self_mb", "children_mb", "spill_threshold_mb"}
    assert memory["peak_rss_mb"] >= memory["self_mb"] > 0
    for phase in ("hosts", "campaign", "onp"):
        shard = record["shards"][phase]
        assert {"engaged", "reason", "jobs", "workers", "tasks", "cpu_count"} <= set(shard)
        # Records carry per-task *summaries*, never per-task arrays
        # (thousands of entries at scale).
        seconds = shard["task_seconds"]
        assert set(seconds) == {"count", "p50", "p95", "max", "sum"}
        assert seconds["count"] == shard["tasks"]
        assert seconds["p50"] <= seconds["p95"] <= seconds["max"] <= seconds["sum"]
        assert isinstance(shard["task_source"], dict)
        assert sum(shard["task_source"].values()) == shard["tasks"]


def test_bench_build_scale_sweep_and_rss_tripwire(tmp_path):
    from repro.cli import main

    out = tmp_path / "sweep.json"
    rc = main(
        ["bench-build", "--seed", "7", "--scale", "0.0002,0.0003", "--jobs", "1",
         "--max-rss-mb", "1", "--out", str(out), "--quiet"]
    )
    assert rc == 1  # no build fits in 1 MB: the tripwire must fire
    record = json.loads(out.read_text())
    assert record["scales"] == [0.0002, 0.0003]
    assert "scale" not in record
    assert [run["scale"] for run in record["runs"]] == [0.0002, 0.0003]
    for run in record["runs"]:
        assert {"hosts", "total_seconds", "phases", "memory", "shards"} <= set(run)
