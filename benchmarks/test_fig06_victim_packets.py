"""Figure 6: total packets received per victim, per weekly sample.

Paper: medians are small (hundreds to ~thousands of packets) while means
run to millions — a few heavily-attacked victims dominate; the 95th
percentile drops by roughly an order of magnitude after mid-February
(remediation's effect), and §4.3.3 totals ≈2.92 trillion packets (a stated
lower bound) ≈1.2 PB at the 420-byte median response packet.
"""

from repro.util import date_to_sim, format_sim


def test_fig06_victim_packets(benchmark, victim_report, world):
    rows = benchmark(victim_report.victim_packet_stats)

    assert len(rows) == 15
    # Mean far above median in every populated sample.
    for t, mean, median, p95 in rows:
        if median > 0:
            assert mean > 3 * median
    # The 95th percentile declines from the February peak into April
    # (paper: two orders of magnitude; the simulated lens declines less
    # because the persistent mega amplifiers' uplink-capped counts don't
    # shrink with the pool — see EXPERIMENTS.md).
    p95s = {format_sim(t): p95 for t, _, _, p95 in rows}
    feb_peak = max(v for d, v in p95s.items() if d < "2014-03-01")
    april = [v for d, v in p95s.items() if d >= "2014-04-01"]
    assert min(april) < feb_peak
    assert april[-1] <= max(p95s.values())

    # Aggregate totals: at least the paper's lower bound when rescaled.
    total = victim_report.total_attack_packets()
    full_equiv = total / world.params.scale
    assert full_equiv > 2.9e12
    petabytes = victim_report.total_attack_bytes() / 1e15 / world.params.scale
    assert petabytes > 1.2  # paper: >=1.2 PB observed

    print("\nFig6 (date: mean/median/p95):")
    for t, mean, median, p95 in rows:
        print(f"  {format_sim(t)}: {mean:.2e} / {median:.0f} / {p95:.2e}")
    print(f"  aggregate full-scale-equivalent packets: {full_equiv:.2e} (~{petabytes:.1f} PB)")
