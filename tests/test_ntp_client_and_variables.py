"""Tests for client poll aggregation and system-variable parsing."""

import pytest
from hypothesis import given

from repro.ntp import (
    ClientProfile,
    NtpServer,
    ServerConfig,
    extract_compile_year,
    parse_system_variables,
    render_system_variables,
    sync_background_clients,
)
from tests.strategies import poll_bounds


def test_render_and_parse_round_trip():
    payload = render_system_variables("4.2.6p5", 2012, "Linux/3.2.0", "x86_64", 3, "10.0.0.1")
    variables = parse_system_variables(payload)
    assert variables["system"] == "Linux/3.2.0"
    assert variables["processor"] == "x86_64"
    assert variables["stratum"] == "3"
    assert extract_compile_year(variables["version"]) == 2012


def test_render_extra_vars_changes_length():
    short = render_system_variables("4.2.6p5", 2012, "Unix", "i386", 3, "r", extra_vars=0)
    long = render_system_variables("4.2.6p5", 2012, "Unix", "i386", 3, "r", extra_vars=10)
    assert len(long) > len(short)


def test_render_validates_extra_vars():
    with pytest.raises(ValueError):
        render_system_variables("4", 2012, "Unix", "i386", 3, "r", extra_vars=99)


def test_parse_accepts_bytes():
    payload = render_system_variables("4.2.6p5", 2012, "cisco", "mips", 2, "r").encode()
    assert parse_system_variables(payload)["system"] == "cisco"


def test_extract_compile_year_edge_cases():
    assert extract_compile_year(None) is None
    assert extract_compile_year("no year here") is None
    assert extract_compile_year("UTC 1989 (1)") is None  # out of sane range
    assert extract_compile_year("blah UTC 2004 (1)") == 2004


def test_client_profile_polls_between():
    profile = ClientProfile(ip=1, port=123, poll_interval=100.0, first_poll=1000.0)
    assert profile.polls_between(0.0, 999.0) == 0
    assert profile.polls_between(0.0, 1000.0) == 1
    assert profile.polls_between(1000.0, 1300.0) == 3
    assert profile.polls_between(1300.0, 1000.0) == 0


def test_client_profile_last_poll_before():
    profile = ClientProfile(ip=1, port=123, poll_interval=100.0, first_poll=1000.0)
    assert profile.last_poll_before(999.0) is None
    assert profile.last_poll_before(1000.0) == 1000.0
    assert profile.last_poll_before(1250.0) == 1200.0


@given(poll_bounds)
def test_polls_between_is_additive(bounds):
    """Property: polls over [a,c] = polls over [a,b] + polls over [b,c]."""
    start, width, interval = bounds
    profile = ClientProfile(ip=1, port=123, poll_interval=interval, first_poll=500.0)
    mid = start + width / 2
    end = start + width
    total = profile.polls_between(start, end)
    split = profile.polls_between(start, mid) + profile.polls_between(mid, end)
    assert total == split


def test_sync_background_clients_matches_per_packet_path():
    """The aggregate sync path renders byte-identical tables to per-poll
    recording (the fidelity claim in repro.ntp.client)."""
    profiles = [
        ClientProfile(ip=10, port=123, poll_interval=64.0, first_poll=100.0),
        ClientProfile(ip=20, port=123, poll_interval=1024.0, first_poll=500.0),
    ]
    bulk = NtpServer(ip=1, config=ServerConfig())
    sync_background_clients(bulk, profiles, since=0.0, now=5000.0)

    exact = NtpServer(ip=1, config=ServerConfig())
    for profile in profiles:
        t = profile.first_poll
        while t <= 5000.0:
            exact.record_client(profile.ip, profile.port, 3, 4, now=t)
            t += profile.poll_interval

    assert bulk.table.entries_mru(6000.0) == exact.table.entries_mru(6000.0)


def test_sync_background_clients_incremental():
    """Syncing in two windows equals syncing once over the union."""
    profiles = [ClientProfile(ip=10, port=123, poll_interval=64.0, first_poll=100.0)]
    once = NtpServer(ip=1, config=ServerConfig())
    sync_background_clients(once, profiles, since=0.0, now=5000.0)
    twice = NtpServer(ip=1, config=ServerConfig())
    sync_background_clients(twice, profiles, since=0.0, now=2500.0)
    sync_background_clients(twice, profiles, since=2500.0, now=5000.0)
    assert once.table.entries_mru(6000.0) == twice.table.entries_mru(6000.0)
